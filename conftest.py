"""Root pytest config: session tracing via ``--obs-trace``/``REPRO_TRACE``.

``pytest --obs-trace /tmp/run.jsonl benchmarks/bench_table1.py`` (or
exporting ``REPRO_TRACE=/tmp/run.jsonl``) installs a process-global
:class:`repro.obs.Tracer` for the whole pytest session, so every solver
query, CEGIS iteration and worker event of the selected tests or benches
lands in one obs/v1 JSONL trace — analyzed afterwards with
``scripts/trace_report.py``.  Without the flag nothing is installed and
the instrumented hot paths stay on their no-op fast path.

This lives in the repo root (not ``tests/``/``benchmarks/``) because
``pytest_addoption`` only takes effect in an *initial* conftest, and both
test trees share the flag.  The flag is spelled ``--obs-trace`` because
pytest's own ``--trace`` (break into PDB per test) already owns the
shorter name; the standalone drivers (``scripts/run_full_eval.py``) keep
plain ``--trace``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_TRACER = None


def pytest_addoption(parser):
    parser.addoption(
        "--obs-trace", action="store", default=None, metavar="PATH",
        help="record an obs/v1 JSONL trace of this session to PATH "
        "(defaults to the REPRO_TRACE environment variable)",
    )


def pytest_configure(config):
    global _TRACER
    path = config.getoption("--obs-trace") or os.environ.get("REPRO_TRACE")
    if not path:
        return
    from repro.obs import Tracer, install

    _TRACER = Tracer(path)
    install(_TRACER)


def pytest_unconfigure(config):
    global _TRACER
    if _TRACER is None:
        return
    from repro.obs import clear

    clear()
    _TRACER.close()
    _TRACER = None
