"""bench_report.py must diff asymmetric reports, not KeyError on them."""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parents[2]
           / "scripts" / "bench_report.py")


@pytest.fixture(scope="module")
def bench_report():
    spec = importlib.util.spec_from_file_location("bench_report", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _case(wall=10.0, aig=100, status="ok"):
    return {"pipeline": "sc", "status": status, "wall_time_seconds": wall,
            "iterations": 5, "solver_instances": 7, "aig_nodes": aig,
            "tseitin_clauses": 900}


def _write(tmp_path, name, cases):
    path = tmp_path / name
    path.write_text(json.dumps({"cases": cases}))
    return str(path)


def test_symmetric_diff_flags_regressions_only(bench_report):
    baseline = {"a": _case(), "b": _case()}
    current = {"a": _case(wall=10.5), "b": _case(aig=101)}
    results = list(bench_report.diff_cases(baseline, current, 0.10))
    severities = [sev for sev, _ in results]
    assert severities.count("regression") == 1  # aig +1; wall within 10%
    assert "added" not in severities
    assert "removed" not in severities


def test_asymmetric_reports_yield_added_and_removed(bench_report):
    baseline = {"retired": _case(), "shared": _case()}
    current = {"shared": _case(), "fresh": _case()}
    results = list(bench_report.diff_cases(baseline, current, 0.10))
    by_severity = {}
    for severity, message in results:
        by_severity.setdefault(severity, []).append(message)
    assert len(by_severity["added"]) == 1
    assert by_severity["added"][0].startswith("fresh:")
    assert len(by_severity["removed"]) == 1
    assert by_severity["removed"][0].startswith("retired:")
    assert "regression" not in by_severity


def test_case_missing_counter_fields_is_tolerated(bench_report):
    # A partial/errored case may lack counters entirely; the diff must
    # skip the absent fields instead of raising.
    baseline = {"a": {"status": "ok"}}
    current = {"a": {"status": "ok", "aig_nodes": 5}}
    assert list(bench_report.diff_cases(baseline, current, 0.10)) == []


def test_main_exit_codes_and_output(bench_report, tmp_path, capsys):
    base = _write(tmp_path, "base.json",
                  {"retired": _case(), "shared": _case()})
    cur = _write(tmp_path, "cur.json",
                 {"shared": _case(), "fresh": _case()})
    # Asymmetry alone must not fail CI.
    assert bench_report.main([base, cur]) == 0
    out = capsys.readouterr().out
    assert "ADDED" in out and "fresh" in out
    assert "REMOVED" in out and "retired" in out
    assert "1 case(s) only in current, 1 only in baseline" in out
    assert "no regressions" in out

    # A genuine counter regression still gates.
    worse = _write(tmp_path, "worse.json",
                   {"shared": _case(aig=101), "fresh": _case()})
    assert bench_report.main([base, worse]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "aig_nodes 100 -> 101" in out


def test_status_flip_is_a_regression(bench_report):
    baseline = {"a": _case()}
    current = {"a": _case(status="partial")}
    severities = [s for s, _ in
                  bench_report.diff_cases(baseline, current, 0.10)]
    assert "regression" in severities
