"""The in-process service: lifecycle, caching, drain, crash containment.

These tests drive :class:`SynthesisService` directly (no sockets) with
the fast accumulator problem; the socket layer has its own test module
and the full kill -9 story lives in ``scripts/chaos_service.py``.
"""

import pytest

from repro.runtime import FaultInjector
from repro.runtime.retry import RetryPolicy
from repro.service import (
    AdmissionRejected,
    SynthesisService,
    idempotency_key,
    register_problem,
)
from repro.service.problems import PROBLEMS, build_problem
from repro.smt.backends import SolverConfig

_FAST_RETRY = RetryPolicy(backoff=0.001, backoff_ceiling=0.002)


@pytest.fixture
def service(tmp_path):
    svc = SynthesisService(tmp_path / "state", fsync=False,
                           retry_policy=_FAST_RETRY)
    svc.start()
    yield svc
    svc.shutdown(timeout=10.0)


def test_submit_runs_to_done_with_result(service):
    ack = service.submit("accumulator")
    assert ack["state"] == "accepted" and not ack["cached"]
    job = service.wait(ack["job_id"], timeout=60)
    assert job["state"] == "done"
    assert job["instructions_done"] >= 1
    assert job["result"]["design"].startswith("design ")


def test_idempotent_resubmission_hits_the_cache(service):
    first = service.submit("accumulator")
    service.wait(first["job_id"], timeout=60)
    second = service.submit("accumulator")
    assert second["cached"]
    assert second["job_id"] == first["job_id"]
    assert "design" in second["result"]


def test_unknown_design_is_a_typed_rejection(service):
    with pytest.raises(AdmissionRejected) as excinfo:
        service.submit("no_such_design")
    assert excinfo.value.reason == "unknown-design"
    assert not excinfo.value.retryable


def test_journal_fault_means_no_ack_and_no_job(service):
    from repro.service import JournalFault

    injector = FaultInjector()
    injector.inject_journal_fault(at_append="all")
    with injector.installed():
        with pytest.raises(JournalFault):
            service.submit("accumulator")
    assert service.stats()["jobs"] == {}


def test_draining_service_rejects_submissions(service):
    service.drain_event.set()
    with pytest.raises(AdmissionRejected) as excinfo:
        service.submit("accumulator")
    assert excinfo.value.reason == "draining"


def test_handle_request_shapes_typed_errors():
    # No daemon needed: handle_request is the protocol boundary.
    import tempfile

    with tempfile.TemporaryDirectory() as state:
        svc = SynthesisService(state, fsync=False)
        svc.start()
        try:
            response = svc.handle_request({"op": "submit",
                                           "design": "no_such_design"})
            assert not response["ok"]
            assert response["error"]["type"] == "service.admission"
            assert response["error"]["reason"] == "unknown-design"
            response = svc.handle_request({"op": "bogus"})
            assert response["error"]["type"] == "service.request"
            response = svc.handle_request({"op": "status",
                                           "job_id": "nope"})
            assert not response["ok"]
        finally:
            svc.shutdown(timeout=5.0)


class _FlakyFactory:
    """Succeeds for key computation, crashes the first N runner calls."""

    def __init__(self, crashes):
        self.crashes = crashes
        self.calls = 0

    def __call__(self):
        self.calls += 1
        # Call 1 is the submit path (idempotency key); later calls are
        # runner attempts.
        if 1 < self.calls <= 1 + self.crashes:
            raise RuntimeError("injected runner crash")
        from repro.designs.accumulator import build_problem as factory
        return factory()


@pytest.fixture
def flaky_design():
    name = "flaky_test_design"
    yield name
    PROBLEMS.pop(name, None)


def test_runner_crashes_are_requeued_then_succeed(service, flaky_design):
    register_problem(flaky_design, _FlakyFactory(crashes=2))
    ack = service.submit(flaky_design)
    job = service.wait(ack["job_id"], timeout=60)
    assert job["state"] == "done"
    assert job["crashes"] == 2


def test_crash_before_running_durable_still_requeues(service):
    """A journal fault on the 'running' transition must not kill the
    worker: the job is still 'accepted', so the requeue takes the
    accepted self-edge and the job completes on the retry."""
    injector = FaultInjector()
    injector.inject_journal_fault(at_append=2)  # 1=submit, 2=running
    with injector.installed():
        ack = service.submit("accumulator")
        job = service.wait(ack["job_id"], timeout=60)
    assert job["state"] == "done"
    assert job["crashes"] == 1


def test_concurrent_duplicate_submissions_create_one_job(service):
    import threading

    acks = []
    barrier = threading.Barrier(8)

    def submit():
        barrier.wait()
        acks.append(service.submit("accumulator"))

    threads = [threading.Thread(target=submit) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(acks) == 8
    assert len({ack["job_id"] for ack in acks}) == 1
    assert sum(service.stats()["jobs"].values()) == 1
    service.wait(acks[0]["job_id"], timeout=60)


def test_poison_job_fails_permanent_after_crash_cap(tmp_path, flaky_design):
    svc = SynthesisService(tmp_path / "state", fsync=False, max_crashes=2,
                           retry_policy=_FAST_RETRY)
    svc.start()
    try:
        register_problem(flaky_design, _FlakyFactory(crashes=99))
        ack = svc.submit(flaky_design)
        job = svc.wait(ack["job_id"], timeout=60)
        assert job["state"] == "failed-permanent"
        assert job["reason"] == "poisoned"
        assert job["crashes"] == 2
    finally:
        svc.shutdown(timeout=5.0)


def test_drain_checkpoints_inflight_job_and_restart_finishes(tmp_path):
    state = tmp_path / "state"
    svc = SynthesisService(state, fsync=False, stall=0.2,
                           retry_policy=_FAST_RETRY)
    svc.start()
    ack = svc.submit("alu_machine")
    job_id = ack["job_id"]
    # Wait for the first durable checkpoint, then drain mid-job.
    import time
    deadline = time.monotonic() + 30
    while svc.store.get(job_id).instructions_done < 1:
        assert time.monotonic() < deadline
        time.sleep(0.01)
    assert svc.shutdown(timeout=30.0)
    parked = svc.store.get(job_id)
    assert parked.state == "checkpointed"
    assert 1 <= parked.instructions_done < 4

    svc2 = SynthesisService(state, fsync=False, retry_policy=_FAST_RETRY)
    report = svc2.start()
    assert report["requeued"] == 1
    try:
        job = svc2.wait(job_id, timeout=120)
        assert job["state"] == "done"
        assert job["instructions_done"] == 4
    finally:
        svc2.shutdown(timeout=10.0)


def test_idempotency_key_is_content_addressed():
    problem = build_problem("accumulator")
    again = build_problem("accumulator")
    assert idempotency_key(problem) == idempotency_key(again)
    assert idempotency_key(problem) != idempotency_key(
        problem, mode="monolithic")
    assert idempotency_key(problem) != idempotency_key(
        problem, config=SolverConfig(backend="isolated"))
    # Worker counts change speed, not answers: same key.
    assert idempotency_key(problem, config=SolverConfig(max_workers=4)) \
        == idempotency_key(problem)
    other = build_problem("alu_machine")
    assert idempotency_key(problem) != idempotency_key(other)
