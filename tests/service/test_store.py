"""The durable job store: journal-then-apply, recovery, compaction."""

import json
import os

import pytest

from repro.runtime import FaultInjector
from repro.runtime.persist import atomic_write_json
from repro.service import IllegalTransition, Job, JobStore, JournalFault


def _store(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)
    kwargs.setdefault("compact_every", 0)  # compaction only when explicit
    store = JobStore(tmp_path / "state", **kwargs)
    store.open()
    return store


def _job(job_id="j1", **kwargs):
    kwargs.setdefault("design", "accumulator")
    return Job(job_id=job_id, **kwargs)


def test_submit_and_transitions_survive_reopen(tmp_path):
    store = _store(tmp_path)
    store.submit(_job("j1", idempotency_key="k1"))
    store.transition("j1", "running")
    store.transition("j1", "checkpointed", instructions_done=2,
                     checkpoint_path="cp.json")
    store.close()

    reopened = _store(tmp_path)
    job = reopened.get("j1")
    assert job.state == "checkpointed"
    assert job.instructions_done == 2
    assert job.checkpoint_path == "cp.json"
    assert reopened.find_by_key("k1").job_id == "j1"


def test_recovery_report_counts_interrupted_jobs(tmp_path):
    store = _store(tmp_path)
    store.submit(_job("a"))
    store.submit(_job("b"))
    store.transition("b", "running")
    store.transition("b", "done", result={"design": "d"})
    store.close()

    reopened = JobStore(tmp_path / "state", fsync=False)
    report = reopened.open()
    assert report["jobs"] == 2
    assert report["states"] == {"accepted": 1, "done": 1}
    assert [j.job_id for j in reopened.interrupted()] == ["a"]


def test_journal_fault_on_submit_indexes_nothing(tmp_path):
    store = _store(tmp_path)
    injector = FaultInjector()
    injector.inject_journal_fault(at_append=1)
    with injector.installed():
        with pytest.raises(JournalFault):
            store.submit(_job("lost"))
    # Never acked, never indexed, never durable.
    assert store.get("lost") is None
    store.close()
    reopened = _store(tmp_path)
    assert reopened.get("lost") is None


def test_illegal_transition_raises_and_journals_nothing(tmp_path):
    store = _store(tmp_path)
    store.submit(_job("j1"))
    store.transition("j1", "running")
    store.transition("j1", "done", result={"design": "d"})
    with pytest.raises(IllegalTransition):
        store.transition("j1", "running")
    store.close()
    # The rejected edge must not have poisoned the journal: replay works
    # and lands on the terminal state.
    reopened = _store(tmp_path)
    assert reopened.get("j1").state == "done"


def test_idempotency_cache_serves_only_done_jobs(tmp_path):
    store = _store(tmp_path)
    store.submit(_job("j1", idempotency_key="k"))
    assert store.cached_result("k") is None  # accepted, not done
    store.transition("j1", "running")
    store.transition("j1", "failed", reason="deadline")
    assert store.cached_result("k") is None
    assert store.find_by_key("k") is None    # failed jobs don't dedupe
    store.submit(_job("j2", idempotency_key="k"))
    store.transition("j2", "running")
    store.transition("j2", "done", result={"design": "text"})
    assert store.cached_result("k").result == {"design": "text"}
    store.close()
    # The cache is journal-backed: it survives a restart.
    reopened = _store(tmp_path)
    assert reopened.cached_result("k").result == {"design": "text"}


def test_compaction_folds_and_reopens_identically(tmp_path):
    store = _store(tmp_path)
    for i in range(5):
        store.submit(_job(f"j{i}"))
        store.transition(f"j{i}", "running")
        store.transition(f"j{i}", "done", result={"n": i})
    before = {j.job_id: j.to_dict() for j in store.jobs.values()}
    store.compact()
    store.submit(_job("after"))
    store.close()

    reopened = JobStore(tmp_path / "state", fsync=False)
    report = reopened.open()
    # Only the post-compaction record replays; the rest came from the
    # snapshot.
    assert report["replayed"] == 1
    after = {j.job_id: j.to_dict() for j in reopened.jobs.values()}
    assert {k: v for k, v in after.items() if k != "after"} == before


def test_crash_between_snapshot_and_rotation_never_double_applies(tmp_path):
    """A snapshot that recorded folded_gen makes the old journal stale.

    Simulates dying right after the snapshot rename but before the
    journal rotation deleted the folded generation: replaying that stale
    journal onto the snapshot state would hit IllegalTransition (e.g.
    "running" onto "done"); the generation protocol discards it instead.
    """
    store = _store(tmp_path)
    store.submit(_job("j1"))
    store.transition("j1", "running")
    store.transition("j1", "done", result={"design": "d"})
    # Crash-point simulation: snapshot exists and covers generation 0,
    # but journal.0.jsonl was never deleted.
    atomic_write_json(
        store.snapshot_path,
        {"schema": "repro.service.snapshot/1", "folded_gen": store._gen,
         "jobs": [j.to_dict() for j in store.jobs.values()]},
        fsync=False,
    )
    stale = store.journal_path
    store.close()
    assert os.path.exists(stale)

    reopened = JobStore(tmp_path / "state", fsync=False)
    report = reopened.open()
    assert report["replayed"] == 0          # stale generation discarded
    assert not os.path.exists(stale)
    assert reopened.get("j1").state == "done"


def test_torn_tail_on_reopen_is_reported_not_fatal(tmp_path):
    store = _store(tmp_path)
    store.submit(_job("j1"))
    path = store.journal_path
    store.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "transition", "job_id": "j1", "sta')
    reopened = JobStore(tmp_path / "state", fsync=False)
    report = reopened.open()
    assert report["torn_tail"]
    assert reopened.get("j1").state == "accepted"


def test_appends_after_torn_tail_never_fuse_with_it(tmp_path):
    """A restart must not append onto a crash-torn journal file.

    Appending to the torn file would fuse the partial line with the
    first new record — corrupting it (JournalFault on the next open) or
    silently dropping it as "torn".  Each incarnation writes a fresh
    generation instead, so post-restart work survives further restarts.
    """
    store = _store(tmp_path)
    store.submit(_job("j1"))
    torn_file = store.journal_path
    store.close()
    with open(torn_file, "a", encoding="utf-8") as handle:
        handle.write('{"type": "transition", "job_id": "j1", "sta')

    reopened = JobStore(tmp_path / "state", fsync=False, compact_every=0)
    report = reopened.open()
    assert report["torn_tail"]
    assert reopened.journal_path != torn_file
    reopened.transition("j1", "running")
    reopened.transition("j1", "done", result={"design": "d"})
    reopened.close()

    third = JobStore(tmp_path / "state", fsync=False, compact_every=0)
    third.open()  # must not raise: the torn tail stayed frozen
    assert third.get("j1").state == "done"
    third.close()


def test_reopen_rotates_generation_and_resumes_seq(tmp_path):
    store = _store(tmp_path)
    store.submit(_job("j1"))  # seq 1 in generation 0
    gen0 = store.journal_path
    store.close()

    reopened = _store(tmp_path)
    assert reopened.journal_path != gen0
    reopened.transition("j1", "running")
    with open(reopened.journal_path, encoding="utf-8") as handle:
        record = json.loads(handle.readline())
    assert record["seq"] == 2  # continues after the replayed records
    reopened.close()


def test_compaction_sweeps_all_prior_generations(tmp_path):
    store = _store(tmp_path)
    store.submit(_job("j1"))
    store.close()
    reopened = _store(tmp_path)   # generation per incarnation
    reopened.submit(_job("j2"))
    assert len(reopened._journal_generations()) == 2
    reopened.compact()
    assert reopened._journal_generations() == [reopened._gen]
    reopened.close()
    third = _store(tmp_path)
    assert set(third.jobs) == {"j1", "j2"}
    third.close()


def test_automatic_compaction_after_threshold(tmp_path):
    store = JobStore(tmp_path / "state", fsync=False, compact_every=4)
    store.open()
    for i in range(4):
        store.submit(_job(f"j{i}"))
    with open(store.snapshot_path) as handle:
        snapshot = json.load(handle)
    assert len(snapshot["jobs"]) == 4
    store.close()
