"""Admission control: bounded queues, tenant caps, typed backpressure."""

import pytest

from repro.service import AdmissionController, AdmissionRejected, Job


def _job(tenant="default"):
    return Job(job_id="j", design="accumulator", tenant=tenant)


def test_accepts_within_limits():
    controller = AdmissionController(max_queue_depth=2,
                                     max_active_per_tenant=2)
    controller.admit(_job(), queue_depth=1, tenant_active=1)


def test_queue_full_is_typed_and_retryable():
    controller = AdmissionController(max_queue_depth=2)
    with pytest.raises(AdmissionRejected) as excinfo:
        controller.admit(_job(), queue_depth=2, tenant_active=0)
    assert excinfo.value.reason == "queue-full"
    assert excinfo.value.retryable


def test_tenant_cap_is_per_tenant():
    controller = AdmissionController(max_queue_depth=10,
                                     max_active_per_tenant=1)
    with pytest.raises(AdmissionRejected) as excinfo:
        controller.admit(_job("alice"), queue_depth=1, tenant_active=1)
    assert excinfo.value.reason == "tenant-cap"
    # Another tenant is unaffected by alice's concurrency.
    controller.admit(_job("bob"), queue_depth=1, tenant_active=0)


def test_draining_rejects_everything():
    controller = AdmissionController()
    with pytest.raises(AdmissionRejected) as excinfo:
        controller.admit(_job(), queue_depth=0, tenant_active=0,
                         draining=True)
    assert excinfo.value.reason == "draining"
    assert excinfo.value.retryable


def test_exhausted_tenant_budget_rejects_permanently():
    controller = AdmissionController(tenant_conflict_cap=100)
    budget = controller.tenant_budget("alice")
    budget.charge_conflicts(100)
    with pytest.raises(AdmissionRejected) as excinfo:
        controller.admit(_job("alice"), queue_depth=0, tenant_active=0)
    assert excinfo.value.reason == "tenant-budget"
    assert not excinfo.value.retryable
    # Budgets are per tenant: bob still gets in.
    controller.admit(_job("bob"), queue_depth=0, tenant_active=0)


def test_tenant_budget_is_stable_across_calls():
    controller = AdmissionController(tenant_conflict_cap=50)
    assert controller.tenant_budget("a") is controller.tenant_budget("a")
    assert controller.tenant_budget("a") is not controller.tenant_budget("b")
