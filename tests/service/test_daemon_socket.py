"""The JSON-lines socket protocol, served over a real Unix socket."""

import threading

import pytest

from repro.service import ServiceClient, ServiceError, SynthesisService
from repro.service.protocol import decode_line, encode_line, error_response


@pytest.fixture
def served(tmp_path):
    """A daemon serving on a Unix socket in a background thread."""
    socket_path = str(tmp_path / "svc.sock")
    service = SynthesisService(tmp_path / "state", fsync=False)
    ready = threading.Event()
    thread = threading.Thread(
        target=service.serve,
        kwargs={"socket_path": socket_path, "install_signals": False,
                "ready": lambda _addr: ready.set()},
        daemon=True,
    )
    thread.start()
    assert ready.wait(10.0)
    yield socket_path, service
    service.drain_event.set()
    service._serve_stop.set()
    thread.join(15.0)


def test_ping_submit_wait_over_the_socket(served):
    socket_path, _service = served
    with ServiceClient.connect_retry(socket_path=socket_path) as client:
        assert client.ping()["pong"]
        ack = client.submit("accumulator")
        assert ack["state"] == "accepted"
        job = client.wait(ack["job_id"], timeout=60)
        assert job["state"] == "done"
        assert job["result"]["design"].startswith("design ")
        stats = client.stats()
        assert stats["jobs"] == {"done": 1}


def test_typed_errors_cross_the_wire(served):
    socket_path, _service = served
    with ServiceClient.connect_retry(socket_path=socket_path) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.submit("no_such_design")
        assert excinfo.value.type == "service.admission"
        assert excinfo.value.reason == "unknown-design"
        assert not excinfo.value.retryable
        with pytest.raises(ServiceError) as excinfo:
            client.request(op="bogus")
        assert excinfo.value.type == "service.request"


def test_two_clients_share_one_daemon(served):
    socket_path, _service = served
    with ServiceClient.connect_retry(socket_path=socket_path) as one, \
            ServiceClient.connect_retry(socket_path=socket_path) as two:
        ack = one.submit("accumulator")
        job = two.wait(ack["job_id"], timeout=60)
        assert job["state"] == "done"
        # The second client's identical submission is a cache hit.
        again = two.submit("accumulator")
        assert again["cached"]


def test_protocol_line_roundtrip():
    line = encode_line({"op": "ping"})
    assert line.endswith(b"\n")
    assert decode_line(line) == {"op": "ping"}
    with pytest.raises(ValueError):
        decode_line(b"[1, 2]\n")


def test_error_response_shapes():
    from repro.service import AdmissionRejected, JournalFault

    shaped = error_response(AdmissionRejected(reason="queue-full"))
    assert shaped["error"]["type"] == "service.admission"
    assert shaped["error"]["retryable"]
    shaped = error_response(JournalFault("disk on fire"))
    assert shaped["error"]["type"] == "service.journal"
    assert shaped["error"]["reason"] == "journal-fault"
    shaped = error_response(KeyError("job_id"))
    assert shaped["error"]["type"] == "service.request"
    shaped = error_response(RuntimeError("?"))
    assert shaped["error"]["type"] == "service.internal"
