"""The write-ahead journal: durability, torn tails, injected faults."""

import json

import pytest

from repro.runtime import FaultInjector
from repro.service import Journal, JournalFault


def test_append_replay_roundtrip(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path, fsync=False) as journal:
        assert journal.append({"type": "job", "job_id": "a"}) == 1
        assert journal.append({"type": "transition", "job_id": "a",
                               "state": "running"}) == 2
    records, torn = Journal.replay(path)
    assert not torn
    assert [r["seq"] for r in records] == [1, 2]
    assert records[1]["state"] == "running"


def test_replay_missing_file_is_empty(tmp_path):
    records, torn = Journal.replay(tmp_path / "absent.jsonl")
    assert records == [] and not torn


def test_torn_tail_is_tolerated_and_reported(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path, fsync=False) as journal:
        journal.append({"type": "job", "job_id": "a"})
        journal.append({"type": "job", "job_id": "b"})
    # A crash mid-append leaves a final line cut short (no newline).
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "job", "job_id": "c", "se')
    records, torn = Journal.replay(path)
    assert torn
    assert [r["job_id"] for r in records] == ["a", "b"]


def test_corruption_before_the_tail_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    lines = [json.dumps({"seq": 1}), "NOT JSON", json.dumps({"seq": 3})]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalFault, match="corrupt at record 2"):
        Journal.replay(path)


def test_sequence_numbers_continue_after_replay(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path, fsync=False) as journal:
        journal.append({"type": "job", "job_id": "a"})
    records, _ = Journal.replay(path)
    with Journal(path, fsync=False) as journal:
        journal.resume_from(records)
        assert journal.append({"type": "job", "job_id": "b"}) == 2


def test_injected_fault_fails_before_any_byte_is_written(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path, fsync=False) as journal:
        injector = FaultInjector()
        injector.inject_journal_fault(at_append=1)
        with injector.installed():
            with pytest.raises(JournalFault):
                journal.append({"type": "job", "job_id": "lost"})
            # The fault fired before the write: nothing is durable,
            # which is exactly why the caller must not have acked.
            journal.append({"type": "job", "job_id": "kept"})
    records, torn = Journal.replay(path)
    assert not torn
    assert [r["job_id"] for r in records] == ["kept"]


def test_persistent_journal_fault_with_all(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path, fsync=False) as journal:
        injector = FaultInjector()
        injector.inject_journal_fault(at_append="all")
        with injector.installed():
            for _ in range(3):
                with pytest.raises(JournalFault):
                    journal.append({"type": "job"})
    assert Journal.replay(path) == ([], False)


def test_reset_truncates_atomically(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path, fsync=False) as journal:
        journal.append({"type": "job", "job_id": "a"})
        journal.reset()
        journal.append({"type": "job", "job_id": "b"})
    records, _ = Journal.replay(path)
    assert [r["job_id"] for r in records] == ["b"]
    assert records[0]["seq"] == 1
