"""Unit tests for retry-with-escalation."""

import random

import pytest

from repro.runtime import (
    Budget,
    BudgetExhausted,
    RetryPolicy,
    SolverUnknown,
    decorrelated_jitter,
    run_with_retry,
)


def test_attempt_schedule_escalates():
    policy = RetryPolicy(max_attempts=4, initial_conflicts=100,
                         escalation=4.0, backoff=0.1, backoff_ceiling=0.25,
                         seed=7, jitter="none")
    attempts = list(policy.attempts())
    assert [a.max_conflicts for a in attempts] == [100, 400, 1600, 6400]
    assert [a.seed for a in attempts] == [None, 8, 9, 10]
    assert [a.backoff for a in attempts] == [0.0, 0.1, 0.2, 0.25]


def test_decorrelated_jitter_stays_in_envelope():
    rng = random.Random(11)
    previous = 0.0
    pauses = []
    for _ in range(50):
        pause = decorrelated_jitter(rng, 0.1, 2.0, previous)
        assert 0.1 <= pause <= 2.0
        # Never more than 3x the last pause: the growth stays bounded.
        if previous:
            assert pause <= max(0.1, previous * 3.0) + 1e-12
        pauses.append(pause)
        previous = pause
    # It is jitter, not a fixed schedule.
    assert len(set(pauses)) > 1


def test_decorrelated_jitter_deterministic_under_seed():
    def sequence():
        rng = random.Random(99)
        previous, out = 0.0, []
        for _ in range(10):
            previous = decorrelated_jitter(rng, 0.05, 1.0, previous)
            out.append(previous)
        return out

    assert sequence() == sequence()


def test_decorrelated_jitter_degenerate_inputs():
    rng = random.Random(0)
    assert decorrelated_jitter(rng, 0.0, 1.0, 0.5) == 0.0
    assert decorrelated_jitter(rng, 0.1, 0.0, 0.5) == 0.0
    # Base above cap clamps to the cap.
    assert decorrelated_jitter(rng, 5.0, 1.0, 0.0) == 1.0


def test_jittered_schedule_is_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=6, backoff=0.1, backoff_ceiling=0.5,
                         seed=7)
    first = [a.backoff for a in policy.attempts()]
    second = [a.backoff for a in policy.attempts()]
    assert first == second  # same seed, same schedule
    assert first[0] == 0.0
    assert all(0.1 <= pause <= 0.5 for pause in first[1:])


def test_attempt_schedule_uncapped_stays_uncapped():
    policy = RetryPolicy(max_attempts=3, initial_conflicts=None)
    assert [a.max_conflicts for a in policy.attempts()] == [None] * 3


def test_retry_succeeds_after_unknowns():
    calls = []

    def step(attempt):
        calls.append(attempt.index)
        if len(calls) < 3:
            raise SolverUnknown(reason="conflicts")
        return "sat"

    sleeps = []
    policy = RetryPolicy(max_attempts=5, backoff=0.01, backoff_ceiling=0.02,
                         jitter="none")
    assert run_with_retry(step, policy, sleep=sleeps.append) == "sat"
    assert calls == [0, 1, 2]
    assert sleeps == [0.01, 0.02]


def test_retry_exhaustion_reraises_with_attempt_count():
    def step(attempt):
        raise SolverUnknown(reason="conflicts")

    policy = RetryPolicy(max_attempts=3, backoff=0.0)
    with pytest.raises(SolverUnknown) as info:
        run_with_retry(step, policy, sleep=lambda _: None)
    assert info.value.attempts == 3


def test_budget_exhaustion_is_not_retried():
    calls = []

    def step(attempt):
        calls.append(attempt.index)
        raise BudgetExhausted(reason="deadline")

    with pytest.raises(BudgetExhausted):
        run_with_retry(step, RetryPolicy(max_attempts=5, backoff=0.0),
                       sleep=lambda _: None)
    assert calls == [0]


def test_non_retryable_unknown_reason_stops_early():
    calls = []

    def step(attempt):
        calls.append(attempt.index)
        raise SolverUnknown(reason="some-exotic-reason")

    with pytest.raises(SolverUnknown):
        run_with_retry(step, RetryPolicy(max_attempts=5, backoff=0.0),
                       sleep=lambda _: None)
    assert calls == [0]


def test_backoff_clipped_to_budget_remaining():
    class FakeClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    budget = Budget(timeout=0.05, clock=clock)
    sleeps = []

    def step(attempt):
        raise SolverUnknown(reason="conflicts")

    policy = RetryPolicy(max_attempts=2, backoff=10.0, backoff_ceiling=10.0)
    with pytest.raises(SolverUnknown):
        run_with_retry(step, policy, budget=budget, sleep=sleeps.append)
    assert sleeps == [0.05]  # clipped from 10s to the remaining budget


def test_none_policy_means_single_attempt():
    calls = []

    def step(attempt):
        calls.append(attempt.index)
        raise SolverUnknown(reason="conflicts")

    with pytest.raises(SolverUnknown):
        run_with_retry(step, None, sleep=lambda _: None)
    assert calls == [0]
