"""Cancellation-latency and soundness tests for the budgeted SAT core.

The acceptance bar from the resilience issue: a deadline expiry must be
observed within 100ms even mid-search, and an interrupted solver must
remain sound if solving resumes afterwards.
"""

import time

import pytest

from repro.runtime import Budget
from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNSAT, UNKNOWN


def _hard_factoring_solver(bits=14, composite=9409 * 89):
    p = T.bv_var("cp", bits)
    q = T.bv_var("cq", bits)
    product = T.bv_mul(T.zero_extend(p, 2 * bits), T.zero_extend(q, 2 * bits))
    solver = Solver()
    solver.add(T.bv_eq(product, T.bv_const(composite, 2 * bits)))
    solver.add(T.bv_ugt(p, T.bv_const(1, bits)))
    solver.add(T.bv_ugt(q, T.bv_const(1, bits)))
    return solver


def test_deadline_overshoot_bounded():
    solver = _hard_factoring_solver()
    deadline = 0.05
    started = time.monotonic()
    verdict = solver.check(timeout=deadline)
    elapsed = time.monotonic() - started
    assert verdict == UNKNOWN
    assert verdict.reason == "deadline"
    # 100ms overshoot budget on top of the deadline itself.
    assert elapsed < deadline + 0.1, f"cancellation took {elapsed:.3f}s"


def test_stop_reason_distinguishes_conflicts_from_deadline():
    capped = _hard_factoring_solver()
    verdict = capped.check(max_conflicts=1)
    assert verdict == UNKNOWN and verdict.reason == "conflicts"
    timed = _hard_factoring_solver()
    verdict = timed.check(timeout=1e-5)
    assert verdict == UNKNOWN and verdict.reason == "deadline"


def test_memory_budget_stops_solve(monkeypatch):
    from repro.runtime import budget as budget_mod

    solver = _hard_factoring_solver()
    budget = Budget(max_memory_mb=1)
    monkeypatch.setattr(budget_mod, "_rss_bytes", lambda: 32 * 1024 * 1024)
    # The budget is pre-exhausted, so the facade refuses before solving.
    from repro.runtime import ResourceExceeded

    with pytest.raises(ResourceExceeded):
        solver.check(budget=budget)


def test_interrupted_solver_remains_sound():
    # Interrupt mid-search, then finish without a budget: the verdict and
    # model must match a fresh solver's.
    interrupted = _hard_factoring_solver()
    seen_unknown = False
    for _ in range(50):
        verdict = interrupted.check(timeout=2e-3)
        if verdict != UNKNOWN:
            break
        seen_unknown = True
    if verdict == UNKNOWN:
        verdict = interrupted.check()
    fresh = _hard_factoring_solver()
    expected = fresh.check()
    assert verdict.name == expected.name
    assert seen_unknown, "expected at least one interruption in this test"
    if verdict is SAT:
        model = interrupted.model()
        p = model.value("cp")
        q = model.value("cq")
        assert p * q == 9409 * 89 and p > 1 and q > 1


def test_budget_charged_across_checks():
    budget = Budget(max_conflicts=50)
    solver = _hard_factoring_solver()
    verdict = solver.check(budget=budget)
    assert verdict == UNKNOWN and verdict.reason == "conflicts"
    assert budget.remaining_conflicts() == 0


def test_reseed_preserves_verdicts():
    solver = _hard_factoring_solver(bits=8, composite=143)
    first = solver.check()
    solver.reseed(1234)
    second = solver.check()
    assert first.name == second.name == "sat"
    unsat = Solver()
    x = T.bv_var("rs", 4)
    unsat.add(T.bv_eq(x, T.bv_const(1, 4)))
    unsat.add(T.bv_eq(x, T.bv_const(2, 4)))
    assert unsat.check() is UNSAT
    unsat.reseed(99)
    assert unsat.check() is UNSAT
