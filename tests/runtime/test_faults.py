"""Unit tests for deterministic fault injection at the solver facade."""

import pytest

from repro.runtime import FaultInjector, active_injector
from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNKNOWN


def _sat_solver(tag):
    solver = Solver()
    solver.add(T.bv_eq(T.bv_var(f"fi_{tag}", 8), T.bv_const(7, 8)))
    return solver


def test_installation_is_scoped():
    injector = FaultInjector()
    assert active_injector() is None
    with injector.installed():
        assert active_injector() is injector
    assert active_injector() is None


def test_installation_restores_previous():
    outer, inner = FaultInjector(), FaultInjector()
    with outer.installed():
        with inner.installed():
            assert active_injector() is inner
        assert active_injector() is outer


def test_unknown_injected_at_exact_check_ordinal():
    injector = FaultInjector().inject_unknown(at_check=2)
    with injector.installed():
        assert _sat_solver("a").check() is SAT
        verdict = _sat_solver("b").check()
        assert verdict == UNKNOWN
        assert verdict.reason == "injected"
        assert _sat_solver("c").check() is SAT
    assert injector.fired == [("unknown:injected", 2)]


def test_deadline_injection_reads_as_timeout():
    injector = FaultInjector().inject_deadline(at_check=1)
    with injector.installed():
        verdict = _sat_solver("d").check()
    assert verdict == UNKNOWN
    assert verdict.reason == "deadline"


def test_injection_spans_solver_instances():
    # Ordinals are process-global across facade instances, so a plan can
    # target "the 3rd query of the CEGIS loop" regardless of which side
    # (fresh verifier vs incremental guesser) issues it.
    injector = FaultInjector().inject_unknown(at_check=[1, 3])
    with injector.installed():
        assert _sat_solver("e").check() == UNKNOWN
        shared = _sat_solver("f")
        assert shared.check() is SAT
        assert shared.check() == UNKNOWN


def test_malformed_model_is_deterministic():
    def corrupted_values(seed):
        injector = FaultInjector(seed=seed).inject_malformed_model(at_model=1)
        solver = _sat_solver(f"g{seed}")
        with injector.installed():
            assert solver.check() is SAT
            return solver.model().as_dict()

    first = corrupted_values(3)
    again = corrupted_values(3)
    other = corrupted_values(4)
    assert first == again
    assert first != other
    # Corruption is out-of-width for any realistic variable.
    assert all(value >> 64 for value in first.values())


def test_model_uncorrupted_off_ordinal():
    injector = FaultInjector().inject_malformed_model(at_model=5)
    solver = _sat_solver("h")
    with injector.installed():
        assert solver.check() is SAT
        assert solver.model().value(f"fi_h") == 7


def test_no_injector_no_interference():
    solver = _sat_solver("i")
    assert solver.check() is SAT
    assert solver.model().value("fi_i") == 7
