"""Tests for the sandboxed solver worker pool.

Each test uses a real subprocess pool (no mocks): the containment claims
— crash classification, watchdog reaping bounds, orphan-free shutdown —
are only meaningful against live child processes.
"""

import threading
import time

import pytest

from repro.runtime import (
    FaultInjector,
    SolverWorkerPool,
    WorkerCrashed,
    WorkerKilled,
)
from repro.runtime._worker_proto import EXIT_CRASH, EXIT_OOM
from repro.runtime.reasons import WORKER_REASONS, is_canonical
from repro.smt import terms as T
from repro.smt.dimacs import to_dimacs


def _sat_query():
    x = T.bv_var("x", 4)
    return to_dimacs([T.bv_eq(x, T.bv_const(9, 4))])


def _unsat_query():
    x = T.bv_var("x", 4)
    return to_dimacs([
        T.bv_ult(x, T.bv_const(3, 4)),
        T.bv_ugt(x, T.bv_const(12, 4)),
    ])


@pytest.fixture
def pool():
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1)
    yield pool
    accounting = pool.shutdown()
    assert accounting["orphans"] == 0
    assert not pool.live_pids()


def test_clean_check_decodes_model(pool):
    outcome = pool.check(_sat_query())
    assert outcome.verdict == "sat"
    assert outcome.model["x"] == 9

    outcome = pool.check(_unsat_query())
    assert outcome.verdict == "unsat"


def test_injected_crash_classified_and_pool_recovers(pool):
    injector = FaultInjector().inject_worker_crash(at_request=1)
    with injector.installed():
        with pytest.raises(WorkerCrashed) as excinfo:
            pool.check(_sat_query())
    assert excinfo.value.reason == "worker-crashed"
    assert excinfo.value.reason in WORKER_REASONS
    assert excinfo.value.exit_code == EXIT_CRASH
    # The pool respawned a replacement; the next check succeeds.
    assert pool.check(_sat_query()).verdict == "sat"
    assert pool.stats["spawned"] == 2
    assert pool.stats["crashes"] == 1


def test_injected_oom_is_classified_not_raw_memoryerror():
    # A roomier heartbeat interval than the other tests: allocation up to
    # the rlimit stalls the worker's beats enough that a tight threshold
    # would race the watchdog against the OOM report.
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.5,
                            mem_limit_mb=256)
    try:
        injector = FaultInjector().inject_worker_oom(at_request=1)
        with injector.installed():
            with pytest.raises(WorkerCrashed) as excinfo:
                pool.check(_sat_query())
        # Machine-readable classification, never a raw MemoryError —
        # and always a canonical reason (repro.runtime.reasons).
        assert excinfo.value.reason == "worker-oom"
        assert is_canonical(excinfo.value.reason)
        assert not isinstance(excinfo.value, MemoryError)
        assert pool.check(_sat_query()).verdict == "sat"
    finally:
        accounting = pool.shutdown()
        assert accounting["orphans"] == 0


def test_hung_worker_reaped_within_watchdog_bound():
    interval = 0.25
    pool = SolverWorkerPool(size=1, heartbeat_interval=interval)
    try:
        injector = FaultInjector().inject_worker_hang(at_request=1)
        started = time.monotonic()
        with injector.installed():
            with pytest.raises(WorkerKilled) as excinfo:
                pool.check(_sat_query())
        elapsed = time.monotonic() - started
        assert excinfo.value.reason == "heartbeat-lost"
        assert excinfo.value.reason in WORKER_REASONS
        # Killed within watchdog_grace (2x) heartbeat intervals, plus
        # scan-period and process-teardown slack — not the 3600s hang.
        assert elapsed < 2 * interval + 1.0, elapsed
        assert pool.stats["watchdog_kills"] == 1
    finally:
        accounting = pool.shutdown()
        assert accounting["orphans"] == 0
        assert not pool.live_pids()


def test_interrupt_teardown_classified_as_interrupted():
    # Watchdog effectively disabled (huge interval): the kill must come
    # from terminate_inflight, and classify as non-retryable.
    pool = SolverWorkerPool(size=1, heartbeat_interval=30.0)
    try:
        injector = FaultInjector().inject_worker_hang(at_request=1)
        caught = []

        def submit():
            with pytest.raises(WorkerKilled) as excinfo:
                pool.check(_sat_query())
            caught.append(excinfo.value)

        with injector.installed():
            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(0.4)  # let the request reach the worker
            pool.terminate_inflight()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert caught and caught[0].reason == "interrupted"
        assert is_canonical(caught[0].reason)
    finally:
        assert pool.shutdown()["orphans"] == 0


def test_circuit_breaker_falls_back_in_process():
    from repro.smt.solver import Solver, SAT

    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1,
                            fallback_after=1)
    try:
        solver = Solver(execution="isolated", worker_pool=pool)
        x = T.bv_var("x", 4)
        solver.add(T.bv_eq(x, T.bv_const(5, 4)))
        injector = FaultInjector().inject_worker_crash(at_request="all")
        with injector.installed():
            with pytest.raises(WorkerCrashed):
                solver.check()
            # Same query again: the breaker is open, so this solves
            # in-process and succeeds despite the persistent directive.
            assert solver.check() is SAT
        assert solver.model().value(x) == 5
        assert solver.stats["worker_fallbacks"] == 1
        assert pool.stats["fallbacks"] == 1
    finally:
        assert pool.shutdown()["orphans"] == 0


def test_respawn_pause_is_deterministic_jitter():
    # Pure schedule test: no subprocesses, just the delay computation.
    def schedule(seed):
        pool = SolverWorkerPool.__new__(SolverWorkerPool)
        pool.respawn_jitter = 0.01
        pool.respawn_jitter_cap = 0.25
        import random as _random
        import threading as _threading
        pool._respawn_rng = _random.Random(seed)
        pool._respawn_previous = 0.0
        pool._lock = _threading.Lock()
        return [pool._respawn_pause() for _ in range(8)]

    first = schedule(2024)
    assert first == schedule(2024)  # seeded -> reproducible
    assert first != schedule(7)     # but seed-dependent
    assert all(0.01 <= pause <= 0.25 for pause in first)
    assert len(set(first)) > 1      # jittered, not a constant


def test_respawn_after_crash_sleeps_jittered_delay():
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1, seed=42)
    sleeps = []
    pool._sleep = sleeps.append
    try:
        injector = FaultInjector().inject_worker_crash(at_request=1)
        with injector.installed():
            with pytest.raises(WorkerCrashed):
                pool.check(_sat_query())
        assert pool.check(_sat_query()).verdict == "sat"
        # Exactly one respawn happened, preceded by one jittered pause.
        assert len(sleeps) == 1
        assert 0.01 <= sleeps[0] <= 0.25
    finally:
        assert pool.shutdown()["orphans"] == 0


def test_respawn_jitter_zero_disables_pause():
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1,
                            respawn_jitter=0.0)
    sleeps = []
    pool._sleep = sleeps.append
    try:
        injector = FaultInjector().inject_worker_crash(at_request=1)
        with injector.installed():
            with pytest.raises(WorkerCrashed):
                pool.check(_sat_query())
        assert pool.check(_sat_query()).verdict == "sat"
        assert sleeps == []
    finally:
        assert pool.shutdown()["orphans"] == 0


def test_shutdown_accounting_balances():
    pool = SolverWorkerPool(size=2, heartbeat_interval=0.1)
    assert pool.check(_sat_query()).verdict == "sat"
    accounting = pool.shutdown()
    assert accounting["spawned"] == accounting["reaped"] == 2
    assert accounting["orphans"] == 0
    assert not pool.live_pids()
    with pytest.raises(RuntimeError):
        pool.check(_sat_query())
