"""Unit tests for nestable budgets (wall clock, conflicts, memory)."""

import pytest

from repro.runtime import budget as budget_mod
from repro.runtime import Budget, BudgetExhausted, ResourceExceeded


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_uncapped_budget_never_exhausts():
    clock = FakeClock()
    budget = Budget(clock=clock)
    clock.advance(1e9)
    budget.charge_conflicts(10 ** 9)
    assert budget.exhausted_reason() is None
    budget.check()  # does not raise
    assert budget.remaining_time() is None
    assert budget.remaining_conflicts() is None


def test_deadline_exhaustion():
    clock = FakeClock()
    budget = Budget(timeout=5.0, clock=clock)
    assert budget.remaining_time() == pytest.approx(5.0)
    clock.advance(4.0)
    budget.check()
    clock.advance(1.5)
    assert budget.remaining_time() == 0.0
    assert budget.exhausted_reason() == "deadline"
    with pytest.raises(BudgetExhausted) as info:
        budget.check()
    assert info.value.reason == "deadline"


def test_conflict_cap_and_charging():
    budget = Budget(max_conflicts=100)
    budget.charge_conflicts(60)
    assert budget.remaining_conflicts() == 40
    budget.charge_conflicts(40)
    assert budget.exhausted_reason() == "conflicts"
    with pytest.raises(BudgetExhausted) as info:
        budget.check()
    assert info.value.reason == "conflicts"


def test_child_deadline_clamped_to_parent():
    clock = FakeClock()
    parent = Budget(timeout=2.0, clock=clock)
    child = parent.child(timeout=100.0)
    assert child.remaining_time() == pytest.approx(2.0)
    looser = parent.child()  # no own cap: inherits the parent deadline
    assert looser.remaining_time() == pytest.approx(2.0)
    tighter = parent.child(timeout=0.5)
    assert tighter.remaining_time() == pytest.approx(0.5)


def test_child_conflicts_charge_parent():
    parent = Budget(max_conflicts=100)
    first = parent.child(max_conflicts=80)
    first.charge_conflicts(70)
    assert first.remaining_conflicts() == 10
    assert parent.remaining_conflicts() == 30
    # A fresh child starts clean but the parent cap still binds.
    second = parent.child(max_conflicts=80)
    assert second.remaining_conflicts() == 30
    second.charge_conflicts(30)
    assert second.exhausted_reason() == "conflicts"
    assert parent.exhausted_reason() == "conflicts"


def test_child_inherits_parent_deadline_exhaustion():
    clock = FakeClock()
    parent = Budget(timeout=1.0, clock=clock)
    child = parent.child()
    clock.advance(2.0)
    assert child.exhausted_reason() == "deadline"


def test_memory_cap_raises_resource_exceeded(monkeypatch):
    budget = Budget(max_memory_mb=1)
    monkeypatch.setattr(budget_mod, "_rss_bytes", lambda: 2 * 1024 * 1024)
    assert budget.exhausted_reason() == "memory"
    with pytest.raises(ResourceExceeded) as info:
        budget.check()
    assert info.value.reason == "memory"
    assert isinstance(info.value, BudgetExhausted)


def test_child_inherits_memory_cap(monkeypatch):
    parent = Budget(max_memory_mb=1)
    child = parent.child()
    assert child.max_memory_bytes == parent.max_memory_bytes
    monkeypatch.setattr(budget_mod, "_rss_bytes", lambda: 2 * 1024 * 1024)
    assert child.exhausted_reason() == "memory"


def test_repr_mentions_caps():
    budget = Budget(timeout=10, max_conflicts=5, max_memory_mb=64)
    text = repr(budget)
    assert "time=" in text and "conflicts=0/5" in text and "64MB" in text
    assert repr(Budget()) == "Budget(unbounded)"


def test_concurrent_charges_do_not_lose_updates():
    # Service runners charge children of a shared per-tenant budget from
    # multiple threads; the ancestor walk must not drop increments.
    import threading

    parent = Budget(max_conflicts=None)
    children = [parent.child() for _ in range(4)]
    per_thread, per_charge = 500, 3

    def hammer(child):
        for _ in range(per_thread):
            child.charge_conflicts(per_charge)

    threads = [threading.Thread(target=hammer, args=(c,)) for c in children]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert parent.conflicts_used == len(children) * per_thread * per_charge
    for child in children:
        assert child.conflicts_used == per_thread * per_charge


def test_tenant_cap_survives_checkpoint_resume_roundtrip():
    # A service restart creates a *new* child slice under the same
    # tenant budget; the tenant's cap keeps counting what was already
    # spent before the crash.
    tenant = Budget(max_conflicts=100)
    first = tenant.child(timeout=10)
    first.charge_conflicts(60)
    assert tenant.conflicts_used == 60

    # "Restart": a fresh child, as the recovered job gets.
    second = tenant.child(timeout=10)
    assert second.remaining_conflicts() == 40
    second.charge_conflicts(40)
    assert tenant.exhausted_reason() == "conflicts"
    with pytest.raises(BudgetExhausted):
        second.check()
