"""Tests for synthesis-failure diagnosis."""

import pytest

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.ila import BvConst, Ila
from repro.synthesis import SynthesisProblem
from repro.synthesis.diagnosis import diagnose_instruction


def _spec(want_sub=True):
    ila = Ila("diag")
    op = ila.new_bv_input("op", 1)
    acc = ila.new_bv_state("acc", 8)
    aux = ila.new_bv_state("aux", 8)
    add = ila.new_instr("ADDER")
    add.set_decode(op == BvConst(0, 1))
    add.set_update(acc, acc + 1)
    add.set_update(aux, aux)
    if want_sub:
        sub = ila.new_instr("SUBBER")
        sub.set_decode(op == BvConst(1, 1))
        sub.set_update(acc, acc - 1)
        sub.set_update(aux, aux + 1)
    return ila.validate()


def _sketch(with_sub_unit=True, aux_tied_to_acc=False):
    with hdl.Module("diag_dp") as module:
        op = hdl.Input(1, "op")
        acc = hdl.Register(8, "acc")
        aux = hdl.Register(8, "aux")
        mode = hdl.Hole(1, "mode", deps=[op])
        aux_en = hdl.Hole(1, "aux_en", deps=[op])
        if with_sub_unit:
            acc.next <<= hdl.select(mode, acc - 1, acc + 1)
        else:
            acc.next <<= hdl.select(mode, acc + 1, acc + 1)
        if aux_tied_to_acc:
            # aux can only increment when acc increments: a cross-signal
            # conflict for SUBBER (needs acc-1 with aux+1).
            aux.next <<= hdl.select(mode, aux, aux + 1)
        else:
            aux.next <<= hdl.select(aux_en, aux + 1, aux)
    return module.to_oyster()


_ALPHA = parse_abstraction(
    "op:  {name: 'op', type: input, [read: 1]}\n"
    "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
    "aux: {name: 'aux', type: register, [read: 1, write: 1]}\n"
    "with cycles: 1\n"
)


def test_healthy_sketch_diagnoses_clean():
    problem = SynthesisProblem(_sketch(), _spec(), _ALPHA)
    diagnosis = diagnose_instruction(problem, problem.spec.instr("SUBBER"))
    assert diagnosis.ok
    assert set(diagnosis.feasible) == {"acc", "aux"}
    assert "ok" in diagnosis.summary()


def test_missing_hardware_identified():
    """No subtract unit: the acc postcondition is infeasible, aux is fine."""
    problem = SynthesisProblem(
        _sketch(with_sub_unit=False), _spec(), _ALPHA
    )
    diagnosis = diagnose_instruction(problem, problem.spec.instr("SUBBER"))
    assert diagnosis.infeasible == ["acc"]
    assert "aux" in diagnosis.feasible
    assert "missing" in diagnosis.summary()


def test_conflicting_updates_identified():
    """Each update is implementable alone but not simultaneously."""
    problem = SynthesisProblem(
        _sketch(aux_tied_to_acc=True), _spec(), _ALPHA
    )
    diagnosis = diagnose_instruction(problem, problem.spec.instr("SUBBER"))
    assert not diagnosis.infeasible
    assert set(diagnosis.conflict) == {"acc", "aux"}
    assert "conflict" in diagnosis.summary()
