"""Error paths of precondition rendering (decode-to-Oyster translation)."""

import pytest

from repro.abstraction import parse_abstraction
from repro.ila import BvConst, Extract, Ila, Ite, Load
from repro.oyster import ast as oy
from repro.synthesis.union import RenderError, render_precondition


def _alpha(extra=""):
    return parse_abstraction(
        "op:  {name: 'op_wire', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "mem: {name: 'm', type: memory, [read: 1, write: 1]}\n"
        "with cycles: 1\n" + extra
    )


def _spec():
    ila = Ila("r")
    op = ila.new_bv_input("op", 4)
    acc = ila.new_bv_state("acc", 8)
    mem = ila.new_mem_state("mem", 4, 8)
    return ila, op, acc, mem


def test_variables_render_through_alpha():
    ila, op, acc, mem = _spec()
    rendered = render_precondition(ila, _alpha(), op == BvConst(3, 4))
    assert rendered == oy.Binop("==", oy.Var("op_wire"), oy.Const(3, 4))


def test_decode_fields_render_to_bindings():
    ila, op, acc, mem = _spec()
    field = ila.declare_decode_field("nibble", Extract(acc, 3, 0))
    alpha = parse_abstraction(
        "op:  {name: 'op_wire', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
        "fields: {nibble: 'low_bits'}\n"
    )
    rendered = render_precondition(ila, alpha, field == BvConst(1, 4))
    assert rendered == oy.Binop("==", oy.Var("low_bits"), oy.Const(1, 4))


def test_unbound_load_rejected():
    ila, op, acc, mem = _spec()
    decode = Load(mem, Extract(acc, 3, 0)) == BvConst(0, 8)
    with pytest.raises(RenderError, match="memory load"):
        render_precondition(ila, _alpha(), decode)


def test_complex_expressions_render():
    ila, op, acc, mem = _spec()
    decode = Ite(op == BvConst(0, 4), acc == BvConst(1, 8),
                 acc != BvConst(2, 8))
    rendered = render_precondition(ila, _alpha(), decode)
    assert isinstance(rendered, oy.Ite)
