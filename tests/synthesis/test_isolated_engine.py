"""End-to-end synthesis with isolated (sandboxed subprocess) execution.

The acceptance property: an ``execution="isolated"`` run survives worker
deaths injected mid-synthesis — a hard crash and a hang — and still
completes correct, independently verified control logic, with every
worker process accounted for at shutdown.
"""

import pytest

from repro.designs import alu_machine
from repro.runtime import FaultInjector, SolverWorkerPool
from repro.synthesis import synthesize, verify_design


@pytest.fixture
def alu_problem():
    return alu_machine.build_problem()


def _assert_reference_values(result):
    for name, expected in alu_machine.REFERENCE_HOLE_VALUES.items():
        assert result.hole_values_for(name) == expected, name


def test_isolated_survives_injected_crash_and_hang(alu_problem):
    pool = SolverWorkerPool(size=2, heartbeat_interval=0.1)
    injector = FaultInjector()
    injector.inject_worker_crash(at_request=2)
    injector.inject_worker_hang(at_request=4)
    try:
        with injector.installed():
            result = synthesize(alu_problem, execution="isolated",
                                worker_pool=pool, timeout=300)
    finally:
        accounting = pool.shutdown()
    assert [kind for kind, _ in injector.fired] == [
        "worker:crash", "worker:hang",
    ]
    _assert_reference_values(result)
    verdict = verify_design(result.completed_design, alu_problem.spec,
                            alu_problem.alpha)
    assert verdict.ok, verdict.summary()
    # Both deaths were contained and replaced...
    assert accounting["crashes"] >= 2
    assert accounting["watchdog_kills"] >= 1
    # ...and nothing leaked: every spawned worker was collected.
    assert accounting["spawned"] == accounting["reaped"]
    assert accounting["orphans"] == 0
    assert not pool.live_pids()


def test_isolated_matches_inprocess_solutions(alu_problem):
    inproc = synthesize(alu_problem, timeout=300)
    isolated = synthesize(alu_problem, execution="isolated",
                          max_workers=2, timeout=300)
    assert isolated.stats["execution"] == "isolated"
    for solution in inproc.per_instruction:
        assert isolated.hole_values_for(solution.instruction_name) \
            == solution.hole_values
    _assert_reference_values(isolated)


def test_engine_owned_pool_is_shut_down(alu_problem):
    # No pool passed: the engine creates one and must tear it down —
    # observable as zero live worker processes after the call returns.
    result = synthesize(alu_problem, execution="isolated", max_workers=2,
                        timeout=300)
    _assert_reference_values(result)


def test_persistent_crasher_trips_breaker_and_completes(alu_problem):
    # Every request crashes its worker; the per-query circuit breaker
    # must open after one failure and finish the run in-process.
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1,
                            fallback_after=1)
    injector = FaultInjector().inject_worker_crash(at_request="all")
    try:
        with injector.installed():
            result = synthesize(alu_problem, execution="isolated",
                                worker_pool=pool, timeout=300)
    finally:
        accounting = pool.shutdown()
    _assert_reference_values(result)
    assert accounting["fallbacks"] > 0
    assert accounting["orphans"] == 0


def test_isolated_monolithic_mode(alu_problem):
    result = synthesize(alu_problem, mode="monolithic",
                        execution="isolated", max_workers=1, timeout=300)
    _assert_reference_values(result)


def test_isolated_verifier(alu_problem):
    completed = synthesize(alu_problem, timeout=300).completed_design
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1)
    try:
        verdict = verify_design(completed, alu_problem.spec,
                                alu_problem.alpha, execution="isolated",
                                worker_pool=pool)
    finally:
        assert pool.shutdown()["orphans"] == 0
    assert verdict.ok, verdict.summary()
