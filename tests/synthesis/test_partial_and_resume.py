"""Degradation and resume tests for the resilient synthesis engine.

Covers the four fault scenarios from the resilience acceptance criteria —
UNKNOWN on the guess side, UNKNOWN on the verify side, a deadline observed
mid-run, and a malformed model — plus the resume round-trip: a run killed
mid-loop hands back a ``PartialSynthesisResult`` with all completed work,
and resuming from it (including through JSON serialization) produces
control logic equivalent to an uninterrupted run.
"""

import json

import pytest

from repro.designs import alu_machine
from repro.runtime import FaultInjector, SolverUnknown
from repro.synthesis import (
    PartialSynthesisResult,
    SynthesisTimeout,
    synthesize,
    verify_design,
)


@pytest.fixture(scope="module")
def problem():
    return alu_machine.build_problem()


@pytest.fixture(scope="module")
def full_result(problem):
    return synthesize(problem, timeout=300)


@pytest.fixture(scope="module")
def check_map(problem):
    """Facade-check ordinal ranges per instruction, and model ordinals.

    Everything in the stack is deterministic, so one instrumented clean run
    calibrates which global check/model ordinals belong to which
    instruction; the fault tests then aim injections precisely.
    """
    injector = FaultInjector()  # counts ordinals, injects nothing
    boundaries = {}

    def record(name, _solution):
        boundaries[name] = (injector.check_count, injector.model_count)

    with injector.installed():
        synthesize(problem, timeout=300, check_independence=False,
                   progress=record)
    spans = {}
    prev_checks, prev_models = 0, 0
    for instruction in [i.name for i in problem.spec.instructions]:
        checks, models = boundaries[instruction]
        spans[instruction] = {
            "checks": range(prev_checks + 1, checks + 1),
            "models": range(prev_models + 1, models + 1),
        }
        prev_checks, prev_models = checks, models
    return spans


def _second_instruction(problem):
    return problem.spec.instructions[1].name


def _expect_partial(problem, injector, **kwargs):
    with injector.installed():
        result = synthesize(problem, timeout=300, check_independence=False,
                            on_timeout="partial", **kwargs)
    assert isinstance(result, PartialSynthesisResult)
    return result


# -- the four fault scenarios ---------------------------------------------


def test_unknown_on_verify_degrades(problem, check_map):
    victim = _second_instruction(problem)
    # The first check of an instruction's span is the verify side of its
    # first CEGIS iteration.
    ordinal = check_map[victim]["checks"][0]
    injector = FaultInjector().inject_unknown(at_check=ordinal)
    partial = _expect_partial(problem, injector)
    assert partial.pending == [victim]
    assert partial.faults == [(victim, "injected")]
    completed = {s.instruction_name for s in partial.completed}
    assert completed == {i.name for i in problem.spec.instructions} - {victim}


def test_unknown_on_guess_degrades(problem, check_map):
    victim = _second_instruction(problem)
    # Second check in the span: the guess side of iteration 1.
    ordinal = check_map[victim]["checks"][1]
    injector = FaultInjector().inject_unknown(at_check=ordinal)
    partial = _expect_partial(problem, injector)
    assert partial.pending == [victim]
    assert partial.faults == [(victim, "injected")]


def test_deadline_mid_loop_keeps_completed_work(problem, check_map):
    victim = _second_instruction(problem)
    ordinal = check_map[victim]["checks"][0]
    injector = FaultInjector().inject_deadline(at_check=ordinal)
    partial = _expect_partial(problem, injector)
    assert partial.reason == "deadline"
    # Deadline stops the loop: the victim and everything after it pend.
    names = [i.name for i in problem.spec.instructions]
    assert partial.pending == names[1:]
    assert [s.instruction_name for s in partial.completed] == names[:1]


def test_malformed_model_degrades(problem, check_map):
    victim = _second_instruction(problem)
    ordinal = check_map[victim]["models"][0]
    injector = FaultInjector(seed=11).inject_malformed_model(at_model=ordinal)
    partial = _expect_partial(problem, injector)
    assert victim in partial.pending
    assert any(reason == "malformed-model"
               for _, reason in partial.faults)


# -- raise-mode contract ---------------------------------------------------


def test_raise_mode_attaches_partial(problem, check_map):
    victim = _second_instruction(problem)
    injector = FaultInjector().inject_deadline(
        at_check=check_map[victim]["checks"][0]
    )
    with injector.installed():
        with pytest.raises(SynthesisTimeout) as info:
            synthesize(problem, timeout=300, check_independence=False)
    assert info.value.reason == "deadline"
    assert info.value.partial is not None
    assert info.value.partial.completed_count == 1


def test_solver_unknown_raise_mode_attaches_partial(problem, check_map):
    victim = _second_instruction(problem)
    injector = FaultInjector().inject_unknown(
        at_check=check_map[victim]["checks"][0]
    )
    with injector.installed():
        with pytest.raises(SolverUnknown) as info:
            synthesize(problem, timeout=300, check_independence=False)
    assert info.value.partial.pending == [victim]


# -- resume round-trip -----------------------------------------------------


def test_resume_completes_equivalently(problem, check_map, full_result):
    victim = _second_instruction(problem)
    injector = FaultInjector().inject_deadline(
        at_check=check_map[victim]["checks"][0]
    )
    partial = _expect_partial(problem, injector)
    assert partial.completed_count == 1

    resumed = synthesize(problem, timeout=300, resume_from=partial)
    assert resumed.stats["resumed_instructions"] == sorted(
        s.instruction_name for s in partial.completed
    )
    # The two completion paths must produce equivalent control logic.
    assert resumed.hole_exprs == full_result.hole_exprs
    assert resumed.control_stmts == full_result.control_stmts
    for instruction in problem.spec.instructions:
        assert (resumed.hole_values_for(instruction.name)
                == full_result.hole_values_for(instruction.name))
    verdict = verify_design(resumed.completed_design, problem.spec,
                            problem.alpha)
    assert verdict.ok, verdict.summary()


def test_resume_round_trips_through_json(problem, check_map, full_result):
    victim = _second_instruction(problem)
    injector = FaultInjector().inject_deadline(
        at_check=check_map[victim]["checks"][0]
    )
    partial = _expect_partial(problem, injector)
    wire = json.dumps(partial.to_dict())
    revived = PartialSynthesisResult.from_dict(json.loads(wire))
    assert revived.pending == partial.pending
    assert revived.reason == partial.reason
    assert [s.to_dict() for s in revived.completed] == [
        s.to_dict() for s in partial.completed
    ]
    resumed = synthesize(problem, timeout=300,
                         resume_from=json.loads(wire))
    assert resumed.hole_exprs == full_result.hole_exprs


def test_resume_rejects_wrong_problem(problem, check_map):
    victim = _second_instruction(problem)
    injector = FaultInjector().inject_deadline(
        at_check=check_map[victim]["checks"][0]
    )
    partial = _expect_partial(problem, injector)
    partial.problem_name = "some_other_design"
    from repro.synthesis import SynthesisError

    with pytest.raises(SynthesisError, match="resume handle"):
        synthesize(problem, resume_from=partial)


def test_partial_summary_is_informative(problem, check_map):
    victim = _second_instruction(problem)
    injector = FaultInjector().inject_deadline(
        at_check=check_map[victim]["checks"][0]
    )
    partial = _expect_partial(problem, injector)
    text = partial.summary()
    assert "partial synthesis" in text
    assert "[pending]" in text and "[done]" in text
    assert "deadline" in text


def test_from_dict_rejects_foreign_payloads():
    with pytest.raises(ValueError, match="not a serialized"):
        PartialSynthesisResult.from_dict({"schema": "something/else"})
