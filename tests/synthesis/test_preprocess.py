"""Tests for destructive equality resolution."""

from repro.smt import terms as T
from repro.synthesis.preprocess import resolve_equalities


def test_var_var_equality_substituted():
    x = T.bv_var("px", 8)
    y = T.bv_var("py", 8)
    antecedent = T.and_(T.bv_eq(x, y), T.bv_ult(x, T.bv_const(5, 8)))
    consequent = T.bv_eq(T.bv_add(x, y), T.bv_add(y, y))
    new_antecedent, new_consequent = resolve_equalities(
        antecedent, consequent
    )
    # x := y makes the consequent fold to TRUE.
    assert new_consequent is T.TRUE
    names = {v.name for v in T.free_variables(new_antecedent)}
    assert len(names & {"px", "py"}) == 1  # one side eliminated


def test_var_expr_definition_substituted():
    x = T.bv_var("dx", 8)
    y = T.bv_var("dy", 8)
    antecedent = T.bv_eq(x, T.bv_add(y, T.bv_const(1, 8)))
    consequent = T.bv_eq(x, T.bv_add(y, T.bv_const(1, 8)))
    _, new_consequent = resolve_equalities(antecedent, consequent)
    assert new_consequent is T.TRUE


def test_bare_boolean_assumption_substituted():
    v = T.bv_var("valid", 1)
    x = T.bv_var("bx", 8)
    antecedent = T.and_(v, T.bv_ult(x, T.bv_const(9, 8)))
    consequent = T.bv_ite(v, T.TRUE, T.FALSE)
    _, new_consequent = resolve_equalities(antecedent, consequent)
    assert new_consequent is T.TRUE


def test_negated_boolean_assumption_substituted():
    flush = T.bv_var("flush", 1)
    antecedent = T.bv_not(flush)
    consequent = T.bv_not(flush)
    _, new_consequent = resolve_equalities(antecedent, consequent)
    assert new_consequent is T.TRUE


def test_protected_variables_survive():
    hole = T.bv_var("hole!h", 8)
    x = T.bv_var("hx", 8)
    antecedent = T.bv_eq(hole, x)
    consequent = T.bv_eq(hole, x)
    new_antecedent, new_consequent = resolve_equalities(
        antecedent, consequent, protected_names={"hole!h"}
    )
    # x may be eliminated in favour of the hole, but never the reverse —
    # and the hole must still be a free variable afterwards.
    names = {v.name for v in T.free_variables(new_antecedent)
             } | {v.name for v in T.free_variables(new_consequent)}
    # Either nothing changed or x was replaced by... x:=hole is blocked by
    # the conservative rule, so both variables survive.
    assert "hole!h" in names or new_consequent is T.TRUE


def test_cyclic_definition_not_substituted():
    x = T.bv_var("cx", 8)
    antecedent = T.bv_eq(x, T.bv_add(x, T.bv_const(1, 8)))
    new_antecedent, _ = resolve_equalities(antecedent, T.TRUE)
    # x == x+1 is unsatisfiable but NOT a definition; it must survive.
    assert {v.name for v in T.free_variables(new_antecedent)} == {"cx"}


def test_chained_equalities_converge():
    a = T.bv_var("ca", 8)
    b = T.bv_var("cb", 8)
    c = T.bv_var("cc", 8)
    antecedent = T.and_(T.bv_eq(a, b), T.bv_eq(b, c))
    consequent = T.bv_eq(a, c)
    _, new_consequent = resolve_equalities(antecedent, consequent)
    assert new_consequent is T.TRUE


def test_semantics_preserved_under_solver():
    """(A → C) before and after resolution must be equivalid."""
    from repro.smt.solver import Solver, UNSAT

    x = T.bv_var("sx", 8)
    y = T.bv_var("sy", 8)
    z = T.bv_var("sz", 8)
    antecedent = T.and_(T.bv_eq(x, y), T.bv_ult(z, T.bv_const(8, 8)))
    consequent = T.bv_ult(T.bv_sub(x, y), T.bv_const(1, 8))  # x-y==0 < 1
    new_antecedent, new_consequent = resolve_equalities(
        antecedent, consequent
    )
    for ante, cons in ((antecedent, consequent),
                       (new_antecedent, new_consequent)):
        solver = Solver()
        solver.add(T.and_(ante, T.bv_not(cons)))
        assert solver.check() is UNSAT
