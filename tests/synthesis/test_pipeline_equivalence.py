"""Differential tests: the incremental pipeline vs the fresh pipeline.

The incremental pipeline (shared datapath trace, assumption-based CEGIS
verify, encode-once solving) must be a pure performance change: on the
same problem it has to synthesize the *same* control logic as the fresh
pipeline, and the merged result must still pass the independent verifier.
Candidate canonicalization (``_zero_polish``) is what makes equality
well-defined — don't-care hole bits land on the same canonical value in
both pipelines instead of whatever each solver search happened to find.

A subset of RV32I single-cycle instructions keeps this inside tier-1
time; the full-ISA comparison lives in the nightly bench lane
(``benchmarks/bench_table1.py``).
"""

import pytest

from repro.designs import riscv
from repro.synthesis import synthesize, verify_design

# R-type, I-type and U-type cover the three hole-constraint shapes
# (forced, immediate-selected, and heavily don't-care).
SUBSET = ["add", "addi", "lui"]


@pytest.fixture(scope="module")
def both_pipelines():
    results = {}
    for pipeline in ("fresh", "incremental"):
        problem = riscv.build_problem(
            "RV32I", "single_cycle", instructions=SUBSET
        )
        results[pipeline] = (
            problem, synthesize(problem, timeout=300, pipeline=pipeline)
        )
    return results


def test_hole_constants_identical(both_pipelines):
    _, fresh = both_pipelines["fresh"]
    _, incremental = both_pipelines["incremental"]
    for name in SUBSET:
        assert fresh.hole_values_for(name) == \
            incremental.hole_values_for(name), name


def test_union_control_logic_identical(both_pipelines):
    _, fresh = both_pipelines["fresh"]
    _, incremental = both_pipelines["incremental"]
    assert fresh.hole_exprs == incremental.hole_exprs
    assert fresh.control_stmts == incremental.control_stmts


def test_incremental_result_verifies(both_pipelines):
    problem, incremental = both_pipelines["incremental"]
    verdict = verify_design(
        incremental.completed_design, problem.spec, problem.alpha,
        instructions=SUBSET,
    )
    assert verdict.ok, verdict.summary()


def test_incremental_reports_cache_and_encode_counters(both_pipelines):
    _, fresh = both_pipelines["fresh"]
    _, incremental = both_pipelines["incremental"]
    assert fresh.stats["pipeline"] == "fresh"
    assert incremental.stats["pipeline"] == "incremental"
    # One trace build, then every later instruction hits the cache.
    assert incremental.stats["counters"]["trace_cache_misses"] == 1
    assert incremental.stats["counters"]["trace_cache_hits"] >= \
        len(SUBSET) - 1
    assert fresh.stats["counters"]["trace_cache_hits"] == 0
