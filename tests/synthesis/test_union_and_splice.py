"""Unit tests for the control union ⊔ (Figure 6) and control splicing."""

import pytest

from repro.designs import alu_machine
from repro.oyster import ast as oy
from repro.oyster import parse_design
from repro.synthesis.engine import splice_control
from repro.synthesis.result import InstructionSolution, SynthesisError
from repro.synthesis.union import control_union, render_precondition


def _solutions(values_by_instr):
    return [
        InstructionSolution(name, values, 1, 0.0)
        for name, values in values_by_instr.items()
    ]


@pytest.fixture()
def alu_problem():
    return alu_machine.build_problem()


def test_shared_value_collapses_to_constant(alu_problem):
    solutions = _solutions({
        "ADD": {"alu_op": 1, "wb_en": 1},
        "SUB": {"alu_op": 2, "wb_en": 1},
        "AND": {"alu_op": 3, "wb_en": 1},
        "XOR": {"alu_op": 0, "wb_en": 1},
    })
    hole_exprs, _ = control_union(alu_problem, solutions)
    assert hole_exprs["wb_en"] == oy.Const(1, 1)


def test_distinct_values_build_ite_over_preconditions(alu_problem):
    solutions = _solutions({
        "ADD": {"alu_op": 1, "wb_en": 1},
        "SUB": {"alu_op": 2, "wb_en": 1},
        "AND": {"alu_op": 3, "wb_en": 1},
        "XOR": {"alu_op": 0, "wb_en": 1},
    })
    hole_exprs, stmts = control_union(alu_problem, solutions)
    expr = hole_exprs["alu_op"]
    # paper Figure 6: if pre_a then v else if pre_b then v' ... else v_last
    assert isinstance(expr, oy.Ite)
    depth = 0
    while isinstance(expr, oy.Ite):
        depth += 1
        expr = expr.els
    assert depth == 3  # 4 distinct values -> 3 conditions + default
    targets = [stmt.target for stmt in stmts]
    # precondition wires come first
    assert targets[0].startswith("pre_")
    assert targets.index("alu_op") > targets.index("pre_ADD")


def test_grouped_instructions_share_disjunction():
    """Figure 6's example: a value shared by several instructions ORs
    their preconditions."""
    problem = alu_machine.build_problem()
    solutions = _solutions({
        "ADD": {"alu_op": 1, "wb_en": 1},
        "SUB": {"alu_op": 1, "wb_en": 1},   # same as ADD
        "AND": {"alu_op": 3, "wb_en": 0},
        "XOR": {"alu_op": 3, "wb_en": 0},
    })
    hole_exprs, _ = control_union(problem, solutions)
    condition = hole_exprs["alu_op"].cond
    assert isinstance(condition, oy.Binop) and condition.op == "|"


def test_render_precondition_over_datapath_names(alu_problem):
    spec = alu_problem.spec
    rendered = render_precondition(
        spec, alu_problem.alpha, spec.instr("ADD").decode
    )
    assert rendered == oy.Binop("==", oy.Var("op"), oy.Const(1, 2))


def test_union_rejects_mismatched_solutions(alu_problem):
    with pytest.raises(SynthesisError):
        control_union(alu_problem, _solutions({
            "GHOST": {"alu_op": 0, "wb_en": 0},
        }))


# ---------------------------------------------------------------------------
# splice_control
# ---------------------------------------------------------------------------

SKETCH = """
design s:
  input a 4
  hole ctl 1 deps(sel)
  register r 4
  sel := a[0:0]
  t := if ctl then a else r
  r := t
"""


def test_splice_inserts_after_dependencies():
    sketch = parse_design(SKETCH)
    stmts = [oy.Assign("ctl", oy.Var("sel"))]
    completed = splice_control(sketch, stmts)
    targets = [s.target for s in completed.stmts
               if isinstance(s, oy.Assign)]
    assert targets.index("ctl") > targets.index("sel")
    assert targets.index("ctl") < targets.index("t")
    assert completed.holes == []


def test_splice_rejects_missing_signal():
    sketch = parse_design(SKETCH)
    stmts = [oy.Assign("ctl", oy.Var("never_defined"))]
    with pytest.raises(SynthesisError, match="never defined"):
        splice_control(sketch, stmts)


def test_splice_rejects_control_after_first_use():
    sketch = parse_design(
        "design s:\n  input a 4\n  hole ctl 1\n"
        "  t := if ctl then a else a\n  late := t[0:0]\n"
    )
    # Control that depends on `late`, which is defined after ctl's use.
    stmts = [oy.Assign("ctl", oy.Var("late"))]
    with pytest.raises(SynthesisError, match="after the first hole use"):
        splice_control(sketch, stmts)


def test_splice_chained_control_statements():
    # Control statements may read each other (precondition wires feeding
    # the hole assignment); inter-control deps must not count as "needed".
    sketch = parse_design(SKETCH)
    stmts = [
        oy.Assign("pre_x", oy.Var("sel")),
        oy.Assign("ctl", oy.Var("pre_x")),
    ]
    completed = splice_control(sketch, stmts)
    targets = [s.target for s in completed.stmts if isinstance(s, oy.Assign)]
    assert targets.index("pre_x") < targets.index("ctl")
    assert targets.index("ctl") < targets.index("t")


def test_splice_register_read_inserts_at_top():
    # A register's current value is readable before any statement runs, so
    # control reading only registers/inputs splices at position 0.
    sketch = parse_design(
        "design s:\n  input a 4\n  hole ctl 1\n  register r 4\n"
        "  t := if ctl then a else r\n  r := t\n"
    )
    stmts = [oy.Assign("ctl", oy.Extract(oy.Var("r"), 0, 0))]
    completed = splice_control(sketch, stmts)
    assigns = [s for s in completed.stmts if isinstance(s, oy.Assign)]
    assert assigns[0].target == "ctl"


def test_splice_validates_result():
    sketch = parse_design(SKETCH)
    stmts = [oy.Assign("ctl", oy.Binop("==", oy.Var("sel"), oy.Const(1, 1)))]
    completed = splice_control(sketch, stmts)
    from repro.oyster import check_design

    check_design(completed)
