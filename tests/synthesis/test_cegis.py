"""Unit tests for the CEGIS loop on hand-built ∃∀ formulas."""

import pytest

from repro.smt import terms as T
from repro.synthesis.cegis import CegisStats, cegis_solve
from repro.synthesis.result import SynthesisFailure, SynthesisTimeout


def test_trivial_constant():
    # ∃h ∀x: (x & 0) == h   ->   h = 0
    h = T.bv_var("h", 8)
    x = T.bv_var("x", 8)
    formula = T.bv_eq(T.bv_and(x, T.bv_const(0, 8)), h)
    assert cegis_solve(formula, [h]) == {"h": 0}


def test_unique_solution_found():
    # ∃h ∀x: x + h == x + 5
    h = T.bv_var("h2", 8)
    x = T.bv_var("x2", 8)
    formula = T.bv_eq(T.bv_add(x, h), T.bv_add(x, T.bv_const(5, 8)))
    assert cegis_solve(formula, [h]) == {"h2": 5}


def test_mux_select_synthesis():
    # ∃s ∀a,b: ite(s, a, b) == a  ->  s = 1
    s = T.bv_var("s", 1)
    a = T.bv_var("a3", 8)
    b = T.bv_var("b3", 8)
    formula = T.bv_eq(T.bv_ite(s, a, b), a)
    assert cegis_solve(formula, [s]) == {"s": 1}


def test_multiple_holes():
    # ∃h1,h2 ∀x: (x ^ h1) + h2 == x + 12.  Two solutions exist (h1=0,h2=12
    # and h1=0x80,h2=0x8c, since x^0x80 == x+0x80 mod 256); accept either by
    # checking validity over sampled x.
    h1 = T.bv_var("m1", 8)
    h2 = T.bv_var("m2", 8)
    x = T.bv_var("x4", 8)
    formula = T.bv_eq(
        T.bv_add(T.bv_xor(x, h1), h2), T.bv_add(x, T.bv_const(12, 8))
    )
    solution = cegis_solve(formula, [h1, h2])
    for sample in range(256):
        env = {"x4": sample, **solution}
        assert T.evaluate(formula, env) == 1, (solution, sample)


def test_unsatisfiable_raises_failure():
    # ∃h ∀x: x + h == x * x has no constant solution.
    h = T.bv_var("h5", 4)
    x = T.bv_var("x5", 4)
    formula = T.bv_eq(T.bv_add(x, h), T.bv_mul(x, x))
    with pytest.raises(SynthesisFailure):
        cegis_solve(formula, [h])


def test_timeout_raises():
    h = T.bv_var("h6", 16)
    x = T.bv_var("x6", 16)
    formula = T.bv_eq(T.bv_mul(x, h), T.bv_mul(x, T.bv_const(777, 16)))
    with pytest.raises(SynthesisTimeout):
        cegis_solve(formula, [h], timeout=1e-9)


def test_iteration_budget_raises():
    h = T.bv_var("h7", 8)
    x = T.bv_var("x7", 8)
    formula = T.bv_eq(T.bv_add(x, h), T.bv_add(x, T.bv_const(200, 8)))
    with pytest.raises(SynthesisTimeout, match="iterations"):
        cegis_solve(formula, [h], max_iterations=1)


def test_stats_recorded():
    h = T.bv_var("h8", 8)
    x = T.bv_var("x8", 8)
    formula = T.bv_eq(T.bv_add(x, h), T.bv_add(x, T.bv_const(9, 8)))
    stats = CegisStats()
    cegis_solve(formula, [h], stats=stats)
    assert stats.iterations >= 1
    assert stats.verify_time >= 0
    assert "iterations" in stats.as_dict()


def test_initial_candidate_respected():
    h = T.bv_var("h9", 8)
    x = T.bv_var("x9", 8)
    formula = T.bv_eq(T.bv_add(x, h), T.bv_add(x, T.bv_const(3, 8)))
    stats = CegisStats()
    result = cegis_solve(formula, [h], initial_candidate={"h9": 3},
                         stats=stats)
    assert result == {"h9": 3}
    assert stats.iterations == 1  # first verify already succeeds


def test_partial_eval_off_agrees():
    h = T.bv_var("h10", 4)
    x = T.bv_var("x10", 4)
    formula = T.bv_eq(T.bv_or(x, h), T.bv_or(x, T.bv_const(6, 4)))
    with_fold = cegis_solve(formula, [h], partial_eval=True)
    without_fold = cegis_solve(formula, [h], partial_eval=False)
    # Both must produce *valid* solutions (6 or supersets indistinguishable
    # under or with x — here only 6 works since x ranges over everything).
    assert with_fold == without_fold == {"h10": 6}


def test_formula_with_no_forall_vars():
    h = T.bv_var("h11", 4)
    formula = T.bv_eq(h, T.bv_const(11, 4))
    assert cegis_solve(formula, [h]) == {"h11": 11}
