"""Crash-atomic resume-handle persistence and typed malformed-handle errors."""

import json
import os

import pytest

from repro.synthesis import (
    MalformedResumeHandle,
    PartialSynthesisResult,
    load_resume_handle,
    save_resume_handle,
)
from repro.synthesis.result import (
    RESUME_HANDLE_SCHEMA,
    RESUME_HANDLE_VERSION,
)


def _partial():
    return PartialSynthesisResult(
        problem_name="acc", mode="per_instruction", completed=[],
        pending=["LOAD"], reason="deadline", elapsed=1.5,
    )


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "handle.json"
    save_resume_handle(_partial(), path, fsync=False)
    loaded = load_resume_handle(path)
    assert loaded.problem_name == "acc"
    assert loaded.pending == ["LOAD"]
    assert loaded.reason == "deadline"


def test_handle_carries_schema_and_version(tmp_path):
    path = tmp_path / "handle.json"
    save_resume_handle(_partial(), path, fsync=False)
    with open(path) as handle:
        data = json.load(handle)
    assert data["schema"] == RESUME_HANDLE_SCHEMA
    assert data["version"] == RESUME_HANDLE_VERSION


def test_save_replaces_atomically_leaving_no_temp_files(tmp_path):
    path = tmp_path / "handle.json"
    save_resume_handle(_partial(), path, fsync=False)
    save_resume_handle(_partial(), path, fsync=False)
    assert os.listdir(tmp_path) == ["handle.json"]


def test_torn_write_is_a_typed_error(tmp_path):
    path = tmp_path / "handle.json"
    save_resume_handle(_partial(), path, fsync=False)
    raw = path.read_text()
    path.write_text(raw[: len(raw) // 2])  # a crash mid-write
    with pytest.raises(MalformedResumeHandle) as excinfo:
        load_resume_handle(path)
    assert excinfo.value.reason == "torn-or-corrupt"
    assert excinfo.value.path == os.fspath(path)


def test_unknown_version_is_rejected(tmp_path):
    path = tmp_path / "handle.json"
    save_resume_handle(_partial(), path, fsync=False)
    data = json.loads(path.read_text())
    data["version"] = RESUME_HANDLE_VERSION + 1
    path.write_text(json.dumps(data))
    with pytest.raises(MalformedResumeHandle) as excinfo:
        load_resume_handle(path)
    assert excinfo.value.reason == "unknown-version"


def test_foreign_schema_is_rejected(tmp_path):
    path = tmp_path / "handle.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(MalformedResumeHandle) as excinfo:
        load_resume_handle(path)
    assert excinfo.value.reason == "foreign-schema"
    # Still a ValueError for pre-existing callers.
    assert isinstance(excinfo.value, ValueError)


def test_missing_field_is_rejected(tmp_path):
    path = tmp_path / "handle.json"
    save_resume_handle(_partial(), path, fsync=False)
    data = json.loads(path.read_text())
    del data["pending"]
    path.write_text(json.dumps(data))
    with pytest.raises(MalformedResumeHandle) as excinfo:
        load_resume_handle(path)
    assert excinfo.value.reason == "missing-field"


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_resume_handle(tmp_path / "absent.json")
