"""End-to-end synthesis tests on the Section 2 case studies."""

import pytest

from repro.designs import accumulator, alu_machine
from repro.oyster import Simulator
from repro.oyster import ast as oy
from repro.synthesis import (
    SynthesisFailure,
    SynthesisProblem,
    SynthesisTimeout,
    synthesize,
    verify_design,
)


@pytest.fixture(scope="module")
def alu_result():
    problem = alu_machine.build_problem()
    return problem, synthesize(problem, timeout=300)


@pytest.fixture(scope="module")
def acc_result():
    problem = accumulator.build_problem()
    return problem, synthesize(problem, timeout=300)


def test_alu_solutions_match_reference(alu_result):
    _, result = alu_result
    for name, expected in alu_machine.REFERENCE_HOLE_VALUES.items():
        assert result.hole_values_for(name) == expected


def test_alu_completed_design_verifies(alu_result):
    problem, result = alu_result
    verdict = verify_design(
        result.completed_design, problem.spec, problem.alpha
    )
    assert verdict.ok, verdict.summary()


def test_alu_completed_design_simulates(alu_result):
    _, result = alu_result
    design = result.completed_design
    ops = alu_machine.OPCODES
    cases = [
        (ops["ADD"], lambda a, b: (a + b) & 0xFF),
        (ops["SUB"], lambda a, b: (a - b) & 0xFF),
        (ops["AND"], lambda a, b: a & b),
        (ops["XOR"], lambda a, b: a ^ b),
    ]
    for opcode, model in cases:
        sim = Simulator(design, memory_init={"regfile": {1: 0x5A, 2: 0x33}})
        for _ in range(3):
            sim.step({"op": opcode, "dest": 3, "src1": 1, "src2": 2})
        assert sim.peek_memory("regfile", 3) == model(0x5A, 0x33)


def test_alu_wb_enable_collapses_to_constant(alu_result):
    _, result = alu_result
    assert result.hole_exprs["wb_en"] == oy.Const(1, 1)


def test_alu_union_emits_precondition_wires(alu_result):
    _, result = alu_result
    targets = [stmt.target for stmt in result.control_stmts]
    assert "alu_op" in targets
    assert any(target.startswith("pre_") for target in targets)


def test_acc_verifies_and_simulates(acc_result):
    problem, result = acc_result
    verdict = verify_design(
        result.completed_design, problem.spec, problem.alpha
    )
    assert verdict.ok, verdict.summary()
    sim = Simulator(result.completed_design,
                    register_init={"state": accumulator.STATES["STOP"],
                                   "acc": 77})
    sim.step({"reset": 1, "go": 0, "stop": 0, "val": 0})
    assert sim.peek("acc") == 0
    assert sim.peek("state") == accumulator.STATES["RESET"]
    sim.step({"reset": 0, "go": 1, "stop": 0, "val": 2})
    sim.step({"reset": 0, "go": 0, "stop": 0, "val": 1})
    assert sim.peek("acc") == 3
    assert sim.peek("state") == accumulator.STATES["GO"]
    sim.step({"reset": 0, "go": 0, "stop": 1, "val": 1})
    assert sim.peek("acc") == 3
    assert sim.peek("state") == accumulator.STATES["STOP"]


def test_acc_transition_hole_dispatches_on_preconditions(acc_result):
    _, result = acc_result
    state_next = result.hole_exprs["state_next"]
    assert isinstance(state_next, oy.Ite)


def test_monolithic_mode_agrees_with_per_instruction(alu_result):
    problem, per_instr = alu_result
    mono = synthesize(problem, mode="monolithic", timeout=300)
    verdict = verify_design(
        mono.completed_design, problem.spec, problem.alpha
    )
    assert verdict.ok, verdict.summary()
    for name in alu_machine.OPCODES:
        assert (mono.hole_values_for(name)
                == per_instr.hole_values_for(name))


def test_unsynthesizable_sketch_raises_failure():
    """A datapath with no subtract unit cannot implement SUB."""
    from repro import hdl

    with hdl.Module("no_sub") as module:
        op = hdl.Input(2, "op")
        dest = hdl.Input(2, "dest")
        src1 = hdl.Input(2, "src1")
        src2 = hdl.Input(2, "src2")
        regfile = hdl.MemBlock(2, 8, "regfile")
        alu_op = hdl.Hole(1, "alu_op", deps=[op])
        wb_en = hdl.Hole(1, "wb_en", deps=[op])
        rs1 = regfile.read(src1)
        rs2 = regfile.read(src2)
        p1 = hdl.Register(8, "p1")
        p2 = hdl.Register(8, "p2")
        pd = hdl.Register(2, "pd")
        pa = hdl.Register(1, "pa")
        pw = hdl.Register(1, "pw", init=0)
        p1.next <<= rs1
        p2.next <<= rs2
        pd.next <<= dest
        pw.next <<= wb_en
        pa.next <<= alu_op
        out = hdl.mux(pa, p1 + p2, p1 & p2)
        pr = hdl.Register(8, "pr")
        pd2 = hdl.Register(2, "pd2")
        pw2 = hdl.Register(1, "pw2", init=0)
        pr.next <<= out
        pd2.next <<= pd
        pw2.next <<= pw
        regfile.write(pd2, pr, enable=pw2)
    problem = SynthesisProblem(
        sketch=module.to_oyster(),
        spec=alu_machine.build_spec(),
        alpha=alu_machine.build_alpha(),
        name="no_sub",
    )
    with pytest.raises(SynthesisFailure):
        synthesize(problem, timeout=120)


def test_timeout_raises():
    problem = alu_machine.build_problem()
    with pytest.raises(SynthesisTimeout):
        synthesize(problem, timeout=1e-9)


def test_result_summary_mentions_instructions(alu_result):
    _, result = alu_result
    text = result.summary()
    assert "ADD" in text and "per_instruction" in text


def test_completed_design_has_no_holes(alu_result):
    _, result = alu_result
    assert result.completed_design.holes == []
