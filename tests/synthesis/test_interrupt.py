"""Graceful SIGINT: KeyboardInterrupt follows the degradation contract.

An interrupt mid-synthesis must behave exactly like budget exhaustion:
the engine hands back (or attaches) a ``PartialSynthesisResult`` with
reason ``"interrupted"`` carrying every completed instruction, the handle
resumes, and any live solver workers are terminated rather than orphaned.
"""

import pytest

from repro.designs import alu_machine
from repro.runtime import SolverWorkerPool
from repro.synthesis import (
    PartialSynthesisResult,
    synthesize,
    verify_design,
)


@pytest.fixture
def alu_problem():
    return alu_machine.build_problem()


class _InterruptAfter:
    """A progress callback that raises KeyboardInterrupt mid-run."""

    def __init__(self, count=1):
        self.remaining = count
        self.seen = []

    def __call__(self, name, solution):
        self.seen.append(name)
        self.remaining -= 1
        if self.remaining == 0:
            raise KeyboardInterrupt


def test_interrupt_returns_partial_like_budget_exhaustion(alu_problem):
    interrupter = _InterruptAfter(1)
    partial = synthesize(alu_problem, timeout=300, progress=interrupter,
                         on_timeout="partial")
    assert isinstance(partial, PartialSynthesisResult)
    assert partial.reason == "interrupted"
    assert partial.completed_count == 1
    assert partial.pending  # work genuinely remained

    # The handle resumes exactly like a budget-exhaustion handle.
    resumed = synthesize(alu_problem, timeout=300,
                         resume_from=partial.to_dict())
    assert sorted(resumed.stats["resumed_instructions"]) \
        == sorted(interrupter.seen)
    for name, expected in alu_machine.REFERENCE_HOLE_VALUES.items():
        assert resumed.hole_values_for(name) == expected
    verdict = verify_design(resumed.completed_design, alu_problem.spec,
                            alu_problem.alpha)
    assert verdict.ok, verdict.summary()


def test_interrupt_reraises_with_partial_attached(alu_problem):
    with pytest.raises(KeyboardInterrupt) as excinfo:
        synthesize(alu_problem, timeout=300, progress=_InterruptAfter(1))
    partial = excinfo.value.partial
    assert isinstance(partial, PartialSynthesisResult)
    assert partial.reason == "interrupted"
    assert partial.completed_count == 1


def test_interrupt_during_isolated_run_terminates_workers(alu_problem):
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1)
    try:
        partial = synthesize(alu_problem, execution="isolated",
                             worker_pool=pool, timeout=300,
                             progress=_InterruptAfter(1),
                             on_timeout="partial")
        assert isinstance(partial, PartialSynthesisResult)
        assert partial.reason == "interrupted"
        assert partial.completed_count >= 1
        # Resume on the same (still healthy) pool completes the design.
        resumed = synthesize(alu_problem, execution="isolated",
                             worker_pool=pool, timeout=300,
                             resume_from=partial.to_dict())
        for name, expected in alu_machine.REFERENCE_HOLE_VALUES.items():
            assert resumed.hole_values_for(name) == expected
    finally:
        accounting = pool.shutdown()
    assert accounting["orphans"] == 0
    assert not pool.live_pids()


def test_interrupt_in_monolithic_mode(alu_problem):
    # Monolithic has no per-instruction progress, so interrupt the run
    # via the fault-injection hook on the solver facade instead.
    from repro.runtime import FaultInjector

    class _Raiser(FaultInjector):
        def on_check(self):
            if self.check_count >= 1:
                raise KeyboardInterrupt
            return super().on_check()

    with _Raiser().installed():
        partial = synthesize(alu_problem, mode="monolithic", timeout=300,
                             on_timeout="partial")
    assert isinstance(partial, PartialSynthesisResult)
    assert partial.reason == "interrupted"
    assert partial.completed == []


def test_sigterm_degrades_exactly_like_sigint(alu_problem):
    # SIGTERM mid-run must follow the same degradation contract as
    # Ctrl-C: partial with reason "interrupted", resumable handle, and
    # the previous handler restored afterwards.
    import os
    import signal

    sentinel = object()
    previous = signal.signal(signal.SIGTERM, lambda s, f: sentinel)

    class _TermAfter:
        def __init__(self):
            self.seen = []

        def __call__(self, name, solution):
            self.seen.append(name)
            if len(self.seen) == 1:
                os.kill(os.getpid(), signal.SIGTERM)

    try:
        terminator = _TermAfter()
        partial = synthesize(alu_problem, timeout=300,
                             progress=terminator, on_timeout="partial")
        assert isinstance(partial, PartialSynthesisResult)
        assert partial.reason == "interrupted"
        assert partial.completed_count == 1
        assert partial.pending
        # The engine restored the handler it displaced.
        assert signal.getsignal(signal.SIGTERM)(None, None) is sentinel

        resumed = synthesize(alu_problem, timeout=300,
                             resume_from=partial.to_dict())
        assert sorted(resumed.stats["resumed_instructions"]) \
            == sorted(terminator.seen)
    finally:
        signal.signal(signal.SIGTERM, previous)


def test_sigterm_handler_scope_is_run_local(alu_problem):
    # Outside synthesize() the process default is untouched.
    import signal

    before = signal.getsignal(signal.SIGTERM)
    synthesize(alu_problem, timeout=300)
    assert signal.getsignal(signal.SIGTERM) is before
