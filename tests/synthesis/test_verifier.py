"""Tests for the independent verifier, including counterexample content."""

import pytest

from repro.abstraction import parse_abstraction
from repro.ila import Ila
from repro.oyster import parse_design
from repro.runtime import Budget, FaultInjector
from repro.runtime.reasons import is_canonical
from repro.synthesis import verify_design


def _setup(datapath_text):
    ila = Ila("v")
    inc = ila.new_bv_input("inc", 8)
    acc = ila.new_bv_state("acc", 8)
    instr = ila.new_instr("STEP")
    instr.set_decode(inc != 0)
    instr.set_update(acc, acc + inc)
    alpha = parse_abstraction(
        "inc: {name: 'inc', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    return parse_design(datapath_text), ila.validate(), alpha


def test_correct_design_proved():
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n  acc := acc + inc\n"
    )
    result = verify_design(design, spec, alpha)
    assert result.ok
    assert result.verdicts[0].status == "proved"
    assert "proved" in result.summary()


def test_violation_carries_counterexample():
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n"
        "  acc := acc | inc\n"  # wrong: or instead of add
    )
    result = verify_design(design, spec, alpha)
    assert not result.ok
    verdict = result.violations[0]
    assert verdict.instruction_name == "STEP"
    # The model must actually falsify acc + inc == acc | inc.
    model = verdict.counterexample
    acc0 = model.get("v0!acc@0", 0)
    inc0 = model.get("v0!inc@1", 0)
    assert (acc0 + inc0) & 0xFF != (acc0 | inc0)


def test_sketch_verification_with_bound_holes():
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n  hole en 1\n"
        "  acc := if en then (acc + inc) else (acc)\n"
    )
    good = verify_design(design, spec, alpha, hole_values={"en": 1})
    assert good.ok
    bad = verify_design(design, spec, alpha, hole_values={"en": 0})
    assert not bad.ok


def test_unknown_hole_name_raises():
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n  acc := acc + inc\n"
    )
    with pytest.raises(KeyError):
        verify_design(design, spec, alpha, hole_values={"ghost": 1})


def test_instruction_subset_filter():
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n  acc := acc + inc\n"
    )
    result = verify_design(design, spec, alpha, instructions=[])
    assert result.verdicts == []


def test_solver_unknown_yields_unknown_verdict_with_reason():
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n  acc := acc + inc\n"
    )
    injector = FaultInjector().inject_unknown(at_check=1)
    with injector.installed():
        result = verify_design(design, spec, alpha)
    assert not result.ok  # an unproved instruction is never "ok"
    verdict = result.verdicts[0]
    assert verdict.status == "unknown"
    assert verdict.reason == "injected"
    assert is_canonical(verdict.reason)
    assert "[injected]" in result.summary()


def test_injected_deadline_reason_surfaces():
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n  acc := acc + inc\n"
    )
    injector = FaultInjector().inject_deadline(at_check=1)
    with injector.installed():
        result = verify_design(design, spec, alpha)
    assert result.verdicts[0].status == "unknown"
    assert result.verdicts[0].reason == "deadline"


@pytest.mark.parametrize("budget,expected_reason", [
    (lambda: Budget(timeout=0.0), "deadline"),
    (lambda: Budget(max_conflicts=0), "conflicts"),
])
def test_exhausted_budget_is_unknown_never_proved(budget, expected_reason):
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n  acc := acc + inc\n"
    )
    result = verify_design(design, spec, alpha, budget=budget())
    assert not result.ok
    for verdict in result.verdicts:
        # Sound under exhaustion: no "proved" the solver never earned.
        assert verdict.status == "unknown"
        assert verdict.reason == expected_reason
        assert is_canonical(verdict.reason)


def test_budget_with_headroom_still_proves():
    design, spec, alpha = _setup(
        "design d:\n  input inc 8\n  register acc 8\n  acc := acc + inc\n"
    )
    result = verify_design(design, spec, alpha, budget=Budget(timeout=300))
    assert result.ok
    assert result.verdicts[0].reason == ""
