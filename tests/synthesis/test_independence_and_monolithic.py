"""Tests for the instruction-independence checks and monolithic internals."""

import pytest

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.designs import alu_machine
from repro.ila import BvConst, Ila
from repro.synthesis import SynthesisProblem, synthesize
from repro.synthesis.independence import (
    IndependenceViolation,
    check_instruction_independence,
)
from repro.synthesis.monolithic import synthesize_monolithic_solutions
from repro.synthesis.result import SynthesisError


def test_alu_machine_passes_independence():
    problem = alu_machine.build_problem()
    notes = check_instruction_independence(problem)
    assert notes == []


def _overlapping_spec():
    """Two instructions whose decodes overlap (op == 1 vs op != 0)."""
    ila = Ila("overlap")
    op = ila.new_bv_input("op", 2)
    acc = ila.new_bv_state("acc", 8)
    first = ila.new_instr("FIRST")
    first.set_decode(op == BvConst(1, 2))
    first.set_update(acc, acc + 1)
    second = ila.new_instr("SECOND")
    second.set_decode(op != BvConst(0, 2))
    second.set_update(acc, acc - 1)
    return ila.validate()


def _tiny_sketch():
    with hdl.Module("tiny") as module:
        op = hdl.Input(2, "op")
        acc = hdl.Register(8, "acc")
        direction = hdl.Hole(1, "direction", deps=[op])
        acc.next <<= hdl.select(direction, acc + 1, acc - 1)
    return module.to_oyster()


_TINY_ALPHA = parse_abstraction(
    "op: {name: 'op', type: input, [read: 1]}\n"
    "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
    "with cycles: 1\n"
)


def test_overlapping_decodes_detected():
    problem = SynthesisProblem(
        sketch=_tiny_sketch(), spec=_overlapping_spec(), alpha=_TINY_ALPHA
    )
    with pytest.raises(IndependenceViolation, match="simultaneously"):
        check_instruction_independence(problem)


def test_feedback_into_control_detected():
    """A decode-field binding computed from a hole violates no-feedback."""
    with hdl.Module("fb") as module:
        op_in = hdl.Input(2, "op_raw")
        acc = hdl.Register(8, "acc")
        scramble = hdl.Hole(2, "scramble")
        op = (op_in ^ scramble).label("op")  # control observes hole output
        direction = hdl.Hole(1, "direction", deps=[op])
        acc.next <<= hdl.select(direction, acc + 1, acc - 1)
    ila = Ila("fbspec")
    op_var = ila.new_bv_input("op", 2)
    acc_var = ila.new_bv_state("acc", 8)
    up = ila.new_instr("UP")
    up.set_decode(op_var == BvConst(1, 2))
    up.set_update(acc_var, acc_var + 1)
    alpha = parse_abstraction(
        "op: {name: 'op', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    problem = SynthesisProblem(sketch=module.to_oyster(), spec=ila.validate(),
                               alpha=alpha)
    with pytest.raises(IndependenceViolation, match="depend on holes"):
        check_instruction_independence(problem)


def test_pairwise_budget_note():
    problem = alu_machine.build_problem()
    notes = check_instruction_independence(problem, max_pairwise=1)
    assert notes and "skipped" in notes[0]


# ---------------------------------------------------------------------------
# Monolithic internals
# ---------------------------------------------------------------------------


def test_monolithic_produces_per_instruction_solutions():
    problem = alu_machine.build_problem()
    solutions, stats = synthesize_monolithic_solutions(problem, timeout=600)
    assert {s.instruction_name for s in solutions} == set(
        alu_machine.OPCODES
    )
    for solution in solutions:
        expected = alu_machine.REFERENCE_HOLE_VALUES[
            solution.instruction_name
        ]
        assert solution.hole_values == expected
    assert stats.iterations >= 1


def test_monolithic_rejects_hole_dependent_decode():
    """Decodes must not observe holes (Equation (1) precondition)."""
    with hdl.Module("hd") as module:
        op = hdl.Input(2, "op")
        acc = hdl.Register(8, "acc")
        tweak = hdl.Hole(2, "tweak")
        mixed = (op ^ tweak).label("mixed")
        acc.next <<= acc + mixed.zext(8)
    ila = Ila("hdspec")
    op_var = ila.new_bv_input("op", 2)
    acc_var = ila.new_bv_state("acc", 8)
    instr = ila.new_instr("I")
    instr.set_decode(op_var == BvConst(1, 2))
    instr.set_update(acc_var, acc_var + 1)
    alpha = parse_abstraction(
        "op: {name: 'mixed', type: output, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    problem = SynthesisProblem(sketch=module.to_oyster(), spec=ila.validate(),
                               alpha=alpha)
    with pytest.raises(SynthesisError, match="depends on holes"):
        synthesize_monolithic_solutions(problem, timeout=60)


def test_unknown_mode_rejected():
    problem = alu_machine.build_problem()
    with pytest.raises(ValueError, match="unknown synthesis mode"):
        synthesize(problem, mode="psychic")
