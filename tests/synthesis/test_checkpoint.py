"""The engine's periodic checkpoint hook: snapshots, draining, resume.

The synthesis service depends on three properties tested here: the hook
fires after every solved instruction with a live resume handle (reason
``"checkpoint"``); returning ``False`` stops the run at a clean boundary
(reason ``"drained"``); and a snapshot taken mid-run resumes exactly
like a budget-exhaustion handle.
"""

import pytest

from repro.designs import alu_machine
from repro.synthesis import (
    PartialSynthesisResult,
    SynthesisTimeout,
    synthesize,
    verify_design,
)


@pytest.fixture
def alu_problem():
    return alu_machine.build_problem()


class _Recorder:
    """Record every checkpoint snapshot; optionally drain after N."""

    def __init__(self, drain_after=None):
        self.snapshots = []
        self.drain_after = drain_after

    def __call__(self, partial):
        self.snapshots.append(partial)
        if self.drain_after is not None \
                and len(self.snapshots) >= self.drain_after:
            return False
        return True


def test_checkpoint_fires_after_every_instruction(alu_problem):
    recorder = _Recorder()
    result = synthesize(alu_problem, timeout=300, checkpoint=recorder)
    assert not result.is_partial
    count = len(alu_problem.spec.instructions)
    assert len(recorder.snapshots) == count
    for index, snap in enumerate(recorder.snapshots):
        assert isinstance(snap, PartialSynthesisResult)
        assert snap.reason == "checkpoint"
        assert snap.completed_count == index + 1
    assert recorder.snapshots[-1].pending == []


def test_checkpoint_false_drains_at_a_clean_boundary(alu_problem):
    recorder = _Recorder(drain_after=2)
    partial = synthesize(alu_problem, timeout=300, checkpoint=recorder,
                         on_timeout="partial")
    assert isinstance(partial, PartialSynthesisResult)
    assert partial.reason == "drained"
    assert partial.completed_count == 2
    assert len(partial.pending) == 2


def test_drain_raises_synthesis_timeout_with_partial(alu_problem):
    recorder = _Recorder(drain_after=1)
    with pytest.raises(SynthesisTimeout) as excinfo:
        synthesize(alu_problem, timeout=300, checkpoint=recorder)
    assert excinfo.value.reason == "drained"
    assert excinfo.value.partial.completed_count == 1


def test_midrun_checkpoint_snapshot_resumes(alu_problem):
    recorder = _Recorder(drain_after=2)
    synthesize(alu_problem, timeout=300, checkpoint=recorder,
               on_timeout="partial")
    snapshot = recorder.snapshots[1]
    resumed = synthesize(alu_problem, timeout=300,
                         resume_from=snapshot.to_dict())
    assert sorted(resumed.stats["resumed_instructions"]) \
        == sorted(s.instruction_name for s in snapshot.completed)
    for name, expected in alu_machine.REFERENCE_HOLE_VALUES.items():
        assert resumed.hole_values_for(name) == expected
    verdict = verify_design(resumed.completed_design, alu_problem.spec,
                            alu_problem.alpha)
    assert verdict.ok, verdict.summary()


def test_checkpoints_fire_under_resume_too(alu_problem):
    first = _Recorder(drain_after=1)
    partial = synthesize(alu_problem, timeout=300, checkpoint=first,
                         on_timeout="partial")
    second = _Recorder()
    resumed = synthesize(alu_problem, timeout=300,
                         resume_from=partial.to_dict(), checkpoint=second)
    assert not resumed.is_partial
    # Checkpoints cover the remaining instructions, and each snapshot
    # carries the resumed solutions too.
    assert len(second.snapshots) == len(partial.pending)
    assert second.snapshots[0].completed_count \
        == partial.completed_count + 1
