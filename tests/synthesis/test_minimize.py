"""Tests for the control-minimization post-pass."""

import pytest

from repro.designs import alu_machine
from repro.oyster import ast as oy
from repro.synthesis import synthesize, verify_design
from repro.synthesis.engine import splice_control
from repro.synthesis.minimize import minimize_solutions
from repro.synthesis.result import InstructionSolution
from repro.synthesis.union import control_union


@pytest.fixture(scope="module")
def problem():
    return alu_machine.build_problem()


def test_minimize_preserves_correctness(problem):
    result = synthesize(problem, timeout=300)
    minimized, report = minimize_solutions(problem, result.per_instruction)
    hole_exprs, stmts = control_union(problem, minimized)
    completed = splice_control(problem.sketch, stmts)
    verdict = verify_design(completed, problem.spec, problem.alpha)
    assert verdict.ok, verdict.summary()
    assert report.checks >= 0
    assert "control minimization" in report.summary()


def test_minimize_merges_dont_cares():
    """A sketch with a genuinely unused hole must collapse to one group."""
    from repro import hdl
    from repro.abstraction import parse_abstraction
    from repro.ila import BvConst, Ila
    from repro.synthesis import SynthesisProblem

    ila = Ila("dc")
    op = ila.new_bv_input("op", 2)
    acc = ila.new_bv_state("acc", 8)
    for code, delta in ((0, 1), (1, 2), (2, 3)):
        instr = ila.new_instr(f"ADD{delta}")
        instr.set_decode(op == BvConst(code, 2))
        instr.set_update(acc, acc + delta)
    with hdl.Module("dc_dp") as module:
        op_w = hdl.Input(2, "op")
        acc_r = hdl.Register(8, "acc")
        amount = hdl.Hole(2, "amount", deps=[op_w])
        unused = hdl.Hole(2, "unused", deps=[op_w])
        delta = hdl.mux(amount, hdl.Const(0, 8), hdl.Const(1, 8),
                        hdl.Const(2, 8), hdl.Const(3, 8))
        sink = (unused ^ unused).label("sink")  # hole wired to nothing real
        acc_r.next <<= acc_r + delta
    problem = SynthesisProblem(
        module.to_oyster(), ila.validate(),
        parse_abstraction(
            "op: {name: 'op', type: input, [read: 1]}\n"
            "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
            "with cycles: 1\n"
        ),
    )
    # Hand the minimizer artificially fragmented (but correct) solutions.
    solutions = [
        InstructionSolution("ADD1", {"amount": 1, "unused": 0}, 1, 0.0),
        InstructionSolution("ADD2", {"amount": 2, "unused": 1}, 1, 0.0),
        InstructionSolution("ADD3", {"amount": 3, "unused": 2}, 1, 0.0),
    ]
    minimized, report = minimize_solutions(problem, solutions)
    values = {s.hole_values["unused"] for s in minimized}
    assert len(values) == 1  # don't-care fully merged
    assert {s.hole_values["amount"] for s in minimized} == {1, 2, 3}
    assert report.distinct_after["unused"] == 1
    assert report.merged >= 2
    # And the resulting union emits a bare constant for the unused hole.
    hole_exprs, _ = control_union(problem, minimized)
    assert isinstance(hole_exprs["unused"], oy.Const)
