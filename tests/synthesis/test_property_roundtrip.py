"""Property test: synthesis round-trips on randomly generated problems.

We generate small random "micro-ISAs": each instruction applies one of a
fixed set of register updates, selected by a random (distinct) opcode.  The
datapath provides all the functional units behind control holes.  The
property: synthesis succeeds, the independent verifier proves the completed
design, and simulation matches a direct Python model of the spec.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.ila import BvConst, Ila
from repro.oyster import Simulator
from repro.synthesis import SynthesisProblem, synthesize, verify_design

_OPERATIONS = {
    "inc": (lambda acc, val: (acc + 1) & 0xF, lambda a, v: a + 1),
    "dec": (lambda acc, val: (acc - 1) & 0xF, lambda a, v: a - 1),
    "load": (lambda acc, val: val, lambda a, v: v),
    "xor": (lambda acc, val: acc ^ val, lambda a, v: a ^ v),
    "clear": (lambda acc, val: 0, lambda a, v: BvConst(0, 4)),
    "hold": (lambda acc, val: acc, lambda a, v: a),
}

_UNIT_ORDER = list(_OPERATIONS)


def _build_problem(chosen):
    """chosen: list of (opcode, operation-name) pairs."""
    ila = Ila("micro")
    op = ila.new_bv_input("op", 3)
    val = ila.new_bv_input("val", 4)
    acc = ila.new_bv_state("acc", 4)
    for opcode, name in chosen:
        instr = ila.new_instr(f"{name.upper()}_{opcode}")
        _, spec_fn = _OPERATIONS[name]
        result = spec_fn(acc, val)
        if isinstance(result, BvConst) or result is acc:
            update = result
        else:
            update = result
        instr.set_decode(op == BvConst(opcode, 3))
        instr.set_update(acc, update)
    ila.validate()

    with hdl.Module("micro_dp") as module:
        op_w = hdl.Input(3, "op")
        val_w = hdl.Input(4, "val")
        acc_r = hdl.Register(4, "acc")
        select = hdl.Hole(3, "select", deps=[op_w])
        units = [
            acc_r + 1,          # inc
            acc_r - 1,          # dec
            val_w,              # load
            acc_r ^ val_w,      # xor
            hdl.Const(0, 4),    # clear
            acc_r,              # hold
            acc_r,              # padding
            acc_r,              # padding
        ]
        acc_r.next <<= hdl.mux(select, *units)
    alpha = parse_abstraction(
        "op:  {name: 'op', type: input, [read: 1]}\n"
        "val: {name: 'val', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    return SynthesisProblem(module.to_oyster(), ila, alpha)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_random_micro_isa_roundtrip(data):
    count = data.draw(st.integers(min_value=1, max_value=5))
    opcodes = data.draw(
        st.lists(st.integers(0, 7), min_size=count, max_size=count,
                 unique=True)
    )
    names = [
        data.draw(st.sampled_from(_UNIT_ORDER)) for _ in range(count)
    ]
    chosen = list(zip(opcodes, names))
    problem = _build_problem(chosen)
    result = synthesize(problem, timeout=300)

    verdict = verify_design(result.completed_design, problem.spec,
                            problem.alpha)
    assert verdict.ok, verdict.summary()

    # Simulate against the Python model.
    sim = Simulator(result.completed_design, register_init={"acc": 5})
    model_acc = 5
    stimulus = data.draw(
        st.lists(
            st.tuples(st.sampled_from(opcodes), st.integers(0, 15)),
            min_size=1, max_size=6,
        )
    )
    by_opcode = dict(chosen)
    for opcode, value in stimulus:
        sim.step({"op": opcode, "val": value})
        concrete_fn, _ = _OPERATIONS[by_opcode[opcode]]
        model_acc = concrete_fn(model_acc, value) & 0xF
        assert sim.peek("acc") == model_acc
