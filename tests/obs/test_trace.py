"""Tracer core: event schema round-trip, nesting, and the no-op fast path."""

import json
import threading
import time

import pytest

from repro.obs import (
    SchemaError,
    Tracer,
    active_tracer,
    event,
    installed,
    span,
    validate_event,
    validate_trace,
)
from repro.obs.schema import load_events
from repro.obs.trace import _NULL_SPAN


def test_written_events_round_trip_through_schema(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(path, run_id="roundtrip")
    with installed(tracer):
        with span("outer", instr="add"):
            with span("inner"):
                event("solver.check", result="sat", wall=0.25)
        event("loose")
    tracer.close()

    events, summary = load_events(path)
    assert summary["run"] == "roundtrip"
    assert summary["spans"] == 2
    assert summary["unclosed"] == []
    # run_begin + 2 begins + 2 ends + 2 point events
    assert summary["events"] == 7
    for ev in events:
        validate_event(ev)  # must not raise

    begins = {e["name"]: e for e in events if e["ev"] == "span_begin"}
    assert begins["outer"]["parent"] is None
    assert begins["outer"]["attrs"] == {"instr": "add"}
    assert begins["inner"]["parent"] == begins["outer"]["id"]
    checks = [e for e in events if e["ev"] == "event"]
    assert checks[0]["parent"] == begins["inner"]["id"]
    assert checks[0]["attrs"] == {"result": "sat", "wall": 0.25}
    assert checks[1]["parent"] is None  # emitted after both spans closed
    ends = [e for e in events if e["ev"] == "span_end"]
    assert all(e["dur"] >= 0 for e in ends)


def test_seq_is_strictly_increasing_and_file_order(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(path)
    with installed(tracer):
        for _ in range(20):
            event("tick")
    tracer.close()
    seqs = [json.loads(line)["seq"]
            for line in path.read_text().splitlines()]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_span_error_recorded_and_trace_stays_valid(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(path)
    with installed(tracer):
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
    tracer.close()
    events, summary = load_events(path)
    assert summary["unclosed"] == []
    end = next(e for e in events if e["ev"] == "span_end")
    assert end["attrs"]["error"] == "ValueError"


def test_truncated_trace_reports_unclosed_not_error(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(path)
    with installed(tracer):
        ctx = span("never-ends")
        ctx.__enter__()
        event("mid")
    tracer.close()  # hard-kill analogue: span_end never written
    events, summary = load_events(path)
    assert len(summary["unclosed"]) == 1
    assert events  # still fully parseable


def test_validate_trace_rejects_structural_violations():
    good = {"ev": "span_begin", "ts": 1.0, "run": "r", "tid": 1, "seq": 1,
            "id": 1, "parent": None, "name": "s", "attrs": {}}
    with pytest.raises(SchemaError, match="seq"):
        validate_trace([json.dumps(good),
                        json.dumps(dict(good, id=2, seq=1))])
    with pytest.raises(SchemaError, match="begun twice"):
        validate_trace([json.dumps(good),
                        json.dumps(dict(good, seq=2))])
    with pytest.raises(SchemaError, match="never begun"):
        validate_trace([json.dumps(dict(good, parent=99))])
    with pytest.raises(SchemaError, match="not valid JSON"):
        validate_trace(["{nope"])
    with pytest.raises(SchemaError, match="missing required field"):
        validate_event({"ev": "event"})


def test_cross_thread_parent_pinning(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(path)
    with installed(tracer):
        with span("dispatcher") as parent:
            def work():
                with span("worker-side", span_parent=parent.id):
                    event("inside")

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
    tracer.close()
    events, _ = load_events(path)
    begins = {e["name"]: e for e in events if e["ev"] == "span_begin"}
    assert begins["worker-side"]["parent"] == begins["dispatcher"]["id"]
    assert begins["worker-side"]["tid"] != begins["dispatcher"]["tid"]


def test_installed_scoping_restores_previous(tmp_path):
    outer = Tracer(tmp_path / "outer.jsonl")
    inner = Tracer(tmp_path / "inner.jsonl")
    assert active_tracer() is None
    with installed(outer):
        with installed(inner):
            assert active_tracer() is inner
        assert active_tracer() is outer
    assert active_tracer() is None
    outer.close()
    inner.close()


def test_disabled_tracing_is_allocation_free_noop():
    assert active_tracer() is None
    assert span("anything", instr="x") is _NULL_SPAN
    assert event("anything") is None  # no-op, no error


def test_disabled_tracing_overhead_guard():
    """The no-op fast path must stay cheap enough to leave in hot loops.

    100k disabled span entries complete in well under half a second on
    any machine this suite runs on (measured ~30ms); a regression that
    adds allocation or locking to the disabled path trips this long
    before it trips the <5% bench budget.
    """
    assert active_tracer() is None
    started = time.monotonic()
    for _ in range(100_000):
        with span("hot", attr=1):
            pass
    elapsed = time.monotonic() - started
    assert elapsed < 0.5, f"disabled span path took {elapsed:.3f}s/100k"


def test_artifact_paths_are_unique_and_housed(tmp_path):
    tracer = Tracer(tmp_path / "t.jsonl")
    first = tracer.artifact_path("cex.vcd")
    second = tracer.artifact_path("cex.vcd")
    assert first != second
    assert "t-artifacts" in first
    tracer.close()
