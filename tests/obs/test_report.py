"""End-to-end provenance: a real synthesis run, replayed from its trace.

The acceptance bar for the observability layer is *exactness*, not
plausibility: the totals :func:`repro.obs.report.totals` reconstructs
from the JSONL must equal what the synthesis result itself reports —
iteration counts, encode-counter deltas — and every solver query must
hang off an owning span.
"""

import os

import pytest

from repro.designs import alu_machine
from repro.obs import Tracer, installed
from repro.obs.report import render_report, solver_queries, totals
from repro.obs.schema import load_events
from repro.synthesis import synthesize


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "alu.jsonl"
    tracer = Tracer(path, run_id="test-alu")
    problem = alu_machine.build_problem()
    with installed(tracer):
        result = synthesize(problem, timeout=300)
    tracer.close()
    events, summary = load_events(path)
    return path, events, summary, result


def test_trace_is_schema_valid_and_fully_closed(traced_run):
    _, _, summary, _ = traced_run
    assert summary["run"] == "test-alu"
    assert summary["unclosed"] == []
    assert summary["spans"] > 0


def test_every_solver_query_has_an_owning_span(traced_run):
    _, events, _, _ = traced_run
    queries = solver_queries(events)
    assert queries, "synthesis ran but recorded no solver queries"
    report = totals(events)
    assert report["orphan_queries"] == 0
    for query in queries:
        assert query["owner"] != "(no span)", query
        assert query["result"] in ("sat", "unsat", "unknown")
        assert query["wall"] >= 0
        assert query["clauses"] > 0
        assert query["execution"] == "inprocess"


def test_iteration_count_reproduced_exactly(traced_run):
    _, events, _, result = traced_run
    expected = sum(s.iterations for s in result.per_instruction)
    assert totals(events)["iterations"] == expected


def test_encode_counter_deltas_reproduced_exactly(traced_run):
    _, events, _, result = traced_run
    assert totals(events)["encode_delta"] == result.stats["counters"]


def test_solver_internals_reconcile_with_counters_exactly(traced_run):
    # The facade charges each check's internals delta to the process-wide
    # sat_* counters AND mirrors it on the solver.check event, so the sum
    # over events must equal the counter delta between the run's bracketing
    # metrics.snapshot events — field by field, exactly.
    _, events, _, _ = traced_run
    report = totals(events)
    internals = report["solver_internals"]
    assert internals["propagations"] > 0
    assert internals["learned"] > 0
    for key, value in internals.items():
        assert value == report["encode_delta"].get(f"sat_{key}", 0), key


def test_counterexample_vcds_exist_on_disk(traced_run):
    _, events, _, _ = traced_run
    vcds = totals(events)["counterexample_vcds"]
    # alu_machine needs at least one CEGIS refinement, so at least one
    # failed verify must have dumped a waveform.
    assert vcds
    for path in vcds:
        assert os.path.exists(path), path
        with open(path) as handle:
            text = handle.read()
        assert "$enddefinitions" in text
        assert "#0" in text


def test_render_report_lists_vcds_and_flame_tree(traced_run):
    path, events, _, _ = traced_run
    text = render_report(path, top=5)
    assert "synthesis.run" in text
    assert "cegis.iteration" in text
    assert "top 5 solver queries by wall time:" in text
    assert "solver internals (summed over solver.check events):" in text
    assert "== counters" in text
    assert "!= counters" not in text
    for vcd in totals(events)["counterexample_vcds"]:
        assert vcd in text
