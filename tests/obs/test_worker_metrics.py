"""Worker-pool health metrics and obs events under injected faults.

Each test drives a real subprocess pool through a fault scenario (crash,
hang, oom — the same scenarios ``tests/runtime/test_workers.py`` uses for
containment) and asserts the unified :data:`repro.obs.METRICS` registry
counted exactly what happened, and that the tracer saw the corresponding
events with correct attribution.
"""

import pytest

from repro.obs import METRICS, Tracer, installed, span
from repro.obs.schema import load_events
from repro.runtime import (
    FaultInjector,
    SolverWorkerPool,
    WorkerCrashed,
    WorkerKilled,
)
from repro.smt import terms as T
from repro.smt.dimacs import to_dimacs


def _sat_query():
    x = T.bv_var("wm", 4)
    return to_dimacs([T.bv_eq(x, T.bv_const(9, 4))])


def test_crash_metrics_and_recovery_accounting():
    before = METRICS.snapshot()
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1)
    try:
        injector = FaultInjector().inject_worker_crash(at_request=1)
        with injector.installed():
            with pytest.raises(WorkerCrashed):
                pool.check(_sat_query())
        assert pool.check(_sat_query()).verdict == "sat"
    finally:
        assert pool.shutdown()["orphans"] == 0
    delta = METRICS.delta_since(before)
    assert delta["worker.requests"] == 2
    assert delta["worker.crashes"] == 1
    assert delta.get("worker.crashes.oom", 0) == 0
    assert delta.get("worker.watchdog_kills", 0) == 0
    # Initial worker + the respawned replacement; both reaped by shutdown.
    assert delta["worker.spawned"] == 2
    assert delta["worker.spawned"] == delta["worker.reaped"]


def test_hang_metrics_attribute_watchdog_kill():
    before = METRICS.snapshot()
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.25)
    try:
        injector = FaultInjector().inject_worker_hang(at_request=1)
        with injector.installed():
            with pytest.raises(WorkerKilled) as excinfo:
                pool.check(_sat_query())
        assert excinfo.value.reason == "heartbeat-lost"
    finally:
        assert pool.shutdown()["orphans"] == 0
    delta = METRICS.delta_since(before)
    assert delta["worker.watchdog_kills"] == 1
    assert delta["worker.kills.heartbeat_lost"] == 1
    assert delta.get("worker.kills.deadline", 0) == 0
    # The kill surfaces through death classification too.
    assert delta["worker.crashes"] == 1


def test_oom_metrics_classified_separately():
    before = METRICS.snapshot()
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.5,
                            mem_limit_mb=256)
    try:
        injector = FaultInjector().inject_worker_oom(at_request=1)
        with injector.installed():
            with pytest.raises(WorkerCrashed) as excinfo:
                pool.check(_sat_query())
        assert excinfo.value.reason == "worker-oom"
    finally:
        assert pool.shutdown()["orphans"] == 0
    delta = METRICS.delta_since(before)
    assert delta["worker.crashes.oom"] == 1
    assert delta["worker.crashes"] >= 1


def test_fallback_counted_once_per_breaker_trip():
    from repro.smt.solver import Solver, SAT

    before = METRICS.snapshot()
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1,
                            fallback_after=1)
    try:
        solver = Solver(execution="isolated", worker_pool=pool)
        x = T.bv_var("wm_fb", 4)
        solver.add(T.bv_eq(x, T.bv_const(5, 4)))
        injector = FaultInjector().inject_worker_crash(at_request="all")
        with injector.installed():
            with pytest.raises(WorkerCrashed):
                solver.check()
            assert solver.check() is SAT
    finally:
        assert pool.shutdown()["orphans"] == 0
    delta = METRICS.delta_since(before)
    assert delta["worker.fallbacks"] == 1


def test_traced_pool_forwards_worker_provenance(tmp_path):
    path = tmp_path / "pool.jsonl"
    tracer = Tracer(path)
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.1)
    try:
        with installed(tracer):
            with span("owner") as owner:
                outcome = pool.check(_sat_query())
                owner_id = owner.id
        assert outcome.verdict == "sat"
    finally:
        assert pool.shutdown()["orphans"] == 0
        tracer.close()
    events, summary = load_events(path)
    assert summary["unclosed"] == []
    checks = [e for e in events
              if e["ev"] == "event" and e["name"] == "worker.check"]
    assert len(checks) == 1
    check = checks[0]
    assert check["parent"] == owner_id
    assert check["attrs"]["verdict"] == "sat"
    assert check["attrs"]["clauses"] > 0
    assert check["attrs"]["wall"] >= 0
    assert check["attrs"]["pid"] > 0


def test_traced_watchdog_kill_emits_event(tmp_path):
    path = tmp_path / "kill.jsonl"
    tracer = Tracer(path)
    pool = SolverWorkerPool(size=1, heartbeat_interval=0.25)
    try:
        injector = FaultInjector().inject_worker_hang(at_request=1)
        with installed(tracer):
            with injector.installed():
                with pytest.raises(WorkerKilled):
                    pool.check(_sat_query())
    finally:
        assert pool.shutdown()["orphans"] == 0
        tracer.close()
    events, _ = load_events(path)
    names = [e["name"] for e in events if e["ev"] == "event"]
    killed = next(e for e in events
                  if e["ev"] == "event" and e["name"] == "worker.killed")
    assert killed["attrs"]["reason"] == "heartbeat-lost"
    assert killed["attrs"]["pid"] > 0
    assert "worker.death" in names
    # Fault-injector provenance (satellite: seed + fired log as events).
    installed_ev = next(e for e in events
                        if e["ev"] == "event"
                        and e["name"] == "fault.installed")
    assert installed_ev["attrs"]["seed"] == 0
    assert installed_ev["attrs"]["planned_workers"] == 1
    uninstalled = next(e for e in events
                       if e["ev"] == "event"
                       and e["name"] == "fault.uninstalled")
    assert uninstalled["attrs"]["fired"] == ["worker:hang@1"]
    injected = next(e for e in events
                    if e["ev"] == "event"
                    and e["name"] == "fault.injected")
    assert injected["attrs"]["kind"] == "worker:hang"
    assert injected["attrs"]["ordinal"] == 1
    assert injected["attrs"]["seed"] == 0
