"""MetricsRegistry: snapshot/delta semantics and the encode-counter merge."""

import threading

from repro.obs import METRICS, MetricsRegistry
from repro.smt.counters import COUNTERS


def test_inc_get_snapshot_delta():
    registry = MetricsRegistry()
    registry.inc("worker.crashes")
    registry.inc("worker.crashes")
    registry.inc("budget.conflicts_charged", 41)
    assert registry.get("worker.crashes") == 2
    assert registry.get("never.touched") == 0

    before = registry.snapshot()
    registry.inc("worker.crashes")
    registry.inc("born.later", 7)
    delta = registry.delta_since(before)
    assert delta["worker.crashes"] == 1
    assert delta["born.later"] == 7
    assert delta["budget.conflicts_charged"] == 0


def test_snapshot_merges_encode_counters_under_prefix():
    registry = MetricsRegistry()
    before = registry.snapshot()
    assert "encode.aig_nodes" in before
    assert "encode.tseitin_clauses" in before
    COUNTERS.tseitin_clauses += 3
    try:
        delta = registry.delta_since(before)
        assert delta["encode.tseitin_clauses"] == 3
    finally:
        COUNTERS.tseitin_clauses -= 3


def test_registry_own_counters_shadow_nothing():
    # A registry counter may NOT collide with the encode namespace: the
    # merge gives the registry's own counts the last word, so producers
    # must stay out of ``encode.``.  This documents the convention.
    registry = MetricsRegistry()
    snapshot = registry.snapshot()
    own = [name for name in snapshot if not name.startswith("encode.")]
    assert all(not name.startswith("encode.") for name in own)


def test_concurrent_increments_do_not_lose_counts():
    registry = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            registry.inc("contended")

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.get("contended") == 4000


def test_global_registry_reset_is_test_hygiene_only():
    before = METRICS.get("obs.test.probe")
    METRICS.inc("obs.test.probe")
    assert METRICS.get("obs.test.probe") == before + 1
