"""MetricsRegistry: snapshot/delta semantics and the encode-counter merge."""

import threading

from repro.obs import METRICS, MetricsRegistry
from repro.obs.metrics import LATENCY_BOUNDS
from repro.smt.counters import COUNTERS


def test_inc_get_snapshot_delta():
    registry = MetricsRegistry()
    registry.inc("worker.crashes")
    registry.inc("worker.crashes")
    registry.inc("budget.conflicts_charged", 41)
    assert registry.get("worker.crashes") == 2
    assert registry.get("never.touched") == 0

    before = registry.snapshot()
    registry.inc("worker.crashes")
    registry.inc("born.later", 7)
    delta = registry.delta_since(before)
    assert delta["worker.crashes"] == 1
    assert delta["born.later"] == 7
    assert delta["budget.conflicts_charged"] == 0


def test_snapshot_merges_encode_counters_under_prefix():
    registry = MetricsRegistry()
    before = registry.snapshot()
    assert "encode.aig_nodes" in before
    assert "encode.tseitin_clauses" in before
    COUNTERS.tseitin_clauses += 3
    try:
        delta = registry.delta_since(before)
        assert delta["encode.tseitin_clauses"] == 3
    finally:
        COUNTERS.tseitin_clauses -= 3


def test_registry_own_counters_shadow_nothing():
    # A registry counter may NOT collide with the encode namespace: the
    # merge gives the registry's own counts the last word, so producers
    # must stay out of ``encode.``.  This documents the convention.
    registry = MetricsRegistry()
    snapshot = registry.snapshot()
    own = [name for name in snapshot if not name.startswith("encode.")]
    assert all(not name.startswith("encode.") for name in own)


def test_concurrent_increments_do_not_lose_counts():
    registry = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            registry.inc("contended")

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.get("contended") == 4000


def test_global_registry_reset_is_test_hygiene_only():
    before = METRICS.get("obs.test.probe")
    METRICS.inc("obs.test.probe")
    assert METRICS.get("obs.test.probe") == before + 1


def test_histogram_observe_summary_and_snapshot_key():
    registry = MetricsRegistry()
    for value in (0.0005, 0.003, 0.003, 0.2, 400.0):
        registry.observe("solver.check", value)
    summary = registry.histogram("solver.check")
    assert summary["count"] == 5
    assert summary["min"] == 0.0005
    assert summary["max"] == 400.0
    assert abs(summary["sum"] - 400.2065) < 1e-9
    # p50 of [0.0005, 0.003, 0.003, 0.2, 400] sits in the 0.005 bucket
    # (upper-bound estimate); p99 lands in the overflow bucket, which
    # reports the last finite bound.
    assert summary["p50"] == 0.005
    assert summary["p99"] == LATENCY_BOUNDS[-1]
    # Every observation is in exactly one bucket (overflow included).
    assert sum(summary["buckets"]) == 5
    assert summary["buckets"][-1] == 1  # the 400s outlier
    # The snapshot exposes the same summary under the hist. prefix, and
    # every non-hist value stays an int (delta arithmetic relies on it).
    snap = registry.snapshot()
    assert snap["hist.solver.check"]["count"] == 5
    assert all(isinstance(v, int) for k, v in snap.items()
               if not k.startswith("hist."))


def test_histogram_delta_since_subtracts_buckets():
    registry = MetricsRegistry()
    registry.observe("cegis.iteration", 0.02)
    before = registry.snapshot()
    registry.observe("cegis.iteration", 0.02)
    registry.observe("cegis.iteration", 3.0)
    delta = registry.delta_since(before)["hist.cegis.iteration"]
    assert delta["count"] == 2
    assert sum(delta["buckets"]) == 2
    assert abs(delta["sum"] - 3.02) < 1e-9
    # Percentiles are recomputed from the *delta* buckets: the median of
    # the two new observations, not of all three.
    assert delta["p50"] == 0.025
    assert delta["p90"] == 5.0


def test_histogram_born_after_snapshot_appears_whole():
    registry = MetricsRegistry()
    before = registry.snapshot()
    registry.observe("born.later", 0.1)
    delta = registry.delta_since(before)["hist.born.later"]
    assert delta["count"] == 1
    assert delta["p50"] == 0.1


def test_histogram_concurrent_observe_merges_exactly():
    registry = MetricsRegistry()
    registry.observe("contended.lat", 0.004)
    before = registry.snapshot()

    def hammer(value):
        for _ in range(1000):
            registry.observe("contended.lat", value)

    threads = [threading.Thread(target=hammer, args=(v,))
               for v in (0.002, 0.02, 0.2, 2.0)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    delta = registry.delta_since(before)["hist.contended.lat"]
    assert delta["count"] == 4000
    assert sum(delta["buckets"]) == 4000
    # Each thread's 1000 observations land whole in their own bucket —
    # no lost updates, and the pre-snapshot observation is subtracted out.
    populated = sorted(n for n in delta["buckets"] if n)
    assert populated == [1000, 1000, 1000, 1000]
    assert abs(delta["sum"] - 1000 * (0.002 + 0.02 + 0.2 + 2.0)) < 1e-6
