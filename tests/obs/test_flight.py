"""Flight recorder and cross-process trace context: ring, dumps, slicing."""

import threading
import time

import pytest

from repro.obs import (
    Tracer,
    clear_flight,
    current_trace_id,
    event,
    flight_dump,
    flight_record,
    install_flight,
    installed,
    new_trace_id,
    span,
    trace_context,
    validate_event,
)
from repro.obs.report import job_trace_id, slice_by_trace, totals, trace_ids
from repro.obs.schema import load_events


@pytest.fixture(autouse=True)
def _flight_hygiene():
    yield
    clear_flight()


# -- trace-context propagation ----------------------------------------------

def test_trace_context_stamps_records_and_validates(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(path, run_id="ctx")
    tid = new_trace_id()
    with installed(tracer):
        with trace_context(tid):
            assert current_trace_id() == tid
            with span("service.job", job_id="job-1"):
                event("solver.check", result="sat", wall=0.1)
        event("outside")
        assert current_trace_id() is None
    tracer.close()

    events, _ = load_events(path)
    for ev in events:
        validate_event(ev)
    stamped = [ev for ev in events if ev.get("trace") == tid]
    names = {ev.get("name") for ev in stamped}
    # begin, end, and the inner event all carry the id; the run_begin and
    # the post-context event do not.
    assert {"service.job", "solver.check"} <= names
    outside = next(ev for ev in events if ev.get("name") == "outside")
    assert "trace" not in outside


def test_trace_context_nests_and_noops_on_falsy():
    outer, inner = new_trace_id(), new_trace_id()
    assert outer != inner
    with trace_context(outer):
        with trace_context(inner):
            assert current_trace_id() == inner
        assert current_trace_id() == outer
        with trace_context(None):  # no-op: keeps the surrounding context
            assert current_trace_id() == outer
    assert current_trace_id() is None


def test_trace_context_is_thread_local():
    tid = new_trace_id()
    seen = {}

    def probe():
        seen["other"] = current_trace_id()

    with trace_context(tid):
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
    assert seen["other"] is None


def test_job_slicing_reports_single_trace(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(path, run_id="slice")
    job_a, job_b = new_trace_id(), new_trace_id()
    with installed(tracer):
        for job_id, tid in (("job-a", job_a), ("job-b", job_b)):
            with trace_context(tid):
                with span("service.job", job_id=job_id):
                    with span("cegis.iteration", n=1):
                        event("solver.check", result="sat", wall=0.05)
    tracer.close()

    events, _ = load_events(path)
    assert set(trace_ids(events)) == {job_a, job_b}
    assert job_trace_id(events, "job-a") == job_a
    assert job_trace_id(events, job_b) == job_b  # raw trace id accepted
    assert job_trace_id(events, "job-zzz") is None
    sliced = slice_by_trace(events, job_a)
    assert sliced and all(ev["trace"] == job_a for ev in sliced)
    agg = totals(sliced)
    assert agg["solver_queries"] == 1
    assert agg["orphan_queries"] == 0
    assert agg["iterations"] == 1


# -- the flight recorder ----------------------------------------------------

def test_flight_captures_spans_and_events_with_tracing_off(tmp_path):
    recorder = install_flight(capacity=8, dump_dir=str(tmp_path))
    with span("cegis.iteration", n=3):
        event("solver.check", result="unsat", wall=0.2)
    flight_record("event", "custom.marker", detail="x")
    assert len(recorder) == 3  # span close + event + marker
    for _ in range(20):
        event("filler")
    assert len(recorder) == 8  # ring stays bounded


def test_flight_dump_is_schema_valid_and_atomic(tmp_path):
    recorder = install_flight(capacity=16, dump_dir=str(tmp_path))
    tid = new_trace_id()
    with trace_context(tid):
        with span("service.job", job_id="doomed"):
            event("solver.check", result="unknown", reason="worker-crashed")
    path = flight_dump("poison-doomed")
    assert path is not None and path.endswith(".jsonl")
    assert not path.endswith(".tmp")
    events, summary = load_events(path)  # validates the whole dump
    assert summary["run"].startswith("flight-")
    header = events[0]
    assert header["ev"] == "run_begin"
    assert header["attrs"]["reason"] == "poison-doomed"
    assert header["attrs"]["entries"] == len(events) - 1
    kinds = {ev["name"] for ev in events[1:]}
    assert kinds <= {"flight.span", "flight.event"}
    # The propagated context survives into the dump records.
    assert any(ev.get("trace") == tid for ev in events[1:])
    assert all(ev["parent"] is None for ev in events[1:]
               if ev["ev"] == "event")
    assert recorder.dumps == [path]


def test_flight_tees_tracer_records_and_dumps_to_artifacts(tmp_path):
    tracer = Tracer(tmp_path / "t.jsonl", run_id="teed")
    recorder = install_flight(capacity=32)
    with installed(tracer):
        with span("outer"):
            event("inner.event", k=1)
        assert len(recorder) >= 3  # begin + event + end mirrored
        path = flight_dump("daemon-error-test")
    tracer.close()
    assert path is not None
    assert "t-artifacts" in path  # tracer's artifact dir wins
    events, _ = load_events(path)
    assert any(ev.get("name") == "flight.span_begin" for ev in events)


def test_flight_dump_without_recorder_is_none():
    clear_flight()
    assert flight_dump("nothing-installed") is None


def test_flight_recording_overhead_stays_small():
    """Tracing off + flight on must stay cheap enough for production.

    50k span entries through the flight ring complete well under a
    second (measured ~100ms); a regression that adds locking or
    serialization to the record path trips this long before the <5%
    bench budget does.
    """
    install_flight(capacity=512)
    started = time.monotonic()
    for _ in range(50_000):
        with span("hot", attr=1):
            pass
    elapsed = time.monotonic() - started
    assert elapsed < 1.0, f"flight span path took {elapsed:.3f}s/50k"
