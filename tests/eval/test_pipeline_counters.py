"""Deterministic perf-smoke: encode-counter invariants, fresh vs incremental.

This is the CI guard for the incremental pipeline's reason to exist.  It
runs one small case (the ALU machine — four instructions, seconds of
work) in both pipeline modes and asserts the *counter* invariants:
incremental mode must perform strictly fewer solver instantiations and
strictly fewer AIG node creations than fresh mode.  Counters, not wall
time — the solver is deterministic, so this lane cannot flake on a busy
CI host the way a timing assertion would.
"""

from repro.designs import alu_machine
from repro.smt import counters as _counters
from repro.synthesis import synthesize


def _run(pipeline):
    problem = alu_machine.build_problem()
    before = _counters.snapshot()
    result = synthesize(problem, timeout=300, pipeline=pipeline)
    return result, _counters.delta_since(before)


def test_incremental_strictly_cheaper_to_encode():
    fresh_result, fresh = _run("fresh")
    incr_result, incr = _run("incremental")

    assert incr["solver_instances"] < fresh["solver_instances"]
    assert incr["aig_nodes"] < fresh["aig_nodes"]
    assert incr["tseitin_clauses"] < fresh["tseitin_clauses"]

    # The speedup must not change the answer.
    for solution in fresh_result.per_instruction:
        assert incr_result.hole_values_for(solution.instruction_name) \
            == solution.hole_values

    # Engine stats carry the same accounting for bench/report consumers.
    assert fresh_result.stats["counters"]["solver_instances"] \
        == fresh["solver_instances"]
    assert incr_result.stats["counters"]["trace_cache_misses"] == 1


def test_per_instruction_counter_attribution():
    """Serial runs attribute encode work exactly, per instruction."""
    result, delta = _run("incremental")
    summed = sum(s.aig_nodes for s in result.per_instruction)
    # The shared trace + formula construction happens before the first
    # instruction's CEGIS run, so per-instruction deltas cannot exceed
    # the whole-run delta.
    assert 0 < summed <= delta["aig_nodes"]
    for solution in result.per_instruction:
        assert solution.solver_instances >= 1
        assert solution.trace_cache_hits >= 1
