"""Tests for the evaluation harness (small configurations)."""

import pytest

from repro.eval.report import format_rows, format_table
from repro.eval.table1 import TABLE1_CONFIGS, Table1Row, build_config, run_row
from repro.eval.table2 import run_variant


def test_table1_configs_cover_paper_rows():
    row_ids = [config[0] for config in TABLE1_CONFIGS]
    assert len(row_ids) == 10  # the paper's Table 1 has ten rows
    modes = [config[3] for config in TABLE1_CONFIGS]
    assert modes.count("monolithic") == 2  # the two † rows


def test_run_row_aes():
    row = run_row("aes")
    assert row.status == "ok"
    assert row.design == "AES Accelerator"
    assert row.instructions == 3
    assert row.sketch_size > 100
    assert row.time_seconds > 0
    assert row.resumed_instructions == 0


def test_run_row_resumes_from_partial_handle():
    from repro.synthesis import synthesize

    problem = build_config("aes")

    class _Interrupt:
        def __init__(self):
            self.fired = False

        def __call__(self, name, solution):
            if not self.fired:
                self.fired = True
                raise KeyboardInterrupt

    partial = synthesize(problem, timeout=300, progress=_Interrupt(),
                         on_timeout="partial")
    assert partial.completed_count == 1 and partial.pending

    # A matching handle (same problem, same mode) skips the solved work;
    # the round-trip through to_dict mirrors `--resume handle.json`.
    row = run_row("aes", resume_from=partial.to_dict())
    assert row.status == "ok"
    assert row.resumed_instructions == 1

    # A handle from a different mode is ignored, not misapplied.
    mismatched = dict(partial.to_dict(), mode="monolithic")
    row = run_row("aes", resume_from=mismatched)
    assert row.status == "ok"
    assert row.resumed_instructions == 0


@pytest.mark.slow
def test_run_row_crypto_quick():
    row = run_row("crypto", quick=True, timeout=900)
    assert row.status == "ok"
    assert row.variant == "CMOV ISA"
    assert row.instructions == 11


@pytest.mark.slow
def test_table2_small_subset():
    row = run_variant("RV32I", quick=True, timeout=600,
                      instructions=["lui", "add", "lw"])
    assert row.generated_loc > 0
    assert row.reference_loc > 0
    assert row.reference_gates > 1000  # a real core, not a toy
    assert row.optimized_gates <= row.generated_gates
    assert row.optimized_reference_gates <= row.reference_gates


def test_format_rows_alignment():
    text = format_rows(["col", "x"], [["a", "bbbb"], ["cc", "d"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_format_table_renders_dataclasses():
    rows = [
        Table1Row("x", "Design", "V", "per_instruction", 100, 5, 1.25, "ok"),
    ]
    text = format_table(rows, title="Demo")
    assert "Demo" in text
    assert "per_instruction" in text
    assert "1.2" in text


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_build_config_all_rows_construct():
    from repro.eval.table1 import build_config

    for config in TABLE1_CONFIGS:
        problem = build_config(config[0], quick=True)
        assert problem.spec.instructions
        assert problem.sketch.holes
