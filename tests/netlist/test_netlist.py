"""Netlist synthesis/optimization tests, incl. differential equivalence."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    Netlist,
    SynthesisOptions,
    gate_count,
    netlist_stats,
    optimize,
    synthesize_netlist,
)
from repro.netlist.synth import NetlistSynthesisError
from repro.oyster import Simulator, parse_design


def test_basic_gate_construction():
    netlist = Netlist("t")
    a = netlist.add("input", name="a")
    b = netlist.add("input", name="b")
    out = netlist.and_(a, b)
    netlist.add("output", (out,), name="o")
    netlist.validate()
    values, _ = netlist.evaluate({"a": 1, "b": 1})
    assert values[out] == 1


def test_validate_rejects_unconnected_dff():
    netlist = Netlist("t")
    netlist.new_dff("d")
    with pytest.raises(ValueError, match="unconnected"):
        netlist.validate()


def test_validate_rejects_forward_comb_reference():
    netlist = Netlist("t")
    a = netlist.add("input", name="a")
    netlist.gates[a].inputs = (a + 1,)  # corrupt it
    netlist.gates[a].kind = "not"
    netlist.add("input", name="b")
    with pytest.raises(ValueError, match="forward"):
        netlist.validate()


def test_mux_lowering_counts_four_gates():
    netlist = Netlist("t")
    sel = netlist.add("input", name="s")
    a = netlist.add("input", name="a")
    b = netlist.add("input", name="b")
    before = len(netlist)
    netlist.mux(sel, a, b)
    assert len(netlist) - before == 4  # not, 2x and, or


DESIGN = """
design dut:
  input a 6
  input b 6
  input sel 1
  register acc 6
  output o 6
  t := if sel then (a + b) else (a ^ acc)
  u := t - b
  v := if a <u b then u else (u >>u 6'1)
  acc := v
  o := v | b
"""


def _simulate_netlist(netlist, design, inputs_by_cycle):
    widths = {d.name: d.width for d in design.inputs}
    out_width = design.outputs[0].width
    state = {}
    outputs = []
    for inputs in inputs_by_cycle:
        bits = {}
        for name, value in inputs.items():
            for i in range(widths[name]):
                bits[f"{name}[{i}]"] = (value >> i) & 1
        values, state = netlist.evaluate(bits, state)
        word = 0
        for index, gate in enumerate(netlist.gates):
            if gate.kind == "output":
                bit_index = int(gate.name.split("[")[1].rstrip("]"))
                word |= values[index] << bit_index
        outputs.append(word)
    return outputs


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 63), st.integers(0, 1)),
    min_size=1, max_size=8,
))
def test_raw_and_optimized_netlists_match_simulator(stimulus):
    design = parse_design(DESIGN)
    raw = synthesize_netlist(design)
    optimized = optimize(raw)
    assert gate_count(optimized) <= gate_count(raw)
    inputs_by_cycle = [
        {"a": a, "b": b, "sel": s} for a, b, s in stimulus
    ]
    sim = Simulator(design)
    expected = [out["o"] for out in sim.run(inputs_by_cycle)]
    assert _simulate_netlist(raw, design, inputs_by_cycle) == expected
    assert _simulate_netlist(optimized, design, inputs_by_cycle) == expected


def test_optimizer_removes_dead_logic():
    design = parse_design(
        "design dead:\n  input a 8\n  output o 8\n"
        "  unused := a * a\n  o := a\n"
    )
    raw = synthesize_netlist(design)
    optimized = optimize(raw)
    assert gate_count(optimized) < gate_count(raw)
    stats = netlist_stats(optimized)
    assert stats["logic_gates"] == 0  # o := a is pure wiring


def test_optimizer_folds_constants():
    design = parse_design(
        "design cf:\n  input a 8\n  output o 8\n"
        "  t := a & 8'0\n  o := t | a\n"
    )
    optimized = optimize(synthesize_netlist(design))
    assert netlist_stats(optimized)["logic_gates"] == 0


def test_optimizer_shares_common_subexpressions():
    design = parse_design(
        "design cse:\n  input a 8\n  input b 8\n  output o 1\n"
        "  t1 := a + b\n  t2 := a + b\n  o := t1 == t2\n"
    )
    optimized = optimize(synthesize_netlist(design))
    # t1 == t2 must fold to constant 1 after CSE.
    assert netlist_stats(optimized)["logic_gates"] == 0


def test_small_memory_expands_to_dffs():
    design = parse_design(
        "design m:\n  input a 2\n  input d 4\n  input we 1\n  output o 4\n"
        "  memory mem 2 4\n  o := read mem a\n  write mem a d we\n"
    )
    netlist = synthesize_netlist(design)
    assert netlist_stats(netlist)["flops"] == 16


def test_large_memory_stays_macro():
    design = parse_design(
        "design m:\n  input a 20 \n  output o 8\n  memory mem 20 8\n"
        "  o := read mem a\n"
    )
    netlist = synthesize_netlist(design)
    stats = netlist_stats(netlist)
    assert stats["flops"] == 0
    assert stats["by_kind"]["memrd"] == 8


def test_memory_expansion_threshold_configurable():
    design = parse_design(
        "design m:\n  input a 7\n  output o 4\n  memory mem 7 4\n"
        "  o := read mem a\n"
    )
    default = synthesize_netlist(design)
    expanded = synthesize_netlist(
        design, options=SynthesisOptions(expand_memories_to=7)
    )
    assert netlist_stats(default)["flops"] == 0
    assert netlist_stats(expanded)["flops"] == 4 * 128


def test_holes_require_values():
    design = parse_design(
        "design h:\n  input a 4\n  hole ctl 1\n  t := if ctl then a else ~a\n"
    )
    with pytest.raises(NetlistSynthesisError, match="unfilled holes"):
        synthesize_netlist(design)
    netlist = synthesize_netlist(design, hole_values={"ctl": 1})
    netlist.validate()


def test_sequential_counter_equivalence():
    design = parse_design(
        "design c:\n  input en 1\n  register n 5\n  output o 5\n"
        "  n := if en then (n + 5'1) else (n)\n  o := n\n"
    )
    netlist = optimize(synthesize_netlist(design))
    sim = Simulator(design)
    stimulus = [{"en": e} for e in (1, 1, 0, 1, 1, 1, 0)]
    expected = [out["o"] for out in sim.run(stimulus)]
    assert _simulate_netlist(netlist, design, stimulus) == expected
