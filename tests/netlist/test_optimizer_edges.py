"""Edge cases for the netlist optimizer: cycles, complements, idempotence."""

from repro.netlist import Netlist, gate_count, netlist_stats, optimize


def _with_output(netlist, net, name="o[0]"):
    netlist.add("output", (net,), name=name)
    return netlist


def test_complement_absorption():
    netlist = Netlist("c")
    a = netlist.add("input", name="a[0]")
    na = netlist.not_(a)
    both = netlist.and_(a, na)       # a & ~a == 0
    either = netlist.or_(a, na)      # a | ~a == 1
    x = netlist.xor_(a, na)          # a ^ ~a == 1
    out = netlist.or_(both, netlist.and_(either, x))
    _with_output(netlist, out)
    optimized = optimize(netlist)
    assert netlist_stats(optimized)["logic_gates"] == 0
    kinds = [g.kind for g in optimized.gates if g.kind.startswith("const")]
    assert "const1" in kinds


def test_double_negation_removed():
    netlist = Netlist("d")
    a = netlist.add("input", name="a[0]")
    out = netlist.not_(netlist.not_(a))
    _with_output(netlist, out)
    optimized = optimize(netlist)
    assert netlist_stats(optimized)["logic_gates"] == 0


def test_dff_self_loop_preserved():
    """A toggling flop (q <= ~q) must survive optimization intact."""
    netlist = Netlist("t")
    q = netlist.new_dff("q")
    nq = netlist.not_(q)
    netlist.connect_dff(q, nq)
    netlist.add("output", (q,), name="o[0]")
    optimized = optimize(netlist)
    stats = netlist_stats(optimized)
    assert stats["flops"] == 1
    assert stats["by_kind"]["not"] == 1
    # Behaviour check: toggles every cycle.
    state = {}
    values = []
    for _ in range(4):
        vals, state = optimized.evaluate({}, state)
        out = next(vals[i] for i, g in enumerate(optimized.gates)
                   if g.kind == "output")
        values.append(out)
    assert values == [0, 1, 0, 1]


def test_optimizer_is_idempotent():
    netlist = Netlist("i")
    a = netlist.add("input", name="a[0]")
    b = netlist.add("input", name="b[0]")
    out = netlist.or_(netlist.and_(a, b), netlist.and_(a, b))
    _with_output(netlist, out)
    once = optimize(netlist)
    twice = optimize(once)
    assert gate_count(once) == gate_count(twice)


def test_cse_across_fanout():
    netlist = Netlist("s")
    a = netlist.add("input", name="a[0]")
    b = netlist.add("input", name="b[0]")
    first = netlist.and_(a, b)
    second = netlist.and_(a, b)  # structural duplicate
    out = netlist.xor_(first, second)
    _with_output(netlist, out)
    optimized = optimize(netlist)
    # xor(x, x) == 0 after CSE unifies the two ANDs.
    assert netlist_stats(optimized)["logic_gates"] == 0


def test_inputs_deduplicated_outputs_kept():
    netlist = Netlist("io")
    a1 = netlist.add("input", name="a[0]")
    a2 = netlist.add("input", name="a[0]")  # same primary input bit
    netlist.add("output", (a1,), name="x[0]")
    netlist.add("output", (a2,), name="y[0]")
    optimized = optimize(netlist)
    stats = netlist_stats(optimized)
    assert stats["by_kind"]["input"] == 1
    assert stats["by_kind"]["output"] == 2
