"""Tests for the ILA-to-constraints compiler (Figure 8 + α substitution)."""

import pytest

from repro.abstraction import parse_abstraction
from repro.ila import BvConst, Ila, Ite, Load, Store
from repro.ila.compiler import CompileError, ConstraintCompiler
from repro.oyster import SymbolicEvaluator, parse_design
from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNSAT


def _simple_setup():
    """A 1-cycle incrementer: spec acc' = acc + inc, datapath matches."""
    ila = Ila("inc")
    inc = ila.new_bv_input("inc", 8)
    acc = ila.new_bv_state("acc", 8)
    instr = ila.new_instr("INC")
    instr.set_decode(inc != 0)
    instr.set_update(acc, acc + inc)
    design = parse_design(
        "design d:\n  input inc 8\n  register acc 8\n"
        "  acc := acc + inc\n"
    )
    alpha = parse_abstraction(
        "inc: {name: 'inc', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    return ila, design, alpha


def _compile_one(ila, design, alpha, **eval_kwargs):
    trace = SymbolicEvaluator(design, **eval_kwargs).run(alpha.cycles)
    compiler = ConstraintCompiler(ila, alpha, trace)
    compiled = compiler.compile_instruction(ila.instructions[0])
    return trace, compiled


def _is_valid(trace, compiled):
    side = T.and_(*trace.side_conditions)
    solver = Solver()
    solver.add(T.and_(side, compiled.antecedent(),
                      T.bv_not(compiled.consequent())))
    return solver.check() is UNSAT


def test_correct_datapath_proves():
    ila, design, alpha = _simple_setup()
    trace, compiled = _compile_one(ila, design, alpha)
    assert _is_valid(trace, compiled)


def test_wrong_datapath_fails():
    ila, _, alpha = _simple_setup()
    wrong = parse_design(
        "design d:\n  input inc 8\n  register acc 8\n"
        "  acc := acc - inc\n"
    )
    trace, compiled = _compile_one(ila, wrong, alpha)
    assert not _is_valid(trace, compiled)


def test_precondition_compiles_over_inputs():
    ila, design, alpha = _simple_setup()
    trace, compiled = _compile_one(ila, design, alpha)
    free = {v.name for v in T.free_variables(compiled.precondition)}
    assert free == {"inc@1"}


def test_frame_condition_for_unmentioned_state():
    """A spec with a second state element gets an automatic frame."""
    ila = Ila("two")
    inc = ila.new_bv_input("inc", 8)
    acc = ila.new_bv_state("acc", 8)
    other = ila.new_bv_state("other", 8)
    instr = ila.new_instr("INC")
    instr.set_decode(inc != 0)
    instr.set_update(acc, acc + inc)
    alpha = parse_abstraction(
        "inc: {name: 'inc', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "other: {name: 'o2', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    # A datapath that corrupts `o2` must be rejected by the frame.
    bad = parse_design(
        "design d:\n  input inc 8\n  register acc 8\n  register o2 8\n"
        "  acc := acc + inc\n  o2 := o2 + 8'1\n"
    )
    trace, compiled = _compile_one(ila, bad, alpha)
    assert [label for label, _ in compiled.frame_conditions] == ["frame:other"]
    assert not _is_valid(trace, compiled)
    # One that holds it passes.
    good = parse_design(
        "design d:\n  input inc 8\n  register acc 8\n  register o2 8\n"
        "  acc := acc + inc\n  o2 := o2\n"
    )
    trace, compiled = _compile_one(ila, good, alpha)
    assert _is_valid(trace, compiled)


def _memory_setup(store_addr="dest"):
    ila = Ila("st")
    dest = ila.new_bv_input("dest", 2)
    val = ila.new_bv_input("val", 8)
    regs = ila.new_mem_state("regs", 2, 8)
    instr = ila.new_instr("ST")
    instr.set_decode(val != 0)
    instr.set_update(regs, Store(regs, dest, val))
    alpha = parse_abstraction(
        "dest: {name: 'dest', type: input, [read: 1]}\n"
        "val: {name: 'val', type: input, [read: 1]}\n"
        "regs: {name: 'rf', type: memory, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    return ila, alpha


def test_memory_update_extensional_equality():
    ila, alpha = _memory_setup()
    good = parse_design(
        "design d:\n  input dest 2\n  input val 8\n  memory rf 2 8\n"
        "  write rf dest val 1'1\n"
    )
    trace, compiled = _compile_one(ila, good, alpha)
    assert _is_valid(trace, compiled)
    # Writing the wrong address is caught (the fresh ∀ address sees it).
    bad = parse_design(
        "design d:\n  input dest 2\n  input val 8\n  memory rf 2 8\n"
        "  write rf (dest + 2'1) val 1'1\n"
    )
    trace, compiled = _compile_one(ila, bad, alpha)
    assert not _is_valid(trace, compiled)
    # Clobbering a second address is also caught.
    clobber = parse_design(
        "design d:\n  input dest 2\n  input val 8\n  memory rf 2 8\n"
        "  write rf dest val 1'1\n  write rf (dest + 2'1) val 1'1\n"
    )
    trace, compiled = _compile_one(ila, clobber, alpha)
    assert not _is_valid(trace, compiled)


def test_memory_frame_rejects_spurious_write():
    """An instruction not updating memory must leave it untouched."""
    ila = Ila("nop")
    go = ila.new_bv_input("go", 1)
    acc = ila.new_bv_state("acc", 8)
    regs = ila.new_mem_state("regs", 2, 8)
    instr = ila.new_instr("NOP")
    instr.set_decode(go == 1)
    instr.set_update(acc, acc)
    alpha = parse_abstraction(
        "go: {name: 'go', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "regs: {name: 'rf', type: memory, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    bad = parse_design(
        "design d:\n  input go 1\n  register acc 8\n  memory rf 2 8\n"
        "  acc := acc\n  write rf 2'0 acc go\n"
    )
    trace, compiled = _compile_one(ila, bad, alpha)
    assert not _is_valid(trace, compiled)
    good = parse_design(
        "design d:\n  input go 1\n  register acc 8\n  memory rf 2 8\n"
        "  acc := acc\n  write rf 2'0 acc 1'0\n"
    )
    trace, compiled = _compile_one(ila, good, alpha)
    assert _is_valid(trace, compiled)


def test_memory_ite_update():
    """Conditional store (e.g. skip when dest == 0) compiles correctly."""
    ila = Ila("cst")
    dest = ila.new_bv_input("dest", 2)
    val = ila.new_bv_input("val", 8)
    regs = ila.new_mem_state("regs", 2, 8)
    instr = ila.new_instr("CST")
    instr.set_decode(val != 0)
    instr.set_update(
        regs, Ite(dest == 0, regs, Store(regs, dest, val))
    )
    alpha = parse_abstraction(
        "dest: {name: 'dest', type: input, [read: 1]}\n"
        "val: {name: 'val', type: input, [read: 1]}\n"
        "regs: {name: 'rf', type: memory, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    good = parse_design(
        "design d:\n  input dest 2\n  input val 8\n  memory rf 2 8\n"
        "  en := dest != 2'0\n  write rf dest val en\n"
    )
    trace, compiled = _compile_one(ila, good, alpha)
    assert _is_valid(trace, compiled)
    bad = parse_design(
        "design d:\n  input dest 2\n  input val 8\n  memory rf 2 8\n"
        "  write rf dest val 1'1\n"
    )
    trace, compiled = _compile_one(ila, bad, alpha)
    assert not _is_valid(trace, compiled)


def test_assume_signal_conjunction():
    """α assumes weaken the precondition (flushed instructions excluded)."""
    ila = Ila("va")
    go = ila.new_bv_input("go", 1)
    acc = ila.new_bv_state("acc", 8)
    instr = ila.new_instr("GO")
    instr.set_decode(go == 1)
    instr.set_update(acc, acc + 1)
    # Datapath only increments when `valid` (an arbitrary initial register).
    design = parse_design(
        "design d:\n  input go 1\n  register acc 8\n  register valid 1\n"
        "  acc := if valid & go then (acc + 8'1) else (acc)\n"
        "  valid := valid\n"
    )
    alpha_without = parse_abstraction(
        "go: {name: 'go', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    trace, compiled = _compile_one(ila, design, alpha_without)
    assert not _is_valid(trace, compiled)  # valid=0 falsifies the spec
    alpha_with = parse_abstraction(
        "go: {name: 'go', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1, [valid: 1]\n"
    )
    trace, compiled = _compile_one(ila, design, alpha_with)
    assert len(compiled.assumptions) == 1
    assert _is_valid(trace, compiled)


def test_fetch_role_selects_read_only_entry():
    """A unified spec memory splits into i_mem (fetch) and d_mem (data)."""
    ila = Ila("fetchy")
    pc = ila.new_bv_state("pc", 4)
    mem = ila.new_mem_state("mem", 4, 8)
    acc = ila.new_bv_state("acc", 8)
    fetched = ila.set_fetch(Load(mem, pc))
    instr = ila.new_instr("LOADACC")
    instr.set_decode(fetched == BvConst(1, 8))
    # Data load from address 2 (distinct from the fetch load).
    instr.set_update(acc, Load(mem, BvConst(2, 4)))
    instr.set_update(pc, pc + 1)
    alpha = parse_abstraction(
        "pc:  {name: 'pc', type: register, [read: 1, write: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "mem: {name: 'i_mem', type: memory, [read: 1]}\n"
        "mem: {name: 'd_mem', type: memory, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    design = parse_design(
        "design d:\n  register pc 4\n  register acc 8\n"
        "  memory i_mem 4 8\n  memory d_mem 4 8\n"
        "  inst := read i_mem pc\n"
        "  acc := if inst == 8'1 then (read d_mem 4'2) else (acc)\n"
        "  pc := if inst == 8'1 then (pc + 4'1) else (pc)\n"
    )
    trace, compiled = _compile_one(ila, design, alpha)
    assert _is_valid(trace, compiled)


def test_missing_alpha_entry_raises():
    ila, design, _ = _simple_setup()
    bad_alpha = parse_abstraction(
        "inc: {name: 'inc', type: input, [read: 1]}\n"
        "with cycles: 1\n"
    )
    trace = SymbolicEvaluator(design).run(1)
    compiler = ConstraintCompiler(ila, bad_alpha, trace)
    with pytest.raises(Exception, match="no abstraction entry"):
        compiler.compile_instruction(ila.instructions[0])
