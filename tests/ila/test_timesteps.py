"""Lock down the TimeStep conventions of Section 3.2 with a 2-cycle DUT.

read: t  = value at the *start* of step t; write: t = value at the *end*
of step t; inputs are sampled per step.  A two-stage "delayed adder" makes
each convention observable: stage 1 latches the operands, stage 2 commits.
"""

import pytest

from repro.abstraction import parse_abstraction
from repro.ila import Ila
from repro.oyster import SymbolicEvaluator, parse_design
from repro.ila.compiler import ConstraintCompiler
from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNSAT

DUT = """
design delayed_adder:
  input inc 8
  register staged 8
  register acc 8

  staged := inc
  acc := acc + staged
"""


def _spec():
    ila = Ila("delayed")
    inc = ila.new_bv_input("inc", 8)
    acc = ila.new_bv_state("acc", 8)
    instr = ila.new_instr("STEP")
    instr.set_decode(inc == inc)  # always
    instr.set_update(acc, acc + inc)
    return ila.validate()


def _valid(alpha_text):
    design = parse_design(DUT)
    alpha = parse_abstraction(alpha_text)
    trace = SymbolicEvaluator(design).run(alpha.cycles)
    compiled = ConstraintCompiler(_spec(), alpha, trace).compile_instruction(
        _spec().instructions[0]
    )
    solver = Solver()
    side = T.and_(*trace.side_conditions)
    solver.add(T.and_(side, compiled.antecedent(),
                      T.bv_not(compiled.consequent())))
    return solver.check() is UNSAT


def test_correct_timing_proves():
    # inc sampled at step 1 lands in acc at the end of step 2.
    assert _valid(
        "inc: {name: 'inc', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 2, write: 2]}\n"
        "with cycles: 2\n"
    )


def test_wrong_write_step_fails():
    # At the end of step 1 the addition has not happened yet.
    assert not _valid(
        "inc: {name: 'inc', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )


def test_wrong_input_step_fails():
    # inc read at step 2 is a different symbol than the staged one.
    assert not _valid(
        "inc: {name: 'inc', type: input, [read: 2]}\n"
        "acc: {name: 'acc', type: register, [read: 2, write: 2]}\n"
        "with cycles: 2\n"
    )


def test_register_read_is_start_of_step():
    # acc accumulates the *initial* (arbitrary) staged value during step 1,
    # so the spec's pre-state must be sampled at the start of step 2
    # (read: 2).  Sampling at step 1 misses that update and the check
    # rightly fails — demonstrating that read: t means start-of-step-t.
    assert not _valid(
        "inc: {name: 'inc', type: input, [read: 1]}\n"
        "acc: {name: 'acc', type: register, [read: 1, write: 2]}\n"
        "with cycles: 2\n"
    )
