"""Tests for the ILA modelling library."""

import pytest

from repro.ila import (
    And, BvConst, Concat, Extract, Ila, Implies, Ite, Load, Not, Or, SExt,
    Store, ZExt,
)
from repro.ila.spec import SpecError
from repro.ila import ast


def _small_ila():
    ila = Ila("t")
    op = ila.new_bv_input("op", 2)
    acc = ila.new_bv_state("acc", 8)
    mem = ila.new_mem_state("mem", 4, 8)
    return ila, op, acc, mem


def test_declarations_register():
    ila, op, acc, mem = _small_ila()
    assert ila.inputs["op"] is op
    assert ila.states["acc"] is acc
    assert ila.memories["mem"] is mem


def test_duplicate_declaration_rejected():
    ila, *_ = _small_ila()
    with pytest.raises(SpecError, match="duplicate"):
        ila.new_bv_input("op", 4)


def test_operator_widths():
    ila, op, acc, mem = _small_ila()
    assert (acc + 1).width == 8
    assert (acc == 3).width == 1
    assert Extract(acc, 7, 4).width == 4
    assert Concat(acc, acc).width == 16
    assert ZExt(op, 8).width == 8
    assert SExt(op, 8).width == 8
    assert Load(mem, Extract(acc, 3, 0)).width == 8


def test_width_mismatch_raises():
    ila, op, acc, _ = _small_ila()
    with pytest.raises(ValueError):
        _ = acc + op
    with pytest.raises(ValueError):
        Ite(acc == 1, acc, op)


def test_bool_connectives_require_bits():
    ila, op, acc, _ = _small_ila()
    with pytest.raises(ValueError):
        And(acc, acc)
    c = acc == 1
    assert And(c, c).width == 1
    assert Or(c, Not(c)).width == 1
    assert Implies(c, c).width == 1


def test_load_store_type_checks():
    ila, op, acc, mem = _small_ila()
    addr = Extract(acc, 3, 0)
    with pytest.raises(ValueError, match="address"):
        Load(mem, acc)  # 8-bit address into 4-bit memory
    store = Store(mem, addr, acc)
    assert store.addr_width == 4 and store.data_width == 8
    with pytest.raises(ValueError):
        Store(mem, addr, Extract(acc, 3, 0))


def test_memory_ite():
    ila, op, acc, mem = _small_ila()
    addr = Extract(acc, 3, 0)
    conditional = Ite(acc == 0, mem, Store(mem, addr, acc))
    assert isinstance(conditional, ast.MemIteExpr)


def test_instruction_construction():
    ila, op, acc, mem = _small_ila()
    instr = ila.new_instr("INC")
    instr.set_decode(op == 1)
    instr.set_update(acc, acc + 1)
    assert instr.updates_state("acc")
    assert not instr.updates_state("mem")
    assert ila.instr("INC") is instr


def test_instruction_errors():
    ila, op, acc, mem = _small_ila()
    instr = ila.new_instr("BAD")
    with pytest.raises(SpecError, match="width-1"):
        instr.set_decode(acc)
    instr.set_decode(op == 0)
    with pytest.raises(SpecError, match="two decodes"):
        instr.set_decode(op == 1)
    with pytest.raises(SpecError, match="input"):
        instr.set_update(op, BvConst(0, 2))
    instr.set_update(acc, acc)
    with pytest.raises(SpecError, match="twice"):
        instr.set_update(acc, acc + 1)
    with pytest.raises(SpecError, match="memory-valued"):
        instr.set_update(mem, acc)


def test_memconst_cannot_be_updated():
    ila = Ila("c")
    op = ila.new_bv_input("op", 1)
    rom = ila.new_mem_const("rom", 4, 8, [1, 2, 3])
    acc = ila.new_bv_state("acc", 8)
    instr = ila.new_instr("X")
    instr.set_decode(op == 0)
    with pytest.raises(SpecError, match="read-only"):
        instr.set_update(rom, Store(rom, Extract(acc, 3, 0), acc))


def test_validate_requires_decode_and_instructions():
    ila = Ila("v")
    with pytest.raises(SpecError, match="no instructions"):
        ila.validate()
    op = ila.new_bv_input("op", 1)
    ila.new_instr("X")
    with pytest.raises(SpecError, match="no decode"):
        ila.validate()


def test_decode_fields_and_fetch():
    ila = Ila("f")
    pc = ila.new_bv_state("pc", 8)
    mem = ila.new_mem_state("mem", 8, 8)
    fetch = ila.set_fetch(Load(mem, pc))
    field = ila.declare_decode_field("opcode", Extract(fetch, 3, 0))
    assert ila.fetch_expr is fetch
    assert ila.decode_fields["opcode"] is field
    with pytest.raises(SpecError, match="duplicate"):
        ila.declare_decode_field("opcode", field)


def test_duplicate_instruction_rejected():
    ila, op, acc, mem = _small_ila()
    ila.new_instr("A")
    with pytest.raises(SpecError, match="duplicate"):
        ila.new_instr("A")


def test_ilang_style_aliases():
    ila = Ila("alias")
    op = ila.NewBvInput("op", 2)
    acc = ila.NewBvState("acc", 8)
    instr = ila.NewInstr("I")
    instr.SetDecode(op == 0)
    instr.SetUpdate(acc, acc)
    assert ila.validate() is ila
