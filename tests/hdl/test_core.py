"""Tests for the mini-PyRTL wire/module layer."""

import pytest

from repro import hdl
from repro.oyster import Simulator, ast
from repro.oyster.printer import print_design


def test_module_requires_context():
    with pytest.raises(hdl.HDLError, match="no active Module"):
        hdl.Input(4, "a")


def test_basic_arithmetic_compiles_and_simulates():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        b = hdl.Input(8, "b")
        o = hdl.Output(8, "o")
        o <<= (a + b) ^ (a & b)
    sim = Simulator(module.to_oyster())
    out = sim.step({"a": 0x35, "b": 0x0F})["o"]
    assert out == ((0x35 + 0x0F) ^ (0x35 & 0x0F)) & 0xFF


def test_int_operands_coerce():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        o = hdl.Output(8, "o")
        o <<= (a + 3) - 1
    sim = Simulator(module.to_oyster())
    assert sim.step({"a": 10})["o"] == 12


def test_reverse_operators():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        o = hdl.Output(8, "o")
        o <<= 100 - a
    sim = Simulator(module.to_oyster())
    assert sim.step({"a": 1})["o"] == 99


def test_width_mismatch_raises():
    with hdl.Module("m"):
        a = hdl.Input(8, "a")
        b = hdl.Input(4, "b")
        with pytest.raises(hdl.HDLError, match="mismatch"):
            a + b


def test_comparisons_yield_single_bit():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        b = hdl.Input(8, "b")
        o = hdl.Output(1, "o")
        o <<= (a < b) & (a != b)
    sim = Simulator(module.to_oyster())
    assert sim.step({"a": 1, "b": 2})["o"] == 1
    assert sim.step({"a": 2, "b": 2})["o"] == 0


def test_signed_comparison_methods():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        b = hdl.Input(8, "b")
        o = hdl.Output(1, "o")
        o <<= a.slt(b)
    sim = Simulator(module.to_oyster())
    assert sim.step({"a": 0xFF, "b": 1})["o"] == 1  # -1 < 1 signed


def test_slicing_and_bit_select():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        o = hdl.Output(4, "o")
        bit = hdl.Output(1, "bit")
        o <<= a[2:6]
        bit <<= a[7]
    sim = Simulator(module.to_oyster())
    outs = sim.step({"a": 0b1011_0100})
    assert outs["o"] == 0b1101
    assert outs["bit"] == 1


def test_negative_indices():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        o = hdl.Output(1, "o")
        o <<= a[-1]
    sim = Simulator(module.to_oyster())
    assert sim.step({"a": 0x80})["o"] == 1


def test_zext_sext_truncate():
    with hdl.Module("m") as module:
        a = hdl.Input(4, "a")
        z = hdl.Output(8, "z")
        s = hdl.Output(8, "s")
        t = hdl.Output(2, "t")
        z <<= a.zext(8)
        s <<= a.sext(8)
        t <<= a.truncate(2)
    sim = Simulator(module.to_oyster())
    outs = sim.step({"a": 0b1010})
    assert outs["z"] == 0b0000_1010
    assert outs["s"] == 0b1111_1010
    assert outs["t"] == 0b10


def test_register_next_semantics():
    with hdl.Module("m") as module:
        inc = hdl.Input(8, "inc")
        r = hdl.Register(8, "r")
        o = hdl.Output(8, "o")
        r.next <<= r + inc
        o <<= r
    sim = Simulator(module.to_oyster())
    assert sim.step({"inc": 5})["o"] == 0
    assert sim.step({"inc": 5})["o"] == 5


def test_register_direct_drive_rejected():
    with hdl.Module("m"):
        r = hdl.Register(8, "r")
        with pytest.raises(hdl.HDLError, match=".next"):
            r <<= 1


def test_input_and_hole_cannot_be_driven():
    with hdl.Module("m"):
        a = hdl.Input(8, "a")
        h = hdl.Hole(8, "h")
        with pytest.raises(hdl.HDLError):
            a <<= 1
        with pytest.raises(hdl.HDLError):
            h <<= 1


def test_hole_records_deps():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        h = hdl.Hole(2, "ctl", deps=[a])
        t = hdl.wire(2, "t")
        t <<= h
    design = module.to_oyster()
    assert design.holes[0].deps == ("a",)


def test_duplicate_names_rejected():
    with hdl.Module("m"):
        hdl.Input(8, "a")
        with pytest.raises(hdl.HDLError, match="duplicate"):
            hdl.Input(8, "a")


def test_wires_have_no_truth_value():
    with hdl.Module("m"):
        a = hdl.Input(1, "a")
        with pytest.raises(hdl.HDLError, match="truth value"):
            if a:
                pass


def test_label_creates_named_alias():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        named = (a + 1).label("a_plus_one")
        o = hdl.Output(8, "o")
        o <<= named
    text = print_design(module.to_oyster())
    assert "a_plus_one :=" in text


def test_shift_operators():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        n = hdl.Input(8, "n")
        l = hdl.Output(8, "l")
        r = hdl.Output(8, "r")
        s = hdl.Output(8, "s")
        l <<= a.shl(n)
        r <<= a.lshr(n)
        s <<= a.ashr(n)
    sim = Simulator(module.to_oyster())
    outs = sim.step({"a": 0x90, "n": 2})
    assert outs["l"] == (0x90 << 2) & 0xFF
    assert outs["r"] == 0x90 >> 2
    assert outs["s"] == ((0x90 - 256) >> 2) & 0xFF
