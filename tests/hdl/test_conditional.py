"""Tests for conditional_assignment semantics (PyRTL first-match-wins)."""

import pytest

from repro import hdl
from repro.oyster import Simulator


def _build_priority():
    with hdl.Module("prio") as module:
        a = hdl.Input(1, "a")
        b = hdl.Input(1, "b")
        o = hdl.Output(4, "o")
        w = hdl.wire(4, "w")
        with hdl.conditional_assignment():
            with a:
                w |= 1
            with b:
                w |= 2
            with hdl.otherwise:
                w |= 3
        o <<= w
    return module.to_oyster()


def test_first_match_wins():
    sim = Simulator(_build_priority())
    assert sim.step({"a": 1, "b": 1})["o"] == 1
    assert sim.step({"a": 0, "b": 1})["o"] == 2
    assert sim.step({"a": 0, "b": 0})["o"] == 3


def test_wire_defaults_to_zero_without_otherwise():
    with hdl.Module("d") as module:
        a = hdl.Input(1, "a")
        o = hdl.Output(4, "o")
        w = hdl.wire(4, "w")
        with hdl.conditional_assignment():
            with a:
                w |= 9
        o <<= w
    sim = Simulator(module.to_oyster())
    assert sim.step({"a": 0})["o"] == 0
    assert sim.step({"a": 1})["o"] == 9


def test_register_holds_without_match():
    with hdl.Module("r") as module:
        en = hdl.Input(1, "en")
        r = hdl.Register(8, "r", init=10)
        with hdl.conditional_assignment():
            with en:
                r.next |= r + 1
    sim = Simulator(module.to_oyster())
    sim.step({"en": 0})
    assert sim.peek("r") == 10
    sim.step({"en": 1})
    assert sim.peek("r") == 11
    sim.step({"en": 0})
    assert sim.peek("r") == 11


def test_nested_conditions():
    with hdl.Module("n") as module:
        a = hdl.Input(1, "a")
        b = hdl.Input(1, "b")
        o = hdl.Output(4, "o")
        w = hdl.wire(4, "w")
        with hdl.conditional_assignment():
            with a:
                with b:
                    w |= 1
                with hdl.otherwise:
                    w |= 2
            with hdl.otherwise:
                w |= 3
        o <<= w
    sim = Simulator(module.to_oyster())
    assert sim.step({"a": 1, "b": 1})["o"] == 1
    assert sim.step({"a": 1, "b": 0})["o"] == 2
    assert sim.step({"a": 0, "b": 1})["o"] == 3


def test_memory_write_under_condition():
    with hdl.Module("mw") as module:
        we = hdl.Input(1, "we")
        addr = hdl.Input(2, "addr")
        data = hdl.Input(8, "data")
        mem = hdl.MemBlock(2, 8, "mem")
        with hdl.conditional_assignment():
            with we:
                mem[addr] |= data
    sim = Simulator(module.to_oyster())
    sim.step({"we": 1, "addr": 2, "data": 50})
    sim.step({"we": 0, "addr": 2, "data": 99})
    assert sim.peek_memory("mem", 2) == 50


def test_predicated_connect_outside_block_rejected():
    with hdl.Module("e"):
        a = hdl.Input(1, "a")
        w = hdl.wire(4, "w")
        with pytest.raises(hdl.HDLError, match="conditional_assignment"):
            w |= 1


def test_with_wire_outside_conditional_rejected():
    with hdl.Module("e2"):
        a = hdl.Input(1, "a")
        with pytest.raises(hdl.HDLError, match="conditional_assignment"):
            with a:
                pass


def test_connect_at_top_of_conditional_rejected():
    with hdl.Module("e3"):
        a = hdl.Input(1, "a")
        w = hdl.wire(4, "w")
        with pytest.raises(hdl.HDLError, match="with"):
            with hdl.conditional_assignment():
                w |= 1


def test_wide_condition_rejected():
    with hdl.Module("e4"):
        a = hdl.Input(2, "a")
        with pytest.raises(hdl.HDLError, match="width 1"):
            with hdl.conditional_assignment():
                with a:
                    pass


def test_conditionals_do_not_nest():
    with hdl.Module("e5"):
        with pytest.raises(hdl.HDLError, match="nest"):
            with hdl.conditional_assignment():
                with hdl.conditional_assignment():
                    pass


def test_multiple_targets_in_one_block():
    with hdl.Module("multi") as module:
        sel = hdl.Input(1, "sel")
        x = hdl.Output(4, "x")
        y = hdl.Output(4, "y")
        wx = hdl.wire(4, "wx")
        wy = hdl.wire(4, "wy")
        with hdl.conditional_assignment():
            with sel:
                wx |= 1
                wy |= 2
            with hdl.otherwise:
                wx |= 3
                wy |= 4
        x <<= wx
        y <<= wy
    sim = Simulator(module.to_oyster())
    outs = sim.step({"sel": 1})
    assert (outs["x"], outs["y"]) == (1, 2)
    outs = sim.step({"sel": 0})
    assert (outs["x"], outs["y"]) == (3, 4)
