"""Error-path and helper coverage for the HDL layer."""

import pytest

from repro import hdl
from repro.oyster import ast


def test_rotate_requires_power_of_two_width():
    with hdl.Module("m"):
        a = hdl.Input(12, "a")
        n = hdl.Input(4, "n")
        with pytest.raises(hdl.HDLError, match="power-of-two"):
            hdl.rotate_left_by(a, n)


def test_rotate_amount_too_narrow():
    with hdl.Module("m"):
        a = hdl.Input(8, "a")
        n = hdl.Input(2, "n")
        with pytest.raises(hdl.HDLError, match="too narrow"):
            hdl.rotate_left_by(a, n)


def test_concat_requires_wires():
    with hdl.Module("m"):
        with pytest.raises(hdl.HDLError):
            hdl.concat()


def test_mux_needs_wire_input_for_width():
    with hdl.Module("m"):
        sel = hdl.Input(1, "sel")
        with pytest.raises(hdl.HDLError, match="non-integer"):
            hdl.mux(sel, 1, 2)


def test_select_width_mismatch():
    with hdl.Module("m"):
        c = hdl.Input(1, "c")
        a = hdl.Input(4, "a")
        b = hdl.Input(8, "b")
        with pytest.raises(hdl.HDLError, match="widths"):
            hdl.select(c, a, b)


def test_select_condition_must_be_bit():
    with hdl.Module("m"):
        c = hdl.Input(2, "c")
        a = hdl.Input(4, "a")
        with pytest.raises(hdl.HDLError, match="width 1"):
            hdl.select(c, a, a)


def test_clmul_width_mismatch():
    with hdl.Module("m"):
        a = hdl.Input(8, "a")
        b = hdl.Input(4, "b")
        with pytest.raises(hdl.HDLError, match="share a width"):
            hdl.carryless_multiply(a, b)


def test_slice_errors():
    with hdl.Module("m"):
        a = hdl.Input(8, "a")
        with pytest.raises(hdl.HDLError, match="out of range"):
            a[9]
        with pytest.raises(hdl.HDLError, match="out of range"):
            a[4:20]
        with pytest.raises(hdl.HDLError, match="strided"):
            a[0:8:2]
        with pytest.raises(hdl.HDLError, match="cannot index"):
            a["bit"]


def test_resize_errors():
    with hdl.Module("m"):
        a = hdl.Input(8, "a")
        with pytest.raises(hdl.HDLError, match="narrower"):
            a.zext(4)
        with pytest.raises(hdl.HDLError, match="narrower"):
            a.sext(4)
        with pytest.raises(hdl.HDLError, match="wider"):
            a.truncate(12)
        assert a.zext(8) is a
        assert a.sext(8) is a
        assert a.truncate(8) is a


def test_bad_operand_types():
    with hdl.Module("m"):
        a = hdl.Input(8, "a")
        with pytest.raises(hdl.HDLError, match="cannot use"):
            a + "three"


def test_bare_int_needs_width_hint():
    from repro.hdl.corecircuits import _as_wire

    with hdl.Module("m"):
        with pytest.raises(hdl.HDLError, match="width"):
            _as_wire(5)


# ---------------------------------------------------------------------------
# Design dataclass helpers
# ---------------------------------------------------------------------------


def test_design_helpers():
    from repro.oyster import parse_design

    design = parse_design(
        "design h:\n  input a 4\n  hole x 1\n  t := a[0]\n"
    )
    assert design.decl_of("a").width == 4
    assert design.decl_of("ghost") is None
    replaced = design.replace_holes(
        extra_stmts=[ast.Assign("x", ast.Const(1, 1))]
    )
    assert replaced.holes == []
    assert replaced.stmts[0] == ast.Assign("x", ast.Const(1, 1))
    restmts = design.with_stmts([ast.Assign("t", ast.Var("a"))])
    assert len(restmts.stmts) == 1
