"""Tests for MemBlock and the combinational building blocks."""

import pytest

from repro import hdl
from repro.oyster import Simulator


def test_mem_read_write_roundtrip():
    with hdl.Module("m") as module:
        addr = hdl.Input(3, "addr")
        data = hdl.Input(8, "data")
        we = hdl.Input(1, "we")
        o = hdl.Output(8, "o")
        mem = hdl.MemBlock(3, 8, "mem")
        o <<= mem[addr]
        mem.write(addr, data, enable=we)
    sim = Simulator(module.to_oyster())
    sim.step({"addr": 5, "data": 123, "we": 1})
    assert sim.step({"addr": 5, "data": 0, "we": 0})["o"] == 123


def test_mem_indexed_acts_as_value():
    with hdl.Module("m") as module:
        addr = hdl.Input(2, "addr")
        o = hdl.Output(8, "o")
        mem = hdl.MemBlock(2, 8, "mem")
        o <<= mem[addr] + 1
    sim = Simulator(module.to_oyster())
    assert sim.step({"addr": 0})["o"] == 1


def test_pure_write_emits_no_read():
    with hdl.Module("m") as module:
        addr = hdl.Input(2, "addr")
        data = hdl.Input(8, "data")
        we = hdl.Input(1, "we")
        mem = hdl.MemBlock(2, 8, "mem")
        with hdl.conditional_assignment():
            with we:
                mem[addr] |= data
    design = module.to_oyster()
    from repro.oyster import ast
    reads = [
        stmt for stmt in design.stmts
        if isinstance(stmt, ast.Assign) and isinstance(stmt.expr, ast.Read)
    ]
    assert reads == []


def test_mem_address_width_checked():
    with hdl.Module("m"):
        addr = hdl.Input(4, "addr")
        mem = hdl.MemBlock(2, 8, "mem")
        with pytest.raises(hdl.HDLError, match="width"):
            mem[addr]


def test_mem_data_width_checked():
    with hdl.Module("m"):
        addr = hdl.Input(2, "addr")
        data = hdl.Input(4, "data")
        mem = hdl.MemBlock(2, 8, "mem")
        with pytest.raises(hdl.HDLError, match="width"):
            mem.write(addr, data)


def test_mux_is_pyrtl_argument_order():
    # mux(select, falsecase, truecase)
    with hdl.Module("m") as module:
        sel = hdl.Input(1, "sel")
        o = hdl.Output(8, "o")
        o <<= hdl.mux(sel, hdl.Const(10, 8), hdl.Const(20, 8))
    sim = Simulator(module.to_oyster())
    assert sim.step({"sel": 0})["o"] == 10
    assert sim.step({"sel": 1})["o"] == 20


def test_wide_mux():
    with hdl.Module("m") as module:
        sel = hdl.Input(3, "sel")
        a = hdl.Input(8, "a")
        o = hdl.Output(8, "o")
        o <<= hdl.mux(sel, a, a + 1, a + 2, a + 3, a + 4, a + 5, a + 6, a + 7)
    sim = Simulator(module.to_oyster())
    for k in range(8):
        assert sim.step({"sel": k, "a": 100})["o"] == 100 + k


def test_mux_input_count_checked():
    with hdl.Module("m"):
        sel = hdl.Input(2, "sel")
        a = hdl.Input(8, "a")
        with pytest.raises(hdl.HDLError, match="needs 4 inputs"):
            hdl.mux(sel, a, a)


def test_select_is_truecase_first():
    with hdl.Module("m") as module:
        c = hdl.Input(1, "c")
        o = hdl.Output(8, "o")
        o <<= hdl.select(c, hdl.Const(1, 8), hdl.Const(2, 8))
    sim = Simulator(module.to_oyster())
    assert sim.step({"c": 1})["o"] == 1
    assert sim.step({"c": 0})["o"] == 2


def test_concat_msb_first():
    with hdl.Module("m") as module:
        a = hdl.Input(4, "a")
        b = hdl.Input(4, "b")
        c = hdl.Input(4, "c")
        o = hdl.Output(12, "o")
        o <<= hdl.concat(a, b, c)
    sim = Simulator(module.to_oyster())
    assert sim.step({"a": 0xA, "b": 0xB, "c": 0xC})["o"] == 0xABC


def test_barrel_shifts():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        n = hdl.Input(3, "n")
        l = hdl.Output(8, "l")
        r = hdl.Output(8, "r")
        s = hdl.Output(8, "s")
        l <<= hdl.barrel_shift_left(a, n)
        r <<= hdl.barrel_shift_right(a, n)
        s <<= hdl.barrel_shift_right(a, n, arithmetic=True)
    sim = Simulator(module.to_oyster())
    outs = sim.step({"a": 0x96, "n": 3})
    assert outs["l"] == (0x96 << 3) & 0xFF
    assert outs["r"] == 0x96 >> 3
    assert outs["s"] == ((0x96 - 256) >> 3) & 0xFF


def test_rotate_left_by_wire():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        n = hdl.Input(3, "n")
        o = hdl.Output(8, "o")
        o <<= hdl.rotate_left_by(a, n)
    sim = Simulator(module.to_oyster())
    value = 0b1011_0010
    for n in range(8):
        expected = ((value << n) | (value >> (8 - n))) & 0xFF
        assert sim.step({"a": value, "n": n})["o"] == expected


def test_carryless_multiply_matches_reference():
    with hdl.Module("m") as module:
        a = hdl.Input(8, "a")
        b = hdl.Input(8, "b")
        o = hdl.Output(16, "o")
        o <<= hdl.carryless_multiply(a, b)
    sim = Simulator(module.to_oyster())

    def clmul(x, y):
        out = 0
        for i in range(8):
            if (y >> i) & 1:
                out ^= x << i
        return out

    for x, y in [(0, 0), (255, 255), (0x35, 0x8C), (1, 170), (0x80, 0x80)]:
        assert sim.step({"a": x, "b": y})["o"] == clmul(x, y)
