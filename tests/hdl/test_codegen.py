"""Tests for the Figure 7-style PyRTL code generation."""

import pytest

from repro.designs import alu_machine, riscv
from repro.hdl.codegen import control_loc, generate_pyrtl_control
from repro.synthesis import synthesize


@pytest.fixture(scope="module")
def alu_result():
    problem = alu_machine.build_problem()
    return problem, synthesize(problem, timeout=300)


def test_generates_with_blocks(alu_result):
    problem, result = alu_result
    text = generate_pyrtl_control(problem, result)
    assert text.startswith("with conditional_assignment:")
    assert "with op == 2'1:" in text
    assert "# ADD" in text
    assert "wb_en |= 1" in text


def test_every_instruction_and_hole_present(alu_result):
    problem, result = alu_result
    text = generate_pyrtl_control(problem, result)
    for instruction in problem.spec.instructions:
        assert f"# {instruction.name}" in text
    for hole in problem.sketch.holes:
        assert f"{hole.name} |=" in text


def test_control_loc_counts():
    text = "with a:\n    x |= 1\n    # comment\n\n    y |= 2\n"
    assert control_loc(text) == 3


def test_riscv_grouping_by_opcode():
    problem = riscv.build_problem(
        "RV32I", "single_cycle",
        instructions=["lw", "lb", "add", "sub"],
    )
    result = synthesize(problem, timeout=600)
    text = generate_pyrtl_control(problem, result)
    # Loads share one opcode group with nested funct3 dispatch (Figure 7).
    assert text.count("with opcode == 7'3:") == 1
    assert "funct3 == 3'2" in text  # lw
    assert "funct3 == 3'0" in text  # lb
    # R-type group dispatches on funct3 & funct7.
    assert text.count("with opcode == 7'51:") == 1  # 0x33, R-type
    loc = control_loc(text)
    assert loc > 4 * len(problem.sketch.holes)  # per-instruction signals
