"""Synthesis + verification + differential-simulation tests for the cores.

Full-ISA synthesis runs live in the benchmarks; here we synthesize
representative subsets (every instruction class) to keep the suite fast, and
differentially simulate the completed cores against the golden ISS —
including branches, jumps, and pipelined hazards for the two-stage core.
"""

import random

import pytest

from repro.designs import riscv
from repro.designs.riscv.encodings import INSTRUCTIONS, assemble, encode
from repro.designs.riscv.iss import GoldenISS
from repro.designs.riscv.reference import reference_control_values
from repro.oyster.compiled import CompiledSimulator
from repro.synthesis import synthesize, verify_design

# One instruction per control class, plus the interesting memory/pc cases.
SUBSET = [
    "lui", "auipc", "jal", "jalr", "beq", "blt", "lw", "lb", "lhu",
    "sw", "sb", "addi", "srai", "add", "sltu", "xor",
]

ZBKB_SUBSET = ["rol", "rori", "andn", "pack", "rev8", "brev8", "zip",
               "unzip", "clmul"]

# Every test here rides one of the module-scoped core-synthesis fixtures
# (~30-45s each), so the whole module belongs to the nightly lane.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def single_cycle():
    problem = riscv.build_problem("RV32I", "single_cycle",
                                  instructions=SUBSET)
    result = synthesize(problem, timeout=600)
    return problem, result


@pytest.fixture(scope="module")
def two_stage():
    problem = riscv.build_problem("RV32I", "two_stage", instructions=SUBSET)
    result = synthesize(problem, timeout=600)
    return problem, result


def test_single_cycle_verifies(single_cycle):
    problem, result = single_cycle
    verdict = verify_design(
        result.completed_design, problem.spec, problem.alpha,
        instructions=["add", "lw", "sb", "beq", "jalr"],
    )
    assert verdict.ok, verdict.summary()


def test_single_cycle_key_signals_match_reference(single_cycle):
    _, result = single_cycle
    relevant = {
        "lui": ("reg_write", "alu_imm", "imm_sel", "alu_op"),
        "jal": ("reg_write", "jump", "imm_sel"),
        "beq": ("branch_en", "reg_write", "mem_write", "jump", "imm_sel"),
        "lw": ("mem_read", "reg_write", "mask_mode", "alu_op", "alu_imm"),
        "sb": ("mem_write", "mask_mode", "imm_sel", "reg_write"),
        "add": ("alu_op", "alu_imm", "reg_write"),
    }
    from repro.designs.riscv.datapath import ALU_OPS

    def canonical(signal, value):
        # ALU mux slots beyond the op list are copyb padding.
        if signal == "alu_op":
            return ALU_OPS[value] if value < len(ALU_OPS) else "copyb"
        if signal == "mask_mode":
            return min(value, 2)  # 2 and 3 both select "word"
        return value

    for name, signals in relevant.items():
        got = result.hole_values_for(name)
        expected = reference_control_values(name)
        for signal in signals:
            assert canonical(signal, got[signal]) == canonical(
                signal, expected[signal]
            ), (name, signal, got)


def _random_program(rng, names, length, loads_stores_window=(64, 96)):
    program = []
    for _ in range(length):
        name = rng.choice(names)
        spec = INSTRUCTIONS[name]
        # x1 holds the data-window base and must stay stable: clobbering
        # it sends loads to addresses where the split-memory core (no
        # program words in d_mem) and the unified-memory ISS differ.
        kwargs = {"rd": rng.choice([r for r in range(32) if r != 1]),
                  "rs1": rng.randrange(32), "rs2": rng.randrange(32)}
        if name in ("lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw"):
            kwargs["rs1"] = 1  # x1 holds the data window base
            kwargs["imm"] = rng.randrange(0, 120)
        elif spec.fmt == "I":
            kwargs["imm"] = rng.randrange(-2048, 2048)
        elif spec.fmt == "I-SHAMT":
            kwargs["imm"] = rng.randrange(32)
        elif spec.fmt == "U":
            kwargs["imm"] = rng.randrange(1 << 32) & 0xFFFFF000
        program.append((name, kwargs))
    return program


def _differential_run(design, program, steps, data_window, rng,
                      pipeline_fill=0):
    words = assemble(program)
    data = {w: rng.randrange(1 << 32) for w in range(*data_window)}
    regs = {i: rng.randrange(1 << 32) for i in range(2, 32)}
    regs[1] = data_window[0] * 4
    iss = GoldenISS(memory={**words, **data}, pc=0, regs=regs)
    register_init = {"pc": 0}
    if any(reg.name == "fetch_pc" for reg in design.registers):
        register_init["fetch_pc"] = 0
    sim = CompiledSimulator(
        design,
        memory_init={"i_mem": dict(words), "d_mem": dict(data),
                     "rf": dict(regs)},
        register_init=register_init,
    )
    for _ in range(pipeline_fill):
        sim.step({})
    for step in range(steps):
        iss.step()
        sim.step({})
        assert sim.peek("pc") == iss.pc, (
            step, hex(sim.peek("pc")), hex(iss.pc)
        )
    for reg in range(32):
        assert sim.peek_memory("rf", reg) == iss.regs[reg], reg
    for word in data:
        assert sim.peek_memory("d_mem", word) == iss.memory[word], word


def test_single_cycle_differential_straightline(single_cycle):
    _, result = single_cycle
    rng = random.Random(7)
    straight = [n for n in SUBSET
                if INSTRUCTIONS[n].fmt not in ("B", "J")
                and n not in ("jalr",)]
    program = _random_program(rng, straight, 80)
    # The data window must sit above the program image: the golden ISS has
    # one unified memory, so stores into the program range would corrupt it.
    _differential_run(result.completed_design, program, 80, (128, 160), rng)


def test_single_cycle_differential_with_branches(single_cycle):
    _, result = single_cycle
    rng = random.Random(11)
    # A loop: count x2 down from 5, accumulating into x3.
    program = [
        ("addi", {"rd": 2, "rs1": 0, "imm": 5}),
        ("addi", {"rd": 3, "rs1": 0, "imm": 0}),
        ("add", {"rd": 3, "rs1": 3, "rs2": 2}),
        ("addi", {"rd": 2, "rs1": 2, "imm": -1}),
        ("beq", {"rs1": 2, "rs2": 0, "imm": 8}),
        ("jal", {"rd": 0, "imm": -12}),
        ("addi", {"rd": 4, "rs1": 0, "imm": 123}),
        ("jal", {"rd": 0, "imm": 0}),
    ]
    words = assemble(program)
    iss = GoldenISS(memory=dict(words), pc=0)
    sim = CompiledSimulator(result.completed_design,
                            memory_init={"i_mem": dict(words)},
                            register_init={"pc": 0})
    for _ in range(40):
        iss.step()
        sim.step({})
        assert sim.peek("pc") == iss.pc
    assert sim.peek_memory("rf", 3) == 5 + 4 + 3 + 2 + 1
    assert sim.peek_memory("rf", 4) == 123


def test_two_stage_verifies(two_stage):
    problem, result = two_stage
    verdict = verify_design(
        result.completed_design, problem.spec, problem.alpha,
        instructions=["add", "lw", "sw", "beq", "jal"],
    )
    assert verdict.ok, verdict.summary()


def test_two_stage_differential_with_hazards(two_stage):
    """Back-to-back dependent instructions exercise the WB->read bypass."""
    _, result = two_stage
    program = [
        ("addi", {"rd": 1, "rs1": 0, "imm": 10}),
        ("addi", {"rd": 2, "rs1": 1, "imm": 5}),    # reads x1 next cycle
        ("add", {"rd": 3, "rs1": 2, "rs2": 1}),     # reads x2 next cycle
        ("sw", {"rs1": 0, "rs2": 3, "imm": 256}),
        ("lw", {"rd": 4, "rs1": 0, "imm": 256}),
        ("addi", {"rd": 5, "rs1": 4, "imm": 1}),    # load-use bypass
        ("jal", {"rd": 0, "imm": 0}),
    ]
    words = assemble(program)
    sim = CompiledSimulator(result.completed_design,
                            memory_init={"i_mem": dict(words)},
                            register_init={"pc": 0, "fetch_pc": 0})
    for _ in range(12):
        sim.step({})
    assert sim.peek_memory("rf", 2) == 15
    assert sim.peek_memory("rf", 3) == 25
    assert sim.peek_memory("rf", 4) == 25
    assert sim.peek_memory("rf", 5) == 26


def test_two_stage_branch_flush_free_cpi_one(two_stage):
    """Straight-line code retires one instruction per cycle (CPI=1)."""
    _, result = two_stage
    program = [("addi", {"rd": i % 31 + 1, "rs1": 0, "imm": i})
               for i in range(20)]
    program.append(("jal", {"rd": 0, "imm": 0}))
    words = assemble(program)
    sim = CompiledSimulator(result.completed_design,
                            memory_init={"i_mem": dict(words)},
                            register_init={"pc": 0, "fetch_pc": 0})
    cycles = 0
    while sim.peek("fetch_pc") != 20 * 4 and cycles < 100:
        sim.step({})
        cycles += 1
    assert cycles == 20  # one fetch per cycle


@pytest.mark.slow
def test_zbkb_instructions_synthesize_and_verify():
    problem = riscv.build_problem("RV32I+Zbkc", "single_cycle",
                                  instructions=ZBKB_SUBSET + ["clmulh"])
    result = synthesize(problem, timeout=600)
    verdict = verify_design(
        result.completed_design, problem.spec, problem.alpha,
        instructions=["rol", "rev8", "zip", "clmul"],
    )
    assert verdict.ok, verdict.summary()
    # Differential run against the ISS.
    rng = random.Random(3)
    program = _random_program(rng, ZBKB_SUBSET + ["clmulh"], 40)
    _differential_run(result.completed_design, program, 40, (64, 96), rng)
