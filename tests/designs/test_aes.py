"""Tests for the AES accelerator: golden model, spec, synthesis, hardware."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs.aes import (
    RCON,
    SBOX,
    aes128_encrypt_block,
    build_problem,
    expand_key,
)
from repro.designs.aes.golden import (
    bytes_to_int,
    mix_columns,
    next_round_key,
    shift_rows,
    sub_bytes,
)
from repro.designs.aes.sketch import RCON_INIT, SBOX_INIT
from repro.oyster.compiled import CompiledSimulator
from repro.synthesis import synthesize, verify_design

FIPS_PT = 0x3243F6A8885A308D313198A2E0370734
FIPS_KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
FIPS_CT = 0x3925841D02DC09FBDC118597196A0B32


def test_sbox_known_values():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert len(set(SBOX)) == 256  # a permutation


def test_rcon_values():
    assert RCON[1:11] == (1, 2, 4, 8, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def test_fips197_appendix_b():
    assert aes128_encrypt_block(FIPS_PT, FIPS_KEY) == FIPS_CT


def test_fips197_appendix_c1():
    assert aes128_encrypt_block(
        0x00112233445566778899AABBCCDDEEFF,
        0x000102030405060708090A0B0C0D0E0F,
    ) == 0x69C4E0D86A7B0430D8CDB78070B4C55A


def test_key_expansion_first_step():
    keys = expand_key(FIPS_KEY)
    # FIPS-197 A.1: w[4..7] of the expanded key.
    assert keys[1] == 0xA0FAFE1788542CB123A339392A6C7605


def test_shift_rows_example():
    state = bytes_to_int(range(16))
    shifted = shift_rows(state)
    out = list(shifted.to_bytes(16, "big"))
    # Row 0 unshifted: byte 0 stays.
    assert out[0] == 0
    # Row 1 rotates by one column: position (c=0, r=1) gets (c=1, r=1) = 5.
    assert out[1] == 5


def test_mix_columns_known_vector():
    # FIPS-197 / common test: column db 13 53 45 -> 8e 4d a1 bc
    state = bytes_to_int([0xDB, 0x13, 0x53, 0x45] + [0] * 12)
    mixed = list(mix_columns(state).to_bytes(16, "big"))
    assert mixed[:4] == [0x8E, 0x4D, 0xA1, 0xBC]


@settings(max_examples=20, deadline=None)
@given(
    pt=st.integers(min_value=0, max_value=(1 << 128) - 1),
    key=st.integers(min_value=0, max_value=(1 << 128) - 1),
)
def test_encrypt_is_length_preserving_and_deterministic(pt, key):
    first = aes128_encrypt_block(pt, key)
    assert 0 <= first < (1 << 128)
    assert aes128_encrypt_block(pt, key) == first


@pytest.fixture(scope="module")
def synthesized():
    problem = build_problem()
    result = synthesize(problem, timeout=600)
    return problem, result


@pytest.mark.slow
def test_aes_synthesis_verifies(synthesized):
    """Full independent verification (the unfolded FSM queries are large)."""
    problem, result = synthesized
    verdict = verify_design(
        result.completed_design, problem.spec, problem.alpha,
        const_mems=problem.const_mems,
    )
    assert verdict.ok, verdict.summary()


def test_aes_state_hole_dispatches_on_round(synthesized):
    # The per-round "state" values are don't-cares for every instruction
    # (the independent verifier and the FIPS-197 simulations both accept a
    # constant), so CEGIS canonicalization zeroes them and the control
    # union emits a bare constant instead of a round-dispatching if-tree —
    # the Section 5.3 control-size win.  A dispatch (Ite) would also be
    # correct; what must never appear is an unresolved hole.
    _, result = synthesized
    from repro.oyster import ast

    assert isinstance(result.hole_exprs["state"], (ast.Const, ast.Ite))
    assert result.hole_exprs["state"] == ast.Const(0, 2)


def _run_accelerator(design, plaintext, key, cycles=11):
    sim = CompiledSimulator(
        design,
        memory_init={"sbox": SBOX_INIT, "rcon": RCON_INIT},
    )
    for _ in range(cycles):
        sim.step({"key_in": key, "plaintext": plaintext})
    return sim.peek("ciphertext")


def test_accelerator_matches_fips(synthesized):
    _, result = synthesized
    assert _run_accelerator(
        result.completed_design, FIPS_PT, FIPS_KEY
    ) == FIPS_CT


@settings(max_examples=5, deadline=None)
@given(
    pt=st.integers(min_value=0, max_value=(1 << 128) - 1),
    key=st.integers(min_value=0, max_value=(1 << 128) - 1),
)
def test_accelerator_matches_golden_model(synthesized, pt, key):
    _, result = synthesized
    assert _run_accelerator(result.completed_design, pt, key) == (
        aes128_encrypt_block(pt, key)
    )


@pytest.mark.slow
def test_monolithic_aes_agrees(synthesized):
    problem, per_instruction = synthesized
    mono = synthesize(problem, mode="monolithic", timeout=600)
    assert _run_accelerator(mono.completed_design, FIPS_PT, FIPS_KEY) == (
        FIPS_CT
    )
