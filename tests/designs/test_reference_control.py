"""The hand-written reference decoders must themselves be correct.

Table 2 compares generated control against these references, and the
constant-time study compares cycle counts against the reference crypto
core — so the references are verified against the same ILA specs here.
"""

import pytest

from repro.designs import riscv
from repro.designs.riscv.reference import (
    build_reference_design,
    reference_control_text,
    reference_control_values,
)
from repro.synthesis import verify_design


def test_reference_text_parses_for_all_variants():
    from repro.designs.riscv.reference import parse_control_text

    for variant in ("RV32I", "RV32I+Zbkb", "RV32I+Zbkc"):
        stmts = parse_control_text(reference_control_text(variant))
        targets = {stmt.target for stmt in stmts}
        assert "alu_op" in targets and "reg_write" in targets


def test_reference_values_cover_all_signals():
    from repro.designs.riscv.sketch_single_cycle import CONTROL_HOLES

    for name in ("add", "lw", "sb", "beq", "jal", "lui", "rol", "clmul"):
        values = reference_control_values(name)
        assert set(values) == set(CONTROL_HOLES)


@pytest.mark.slow
def test_reference_design_verifies_representatives():
    problem = riscv.build_problem("RV32I+Zbkc", "single_cycle")
    design = build_reference_design(problem.sketch, "RV32I+Zbkc")
    verdict = verify_design(
        design, problem.spec, problem.alpha,
        instructions=["add", "sub", "lw", "sb", "beq", "jalr", "lui",
                      "srai", "rol", "rev8", "pack", "clmulh"],
    )
    assert verdict.ok, verdict.summary()


def test_reference_loc_is_compact():
    from repro.hdl.codegen import control_loc

    base = control_loc(reference_control_text("RV32I"))
    zbkc = control_loc(reference_control_text("RV32I+Zbkc"))
    assert base < 40  # hand-written control is table-like and small
    assert zbkc > base  # extensions add decoder cases
