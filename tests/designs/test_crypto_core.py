"""Tests for the constant-time crypto core and the SHA-256 study."""

import hashlib

import pytest

from repro.designs.crypto_core import (
    CMOV_ISA,
    build_problem,
    reference_control_values,
    run_sha256,
    sha256_reference,
)
from repro.designs.crypto_core.sha256_program import (
    MSG_BASE,
    OUT_BASE,
    halt_pc,
    pack_message_words,
    program_image,
    sha256_program,
)
from repro.designs.riscv.iss import GoldenISS
from repro.synthesis import synthesize, verify_design
from repro.synthesis.engine import splice_control
from repro.synthesis.result import InstructionSolution, SynthesisFailure
from repro.synthesis.union import control_union

SUBSET = ["lui", "jal", "jalr", "lw", "sw", "addi", "slli", "sltu",
          "add", "xor", "cmov"]


def test_isa_has_no_conditional_branches():
    from repro.designs.riscv.encodings import INSTRUCTIONS

    for name in CMOV_ISA:
        assert INSTRUCTIONS[name].fmt != "B"


def _reference_design(problem):
    solutions = [
        InstructionSolution(instr.name, reference_control_values(instr.name),
                            0, 0.0)
        for instr in problem.spec.instructions
    ]
    _, stmts = control_union(problem, solutions)
    return splice_control(problem.sketch, stmts)


@pytest.fixture(scope="module")
def subset_result():
    problem = build_problem(instructions=SUBSET)
    return problem, synthesize(problem, timeout=600)


@pytest.mark.slow
def test_subset_verifies(subset_result):
    problem, result = subset_result
    verdict = verify_design(
        result.completed_design, problem.spec, problem.alpha,
        instructions=["add", "lw", "sw", "jal", "cmov"],
    )
    assert verdict.ok, verdict.summary()


def test_instruction_valid_assume_is_load_bearing():
    """Without the instruction_valid assume, synthesis must fail.

    This is exactly the scenario Section 4.2 describes: the solver can
    always pick an initial flush that kills the instruction.
    """
    from repro.abstraction.model import AbstractionFunction

    problem = build_problem(instructions=["add"])
    alpha = problem.alpha
    problem.alpha = AbstractionFunction(
        alpha.mappings, alpha.cycles,
        assumes=[a for a in alpha.assumes if a[0] != "instruction_valid"],
        field_bindings=alpha.field_bindings,
    )
    with pytest.raises(SynthesisFailure):
        synthesize(problem, timeout=300)


@pytest.mark.slow
def test_reference_values_verify():
    problem = build_problem(instructions=SUBSET)
    hole_values = None
    for instr in problem.spec.instructions:
        values = reference_control_values(instr.name)
        verdict = verify_design(
            problem.sketch, problem.spec, problem.alpha,
            hole_values=values, instructions=[instr.name],
        )
        assert verdict.ok, (instr.name, verdict.summary())


class TestSha256Program:
    def _iss_digest(self, message):
        memory = dict(program_image())
        memory.update(pack_message_words(message))
        iss = GoldenISS(memory=memory, pc=0,
                        regs={1: MSG_BASE, 2: len(message)})
        assert iss.run(20_000, halt_pc=halt_pc())
        return ([iss.memory.get((OUT_BASE >> 2) + i, 0) for i in range(8)],
                iss.instret)

    def test_digest_matches_hashlib(self):
        for message in (b"", b"abc", b"a" * 32, bytes(range(19))):
            digest, _ = self._iss_digest(message)
            assert digest == sha256_reference(message), message

    def test_instruction_count_is_length_independent(self):
        counts = {self._iss_digest(b"x" * n)[1] for n in (0, 4, 17, 32)}
        assert len(counts) == 1

    def test_program_is_branch_free(self):
        from repro.designs.riscv.encodings import INSTRUCTIONS

        names = {name for name, _ in sha256_program()}
        assert all(INSTRUCTIONS[n].fmt != "B" for n in names)
        assert "cmov" in names


@pytest.mark.slow
class TestConstantTimeStudy:
    """The Section 5.2 experiment, on a reduced set of lengths."""

    @pytest.fixture(scope="class")
    def cores(self):
        problem = build_problem()
        result = synthesize(problem, timeout=900)
        return (_reference_design(problem), result.completed_design)

    def test_generated_core_constant_time_and_correct(self, cores):
        reference, generated = cores
        cycle_counts = set()
        for length in (4, 11, 21, 32):
            message = bytes((i * 7 + 3) & 0xFF for i in range(length))
            run = run_sha256(generated, message)
            assert run.halted
            assert run.digest_words == sha256_reference(message)
            cycle_counts.add(run.cycles)
        assert len(cycle_counts) == 1  # cycles independent of input length

    def test_generated_matches_reference_cycle_for_cycle(self, cores):
        reference, generated = cores
        message = b"The OWL and the pussycat"
        ref_run = run_sha256(reference, message)
        gen_run = run_sha256(generated, message)
        assert ref_run.cycles == gen_run.cycles
        assert ref_run.digest_words == gen_run.digest_words
        assert gen_run.digest_bytes == hashlib.sha256(message).digest()
