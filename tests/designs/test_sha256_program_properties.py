"""Property tests for the branch-free SHA-256 kernel on the golden ISS."""

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.designs.crypto_core.sha256_program import (
    MSG_BASE,
    OUT_BASE,
    halt_pc,
    pack_message_words,
    program_image,
    sha256_reference,
)
from repro.designs.riscv.iss import GoldenISS


def _run_iss(message):
    memory = dict(program_image())
    memory.update(pack_message_words(message))
    iss = GoldenISS(memory=memory, pc=0,
                    regs={1: MSG_BASE, 2: len(message)})
    assert iss.run(20_000, halt_pc=halt_pc())
    digest = [iss.memory.get((OUT_BASE >> 2) + i, 0) for i in range(8)]
    return digest, iss.instret


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(message=st.binary(min_size=0, max_size=55))
def test_digest_matches_hashlib_for_any_single_block_message(message):
    digest, _ = _run_iss(message)
    assert digest == sha256_reference(message)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    first=st.binary(min_size=0, max_size=55),
    second=st.binary(min_size=0, max_size=55),
)
def test_instruction_count_never_depends_on_data_or_length(first, second):
    _, count_first = _run_iss(first)
    _, count_second = _run_iss(second)
    assert count_first == count_second


def test_pack_message_words_is_big_endian():
    words = pack_message_words(b"\x01\x02\x03\x04\x05")
    assert words[MSG_BASE >> 2] == 0x01020304
    assert words[(MSG_BASE >> 2) + 1] == 0x05000000


def test_reference_matches_hashlib():
    for message in (b"", b"abc", b"x" * 55):
        expected = hashlib.sha256(message).digest()
        words = sha256_reference(message)
        assert b"".join(w.to_bytes(4, "big") for w in words) == expected
