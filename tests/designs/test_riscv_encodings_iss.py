"""Tests for the RISC-V encodings table, assembler, and golden ISS."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs.riscv.encodings import (
    INSTRUCTIONS,
    VARIANTS,
    assemble,
    encode,
    variant_instructions,
)
from repro.designs.riscv.iss import (
    GoldenISS,
    brev8,
    clmul32,
    clmulh32,
    rev8,
    unzip32,
    zip32,
)


def test_variant_instruction_counts_match_paper():
    assert len(variant_instructions("RV32I")) == 37
    assert len(variant_instructions("RV32I+Zbkb")) == 37 + 12
    assert len(variant_instructions("RV32I+Zbkc")) == 37 + 12 + 2


def test_cmov_not_in_standard_variants():
    for variant in VARIANTS:
        assert "cmov" not in variant_instructions(variant)


def test_encode_decode_roundtrip_all_instructions():
    for name, spec in INSTRUCTIONS.items():
        kwargs = {"rd": 5, "rs1": 6, "rs2": 7}
        if spec.fmt in ("I", "S", "B", "J"):
            kwargs["imm"] = -8 if spec.fmt in ("I", "S") else 16
        elif spec.fmt == "I-SHAMT":
            kwargs["imm"] = 13
        elif spec.fmt == "U":
            kwargs["imm"] = 0xABCDE000
        word = encode(name, **kwargs)
        decoded_name, fields = GoldenISS.decode(word)
        assert decoded_name == name, f"{name} decoded as {decoded_name}"
        if spec.fmt not in ("S", "B"):  # S/B formats have no rd field
            assert fields["rd"] == 5


def test_distinct_encodings():
    seen = {}
    for name in INSTRUCTIONS:
        word = encode(name, rd=1, rs1=2, rs2=3, imm=0)
        assert word not in seen, f"{name} collides with {seen.get(word)}"
        seen[word] = name


def test_assemble_lays_out_words():
    image = assemble(
        [("addi", {"rd": 1, "rs1": 0, "imm": 5}), ("add", {"rd": 2, "rs1": 1, "rs2": 1})],
        base=0x40,
    )
    assert set(image) == {16, 17}


def test_bit_manipulation_helpers():
    assert rev8(0x11223344) == 0x44332211
    assert brev8(0x01) == 0x80
    assert brev8(0x8000) == 0x0100
    assert unzip32(zip32(0xDEADBEEF)) == 0xDEADBEEF
    assert zip32(0x0000FFFF) == 0x55555555
    assert clmul32(0xFFFFFFFF, 3) == (0xFFFFFFFF ^ (0xFFFFFFFF << 1)) & 0xFFFFFFFF
    assert clmulh32(0x80000000, 0x80000000) == (1 << 62) >> 32


@settings(max_examples=100, deadline=None)
@given(x=st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_zip_unzip_inverse(x):
    assert unzip32(zip32(x)) == x
    assert zip32(unzip32(x)) == x


@settings(max_examples=50, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=(1 << 32) - 1),
    b=st.integers(min_value=0, max_value=(1 << 32) - 1),
    c=st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_clmul_distributes_over_xor(a, b, c):
    assert clmul32(a, b ^ c) == clmul32(a, b) ^ clmul32(a, c)
    assert clmulh32(a, b ^ c) == clmulh32(a, b) ^ clmulh32(a, c)


class TestISS:
    def _run(self, program, regs=None, memory=None, steps=None):
        iss = GoldenISS(memory={**assemble(program), **(memory or {})},
                        pc=0, regs=regs or {})
        for _ in range(steps or len(program)):
            iss.step()
        return iss

    def test_arith_immediates(self):
        iss = self._run([
            ("addi", {"rd": 1, "rs1": 0, "imm": 100}),
            ("slti", {"rd": 2, "rs1": 1, "imm": -5}),
            ("sltiu", {"rd": 3, "rs1": 1, "imm": 2047}),
            ("xori", {"rd": 4, "rs1": 1, "imm": -1}),
        ])
        assert iss.regs[1] == 100
        assert iss.regs[2] == 0
        assert iss.regs[3] == 1
        assert iss.regs[4] == 100 ^ 0xFFFFFFFF

    def test_x0_never_written(self):
        iss = self._run([("addi", {"rd": 0, "rs1": 0, "imm": 55})])
        assert iss.regs[0] == 0

    def test_branches(self):
        iss = self._run([
            ("beq", {"rs1": 0, "rs2": 0, "imm": 8}),  # taken: skip next
            ("addi", {"rd": 1, "rs1": 0, "imm": 1}),
            ("addi", {"rd": 2, "rs1": 0, "imm": 2}),
        ], steps=2)
        assert iss.regs[1] == 0 and iss.regs[2] == 2

    def test_jal_jalr_link(self):
        iss = self._run([
            ("jal", {"rd": 1, "imm": 8}),
            ("addi", {"rd": 3, "rs1": 0, "imm": 99}),  # skipped
            ("jalr", {"rd": 2, "rs1": 1, "imm": 8}),   # to pc=12... x1=4 -> 12
            ("addi", {"rd": 4, "rs1": 0, "imm": 7}),
        ], steps=3)
        assert iss.regs[1] == 4
        assert iss.regs[2] == 12
        assert iss.regs[3] == 0
        assert iss.regs[4] == 7

    def test_subword_memory(self):
        iss = self._run([
            ("lui", {"rd": 1, "imm": 0x1000}),
            ("sw", {"rs1": 1, "rs2": 0, "imm": 0}),
            ("addi", {"rd": 2, "rs1": 0, "imm": -1}),
            ("sb", {"rs1": 1, "rs2": 2, "imm": 1}),
            ("lw", {"rd": 3, "rs1": 1, "imm": 0}),
            ("lb", {"rd": 4, "rs1": 1, "imm": 1}),
            ("lbu", {"rd": 5, "rs1": 1, "imm": 1}),
            ("lh", {"rd": 6, "rs1": 1, "imm": 0}),
        ])
        assert iss.regs[3] == 0x0000FF00
        assert iss.regs[4] == 0xFFFFFFFF
        assert iss.regs[5] == 0xFF
        assert iss.regs[6] == 0xFFFFFF00  # sign-extended 0xFF00

    def test_shifts_and_rotates(self):
        iss = self._run([
            ("lui", {"rd": 1, "imm": 0x80000000}),
            ("srai", {"rd": 2, "rs1": 1, "imm": 4}),
            ("srli", {"rd": 3, "rs1": 1, "imm": 4}),
            ("rori", {"rd": 4, "rs1": 1, "imm": 31}),
        ])
        assert iss.regs[2] == 0xF8000000
        assert iss.regs[3] == 0x08000000
        assert iss.regs[4] == 0x00000001

    def test_cmov(self):
        iss = self._run([
            ("addi", {"rd": 1, "rs1": 0, "imm": 11}),
            ("addi", {"rd": 2, "rs1": 0, "imm": 22}),
            ("addi", {"rd": 3, "rs1": 0, "imm": 1}),
            ("cmov", {"rd": 2, "rs1": 1, "rs2": 3}),  # cond true: 2 <- 11
            ("cmov", {"rd": 1, "rs1": 2, "rs2": 0}),  # cond false: hold
        ])
        assert iss.regs[2] == 11
        assert iss.regs[1] == 11

    def test_halt_detection_on_self_loop(self):
        iss = GoldenISS(memory=assemble([("jal", {"rd": 0, "imm": 0})]))
        assert iss.run(10)

    def test_undecodable_word_raises(self):
        with pytest.raises(ValueError, match="cannot decode"):
            GoldenISS.decode(0xFFFFFFFF)
