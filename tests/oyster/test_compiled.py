"""Differential tests: CompiledSimulator vs the tree-walking Simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.oyster import Simulator, parse_design
from repro.oyster.compiled import CompiledSimulator, compile_step_function
from repro.oyster.interpreter import SimulationError

DUT = """
design dut:
  input a 8
  input sel 1
  register r 8 init 3
  register q 4
  memory m 4 8
  output o 8

  addr := a[3:0]
  loaded := read m addr
  t := if sel then (a + loaded) else ((a ^ r) >>s 8'1)
  neg := -t
  cmp := t <s r
  r := if cmp then t else neg
  q := q + 4'1
  o := t
  write m addr t sel
"""


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 255), st.integers(0, 1)),
    min_size=1, max_size=10,
))
def test_compiled_matches_interpreter(stimulus):
    design = parse_design(DUT)
    slow = Simulator(design)
    fast = CompiledSimulator(design)
    for a, sel in stimulus:
        inputs = {"a": a, "sel": sel}
        assert fast.step(inputs) == slow.step(inputs)
        assert fast.peek("r") == slow.peek("r")
        assert fast.peek("q") == slow.peek("q")
    for addr in range(16):
        assert fast.peek_memory("m", addr) == slow.peek_memory("m", addr)


def test_register_and_memory_init():
    design = parse_design(DUT)
    fast = CompiledSimulator(design, register_init={"q": 9},
                             memory_init={"m": {2: 0xAB}})
    assert fast.peek("q") == 9
    assert fast.peek("r") == 3  # declared init
    assert fast.peek_memory("m", 2) == 0xAB


def test_holes_must_be_bound():
    design = parse_design(
        "design h:\n  input a 1\n  hole x 1\n  t := a & x\n"
    )
    with pytest.raises(SimulationError, match="hole"):
        CompiledSimulator(design)
    fast = CompiledSimulator(design, hole_values={"x": 1})
    fast.step({"a": 1})
    assert fast.peek("t") == 1


def test_missing_input_raises():
    design = parse_design(DUT)
    with pytest.raises(SimulationError, match="missing input"):
        CompiledSimulator(design).step({})


def test_generated_source_is_inspectable():
    design = parse_design(DUT)
    _, source = compile_step_function(design)
    assert source.startswith("def step(")
    assert "m_m" in source


def test_mangled_names_compile():
    design = parse_design(
        "design n:\n  input a.b 4\n  t!x := a.b + 4'1\n"
    )
    fast = CompiledSimulator(design)
    fast.step({"a.b": 3})
    assert fast.peek("t!x") == 4
