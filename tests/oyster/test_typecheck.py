"""Width inference and well-formedness checking tests."""

import pytest

from repro.oyster import parse_design
from repro.oyster.typecheck import TypeError_, check_design


def _check(text):
    return check_design(parse_design(text))


def test_widths_inferred_for_wires():
    widths = _check(
        "design d:\n  input a 8\n  t := a + 8'1\n  u := t == a\n"
    )
    assert widths["t"] == 8
    assert widths["u"] == 1


def test_duplicate_declaration_rejected():
    with pytest.raises(TypeError_, match="duplicate"):
        _check("design d:\n  input a 8\n  register a 8\n")


def test_read_before_define_rejected():
    # A wire not yet assigned is simply undeclared at that point...
    with pytest.raises(TypeError_, match="undeclared"):
        _check("design d:\n  input a 8\n  t := u\n  u := a\n")
    # ...while a declared output read before its assignment is caught as
    # a read-before-define.
    with pytest.raises(TypeError_, match="before it is defined"):
        _check("design d:\n  input a 8\n  output o 8\n  t := o\n  o := a\n")


def test_register_current_value_always_readable():
    widths = _check(
        "design d:\n  register r 8\n  t := r + 8'1\n  r := t\n"
    )
    assert widths["t"] == 8


def test_cannot_assign_input_or_hole():
    with pytest.raises(TypeError_, match="input"):
        _check("design d:\n  input a 8\n  a := 8'0\n")
    with pytest.raises(TypeError_, match="hole"):
        _check("design d:\n  hole h 1\n  h := 1'0\n")


def test_double_assignment_rejected():
    with pytest.raises(TypeError_, match="more than once"):
        _check("design d:\n  input a 8\n  t := a\n  t := a\n")


def test_assignment_width_mismatch():
    with pytest.raises(TypeError_, match="width"):
        _check("design d:\n  input a 8\n  output o 4\n  o := a\n")


def test_binop_width_mismatch():
    with pytest.raises(TypeError_, match="widths 8 and 4"):
        _check("design d:\n  input a 8\n  input b 4\n  t := a + b\n")


def test_ite_condition_must_be_bit():
    with pytest.raises(TypeError_, match="width 1"):
        _check("design d:\n  input a 8\n  t := if a then a else a\n")


def test_extract_bounds_checked():
    with pytest.raises(TypeError_, match="out of range"):
        _check("design d:\n  input a 8\n  t := a[8:0]\n")


def test_memory_address_width_checked():
    with pytest.raises(TypeError_, match="address width"):
        _check(
            "design d:\n  input a 8\n  memory m 4 8\n  t := read m a\n"
        )
    with pytest.raises(TypeError_, match="address width"):
        _check(
            "design d:\n  input a 8\n  memory m 4 8\n  write m a a 1'1\n"
        )


def test_write_enable_must_be_bit():
    with pytest.raises(TypeError_, match="enable"):
        _check(
            "design d:\n  input a 4\n  input v 8\n  memory m 4 8\n"
            "  write m a v v\n"
        )


def test_outputs_must_be_assigned():
    with pytest.raises(TypeError_, match="outputs never assigned"):
        _check("design d:\n  input a 8\n  output o 8\n  t := a\n")


def test_undeclared_signal_rejected():
    with pytest.raises(TypeError_, match="undeclared"):
        _check("design d:\n  t := bogus\n")


def test_undeclared_memory_rejected():
    with pytest.raises(TypeError_, match="undeclared memory"):
        _check("design d:\n  input a 4\n  t := read nope a\n")


def test_hole_dep_must_exist():
    with pytest.raises(TypeError_, match="unknown signal"):
        _check("design d:\n  input a 8\n  hole h 1 deps(ghost)\n  t := a\n")
