"""Tests for the VCD recorder and the oyster command-line tool."""

import io
import sys

import pytest

from repro.oyster import Simulator, parse_design
from repro.oyster.vcd import VcdRecorder
from repro.tools.oyster_tool import main as oyster_main

COUNTER = """
design counter:
  input enable 1
  register count 4
  output out 4
  count := if enable then (count + 4'1) else (count)
  out := count
"""


def test_vcd_records_changes(tmp_path):
    sim = Simulator(parse_design(COUNTER))
    recorder = VcdRecorder(sim)
    for enable in (1, 1, 0, 1):
        recorder.step({"enable": enable})
    path = recorder.write(tmp_path / "trace.vcd")
    text = open(path).read()
    assert "$enddefinitions $end" in text
    assert "$var wire 1" in text and "$var wire 4" in text
    assert "#0" in text and "#4" in text
    # count changes at cycles 1, 2 (holds at 3 after enable=0), 3... verify
    # the value strings appear.
    assert "b1 " in text or "b01" in text


def test_vcd_only_changes_recorded():
    sim = Simulator(parse_design(COUNTER))
    recorder = VcdRecorder(sim, signals=["count"])
    recorder.step({"enable": 0})
    recorder.step({"enable": 0})
    # count stays 0 the whole time: one initial record only.
    assert len(recorder.changes) == 1


@pytest.fixture()
def counter_file(tmp_path):
    path = tmp_path / "counter.oy"
    path.write_text(COUNTER)
    return str(path)


def _run(argv, capsys):
    code = oyster_main(argv)
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_tool_check(counter_file, capsys):
    out = _run(["check", counter_file], capsys)
    assert "counter: OK" in out
    assert "count: 4" in out


def test_tool_print_round_trips(counter_file, capsys):
    out = _run(["print", counter_file], capsys)
    assert parse_design(out) == parse_design(COUNTER)


def test_tool_loc(counter_file, capsys):
    out = _run(["loc", counter_file], capsys)
    assert out.strip() == "6"


def test_tool_verilog(counter_file, capsys):
    out = _run(["verilog", counter_file], capsys)
    assert "module counter (" in out


def test_tool_gates(counter_file, capsys):
    out = _run(["gates", counter_file], capsys)
    assert "flops" in out
    optimized = _run(["gates", counter_file, "--optimize"], capsys)
    assert "counter:" in optimized


def test_tool_sim(counter_file, capsys):
    out = _run(["sim", counter_file, "--cycles", "3", "--random",
                "--seed", "1"], capsys)
    assert out.count("cycle ") == 3
    assert "count=" in out


def test_shipped_traffic_light_design(capsys):
    out = _run(["check", "examples/designs/traffic_light.oy"], capsys)
    assert "traffic_light: OK" in out
    out = _run(["sim", "examples/designs/traffic_light.oy",
                "--cycles", "2"], capsys)
    assert "green=1" in out
