"""Concrete simulator tests."""

import pytest

from repro.oyster import Simulator, parse_design
from repro.oyster.interpreter import SimulationError


COUNTER = """
design counter:
  input enable 1
  register count 8
  output out 8

  count := if enable then (count + 8'1) else (count)
  out := count
"""


def test_counter_counts():
    sim = Simulator(parse_design(COUNTER))
    outs = [sim.step({"enable": 1})["out"] for _ in range(4)]
    assert outs == [0, 1, 2, 3]
    sim.step({"enable": 0})
    assert sim.peek("count") == 4
    sim.step({"enable": 0})
    assert sim.peek("count") == 4


def test_register_init():
    sim = Simulator(parse_design(COUNTER.replace(
        "register count 8", "register count 8 init 250")))
    sim.step({"enable": 1})
    assert sim.peek("count") == 251


def test_missing_input_raises():
    sim = Simulator(parse_design(COUNTER))
    with pytest.raises(SimulationError, match="missing input"):
        sim.step({})


def test_unbound_hole_raises():
    design = parse_design(
        "design h:\n  input a 1\n  hole x 1\n  t := a & x\n"
    )
    with pytest.raises(SimulationError, match="hole"):
        Simulator(design)
    sim = Simulator(design, hole_values={"x": 1})
    sim.step({"a": 1})
    assert sim.peek("t") == 1


MEMORY = """
design memdut:
  input addr 4
  input data 8
  input we 1
  output out 8

  memory m 4 8
  out := read m addr
  write m addr data we
"""


def test_memory_write_visible_next_cycle():
    sim = Simulator(parse_design(MEMORY))
    first = sim.step({"addr": 3, "data": 55, "we": 1})
    assert first["out"] == 0  # read sees start-of-cycle contents
    second = sim.step({"addr": 3, "data": 0, "we": 0})
    assert second["out"] == 55


def test_memory_write_gated_by_enable():
    sim = Simulator(parse_design(MEMORY))
    sim.step({"addr": 3, "data": 55, "we": 0})
    assert sim.peek_memory("m", 3) == 0


def test_memory_init():
    sim = Simulator(parse_design(MEMORY), memory_init={"m": {7: 99}})
    assert sim.step({"addr": 7, "data": 0, "we": 0})["out"] == 99


def test_register_reads_old_value_within_cycle():
    design = parse_design(
        "design swap:\n  register a 8 init 1\n  register b 8 init 2\n"
        "  a := b\n  b := a\n"
    )
    sim = Simulator(design)
    sim.step({})
    assert sim.peek("a") == 2 and sim.peek("b") == 1


def test_multiple_writes_last_wins():
    design = parse_design(
        "design w2:\n  input v 8\n  memory m 2 8\n"
        "  write m 2'0 v 1'1\n  write m 2'0 (v + 8'1) 1'1\n"
    )
    sim = Simulator(design)
    sim.step({"v": 10})
    assert sim.peek_memory("m", 0) == 11


def test_all_operators_execute():
    design = parse_design(
        "design ops:\n  input a 8\n  input b 8\n"
        "  t1 := a - b\n  t2 := a * b\n  t3 := a << 8'2\n"
        "  t4 := a >>u 8'1\n  t5 := a >>s 8'1\n  t6 := a <s b\n"
        "  t7 := a >=u b\n  t8 := -a\n  t9 := a != b\n"
    )
    sim = Simulator(design)
    sim.step({"a": 0x90, "b": 3})
    assert sim.peek("t1") == (0x90 - 3) & 0xFF
    assert sim.peek("t2") == (0x90 * 3) & 0xFF
    assert sim.peek("t3") == (0x90 << 2) & 0xFF
    assert sim.peek("t4") == 0x90 >> 1
    assert sim.peek("t5") == ((0x90 - 256) >> 1) & 0xFF
    assert sim.peek("t6") == 1  # 0x90 is negative signed
    assert sim.peek("t7") == 1
    assert sim.peek("t8") == (-0x90) & 0xFF
    assert sim.peek("t9") == 1


def test_peek_unknown_signal():
    sim = Simulator(parse_design(COUNTER))
    with pytest.raises(SimulationError):
        sim.peek("ghost")
    with pytest.raises(SimulationError):
        sim.peek_memory("ghost", 0)
