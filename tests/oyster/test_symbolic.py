"""Symbolic evaluator tests, including differential tests vs the simulator.

The key property: for any concrete stimulus, evaluating the design with the
concrete simulator and evaluating it symbolically then substituting the same
stimulus must agree on every register, wire, and memory write.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.oyster import Simulator, SymbolicEvaluator, parse_design
from repro.oyster.memory import ConstMemory
from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNSAT


DUT = """
design dut:
  input a 8
  input sel 1
  register r 8
  register q 4 init 5
  memory m 4 8
  output o 8

  addr := a[3:0]
  loaded := read m addr
  t := if sel then (a + loaded) else (a ^ r)
  r := t
  q := q + 4'1
  o := t
  write m addr t sel
"""


def _concrete_run(inputs_by_cycle, register_init=None):
    sim = Simulator(parse_design(DUT), register_init=register_init)
    outs = [sim.step(inputs) for inputs in inputs_by_cycle]
    return sim, outs


def _symbolic_env(inputs_by_cycle, register_init):
    env = {}
    for step, inputs in enumerate(inputs_by_cycle, start=1):
        for name, value in inputs.items():
            env[f"{name}@{step}"] = value
    env["r@0"] = register_init.get("r", 0) if register_init else 0
    return env


@settings(max_examples=60, deadline=None)
@given(
    cycles=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_symbolic_agrees_with_simulator(cycles, data):
    inputs_by_cycle = [
        {
            "a": data.draw(st.integers(min_value=0, max_value=255)),
            "sel": data.draw(st.integers(min_value=0, max_value=1)),
        }
        for _ in range(cycles)
    ]
    r0 = data.draw(st.integers(min_value=0, max_value=255))
    sim, outs = _concrete_run(inputs_by_cycle, register_init={"r": r0})

    evaluator = SymbolicEvaluator(parse_design(DUT))
    trace = evaluator.run(cycles)
    env = _symbolic_env(inputs_by_cycle, {"r": r0})
    # Memory reads come from an empty memory in the simulator: read vars = 0.
    for var in trace.forall_variables():
        env.setdefault(var.name, 0)

    # Registers agree at the end.
    assert T.evaluate(trace.reg_after("r", cycles), env) == sim.peek("r")
    assert T.evaluate(trace.reg_after("q", cycles), env) == sim.peek("q")
    # Outputs agree per cycle.
    for step in range(1, cycles + 1):
        assert T.evaluate(trace.wire_at("o", step), env) == outs[step - 1]["o"]
    # Side conditions hold under the consistent environment.
    for condition in trace.side_conditions:
        assert T.evaluate(condition, env) == 1


def test_register_init_is_concrete():
    trace = SymbolicEvaluator(parse_design(DUT)).run(1)
    assert trace.reg_before("q", 1).is_const
    assert trace.reg_before("q", 1).value == 5
    assert trace.reg_before("r", 1).is_var


def test_hole_becomes_fresh_variable():
    design = parse_design(
        "design h:\n  input a 4\n  hole hh 4\n  t := a + hh\n"
    )
    trace = SymbolicEvaluator(design, prefix="p!").run(1)
    hole = trace.hole_values["hh"]
    assert hole.is_var and hole.name == "p!hole!hh"
    assert hole not in trace.forall_variables()


def test_hole_value_can_be_bound():
    design = parse_design(
        "design h:\n  input a 4\n  hole hh 4\n  t := a + hh\n"
    )
    trace = SymbolicEvaluator(
        design, hole_values={"hh": T.bv_const(3, 4)}
    ).run(1)
    value = T.evaluate(trace.wire_at("t", 1), {"a@1": 2})
    assert value == 5


def test_hole_width_mismatch_rejected():
    design = parse_design("design h:\n  input a 4\n  hole hh 4\n  t := a + hh\n")
    with pytest.raises(ValueError, match="width"):
        SymbolicEvaluator(design, hole_values={"hh": T.bv_const(0, 5)})


def test_memory_ackermann_consistency():
    design = parse_design(
        "design rd:\n  input a1 4\n  input a2 4\n  memory m 4 8\n"
        "  v1 := read m a1\n  v2 := read m a2\n  d := v1 != v2\n"
    )
    trace = SymbolicEvaluator(design).run(1)
    # Same address must imply same value: a1 == a2 && v1 != v2 is UNSAT.
    solver = Solver()
    for condition in trace.side_conditions:
        solver.add(condition)
    solver.add(T.bv_eq(trace.input_at("a1", 1), trace.input_at("a2", 1)))
    solver.add(trace.wire_at("d", 1))
    assert solver.check() is UNSAT
    # Different addresses may differ.
    solver2 = Solver()
    for condition in trace.side_conditions:
        solver2.add(condition)
    solver2.add(trace.wire_at("d", 1))
    assert solver2.check() is SAT


def test_memory_read_after_write_next_cycle():
    design = parse_design(
        "design wr:\n  input a 4\n  input v 8\n  memory m 4 8\n"
        "  out := read m a\n  write m a v 1'1\n"
    )
    trace = SymbolicEvaluator(design).run(2)
    env = {"a@1": 3, "v@1": 77, "a@2": 3, "v@2": 0}
    for var in trace.forall_variables():
        env.setdefault(var.name, 0)
    # Cycle 2's read returns cycle 1's write when the addresses match.
    assert T.evaluate(trace.wire_at("out", 2), env) == 77


def test_const_memory_folds_constant_reads():
    design = parse_design(
        "design cm:\n  input a 4\n  memory rom 4 8\n  out := read rom 4'2\n"
    )
    rom = ConstMemory("rom", 4, 8, {2: 42})
    trace = SymbolicEvaluator(design, const_mems={"rom": rom}).run(1)
    assert trace.wire_at("out", 1).is_const
    assert trace.wire_at("out", 1).value == 42


def test_const_memory_symbolic_read_tree():
    design = parse_design(
        "design cm2:\n  input a 2\n  memory rom 2 8\n  out := read rom a\n"
    )
    rom = ConstMemory("rom", 2, 8, [10, 20, 30, 40])
    trace = SymbolicEvaluator(design, const_mems={"rom": rom}).run(1)
    for addr in range(4):
        value = T.evaluate(trace.wire_at("out", 1), {"a@1": addr})
        assert value == (addr + 1) * 10


def test_const_memory_rejects_writes():
    design = parse_design(
        "design cm3:\n  input a 2\n  input v 8\n  memory rom 2 8\n"
        "  write rom a v 1'1\n"
    )
    rom = ConstMemory("rom", 2, 8, [0, 0, 0, 0])
    with pytest.raises(ValueError, match="constant memory"):
        SymbolicEvaluator(design, const_mems={"rom": rom}).run(1)


def test_trace_timestep_bounds():
    trace = SymbolicEvaluator(parse_design(DUT)).run(2)
    with pytest.raises(IndexError):
        trace.reg_after("r", 3)
    with pytest.raises(IndexError):
        trace.reg_before("r", 0)


def test_input_override():
    design = parse_design("design i:\n  input a 4\n  t := a + 4'1\n")
    forced = T.bv_const(9, 4)
    trace = SymbolicEvaluator(
        design, input_values={("a", 1): forced}
    ).run(1)
    assert trace.wire_at("t", 1).is_const
    assert trace.wire_at("t", 1).value == 10
