"""Tests for the Verilog backend (structural checks; no Verilog simulator
is available offline, so we check the constructs and the paired hazards)."""

import pytest

from repro.oyster import parse_design
from repro.oyster.verilog import VerilogError, to_verilog


def test_basic_module_structure():
    design = parse_design(
        "design top:\n  input a 8\n  output o 8\n  t := a + 8'1\n  o := t\n"
    )
    text = to_verilog(design)
    assert text.startswith("module top (")
    assert "input wire clk" in text
    assert "input wire [7:0] a" in text
    assert "output wire [7:0] o" in text
    assert "wire [7:0] t = (a + 8'd1);" in text
    assert "assign o = t;" in text
    assert text.rstrip().endswith("endmodule")


def test_registers_and_initial_block():
    design = parse_design(
        "design r:\n  register n 4 init 7\n  n := n + 4'1\n"
    )
    text = to_verilog(design)
    assert "reg [3:0] n;" in text
    assert "initial begin" in text
    assert "n = 4'd7;" in text
    assert "always @(posedge clk) begin" in text
    assert "n <= (n + 4'd1);" in text


def test_memory_ports():
    design = parse_design(
        "design m:\n  input a 3\n  input d 8\n  input we 1\n  output o 8\n"
        "  memory mem 3 8\n  o := read mem a\n  write mem a d we\n"
    )
    text = to_verilog(design)
    assert "reg [7:0] mem [0:7];" in text
    assert "assign o = mem[a];" in text
    assert "if (we)" in text
    assert "mem[a] <= d;" in text


def test_signed_operators_wrapped():
    design = parse_design(
        "design s:\n  input a 8\n  input b 8\n  output o 1\n"
        "  o := a <s b\n  t := a >>s b\n"
    )
    text = to_verilog(design)
    assert "$signed(a) < $signed(b)" in text
    assert "$signed(a) >>> $signed(b)" in text


def test_slice_of_expression_hoisted():
    design = parse_design(
        "design h:\n  input a 8\n  output o 4\n  o := (a + 8'1)[5:2]\n"
    )
    text = to_verilog(design)
    assert "_hoist1" in text
    assert "[5:2]" in text
    # The hoisted wire must be declared before its use line.
    declaration = text.index("wire [7:0] _hoist1")
    use = text.index("_hoist1[5:2]")
    assert declaration < use


def test_single_bit_select():
    design = parse_design(
        "design b:\n  input a 8\n  output o 1\n  o := a[7]\n"
    )
    assert "a[7];" in to_verilog(design)


def test_name_sanitization():
    design = parse_design(
        "design n:\n  input a.b 4\n  output o 4\n  o := a.b\n"
    )
    text = to_verilog(design)
    assert "a_b" in text
    assert "a.b" not in text


def test_holes_rejected():
    design = parse_design(
        "design x:\n  input a 1\n  hole h 1\n  t := a & h\n"
    )
    with pytest.raises(VerilogError, match="holes"):
        to_verilog(design)


def test_completed_riscv_core_exports():
    """End to end: a synthesized core emits well-formed structural text."""
    from repro.designs import alu_machine
    from repro.synthesis import synthesize

    problem = alu_machine.build_problem()
    result = synthesize(problem, timeout=300)
    text = to_verilog(result.completed_design, module_name="alu_core")
    assert text.startswith("module alu_core (")
    assert "reg [7:0] regfile [0:3];" in text
    assert text.count("endmodule") == 1
