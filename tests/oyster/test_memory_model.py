"""Unit tests for the symbolic memory model (UF + association list)."""

import pytest

from repro.oyster.memory import ConstMemory, SymbolicMemory
from repro.smt import terms as T
from repro.smt.solver import Solver, SAT, UNSAT


def _memory(name="mem", addr=4, data=8):
    side = []
    return SymbolicMemory(name, addr, data, side), side


def test_repeated_reads_same_address_share_variable():
    memory, side = _memory()
    addr = T.bv_var("a", 4)
    assert memory.read(addr) is memory.read(addr)
    assert side == []


def test_distinct_addresses_get_consistency_conditions():
    memory, side = _memory()
    first = memory.read(T.bv_var("a1", 4))
    second = memory.read(T.bv_var("a2", 4))
    assert first is not second
    assert len(side) == 1  # a1 == a2 -> v1 == v2


def test_constant_addresses_skip_trivial_conditions():
    memory, side = _memory()
    memory.read(T.bv_const(1, 4))
    memory.read(T.bv_const(2, 4))
    assert side == []  # distinct constants can never alias


def test_write_then_read_folds_through_ite():
    memory, side = _memory()
    data = T.bv_var("d", 8)
    written = memory.written(T.bv_const(3, 4), data, T.TRUE)
    assert written.read(T.bv_const(3, 4)) is data
    # A different constant address bypasses the write entirely.
    other = written.read(T.bv_const(5, 4))
    assert other is memory.read(T.bv_const(5, 4))


def test_disabled_write_is_dropped():
    memory, _ = _memory()
    written = memory.written(T.bv_const(3, 4), T.bv_var("d", 8), T.FALSE)
    assert written is memory


def test_conditional_write_builds_ite():
    memory, side = _memory()
    enable = T.bv_var("en", 1)
    written = memory.written(T.bv_const(3, 4), T.bv_var("d", 8), enable)
    value = written.read(T.bv_const(3, 4))
    assert value.op == "ite"


def test_writes_stack_newest_wins():
    memory, _ = _memory()
    first = T.bv_var("d1", 8)
    second = T.bv_var("d2", 8)
    written = memory.written(T.bv_const(3, 4), first, T.TRUE)
    written = written.written(T.bv_const(3, 4), second, T.TRUE)
    assert written.read(T.bv_const(3, 4)) is second


def test_same_base_tracks_snapshots():
    memory, _ = _memory()
    written = memory.written(T.bv_const(0, 4), T.bv_var("d", 8), T.TRUE)
    assert memory.same_base(written)
    other, _ = _memory("other")
    assert not memory.same_base(other)


def test_aliasing_is_sound_under_solver():
    """Symbolic write then read at a *different symbolic* address must agree
    with the base exactly when the addresses differ."""
    memory, side = _memory()
    write_addr = T.bv_var("wa", 4)
    read_addr = T.bv_var("ra", 4)
    data = T.bv_var("wd", 8)
    base_value = memory.read(read_addr)
    written = memory.written(write_addr, data, T.TRUE)
    value = written.read(read_addr)
    solver = Solver()
    solver.add_all(side)
    # Case 1: addresses equal -> value == data is forced.
    solver.add(T.bv_eq(write_addr, read_addr))
    solver.add(T.bv_ne(value, data))
    assert solver.check() is UNSAT
    # Case 2: addresses differ -> value == base read.
    solver2 = Solver()
    solver2.add_all(side)
    solver2.add(T.bv_ne(write_addr, read_addr))
    solver2.add(T.bv_ne(value, base_value))
    assert solver2.check() is UNSAT


def test_const_memory_lookup_and_default():
    rom = ConstMemory("rom", 4, 8, {0: 10, 3: 30})
    assert rom.lookup(0) == 10
    assert rom.lookup(3) == 30
    assert rom.lookup(9) == 0  # default
    assert rom.read(T.bv_const(3, 4)).value == 30


def test_const_memory_symbolic_read_is_correct_everywhere():
    table = {i: (i * 17 + 3) & 0xFF for i in range(16)}
    rom = ConstMemory("rom", 4, 8, table)
    addr = T.bv_var("ca", 4)
    tree = rom.read(addr)
    for a in range(16):
        assert T.evaluate(tree, {"ca": a}) == table[a]


def test_const_memory_write_rejected():
    rom = ConstMemory("rom", 4, 8, {})
    with pytest.raises(ValueError, match="constant memory"):
        rom.written(T.bv_const(0, 4), T.bv_const(0, 8), T.TRUE)
