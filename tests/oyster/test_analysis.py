"""Tests for the static analyses (variable uses, dependency closure)."""

from repro.oyster import parse_design
from repro.oyster.analysis import (
    direct_dependencies,
    expr_vars,
    stmt_uses,
    transitive_dependencies,
)
from repro.oyster.parser import parse_expr


def test_expr_vars_collects_all_reads():
    expr = parse_expr("if c then (a + b) else (read m x[3:0])")
    assert expr_vars(expr) == {"c", "a", "b", "x"}


def test_stmt_uses_write():
    design = parse_design(
        "design d:\n  input a 4\n  input v 8\n  input en 1\n"
        "  memory m 4 8\n  write m a v en\n"
    )
    assert stmt_uses(design.stmts[0]) == {"a", "v", "en"}


DESIGN = """
design dep:
  input a 4
  register r 4
  hole h 4

  t := a + h
  u := t & r
  r := u
  out := u | a
"""


def test_direct_dependencies_skip_registers_by_default():
    design = parse_design(DESIGN)
    deps = direct_dependencies(design)
    assert deps["t"] == {"a", "h"}
    assert deps["u"] == {"t", "r"}
    assert "r" not in deps  # register next-value excluded
    deps_all = direct_dependencies(design, through_registers=True)
    assert deps_all["r"] == {"u"}


def test_transitive_dependencies():
    design = parse_design(DESIGN)
    reached = transitive_dependencies(design, ["out"])
    assert {"out", "u", "t", "a", "h", "r"} <= reached


def test_transitive_stop_names_are_opaque():
    design = parse_design(DESIGN)
    reached = transitive_dependencies(design, ["out"], stop_names=["u"])
    assert "u" in reached
    assert "t" not in reached  # not traced through u
    assert "a" in reached  # still reached directly via out := u | a
