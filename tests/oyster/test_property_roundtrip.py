"""Property tests: random designs round-trip through print/parse, and the
three evaluators (tree-walking, compiled, symbolic) agree on them."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.oyster import (
    Simulator,
    SymbolicEvaluator,
    ast,
    check_design,
    parse_design,
    print_design,
)
from repro.oyster.compiled import CompiledSimulator
from repro.smt import terms as T

_BINOPS = sorted(ast.BINOPS)


@st.composite
def designs(draw):
    """A random, well-formed combinational+register design."""
    width = draw(st.sampled_from([1, 2, 4, 8]))
    input_count = draw(st.integers(1, 3))
    names = [f"in{i}" for i in range(input_count)]
    decls = [ast.InputDecl(name, width) for name in names]
    has_register = draw(st.booleans())
    if has_register:
        init = draw(st.one_of(st.none(), st.integers(0, (1 << width) - 1)))
        decls.append(ast.RegisterDecl("reg0", width, init))
        names.append("reg0")
    stmts = []
    available = list(names)

    def expr(depth):
        kind = draw(st.sampled_from(
            ["var", "const", "binop", "unop", "ite", "extract", "concat"]
            if depth > 0 else ["var", "const"]
        ))
        if kind == "var":
            return ast.Var(draw(st.sampled_from(available))), width
        if kind == "const":
            return ast.Const(draw(st.integers(0, (1 << width) - 1)),
                             width), width
        if kind == "binop":
            op = draw(st.sampled_from(_BINOPS))
            left, _ = expr(depth - 1)
            right, _ = expr(depth - 1)
            node = ast.Binop(op, left, right)
            if op in ast.COMPARISONS:
                # Widen back to the working width for composability.
                if width == 1:
                    return node, width
                pad = ast.Const(0, width - 1)
                return ast.Concat(pad, node), width
            return node, width
        if kind == "unop":
            inner, _ = expr(depth - 1)
            return ast.Unop(draw(st.sampled_from(["~", "-"])), inner), width
        if kind == "ite":
            cond, _ = expr(depth - 1)
            cond = ast.Extract(cond, 0, 0)
            then, _ = expr(depth - 1)
            els, _ = expr(depth - 1)
            return ast.Ite(cond, then, els), width
        if kind == "extract":
            inner, _ = expr(depth - 1)
            if width == 1:
                return ast.Extract(inner, 0, 0), width
            # Keep the working width by extracting from a 2w concat.
            doubled = ast.Concat(inner, inner)
            low = draw(st.integers(0, width))
            return ast.Extract(doubled, low + width - 1, low), width
        inner1, _ = expr(depth - 1)
        inner2, _ = expr(depth - 1)
        if width == 1:
            return ast.Extract(ast.Concat(inner1, inner2), 0, 0), width
        half = width // 2
        return ast.Concat(
            ast.Extract(inner1, half - 1, 0),
            ast.Extract(inner2, width - half - 1, 0),
        ), width

    wire_count = draw(st.integers(1, 4))
    for index in range(wire_count):
        body, _ = expr(2)
        name = f"w{index}"
        stmts.append(ast.Assign(name, body))
        available.append(name)
    if has_register:
        body, _ = expr(1)
        stmts.append(ast.Assign("reg0", body))
    decls.append(ast.OutputDecl("out", width))
    stmts.append(ast.Assign("out", ast.Var(available[-1])))
    design = ast.Design("fuzz", tuple(decls), tuple(stmts))
    check_design(design)
    return design


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(design=designs(), data=st.data())
def test_print_parse_roundtrip(design, data):
    assert parse_design(print_design(design)) == design


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(design=designs(), data=st.data())
def test_three_evaluators_agree(design, data):
    width = design.inputs[0].width
    cycles = data.draw(st.integers(1, 3))
    stimulus = [
        {
            decl.name: data.draw(st.integers(0, (1 << decl.width) - 1))
            for decl in design.inputs
        }
        for _ in range(cycles)
    ]
    slow = Simulator(design)
    fast = CompiledSimulator(design)
    slow_outs = [slow.step(inputs)["out"] for inputs in stimulus]
    fast_outs = [fast.step(inputs)["out"] for inputs in stimulus]
    assert slow_outs == fast_outs

    trace = SymbolicEvaluator(design).run(cycles)
    env = {}
    for step, inputs in enumerate(stimulus, start=1):
        for name, value in inputs.items():
            env[f"{name}@{step}"] = value
    for var in trace.forall_variables():
        env.setdefault(var.name, 0)
    symbolic_outs = [
        T.evaluate(trace.wire_at("out", step), env)
        for step in range(1, cycles + 1)
    ]
    assert symbolic_outs == slow_outs
