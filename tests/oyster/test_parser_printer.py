"""Parser/printer tests: round trips, precedence, errors."""

import pytest

from repro.oyster import ast, parse_design, print_design
from repro.oyster.parser import ParseError, parse_expr
from repro.oyster.printer import design_loc, print_expr


EXAMPLE = """
design demo:
  input a 8
  input sel 1
  register r 8 init 7
  memory m 4 8
  output o 8
  hole h 2 deps(a, sel)

  t := a + 8'3
  u := if sel then (t ^ r) else (~t)
  v := read m a[3:0]
  r := u & v
  o := {u[7:4], v[3:0]}
  write m a[7:4] u sel
"""


def test_round_trip_is_identity():
    design = parse_design(EXAMPLE)
    printed = print_design(design)
    assert parse_design(printed) == design
    # And printing is a fixed point.
    assert print_design(parse_design(printed)) == printed


def test_parsed_structure():
    design = parse_design(EXAMPLE)
    assert design.name == "demo"
    assert [d.name for d in design.inputs] == ["a", "sel"]
    assert design.registers[0].init == 7
    assert design.memories[0].addr_width == 4
    assert design.holes[0].deps == ("a", "sel")
    assert isinstance(design.stmts[-1], ast.Write)


def test_design_loc_counts_nonempty_lines():
    design = parse_design(EXAMPLE)
    assert design_loc(design) == 13  # 1 header + 6 decls + 6 statements


def test_expr_precedence():
    expr = parse_expr("a | b & c")
    assert expr == ast.Binop("|", ast.Var("a"),
                             ast.Binop("&", ast.Var("b"), ast.Var("c")))
    expr = parse_expr("a + b == c")
    assert expr.op == "=="
    expr = parse_expr("a + b * c")
    assert expr == ast.Binop("+", ast.Var("a"),
                             ast.Binop("*", ast.Var("b"), ast.Var("c")))


def test_expr_unary_and_slices():
    expr = parse_expr("~a[3:1]")
    assert expr == ast.Unop("~", ast.Extract(ast.Var("a"), 3, 1))
    expr = parse_expr("(a + b)[0:0]")
    assert isinstance(expr, ast.Extract)


def test_sized_constants():
    assert parse_expr("8'255") == ast.Const(255, 8)
    assert parse_expr("8'0xff") == ast.Const(255, 8)
    assert parse_expr("4'0b1010") == ast.Const(10, 4)


def test_concat_and_read():
    expr = parse_expr("{a, read m b}")
    assert expr == ast.Concat(ast.Var("a"), ast.Read("m", ast.Var("b")))


def test_if_then_else_nests():
    expr = parse_expr("if c then a else if d then b else e")
    assert isinstance(expr, ast.Ite)
    assert isinstance(expr.els, ast.Ite)


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_design("input a 8\n")  # no header
    with pytest.raises(ParseError):
        parse_design("design x:\n  input 8 a\n")
    with pytest.raises(ParseError):
        parse_expr("a +")
    with pytest.raises(ParseError):
        parse_expr("a $ b")
    with pytest.raises(ParseError):
        parse_design("design x:\ndesign y:\n")


def test_comments_and_blank_lines_ignored():
    design = parse_design(
        "design c:  # header\n\n  input a 1  # an input\n  o := a\n"
    )
    assert design.name == "c"
    assert len(design.stmts) == 1


def test_print_expr_parenthesizes_correctly():
    expr = ast.Binop("&", ast.Binop("|", ast.Var("a"), ast.Var("b")),
                     ast.Var("c"))
    text = print_expr(expr)
    assert parse_expr(text) == expr
