"""Tests for the abstraction-function model and its textual parser."""

import pytest

from repro.abstraction import (
    AbstractionError,
    AbstractionFunction,
    Effect,
    Mapping,
    parse_abstraction,
)

PAPER_TWO_STAGE = """
pc: {name: 'pc', type: register, [read: 1, write: 2]}
GPR: {name: 'rf', type: memory, [read: 1, write: 2]}
mem: {name: 'd_mem', type: memory, [read: 2, write: 2]}
mem: {name: 'i_mem', type: memory, [read: 1]}
with cycles: 2
"""


def test_parse_paper_example():
    alpha = parse_abstraction(PAPER_TWO_STAGE)
    assert alpha.cycles == 2
    pc = alpha.entry("pc")
    assert pc.dp_name == "pc" and pc.dp_type == "register"
    assert pc.read_time == 1 and pc.write_time == 2
    assert len(alpha.entries_for("mem")) == 2


def test_fetch_and_data_roles():
    alpha = parse_abstraction(PAPER_TWO_STAGE)
    assert alpha.entry("mem", role="fetch").dp_name == "i_mem"
    assert alpha.entry("mem", role="data").dp_name == "d_mem"
    # A single entry serves both roles.
    assert alpha.entry("pc", role="fetch").dp_name == "pc"


def test_parse_assumes():
    alpha = parse_abstraction(
        "pc: {name: 'pc', type: register, [read: 1, write: 2]}\n"
        "with cycles: 3, [instruction_valid: 1], [other: 2]\n"
    )
    assert alpha.assumes == (("instruction_valid", 1), ("other", 2))


def test_parse_field_bindings():
    alpha = parse_abstraction(
        "pc: {name: 'pc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
        "fields: {opcode: 'op_wire', funct3: 'f3'}\n"
    )
    assert alpha.binding("opcode") == "op_wire"
    assert alpha.binding("funct3") == "f3"
    assert alpha.binding("unbound") == "unbound"


def test_comments_allowed():
    alpha = parse_abstraction(
        "# the program counter\n"
        "pc: {name: 'pc', type: register, [read: 1, write: 1]}\n"
        "with cycles: 1\n"
    )
    assert alpha.cycles == 1


def test_parse_errors():
    with pytest.raises(AbstractionError, match="cannot parse"):
        parse_abstraction("nonsense here\nwith cycles: 1\n")
    with pytest.raises(AbstractionError, match="bad effect"):
        parse_abstraction(
            "pc: {name: 'pc', type: register, [explode: 1]}\nwith cycles: 1\n"
        )
    with pytest.raises(AbstractionError, match="missing 'with cycles"):
        parse_abstraction("pc: {name: 'pc', type: register, [read: 1]}\n")
    with pytest.raises(AbstractionError, match="duplicate"):
        parse_abstraction("with cycles: 1\nwith cycles: 2\n")


def test_effect_validation():
    with pytest.raises(AbstractionError, match="kind"):
        Effect("peek", 1)
    with pytest.raises(AbstractionError, match=">= 1"):
        Effect("read", 0)


def test_mapping_validation():
    with pytest.raises(AbstractionError, match="type"):
        Mapping("a", "b", "wire", [Effect("read", 1)])
    with pytest.raises(AbstractionError, match="no effects"):
        Mapping("a", "b", "input", [])


def test_effects_beyond_cycles_rejected():
    with pytest.raises(AbstractionError, match="beyond cycles"):
        AbstractionFunction(
            [Mapping("pc", "pc", "register", [Effect("write", 3)])],
            cycles=2,
        )


def test_assume_time_bounds():
    with pytest.raises(AbstractionError, match="outside"):
        AbstractionFunction(
            [Mapping("pc", "pc", "register", [Effect("read", 1)])],
            cycles=2, assumes=[("v", 3)],
        )


def test_unknown_spec_element():
    alpha = parse_abstraction(PAPER_TWO_STAGE)
    with pytest.raises(AbstractionError, match="no abstraction entry"):
        alpha.entry("ghost")
    assert not alpha.has_entry("ghost")


def test_role_resolution_errors():
    alpha = AbstractionFunction(
        [
            Mapping("mem", "m1", "memory", [Effect("read", 1)]),
            Mapping("mem", "m2", "memory", [Effect("read", 1)]),
        ],
        cycles=1,
    )
    with pytest.raises(AbstractionError, match="no writable"):
        alpha.entry("mem", role="data")
