"""Property test: the rewriting constructors never change term semantics.

Builds random nested expressions twice — once through the smart
constructors (which rewrite aggressively) and once as a parallel pure-Python
computation — and checks they agree on random inputs.  This is the
soundness argument for the partial evaluation the whole synthesis pipeline
leans on.
"""

from hypothesis import given, settings, strategies as st

from repro.smt import terms as T


def _mask(width):
    return (1 << width) - 1


def _signed(value, width):
    return value - (1 << width) if value & (1 << (width - 1)) else value


class _Node:
    """A (term, python-eval-function) pair built in lockstep."""

    def __init__(self, term, fn, width):
        self.term = term
        self.fn = fn
        self.width = width


def _binop(draw, a, b, op):
    w = a.width
    tables = {
        "add": (T.bv_add, lambda e: (a.fn(e) + b.fn(e)) & _mask(w), w),
        "sub": (T.bv_sub, lambda e: (a.fn(e) - b.fn(e)) & _mask(w), w),
        "mul": (T.bv_mul, lambda e: (a.fn(e) * b.fn(e)) & _mask(w), w),
        "and": (T.bv_and, lambda e: a.fn(e) & b.fn(e), w),
        "or": (T.bv_or, lambda e: a.fn(e) | b.fn(e), w),
        "xor": (T.bv_xor, lambda e: a.fn(e) ^ b.fn(e), w),
        "shl": (T.bv_shl,
                lambda e: (a.fn(e) << b.fn(e)) & _mask(w)
                if b.fn(e) < w else 0, w),
        "lshr": (T.bv_lshr,
                 lambda e: a.fn(e) >> b.fn(e) if b.fn(e) < w else 0, w),
        "ashr": (T.bv_ashr,
                 lambda e: (_signed(a.fn(e), w)
                            >> min(b.fn(e), w - 1)) & _mask(w), w),
        "eq": (T.bv_eq, lambda e: int(a.fn(e) == b.fn(e)), 1),
        "ult": (T.bv_ult, lambda e: int(a.fn(e) < b.fn(e)), 1),
        "slt": (T.bv_slt,
                lambda e: int(_signed(a.fn(e), w) < _signed(b.fn(e), w)), 1),
    }
    build, fn, width = tables[op]
    return _Node(build(a.term, b.term), fn, width)


@st.composite
def nodes(draw, width, names, depth):
    if depth == 0:
        if draw(st.booleans()):
            name = draw(st.sampled_from(names))
            return _Node(T.bv_var(name, width),
                         lambda e, n=name: e[n] & _mask(width), width)
        value = draw(st.integers(0, _mask(width)))
        return _Node(T.bv_const(value, width), lambda e, v=value: v, width)
    kind = draw(st.sampled_from(["binop", "not", "ite", "extract",
                                 "concat_slice"]))
    if kind == "binop":
        a = draw(nodes(width, names, depth - 1))
        b = draw(nodes(width, names, depth - 1))
        op = draw(st.sampled_from(
            ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr",
             "ashr"]
        ))
        return _binop(draw, a, b, op)
    if kind == "not":
        a = draw(nodes(width, names, depth - 1))
        return _Node(T.bv_not(a.term),
                     lambda e: ~a.fn(e) & _mask(width), width)
    if kind == "ite":
        a = draw(nodes(width, names, depth - 1))
        b = draw(nodes(width, names, depth - 1))
        c = draw(nodes(width, names, depth - 1))
        op = draw(st.sampled_from(["eq", "ult", "slt"]))
        cond = _binop(draw, a, b, op)
        return _Node(
            T.bv_ite(cond.term, a.term, c.term),
            lambda e: a.fn(e) if cond.fn(e) else c.fn(e), width,
        )
    if kind == "extract":
        a = draw(nodes(width, names, depth - 1))
        low = draw(st.integers(0, width - 1))
        # Re-extend to keep the uniform working width.
        extracted_width = width - low
        term = T.zero_extend(T.bv_extract(a.term, width - 1, low), width)
        return _Node(term, lambda e: (a.fn(e) >> low) & _mask(width), width)
    a = draw(nodes(width, names, depth - 1))
    b = draw(nodes(width, names, depth - 1))
    term = T.bv_extract(T.bv_concat(a.term, b.term), width - 1, 0)
    return _Node(term, b.fn, width)


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_random_trees_evaluate_identically(data):
    width = data.draw(st.sampled_from([1, 4, 8, 13]))
    names = ["ra", "rb", "rc"]
    node = data.draw(nodes(width, names, depth=4))
    env = {
        name: data.draw(st.integers(0, _mask(width))) for name in names
    }
    assert T.evaluate(node.term, env) == node.fn(env) & _mask(width)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_substitution_commutes_with_evaluation(data):
    width = 8
    names = ["sa", "sb"]
    node = data.draw(nodes(width, names, depth=3))
    env = {name: data.draw(st.integers(0, 255)) for name in names}
    substituted = T.substitute(
        node.term,
        {T.bv_var(name, width): T.bv_const(value, width)
         for name, value in env.items()},
    )
    assert substituted.is_const or not (
        T.free_variables(substituted) & {T.bv_var(n, width) for n in names}
    )
    assert T.evaluate(substituted, {}) == T.evaluate(node.term, env)