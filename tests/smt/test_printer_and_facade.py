"""Tests for the term printer and solver facade details."""

import pytest

from repro.smt import terms as T
from repro.smt.printer import to_string
from repro.smt.solver import (
    Model,
    Solver,
    SAT,
    UNKNOWN,
    UNSAT,
    UnknownModelVariableWarning,
)


def test_printer_basic_forms():
    x = T.bv_var("x", 8)
    assert to_string(T.bv_const(5, 8)) == "5'8"
    assert to_string(x) == "x"
    assert to_string(T.bv_add(x, T.bv_const(1, 8))) == "(x + 1'8)"
    assert to_string(T.bv_not(x)) == "~x"
    assert "[6:2]" in to_string(T.bv_extract(x, 6, 2))
    assert to_string(T.bv_concat(x, x)) == "{x, x}"
    ite = T.bv_ite(T.bv_var("c", 1), x, T.bv_not(x))
    assert to_string(ite).startswith("(if c then ")


def test_printer_depth_truncation():
    expr = T.bv_var("v", 4)
    for i in range(20):
        expr = T.bv_add(expr, T.bv_var(f"v{i}", 4))
    text = to_string(expr, max_depth=3)
    assert "..." in text
    assert len(text) < 200


def test_repr_is_bounded():
    expr = T.bv_var("v", 4)
    for i in range(50):
        expr = T.bv_xor(expr, T.bv_var(f"r{i}", 4))
    assert len(repr(expr)) < 2000


def test_solver_result_is_tristate():
    with pytest.raises(TypeError, match="tri-state"):
        bool(SAT)
    assert repr(SAT) == "sat"
    assert repr(UNSAT) == "unsat"
    assert repr(UNKNOWN) == "unknown"


def test_model_accessors():
    model = Model({"a": 5})
    assert model.value("a") == 5
    assert model.value(T.bv_var("a", 8)) == 5
    with pytest.warns(UnknownModelVariableWarning, match="missing"):
        assert model.value("missing") == 0
    assert "a" in model
    assert model.as_dict() == {"a": 5}
    assert "a=0x5" in repr(model)


def test_solver_rejects_wide_assertions():
    solver = Solver()
    with pytest.raises(ValueError, match="width 1"):
        solver.add(T.bv_var("wide", 4))


def test_solver_timeout_returns_unknown():
    # 14-bit factoring with an absurdly small deadline.
    p = T.bv_var("tp", 14)
    q = T.bv_var("tq", 14)
    product = T.bv_mul(T.zero_extend(p, 28), T.zero_extend(q, 28))
    solver = Solver()
    solver.add(T.bv_eq(product, T.bv_const(9409 * 89, 28)))
    solver.add(T.bv_ugt(p, T.bv_const(1, 14)))
    solver.add(T.bv_ugt(q, T.bv_const(1, 14)))
    verdict = solver.check(max_conflicts=1)
    assert verdict in (SAT, UNSAT, UNKNOWN)  # budget-bounded, not hanging


def test_stats_counters_advance():
    solver = Solver()
    x = T.bv_var("sc", 4)
    solver.add(T.bv_eq(x, T.bv_const(3, 4)))
    solver.check()
    assert solver.stats["asserts"] == 1
    assert solver.stats["checks"] == 1
