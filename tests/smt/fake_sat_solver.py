#!/usr/bin/env python3
"""A hermetic stand-in for an external DIMACS SAT solver.

The subprocess-dimacs backend shells out to whatever solver binary it is
given; this script lets its happy path, malformed-output path and timeout
path all be tested without installing kissat or minisat.  It reads a
DIMACS file, *actually solves it* with the repo's bundled CDCL core (so
differential tests can demand bit-identical synthesized control logic),
and prints the standard SAT-competition output format::

    c fake-sat-solver
    c conflicts 42
    s SATISFIABLE
    v 1 -2 3 ... 0

Failure modes are simulated with flags (placed *before* the CNF path,
e.g. ``REPRO_DIMACS_SOLVER="python fake_sat_solver.py --garbage"``):

``--unknown``   print ``s UNKNOWN`` without solving
``--garbage``   print non-DIMACS noise and exit 0 (a broken solver)
``--modelless`` claim ``s SATISFIABLE`` but print no ``v`` lines
``--hang N``    sleep N seconds before answering (deadline enforcement)
``--crash``     exit 1 with no output (a solver that segfaulted)
``--flip``      solve, then report the *opposite* verdict (a lying
                solver: actually-SAT becomes ``s UNSATISFIABLE``,
                actually-UNSAT becomes ``s SATISFIABLE`` with a
                fabricated all-positive model) — the portfolio's
                disagreement sentinel must catch this
``--flaky N``   crash (exit 1) on every Nth call, solving honestly
                otherwise; call count persists in ``--state-file PATH``
                (an intermittently dying solver: quarantine entry/exit)

Exit codes follow the competition convention: 10 for SAT, 20 for UNSAT.

With ``--incremental`` the script instead speaks the persistent wire
protocol of ``repro.runtime.incremental_worker`` on stdin/stdout
(``alloc``/``a``/``assume``/``solve``/``reseed``/``fault``/``quit`` in,
``ready``/``hb``/``v``/``r`` out) — an independently written protocol
peer, so the incremental-subprocess backend's framing is tested against
something other than the worker it ships with.  No CNF path is taken in
this mode; ``--crash`` makes the very first solve die mid-protocol.
"""

import argparse
import os
import sys
import threading
import time

#: This file lives at <repo>/tests/smt/; the package root is <repo>/src.
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--unknown", action="store_true")
    parser.add_argument("--garbage", action="store_true")
    parser.add_argument("--modelless", action="store_true")
    parser.add_argument("--hang", type=float, default=0.0, metavar="SECONDS")
    parser.add_argument("--crash", action="store_true")
    parser.add_argument("--flip", action="store_true")
    parser.add_argument("--flaky", type=int, default=0, metavar="N")
    parser.add_argument("--state-file", default=None, metavar="PATH")
    parser.add_argument("--incremental", action="store_true")
    parser.add_argument("cnf", nargs="?", default=None,
                        help="path to the DIMACS query (one-shot mode only)")
    args = parser.parse_args()

    if args.incremental:
        return _incremental_loop(args)
    if args.cnf is None:
        parser.error("a CNF path is required outside --incremental mode")
    if args.hang:
        time.sleep(args.hang)
    if args.crash:
        return 1
    if args.flaky:
        calls = _bump_call_count(args.state_file)
        if calls % args.flaky == 0:
            return 1
    if args.garbage:
        print("segmentation fault (core dumped) just kidding but still")
        print("%%% not a verdict line %%%")
        return 0
    if args.unknown:
        print("c fake-sat-solver giving up on purpose")
        print("s UNKNOWN")
        return 0

    sys.path.insert(0, _SRC)
    from repro.smt.dimacs import from_dimacs
    from repro.smt.sat.solver import SatSolver

    with open(args.cnf) as handle:
        cnf = from_dimacs(handle.read())
    solver = SatSolver()
    while solver.num_vars < cnf.num_vars:
        solver.new_var()
    for clause in cnf.clauses:
        solver.add_clause(
            [2 * abs(lit) + (1 if lit < 0 else 0) for lit in clause]
        )
    verdict = solver.solve()
    if args.flip:
        verdict = not verdict
    print("c fake-sat-solver")
    print(f"c conflicts {solver.conflicts}")
    if not verdict:
        print("s UNSATISFIABLE")
        return 20
    print("s SATISFIABLE")
    if not args.modelless:
        if args.flip:
            # The instance is actually UNSAT: fabricate a witness the
            # way a buggy solver would (every variable positive).
            lits = [str(var) for var in range(1, cnf.num_vars + 1)]
        else:
            model = solver.model()
            lits = [
                str(var if model.get(var, 0) else -var)
                for var in range(1, cnf.num_vars + 1)
            ]
        print("v " + " ".join(lits) + " 0")
    return 10


def _incremental_loop(args):
    """Speak the incremental-subprocess wire protocol until ``quit``."""
    sys.path.insert(0, _SRC)
    from repro.smt.sat.solver import SatSolver

    lock = threading.Lock()

    def write(text):
        with lock:
            sys.stdout.write(text + "\n")
            sys.stdout.flush()

    # A free-running heartbeat: simpler than the worker's solve-scoped
    # one, and stale ``hb`` lines between solves are protocol-legal (the
    # parent skips them).
    stop = threading.Event()

    def beat():
        while not stop.is_set():
            write("hb")
            time.sleep(0.1)

    solver = SatSolver()
    assumptions = []
    crash_armed = args.crash

    def ensure_vars(count):
        while solver.num_vars < count:
            solver.new_var()

    write(f"ready {os.getpid()}")
    threading.Thread(target=beat, daemon=True).start()
    for line in sys.stdin:
        tokens = line.split()
        if not tokens:
            continue
        cmd = tokens[0]
        if cmd == "a":
            lits = [int(tok) for tok in tokens[1:-1]]
            if lits:
                ensure_vars(max(lit >> 1 for lit in lits))
            solver.add_clause(lits)
        elif cmd == "assume":
            assumptions = [int(tok) for tok in tokens[1:-1]]
            if assumptions:
                ensure_vars(max(lit >> 1 for lit in assumptions))
        elif cmd == "alloc":
            ensure_vars(int(tokens[1]))
        elif cmd == "solve":
            if crash_armed:
                os._exit(1)
            max_conflicts = None if tokens[1] == "-" else int(tokens[1])
            timeout = None if tokens[2] == "-" else float(tokens[2])
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            before = solver.conflicts
            internals_before = solver.internals()
            verdict = solver.solve(
                assumptions=assumptions,
                max_conflicts=max_conflicts,
                deadline=deadline,
            )
            assumptions = []
            spent = solver.conflicts - before
            deltas = " ".join(
                f"{key}={value - internals_before[key]}"
                for key, value in solver.internals().items()
            )
            if verdict is None:
                write(f"r unknown {solver.stop_reason or '-'} "
                      f"{spent} {deltas}")
            elif verdict:
                write("v " + " ".join(
                    str(var if value else -var)
                    for var, value in solver.model().items()
                ) + " 0")
                write(f"r sat - {spent} {deltas}")
            else:
                write(f"r unsat - {spent} {deltas}")
        elif cmd == "reseed":
            solver.reseed(int(tokens[1]))
        elif cmd == "fault":
            if tokens[1] == "crash":
                os._exit(1)
        elif cmd == "quit":
            break
    stop.set()
    return 0


def _bump_call_count(state_file):
    """Increment and return the cross-invocation call counter."""
    if not state_file:
        return 1
    try:
        with open(state_file) as handle:
            calls = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        calls = 0
    calls += 1
    with open(state_file, "w") as handle:
        handle.write(str(calls))
    return calls


if __name__ == "__main__":
    sys.exit(main())
