"""The backend seam itself: registry, config resolution, external solvers.

Three layers under test:

* the registry (``available_backends`` / ``register_backend`` /
  ``resolve_backend``) and the capability table it reports;
* ``SolverConfig`` + ``resolve_solver_config`` — the single funnel the
  legacy ``execution=``/``worker_pool=``/``pipeline=`` kwargs drain into;
* the ``subprocess-dimacs`` backend's full failure taxonomy, driven
  hermetically by ``fake_sat_solver.py``'s misbehavior flags.
"""

import os
import sys

import pytest

from repro.runtime.reasons import (
    CANONICAL_REASONS,
    is_canonical,
    normalize_reason,
)
from repro.smt import Solver
from repro.smt import terms as T
from repro.smt.backends import (
    BackendResult,
    SolverBackend,
    SolverConfig,
    available_backends,
    backend_capabilities,
    register_backend,
    resolve_backend,
    resolve_solver_config,
)
from repro.smt.backends import registry as _registry
from repro.smt.backends.inprocess import InProcessBackend
from repro.smt.backends.registry import (
    BACKEND_ENV,
    default_backend_name,
    resolve_backend_name,
)
from repro.smt.backends.subprocess_dimacs import (
    SOLVER_ENV,
    BackendUnavailable,
    SubprocessDimacsBackend,
)
from repro.smt.dimacs import solve_dimacs
from repro.smt.solver import SAT, UNSAT

FAKE_SOLVER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fake_sat_solver.py")


def _fake_command(*flags):
    return [sys.executable, FAKE_SOLVER, *flags]


def _sat_query(solver):
    x = T.bv_var("x", 8)
    solver.add(T.bv_eq(T.bv_add(x, T.bv_const(1, 8)), T.bv_const(10, 8)))
    return x


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_builtin_backends_are_registered():
    names = available_backends()
    for name in ("inprocess", "isolated", "subprocess-dimacs",
                 "incremental-subprocess", "portfolio"):
        assert name in names


def test_capability_table_matches_the_docs():
    table = backend_capabilities()
    assert table["inprocess"] == {
        "supports_assumptions": True,
        "supports_incremental": True,
        "produces_models": False,
    }
    assert table["isolated"] == {
        "supports_assumptions": False,
        "supports_incremental": False,
        "produces_models": True,
    }
    assert table["subprocess-dimacs"] == {
        "supports_assumptions": False,
        "supports_incremental": False,
        "produces_models": True,
    }
    assert table["incremental-subprocess"] == {
        "supports_assumptions": True,
        "supports_incremental": True,
        "produces_models": False,
    }
    assert table["portfolio"] == {
        "supports_assumptions": False,
        "supports_incremental": False,
        "produces_models": True,
    }


def test_resolve_unknown_backend_raises_with_the_roster():
    with pytest.raises(ValueError, match="unknown solver backend 'no-such'"):
        resolve_backend("no-such")


def test_resolve_backend_instance_passes_through():
    backend = InProcessBackend()
    assert resolve_backend(backend) is backend
    assert resolve_backend_name(backend) == "inprocess"


def test_register_backend_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("inprocess", lambda worker_pool=None: None)


def test_isolated_without_pool_is_a_clear_error():
    with pytest.raises(ValueError, match="requires a worker_pool"):
        resolve_backend("isolated")


def test_env_var_sets_the_process_default_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "subprocess-dimacs")
    assert default_backend_name() == "subprocess-dimacs"
    assert resolve_backend_name(None) == "subprocess-dimacs"
    assert SolverConfig().backend_name == "subprocess-dimacs"
    monkeypatch.delenv(BACKEND_ENV)
    assert default_backend_name() == "inprocess"


def test_custom_backend_registers_and_serves_checks():
    """The registration example from the registry docstring, end to end."""

    class EchoCdclBackend(SolverBackend):
        name = "echo-cdcl"
        produces_models = True

        def check(self, cnf, assumptions=(), limits=None):
            verdict, values, conflicts = solve_dimacs(cnf)
            return BackendResult(verdict, model=values, conflicts=conflicts)

    register_backend("echo-cdcl", lambda worker_pool=None: EchoCdclBackend(),
                     cls=EchoCdclBackend)
    try:
        assert "echo-cdcl" in available_backends()
        solver = Solver(backend="echo-cdcl")
        x = _sat_query(solver)
        assert solver.check() is SAT
        assert solver.model().value(x) == 9
        assert solver.backend_name == "echo-cdcl"
    finally:
        _registry._REGISTRY.pop("echo-cdcl", None)


# ---------------------------------------------------------------------------
# SolverConfig resolution and the deprecated kwargs
# ---------------------------------------------------------------------------


def test_config_passes_through_untouched():
    config = SolverConfig(backend="inprocess", pipeline="fresh")
    assert resolve_solver_config(config=config) is config


def test_config_plus_knobs_is_a_contradiction():
    config = SolverConfig()
    with pytest.raises(ValueError, match="not both"):
        resolve_solver_config(config=config, backend="inprocess")
    with pytest.raises(ValueError, match="pipeline"):
        resolve_solver_config(config=config, pipeline="fresh")


def test_legacy_execution_kwarg_warns_and_maps():
    with pytest.warns(DeprecationWarning, match="execution is deprecated"):
        config = resolve_solver_config(execution="inprocess")
    assert config.backend_name == "inprocess"


def test_legacy_kwargs_warn_once_naming_all_offenders():
    with pytest.warns(DeprecationWarning,
                      match="execution, pipeline are deprecated"):
        config = resolve_solver_config(execution="inprocess",
                                       pipeline="fresh")
    assert config.pipeline == "fresh"


def test_unknown_execution_mode_raises():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="unknown execution mode"):
            resolve_solver_config(execution="quantum")


def test_execution_conflicting_with_backend_raises():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="conflicting backend"):
            resolve_solver_config(execution="isolated", backend="inprocess")


def test_solver_accepts_legacy_execution_with_warning():
    with pytest.warns(DeprecationWarning,
                      match=r"Solver\(execution=...\) is deprecated"):
        solver = Solver(execution="inprocess")
    assert solver.backend_name == "inprocess"
    assert solver.execution == "inprocess"


def test_solver_config_solver_kwargs_round_trip():
    backend = SubprocessDimacsBackend(command=_fake_command())
    config = SolverConfig(backend=backend)
    solver = Solver(**config.solver_kwargs())
    assert solver.backend is backend
    assert solver.backend_name == "subprocess-dimacs"


# ---------------------------------------------------------------------------
# subprocess-dimacs: discovery and the failure taxonomy
# ---------------------------------------------------------------------------


def test_solver_env_var_pins_the_command(monkeypatch):
    monkeypatch.setenv(
        SOLVER_ENV, f"{sys.executable} {FAKE_SOLVER}")
    backend = SubprocessDimacsBackend()
    assert backend.command == [sys.executable, FAKE_SOLVER]


def test_no_solver_anywhere_raises_backend_unavailable(monkeypatch):
    monkeypatch.delenv(SOLVER_ENV, raising=False)
    monkeypatch.setenv("PATH", "")
    with pytest.raises(BackendUnavailable, match="found no SAT solver"):
        SubprocessDimacsBackend()


def test_subprocess_happy_path_sat_and_unsat():
    solver = Solver(backend=SubprocessDimacsBackend(command=_fake_command()))
    x = _sat_query(solver)
    assert solver.check() is SAT
    assert solver.model().value(x) == 9
    solver.add(T.bv_eq(x, T.bv_const(3, 8)))
    assert solver.check() is UNSAT


@pytest.mark.parametrize("flag,reason", [
    ("--unknown", "backend-error"),
    ("--garbage", "backend-error"),
    ("--modelless", "backend-error"),
    ("--crash", "backend-error"),
])
def test_subprocess_misbehavior_degrades_to_canonical_unknown(flag, reason):
    solver = Solver(
        backend=SubprocessDimacsBackend(command=_fake_command(flag)))
    _sat_query(solver)
    verdict = solver.check()
    assert verdict.name == "unknown"
    assert verdict.reason == reason
    assert is_canonical(verdict.reason)


def test_subprocess_hang_is_killed_at_the_deadline():
    solver = Solver(
        backend=SubprocessDimacsBackend(command=_fake_command("--hang", "60")))
    _sat_query(solver)
    verdict = solver.check(timeout=0.5)
    assert verdict.name == "unknown"
    assert verdict.reason == "deadline"


def test_subprocess_kill_reaps_child_and_leaves_no_temp_files(
        tmp_path, monkeypatch):
    """Deadline-killing a hung solver must reap the child *before* the
    workdir is removed — a kill that raced the rmtree used to leak the
    ``repro-dimacs-*`` temp dir (minisat's result file lives there)."""
    import tempfile

    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    solver = Solver(backend=SubprocessDimacsBackend(
        command=_fake_command("--hang", "60")))
    _sat_query(solver)
    verdict = solver.check(timeout=0.3)
    assert verdict.name == "unknown"
    assert verdict.reason == "deadline"
    leftovers = [p.name for p in tmp_path.iterdir()
                 if p.name.startswith("repro-dimacs-")]
    assert leftovers == []


def test_subprocess_checks_count_as_worker_checks():
    solver = Solver(backend=SubprocessDimacsBackend(command=_fake_command()))
    _sat_query(solver)
    solver.check()
    assert solver.stats["worker_checks"] == 1
    assert solver.stats["worker_fallbacks"] == 0


# ---------------------------------------------------------------------------
# incremental-subprocess: the persistent out-of-process core
# ---------------------------------------------------------------------------


def _incremental_solver(**kwargs):
    from repro.smt.backends import IncrementalSubprocessBackend

    return Solver(backend=IncrementalSubprocessBackend(**kwargs))


def test_incremental_subprocess_happy_path_and_assumptions():
    solver = _incremental_solver()
    try:
        x = _sat_query(solver)
        assert solver.check() is SAT
        assert solver.model().value(x) == 9
        # Native assumptions: the base formula survives a failed probe.
        assert solver.check(
            assumptions=[T.bv_eq(x, T.bv_const(3, 8))]) is UNSAT
        assert solver.check() is SAT
        solver.add(T.bv_eq(x, T.bv_const(3, 8)))
        assert solver.check() is UNSAT
    finally:
        solver.backend.close()


def test_incremental_subprocess_echoes_trace_context():
    from repro.obs import new_trace_id, trace_context

    solver = _incremental_solver()
    backend = solver.backend
    tid = new_trace_id()
    try:
        x = _sat_query(solver)
        with trace_context(tid):
            assert solver.check() is SAT
        # The child echoed the shipped context on its result line: the
        # persistent subprocess's work is attributable to the submitter.
        assert backend.last_wire_ctx == tid
        assert solver.model().value(x) == 9
        # Outside any context the parent clears the child's token.
        assert solver.check() is SAT
        assert backend.last_wire_ctx is None
    finally:
        backend.close()


def test_incremental_subprocess_crash_is_contained_and_replayed():
    solver = _incremental_solver()
    backend = solver.backend
    try:
        x = _sat_query(solver)
        assert solver.check() is SAT
        backend.inject_fault("crash")
        # Depending on who wins the race, the next check either observes
        # the crash mid-solve (retryable unknown) or finds the corpse up
        # front and replays immediately (SAT) — both are containment.
        verdict = solver.check()
        if verdict is not SAT:
            assert verdict.name == "unknown"
            assert verdict.reason == "worker-crashed"
            assert is_canonical(verdict.reason)
        # The respawned child replays the clause mirror: same verdict,
        # same model, accumulated state intact.
        assert solver.check() is SAT
        assert solver.model().value(x) == 9
        assert backend.respawns >= 1
    finally:
        backend.close()


def test_incremental_subprocess_hang_trips_the_watchdog():
    solver = _incremental_solver(heartbeat_interval=0.1, watchdog_grace=3.0)
    backend = solver.backend
    try:
        _sat_query(solver)
        backend.inject_fault("hang")
        verdict = solver.check()
        assert verdict.name == "unknown"
        assert verdict.reason == "heartbeat-lost"
        assert is_canonical(verdict.reason)
        assert solver.check() is SAT
    finally:
        backend.close()


def test_incremental_subprocess_oom_reports_memory():
    solver = _incremental_solver(mem_limit_mb=256)
    backend = solver.backend
    try:
        _sat_query(solver)
        backend.inject_fault("oom")
        verdict = solver.check()
        if verdict is not SAT:  # see the crash test for the race
            assert verdict.name == "unknown"
            # Three legitimate deaths: the allocator trips the rlimit
            # (worker-oom), the kernel kills the child outright
            # (worker-crashed), or the allocation stalls the heartbeat
            # thread long enough for the watchdog to fire first
            # (heartbeat-lost).  All are retryable; the next check must
            # respawn and replay either way.
            assert verdict.reason in (
                "worker-oom", "worker-crashed", "heartbeat-lost")
            assert is_canonical(verdict.reason)
        assert solver.check() is SAT
        assert backend.respawns >= 1
    finally:
        backend.close()


def test_incremental_subprocess_rejects_one_shot_cnf():
    from repro.smt.backends import IncrementalSubprocessBackend
    from repro.smt.dimacs import from_dimacs

    backend = IncrementalSubprocessBackend()
    with pytest.raises(ValueError, match="pass cnf=None"):
        backend.check(from_dimacs("p cnf 1 1\n1 0\n"))


def test_incremental_worker_env_var_pins_the_command(monkeypatch):
    from repro.smt.backends import IncrementalSubprocessBackend, WORKER_ENV

    monkeypatch.setenv(
        WORKER_ENV, f"{sys.executable} {FAKE_SOLVER} --incremental")
    solver = Solver(backend=IncrementalSubprocessBackend())
    try:
        assert FAKE_SOLVER in solver.backend.describe()
        x = _sat_query(solver)
        assert solver.check() is SAT
        assert solver.model().value(x) == 9
        assert solver.check(
            assumptions=[T.bv_eq(x, T.bv_const(9, 8))]) is SAT
        assert solver.check(
            assumptions=[T.bv_eq(x, T.bv_const(3, 8))]) is UNSAT
    finally:
        solver.backend.close()


def test_fake_incremental_peer_crash_containment():
    """The independently written protocol peer dying mid-solve must look
    exactly like the real worker dying: retryable unknown, then replay."""
    from repro.smt.backends import IncrementalSubprocessBackend

    solver = Solver(backend=IncrementalSubprocessBackend(
        command=[sys.executable, FAKE_SOLVER, "--incremental", "--crash"]))
    backend = solver.backend
    try:
        x = _sat_query(solver)
        verdict = solver.check()
        assert verdict.name == "unknown"
        assert verdict.reason == "worker-crashed"
        # --crash only arms the first solve of a child; the respawned
        # peer answers honestly from the replayed mirror... except every
        # fresh child re-arms.  Pin the honest command for the retry.
        backend._command = [sys.executable, FAKE_SOLVER, "--incremental"]
        assert solver.check() is SAT
        assert solver.model().value(x) == 9
        assert backend.respawns >= 1
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Canonical unknown-reason taxonomy
# ---------------------------------------------------------------------------


def test_normalize_reason_aliases():
    assert normalize_reason("timeout") == "deadline"
    assert normalize_reason("garbage") == "backend-error"
    assert normalize_reason("") == "unspecified"
    assert normalize_reason(None) == "unspecified"


def test_normalize_reason_passes_canonical_through():
    for reason in CANONICAL_REASONS:
        assert normalize_reason(reason) == reason
        assert is_canonical(reason)


def test_unknown_verdicts_from_the_facade_are_canonical():
    # Pinned to the in-process core: the conflict cap is what trips.
    solver = Solver(backend="inprocess")
    x = T.bv_var("hard_p", 14)
    y = T.bv_var("hard_q", 14)
    solver.add(T.bv_eq(T.bv_mul(T.zero_extend(x, 28), T.zero_extend(y, 28)),
                       T.bv_const(9409 * 89, 28)))
    solver.add(T.bv_ugt(x, T.bv_const(1, 14)))
    solver.add(T.bv_ugt(y, T.bv_const(1, 14)))
    verdict = solver.check(max_conflicts=1)
    assert verdict.name == "unknown"
    assert is_canonical(verdict.reason)


# ---------------------------------------------------------------------------
# Obs attribution: zero unattributed solver queries
# ---------------------------------------------------------------------------


def test_every_solver_query_event_names_its_backend(tmp_path):
    from repro.obs import Tracer, installed
    from repro.obs.report import solver_queries
    from repro.obs.schema import load_events

    path = tmp_path / "backends.jsonl"
    tracer = Tracer(path, run_id="backend-attrib")
    with installed(tracer):
        for backend in ("inprocess", SubprocessDimacsBackend(
                command=_fake_command())):
            solver = Solver(backend=backend)
            _sat_query(solver)
            solver.check()
    tracer.close()
    events, _ = load_events(path)
    queries = solver_queries(events)
    assert len(queries) == 2
    seen = {q["backend"] for q in queries}
    assert seen == {"inprocess", "subprocess-dimacs"}
    for query in queries:
        assert query["backend"], "unattributed solver query"
        assert query["execution"] == query["backend"]
