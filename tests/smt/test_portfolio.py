"""Fault-tolerant portfolio racing: hedging, health, disagreement.

The chaos-engineering suite for :class:`PortfolioBackend`: every
misbehavior ``fake_sat_solver.py`` can simulate (hang, crash, garbage,
flipped verdicts, intermittent flakiness) is raced against the honest
in-process CDCL, and the portfolio must come out with the right answer,
zero leaked temp files, zero orphan threads — or a typed
``SoundnessViolation`` when members genuinely contradict each other.
"""

import os
import sys
import tempfile
import threading
import time

import pytest

from repro.obs import Tracer, installed
from repro.obs.metrics import METRICS
from repro.obs.schema import load_events
from repro.runtime import SoundnessViolation
from repro.smt import Solver
from repro.smt import terms as T
from repro.smt.backends import (
    CheckLimits,
    HealthLedger,
    OneShotCdclBackend,
    PortfolioBackend,
    available_backends,
    backend_capabilities,
    shared_portfolio,
)
from repro.smt.backends.portfolio import PORTFOLIO_ENV
from repro.smt.backends.subprocess_dimacs import SubprocessDimacsBackend
from repro.smt.dimacs import to_dimacs
from repro.smt.solver import SAT, UNSAT

FAKE_SOLVER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fake_sat_solver.py")


def _fake_command(*flags):
    return [sys.executable, FAKE_SOLVER, *flags]


def _fake_backend(*flags):
    return SubprocessDimacsBackend(command=_fake_command(*flags))


def _sat_dimacs():
    x = T.bv_var("x", 4)
    return to_dimacs([T.bv_eq(x, T.bv_const(9, 4))])


def _unsat_dimacs():
    x = T.bv_var("x", 4)
    return to_dimacs([
        T.bv_ult(x, T.bv_const(3, 4)),
        T.bv_ugt(x, T.bv_const(12, 4)),
    ])


def _hard_dimacs(bits=14, composite=9409 * 89):
    p = T.bv_var("cp", bits)
    q = T.bv_var("cq", bits)
    product = T.bv_mul(T.zero_extend(p, 2 * bits),
                       T.zero_extend(q, 2 * bits))
    return to_dimacs([
        T.bv_eq(product, T.bv_const(composite, 2 * bits)),
        T.bv_ugt(p, T.bv_const(1, bits)),
        T.bv_ugt(q, T.bv_const(1, bits)),
    ])


def _thread_names():
    return {t.name for t in threading.enumerate()}


# ---------------------------------------------------------------------------
# Registry and roster
# ---------------------------------------------------------------------------


def test_portfolio_is_registered_with_capabilities():
    assert "portfolio" in available_backends()
    assert backend_capabilities()["portfolio"] == {
        "supports_assumptions": False,
        "supports_incremental": False,
        "produces_models": True,
    }


def test_roster_from_env_var(monkeypatch):
    monkeypatch.setenv(
        PORTFOLIO_ENV,
        f"inprocess; cmd:{sys.executable} {FAKE_SOLVER}",
    )
    backend = PortfolioBackend()
    assert backend.members == ("inprocess-oneshot", "subprocess-dimacs")


def test_duplicate_members_get_distinct_labels():
    backend = PortfolioBackend(members=[_fake_backend(), _fake_backend()])
    assert backend.members == ("subprocess-dimacs", "subprocess-dimacs#2")


def test_portfolio_rejects_itself_as_member():
    with pytest.raises(ValueError, match="member of itself"):
        PortfolioBackend(members=["portfolio"])


def test_shared_portfolio_is_cached_per_env(monkeypatch):
    monkeypatch.setenv(PORTFOLIO_ENV, "inprocess")
    first = shared_portfolio()
    assert shared_portfolio() is first
    monkeypatch.setenv(PORTFOLIO_ENV, "inprocess;inprocess")
    assert shared_portfolio() is not first


# ---------------------------------------------------------------------------
# Racing: winner selection, hedging, cancellation hygiene
# ---------------------------------------------------------------------------


def test_single_member_portfolio_through_the_facade():
    solver = Solver(backend=PortfolioBackend(members=["inprocess"]))
    x = T.bv_var("x", 8)
    solver.add(T.bv_eq(T.bv_add(x, T.bv_const(1, 8)), T.bv_const(10, 8)))
    assert solver.check() is SAT
    assert solver.model().value(x) == 9
    assert solver.backend_name == "portfolio"
    solver.add(T.bv_eq(x, T.bv_const(3, 8)))
    assert solver.check() is UNSAT


def test_race_against_hanging_and_crashing_members(tmp_path, monkeypatch):
    """The acceptance race: honest CDCL vs a hang vs a crash.

    The winner must be the honest member, every subprocess must be
    reaped, and no ``repro-dimacs-*`` temp dir may leak (the
    kill-mid-race regression).
    """
    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    backend = PortfolioBackend(
        members=["inprocess", _fake_backend("--hang", "60"),
                 _fake_backend("--crash")],
        hedge_delay=0.0,
    )
    before = _thread_names()
    result = backend.check(_sat_dimacs())
    assert result.verdict == "sat"
    result = backend.check(_unsat_dimacs())
    assert result.verdict == "unsat"
    # Member threads all joined: nothing new left running.
    leftovers = {n for n in _thread_names() - before
                 if n.startswith("portfolio-")}
    assert not leftovers
    # The hanging solver was hard-killed and its workdir removed.
    assert [p for p in tmp_path.iterdir()
            if p.name.startswith("repro-dimacs-")] == []


def test_fast_primary_means_hedges_never_launch():
    hang = _fake_backend("--hang", "60")
    backend = PortfolioBackend(members=["inprocess", hang],
                               hedge_delay=30.0)
    assert backend.check(_sat_dimacs()).verdict == "sat"
    # The hedge member was never even launched.
    assert backend.ledger.member("subprocess-dimacs").checks == 0


def test_hedges_fire_when_primary_cannot_answer():
    # The primary crashes instantly; the hedge must be promoted even
    # though its delay has not expired.
    crash = _fake_backend("--crash")
    backend = PortfolioBackend(members=[crash, "inprocess"],
                               hedge_delay=30.0)
    before = METRICS.get("portfolio.hedges_fired")
    assert backend.check(_sat_dimacs()).verdict == "sat"
    assert METRICS.get("portfolio.hedges_fired") == before + 1


def test_caller_deadline_is_honoured():
    backend = PortfolioBackend(members=[_fake_backend("--hang", "60")],
                               hedge_delay=0.0)
    started = time.monotonic()
    result = backend.check(
        _sat_dimacs(), limits=CheckLimits(deadline=started + 0.3))
    assert time.monotonic() - started < 5.0
    # The hang never answers; the trusted fallback path may still solve
    # the query after the deadline aborts the race.
    assert result.verdict in ("sat", "unknown")


def test_cooperative_cancel_stops_the_cdcl_member():
    # A factoring instance the CDCL core cannot finish instantly, so the
    # cancellation checkpoints inside search actually fire.
    cancel = threading.Event()
    cancel.set()
    started = time.monotonic()
    result = OneShotCdclBackend().check(
        _hard_dimacs(), limits=CheckLimits(cancel=cancel))
    assert time.monotonic() - started < 2.0
    assert result.verdict == "unknown"
    assert result.reason == "cancelled"


# ---------------------------------------------------------------------------
# Health ledger: quarantine entry, probe re-entry, restoration
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_ledger_quarantines_after_consecutive_faults():
    clock = FakeClock()
    ledger = HealthLedger(quarantine_after=3, clock=clock, seed=1)
    for _ in range(2):
        ledger.record_fault("m", "backend-error")
    assert ledger.status("m") == "healthy"
    ledger.record_fault("m", "backend-error")
    assert ledger.status("m") == "quarantined"
    assert ledger.quarantine_events == 1
    record = ledger.member("m")
    assert record.quarantine_backoff > 0.0
    # Backoff expiry turns the member into a probe, not healthy.
    clock.now += record.quarantine_backoff + 0.01
    assert ledger.status("m") == "probe"
    # A definitive answer restores full health.
    ledger.record_success("m", latency=0.01, won=True)
    assert ledger.status("m") == "healthy"
    assert ledger.member("m").wins == 1


def test_probe_fault_requarantines_with_grown_backoff():
    clock = FakeClock()
    ledger = HealthLedger(quarantine_after=1, quarantine_base=0.25,
                          quarantine_cap=30.0, clock=clock, seed=1)
    ledger.record_fault("m", "backend-error")
    first_backoff = ledger.member("m").quarantine_backoff
    clock.now += first_backoff + 0.01
    assert ledger.status("m") == "probe"
    ledger.record_fault("m", "backend-error")
    assert ledger.status("m") == "quarantined"
    assert ledger.member("m").quarantines == 2
    # Decorrelated jitter: bounded by the cap, floored at the base.
    assert 0.25 <= ledger.member("m").quarantine_backoff <= 30.0


def test_neutral_reasons_never_quarantine():
    ledger = HealthLedger(quarantine_after=1)
    for reason in ("conflicts", "memory", "iterations", "cancelled"):
        ledger.record_fault("m", reason)
    assert ledger.status("m") == "healthy"
    assert ledger.member("m").consecutive_faults == 0
    # Deadline IS a fault (this member specifically ran out the clock).
    ledger.record_fault("m", "deadline")
    assert ledger.status("m") == "quarantined"


def test_persistent_losing_quarantines_at_higher_threshold():
    ledger = HealthLedger(loss_quarantine_after=5)
    for _ in range(4):
        ledger.record_loss("m", latency=0.5)
    assert ledger.status("m") == "healthy"
    ledger.record_loss("m", latency=0.5)
    assert ledger.status("m") == "quarantined"


def test_crashing_member_enters_and_exits_quarantine_in_races():
    # min_agreement=2 makes the race deterministic: the loop never
    # breaks on the primary's sole answer, so the hedge always launches
    # (or is provably excluded by quarantine).
    clock = FakeClock()
    ledger = HealthLedger(quarantine_after=1, quarantine_base=0.01,
                          quarantine_cap=0.05, clock=clock, seed=3)
    crash = _fake_backend("--crash")
    backend = PortfolioBackend(members=["inprocess", crash],
                               hedge_delay=0.0, min_agreement=2,
                               ledger=ledger)
    assert backend.check(_sat_dimacs()).verdict == "sat"
    # The crash member faulted once -> quarantined immediately.
    assert ledger.member("subprocess-dimacs").reasons.get(
        "backend-error", 0) >= 1
    clock.now -= 1000.0  # force 'quarantined' regardless of real elapsed
    assert ledger.status("subprocess-dimacs") == "quarantined"
    # While quarantined it is excluded from the lineup entirely.
    before = ledger.member("subprocess-dimacs").checks
    assert backend.check(_sat_dimacs()).verdict == "sat"
    assert ledger.member("subprocess-dimacs").checks == before
    # Once the backoff expires it probes again (as a hedge)...
    clock.now += 2000.0
    assert ledger.status("subprocess-dimacs") == "probe"
    assert backend.check(_sat_dimacs()).verdict == "sat"
    assert ledger.member("subprocess-dimacs").checks == before + 1
    # ...and the probe's fault re-quarantines it with a grown count.
    assert ledger.member("subprocess-dimacs").quarantines == 2


def test_all_members_quarantined_degrades_to_trusted():
    clock = FakeClock()
    ledger = HealthLedger(quarantine_after=1, quarantine_base=50.0,
                          quarantine_cap=60.0, clock=clock, seed=3)
    backend = PortfolioBackend(members=[_fake_backend("--crash")],
                               hedge_delay=0.0, ledger=ledger)
    before = METRICS.get("portfolio.degraded")
    assert backend.check(_sat_dimacs()).verdict == "sat"  # trusted rescue
    assert ledger.status("subprocess-dimacs") == "quarantined"
    result = backend.check(_unsat_dimacs())
    assert result.verdict == "unsat"
    assert METRICS.get("portfolio.degraded") >= before + 1


# ---------------------------------------------------------------------------
# Disagreement sentinel and model validation
# ---------------------------------------------------------------------------


def test_lying_unsat_raises_soundness_violation(tmp_path):
    """A member flipping SAT->UNSAT must never win: the trusted re-check
    contradicts it, the violation is raised, and the full provenance
    lands in a ``portfolio.disagreement`` obs event."""
    backend = PortfolioBackend(members=[_fake_backend("--flip")],
                               hedge_delay=0.0)
    path = tmp_path / "disagreement.jsonl"
    tracer = Tracer(path, run_id="portfolio-flip")
    with installed(tracer):
        with pytest.raises(SoundnessViolation) as excinfo:
            backend.check(_sat_dimacs())
    tracer.close()
    violation = excinfo.value
    assert violation.reason == "disagreement"
    assert violation.verdicts["subprocess-dimacs"] == "unsat"
    assert violation.trusted == "trusted-inprocess"
    # The lying member is marked faulted with the canonical reason.
    assert backend.ledger.member("subprocess-dimacs").reasons[
        "disagreement"] == 1

    events, _ = load_events(path)
    disagreements = [e for e in events
                     if e["ev"] == "event"
                     and e["name"] == "portfolio.disagreement"]
    assert len(disagreements) == 1
    attrs = disagreements[0]["attrs"]
    assert attrs["verdicts"] == {"subprocess-dimacs": "unsat",
                                 "trusted-inprocess": "sat"}
    assert attrs["trusted_verdict"] == "sat"
    assert attrs["query_sha256"]
    assert "subprocess-dimacs" in attrs["health"]


def test_lying_sat_is_caught_by_model_validation():
    # Flipping UNSAT->SAT fabricates a witness; clause validation
    # rejects it locally (malformed-model), and the trusted member's
    # honest UNSAT is returned -- no verdict corruption, no exception.
    backend = PortfolioBackend(members=[_fake_backend("--flip")],
                               hedge_delay=0.0)
    result = backend.check(_unsat_dimacs())
    assert result.verdict == "unsat"
    assert backend.ledger.member("subprocess-dimacs").reasons.get(
        "malformed-model", 0) >= 1


def test_min_agreement_requires_trusted_confirmation():
    # One honest external member + one crasher, min_agreement=2: the
    # sole definitive answer cannot reach quorum, so the trusted member
    # must confirm it before it is returned.
    backend = PortfolioBackend(
        members=[_fake_backend(), _fake_backend("--crash")],
        hedge_delay=0.0, min_agreement=2,
    )
    before = METRICS.get("portfolio.confirmations")
    result = backend.check(_sat_dimacs())
    assert result.verdict == "sat"
    assert METRICS.get("portfolio.confirmations") == before + 1


def test_disagreement_raises_through_the_facade():
    solver = Solver(backend=PortfolioBackend(
        members=[_fake_backend("--flip")], hedge_delay=0.0))
    x = T.bv_var("x", 8)
    solver.add(T.bv_eq(x, T.bv_const(7, 8)))
    with pytest.raises(SoundnessViolation):
        solver.check()


# ---------------------------------------------------------------------------
# Flaky members: intermittent crashes across a run
# ---------------------------------------------------------------------------


def test_flaky_member_recovers_between_crashes(tmp_path):
    state = tmp_path / "flaky-state"
    flaky = _fake_backend("--flaky", "2", "--state-file", str(state))
    # Solo roster: every check exercises the flaky member directly.
    backend = PortfolioBackend(members=[flaky], hedge_delay=0.0,
                               quarantine_after=3)
    verdicts = [backend.check(_sat_dimacs()).verdict for _ in range(4)]
    # Crashes on calls 2 and 4; the trusted fallback still answers sat.
    assert verdicts == ["sat"] * 4
    record = backend.ledger.member("subprocess-dimacs")
    assert record.reasons.get("backend-error", 0) >= 1
    assert record.state == "healthy"  # never 3 consecutive


# ---------------------------------------------------------------------------
# Obs: race spans, member events, metrics counters
# ---------------------------------------------------------------------------


def test_race_span_and_member_events_are_attributed(tmp_path):
    path = tmp_path / "race.jsonl"
    tracer = Tracer(path, run_id="portfolio-race")
    backend = PortfolioBackend(
        members=["inprocess", _fake_backend("--hang", "60")],
        hedge_delay=0.0,
    )
    with installed(tracer):
        assert backend.check(_sat_dimacs()).verdict == "sat"
    tracer.close()
    events, _ = load_events(path)
    races = [e for e in events
             if e["ev"] == "span_begin" and e["name"] == "portfolio.race"]
    assert len(races) == 1
    race_id = races[0]["id"]
    members = [e for e in events
               if e["ev"] == "event" and e["name"] == "portfolio.member"]
    assert members, "no per-member events recorded"
    for ev in members:
        assert ev["parent"] == race_id
    outcomes = [e for e in events
                if e["ev"] == "event" and e["name"] == "portfolio.outcome"]
    assert len(outcomes) == 1
    assert outcomes[0]["attrs"]["winner"] == "inprocess-oneshot"
    assert outcomes[0]["attrs"]["verdict"] == "sat"


def test_race_metrics_accumulate():
    before = METRICS.get("portfolio.races")
    backend = PortfolioBackend(members=["inprocess"])
    backend.check(_sat_dimacs())
    backend.check(_unsat_dimacs())
    assert METRICS.get("portfolio.races") == before + 2


def test_report_totals_extract_portfolio_deltas():
    from repro.obs.report import totals

    events = [
        {"ev": "event", "name": "metrics.snapshot", "ts": 0.0,
         "attrs": {"encode.terms": 5}},
        {"ev": "event", "name": "metrics.snapshot", "ts": 1.0,
         "attrs": {"encode.terms": 9, "portfolio.races": 3,
                   "portfolio.hedges_fired": 1}},
    ]
    agg = totals(events)
    assert agg["portfolio_delta"] == {"races": 3, "hedges_fired": 1}
    assert agg["encode_delta"] == {"terms": 4}
