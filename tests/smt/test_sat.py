"""Tests for the CDCL SAT core, including differential tests vs brute force."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.sat.solver import SatSolver, _luby


def _lit(v, positive):
    return 2 * v + (0 if positive else 1)


def _make_solver(num_vars, clauses):
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(list(clause)) and ok
    return solver, ok


def _brute_force(num_vars, clauses):
    for bits in itertools.product([0, 1], repeat=num_vars):
        assignment = dict(enumerate(bits, start=1))
        if all(
            any(
                assignment[lit >> 1] == (1 - (lit & 1)) for lit in clause
            )
            for clause in clauses
        ):
            return True
    return False


def test_luby_sequence_prefix():
    assert [_luby(i) for i in range(15)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
    ]


def test_empty_formula_is_sat():
    solver = SatSolver()
    assert solver.solve() is True


def test_unit_clauses_propagate():
    solver, ok = _make_solver(2, [[_lit(1, True)], [_lit(2, False)]])
    assert ok and solver.solve() is True
    model = solver.model()
    assert model[1] == 1 and model[2] == 0


def test_direct_contradiction_unsat():
    solver, ok = _make_solver(1, [[_lit(1, True)], [_lit(1, False)]])
    assert not ok or solver.solve() is False


def test_simple_implication_chain():
    # (x1 -> x2), (x2 -> x3), x1, !x3 is UNSAT
    clauses = [
        [_lit(1, False), _lit(2, True)],
        [_lit(2, False), _lit(3, True)],
        [_lit(1, True)],
        [_lit(3, False)],
    ]
    solver, ok = _make_solver(3, clauses)
    assert not ok or solver.solve() is False


def test_tautological_clause_ignored():
    solver, ok = _make_solver(2, [[_lit(1, True), _lit(1, False)]])
    assert ok and solver.solve() is True


def test_duplicate_literals_deduplicated():
    solver, ok = _make_solver(1, [[_lit(1, True), _lit(1, True)]])
    assert ok and solver.solve() is True
    assert solver.model()[1] == 1


def test_pigeonhole_3_into_2_unsat():
    # p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
    def var(i, j):
        return i * 2 + j + 1

    clauses = []
    for i in range(3):
        clauses.append([_lit(var(i, 0), True), _lit(var(i, 1), True)])
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                clauses.append(
                    [_lit(var(i1, j), False), _lit(var(i2, j), False)]
                )
    solver, ok = _make_solver(6, clauses)
    assert not ok or solver.solve() is False


def test_assumptions_sat_and_unsat():
    # x1 | x2
    solver, ok = _make_solver(2, [[_lit(1, True), _lit(2, True)]])
    assert solver.solve(assumptions=[_lit(1, True)]) is True
    assert solver.solve(assumptions=[_lit(1, False), _lit(2, False)]) is False
    # solver state recovers
    assert solver.solve() is True


def test_incremental_additions():
    solver, _ = _make_solver(3, [[_lit(1, True), _lit(2, True)]])
    assert solver.solve() is True
    solver.add_clause([_lit(1, False)])
    assert solver.solve() is True
    assert solver.model()[2] == 1
    solver.add_clause([_lit(2, False)])
    assert solver.solve() is False


def test_conflict_budget_returns_none():
    # A hard-ish random instance; with a 1-conflict budget we expect None
    # (unknown) unless it solves without conflicts.
    random.seed(7)
    num_vars = 50
    clauses = [
        [
            _lit(random.randrange(1, num_vars + 1), random.random() < 0.5)
            for _ in range(3)
        ]
        for _ in range(220)
    ]
    solver, ok = _make_solver(num_vars, clauses)
    if ok:
        verdict = solver.solve(max_conflicts=1)
        assert verdict in (None, True, False)


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_random_3sat_matches_brute_force(data):
    num_vars = data.draw(st.integers(min_value=1, max_value=8))
    num_clauses = data.draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        size = data.draw(st.integers(min_value=1, max_value=3))
        clause = [
            _lit(
                data.draw(st.integers(min_value=1, max_value=num_vars)),
                data.draw(st.booleans()),
            )
            for _ in range(size)
        ]
        clauses.append(clause)
    solver, ok = _make_solver(num_vars, clauses)
    expected = _brute_force(num_vars, clauses)
    if not ok:
        assert expected is False
        return
    verdict = solver.solve()
    assert verdict is expected
    if verdict:
        model = solver.model()
        # Model must satisfy every clause (free vars default-checked too).
        for clause in clauses:
            assert any(
                model.get(lit >> 1, 0) == (1 - (lit & 1)) for lit in clause
            )


def test_reduce_db_never_drops_reason_clauses():
    # Regression for the locked-set bug: reason[] stores -1 for decisions
    # and level-0 facts; a reduction pass that treats -1 as a clause index
    # (or skips locking entirely) deletes a clause some trail literal
    # still depends on, and the next _analyze walks a None.
    solver = SatSolver()
    for _ in range(8):
        solver.new_var()
    indices = []
    for v in range(1, 7):
        clause = [_lit(v, True), _lit(v + 1, False)]
        ci = len(solver.clauses)
        solver.clauses.append(clause)
        solver.learned.add(ci)
        solver.lbd[ci] = 10          # local tier: first to be dropped
        solver.activity_cl[ci] = float(v)
        indices.append(ci)
    # Make the *lowest-activity* candidate the reason for a literal on a
    # decision level — exactly the clause an unlocked reduction would
    # drop first.
    locked_ci = indices[0]
    solver.trail_lim.append(len(solver.trail))
    assert solver._enqueue(_lit(1, True), locked_ci)
    solver._reduce_limit = 1
    solver._reduce_db()
    assert solver.clauses[locked_ci] is not None
    assert locked_ci in solver.learned
    # The pass still reduced: unlocked clauses were actually dropped.
    assert solver.deleted_total > 0
    dropped = [ci for ci in indices if solver.clauses[ci] is None]
    assert locked_ci not in dropped and dropped


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_constant_reduction_pressure_stays_sound(data):
    # Force a DB reduction at every opportunity (limit 1) so the locked
    # set is exercised mid-search, then check the verdict is still right.
    num_vars = data.draw(st.integers(min_value=4, max_value=8))
    clauses = []
    for _ in range(4 * num_vars):
        clause = [
            _lit(
                data.draw(st.integers(min_value=1, max_value=num_vars)),
                data.draw(st.booleans()),
            )
            for _ in range(3)
        ]
        clauses.append(clause)
    solver, ok = _make_solver(num_vars, clauses)
    expected = _brute_force(num_vars, clauses)
    if not ok:
        assert expected is False
        return
    solver._reduce_limit = 1
    assert solver.solve() is expected


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_trail_reusing_solver_matches_fresh_per_call(data):
    # The incremental contract: one persistent solver answering a sequence
    # of assumption solves (keeping learned clauses and reused trail
    # prefixes across calls) must agree, call by call, with a fresh solver
    # built from scratch for the same query — and its SAT models must
    # satisfy both the clauses and the assumptions.
    num_vars = data.draw(st.integers(min_value=2, max_value=8))
    num_clauses = data.draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        size = data.draw(st.integers(min_value=1, max_value=3))
        clauses.append([
            _lit(
                data.draw(st.integers(min_value=1, max_value=num_vars)),
                data.draw(st.booleans()),
            )
            for _ in range(size)
        ])
    persistent, ok = _make_solver(num_vars, clauses)
    num_solves = data.draw(st.integers(min_value=1, max_value=6))
    for _ in range(num_solves):
        assumptions = [
            _lit(
                data.draw(st.integers(min_value=1, max_value=num_vars)),
                data.draw(st.booleans()),
            )
            for _ in range(data.draw(st.integers(min_value=0,
                                                 max_value=num_vars)))
        ]
        fresh, fresh_ok = _make_solver(num_vars, clauses)
        assert fresh_ok is ok
        if not ok:
            return
        expected = fresh.solve(assumptions=assumptions)
        got = persistent.solve(assumptions=assumptions)
        assert got is expected
        if got:
            model = persistent.model()
            for clause in clauses:
                assert any(
                    model.get(lit >> 1, 0) == (1 - (lit & 1))
                    for lit in clause
                )
            for lit in assumptions:
                assert model[lit >> 1] == (1 - (lit & 1))
    # Reuse stats only ever move forward; they never invent levels.
    assert persistent.trail_reuse_levels >= 0
    assert persistent.trail_reuse_hits <= num_solves


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_solve_is_repeatable(data):
    num_vars = data.draw(st.integers(min_value=1, max_value=6))
    clauses = [
        [
            _lit(
                data.draw(st.integers(min_value=1, max_value=num_vars)),
                data.draw(st.booleans()),
            )
            for _ in range(2)
        ]
        for _ in range(10)
    ]
    solver, ok = _make_solver(num_vars, clauses)
    if not ok:
        return
    first = solver.solve()
    second = solver.solve()
    assert first is second
