"""Differential tests: bit-blasted semantics vs the term evaluator.

Strategy: generate random terms over a couple of variables, pick random
inputs, and assert (via the solver) that the blasted circuit cannot disagree
with ``terms.evaluate``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.smt.bitblast import BitBlaster
from repro.smt.solver import Solver, SAT, UNSAT, UnknownModelVariableWarning


def test_aig_simplification_rules():
    aig = AIG()
    a = aig.new_input()
    b = aig.new_input()
    assert aig.and_(a, TRUE_LIT) == a
    assert aig.and_(a, FALSE_LIT) == FALSE_LIT
    assert aig.and_(a, a) == a
    assert aig.and_(a, a ^ 1) == FALSE_LIT
    assert aig.and_(a, b) == aig.and_(b, a)  # strashing
    assert aig.xor_(a, a) == FALSE_LIT
    assert aig.xor_(a, a ^ 1) == TRUE_LIT
    assert aig.mux(TRUE_LIT, a, b) == a
    assert aig.mux(FALSE_LIT, a, b) == b


def test_aig_evaluate():
    aig = AIG()
    a = aig.new_input()
    b = aig.new_input()
    out = aig.xor_(a, b)
    assert aig.evaluate([out], {a >> 1: 1, b >> 1: 0}) == [1]
    assert aig.evaluate([out], {a >> 1: 1, b >> 1: 1}) == [0]


def test_blaster_rejects_var_width_conflict():
    blaster = BitBlaster()
    blaster.blast(T.bv_var("vv", 4))
    with pytest.raises(ValueError):
        blaster._blast_node(T.bv_var("vv", 5))


def test_blast_constant():
    blaster = BitBlaster()
    bits = blaster.blast(T.bv_const(0b101, 3))
    assert bits == (TRUE_LIT, FALSE_LIT, TRUE_LIT)


def _assert_circuit_equals(term, env, expected):
    solver = Solver()
    for name, value in env.items():
        var = T.bv_var(name, _width_of(name, env, term))
        solver.add(T.bv_eq(var, T.bv_const(value, var.width)))
    solver.add(T.bv_ne(term, T.bv_const(expected, term.width)))
    assert solver.check() is UNSAT


def _width_of(name, env, term):
    for var in T.free_variables(term):
        if var.name == name:
            return var.width
    raise AssertionError(f"no var {name}")


_OPS = [
    T.bv_add, T.bv_sub, T.bv_mul, T.bv_and, T.bv_or, T.bv_xor,
    T.bv_udiv, T.bv_urem, T.bv_shl, T.bv_lshr, T.bv_ashr,
]


@settings(max_examples=120, deadline=None)
@given(
    op_index=st.integers(min_value=0, max_value=len(_OPS) - 1),
    width=st.sampled_from([1, 2, 3, 5, 8, 11]),
    a=st.integers(min_value=0, max_value=(1 << 11) - 1),
    b=st.integers(min_value=0, max_value=(1 << 11) - 1),
)
def test_ops_agree_with_evaluator(op_index, width, a, b):
    a %= 1 << width
    b %= 1 << width
    x = T.bv_var("bx", width)
    y = T.bv_var("by", width)
    term = _OPS[op_index](x, y)
    expected = T.evaluate(term, {"bx": a, "by": b})
    _assert_circuit_equals(term, {"bx": a, "by": b}, expected)


@settings(max_examples=80, deadline=None)
@given(
    width=st.sampled_from([2, 4, 7]),
    a=st.integers(min_value=0, max_value=127),
    b=st.integers(min_value=0, max_value=127),
    c=st.booleans(),
)
def test_composite_expression_agrees(width, a, b, c):
    a %= 1 << width
    b %= 1 << width
    x = T.bv_var("cx", width)
    y = T.bv_var("cy", width)
    sel = T.bv_var("cs", 1)
    term = T.bv_ite(
        sel,
        T.bv_add(x, T.bv_not(y)),
        T.bv_concat(
            T.bv_extract(x, width - 1, width // 2),
            T.bv_extract(T.bv_xor(x, y), width // 2 - 1 if width > 1 else 0, 0),
        ) if width > 1 else T.bv_xor(x, y),
    )
    if term.width != width and term.op == "ite":
        return  # widths diverged for odd widths; skip
    env = {"cx": a, "cy": b, "cs": int(c)}
    expected = T.evaluate(term, env)
    _assert_circuit_equals(term, env, expected)


@settings(max_examples=60, deadline=None)
@given(
    width=st.sampled_from([1, 3, 8]),
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
)
def test_predicates_agree(width, a, b):
    a %= 1 << width
    b %= 1 << width
    x = T.bv_var("qx", width)
    y = T.bv_var("qy", width)
    for build in (T.bv_eq, T.bv_ult, T.bv_ule, T.bv_slt, T.bv_sle):
        term = build(x, y)
        expected = T.evaluate(term, {"qx": a, "qy": b})
        _assert_circuit_equals(term, {"qx": a, "qy": b}, expected)


def test_solver_model_covers_all_bits():
    x = T.bv_var("mx", 16)
    solver = Solver()
    solver.add(T.bv_eq(x, T.bv_const(0xBEEF, 16)))
    assert solver.check() is SAT
    assert solver.model().value(x) == 0xBEEF


def test_unconstrained_variable_defaults_to_zero():
    solver = Solver()
    solver.add(T.bv_eq(T.bv_var("used", 4), T.bv_const(5, 4)))
    assert solver.check() is SAT
    model = solver.model()
    with pytest.warns(UnknownModelVariableWarning, match="never_seen"):
        assert model.value("never_seen") == 0


def test_trivially_false_assertion():
    solver = Solver()
    solver.add(T.FALSE)
    assert solver.check() is UNSAT


def test_blast_cache_survives_interner_reset():
    """Regression: the blast cache must key by term, not by id(term).

    An id-keyed cache without a strong reference is unsound across
    ``reset_interner()``: the old term can be garbage collected and its id
    reused by a *different* term, which then aliases to the stale entry's
    literals.  Keying by the term object (identity hash + strong
    reference) makes reuse impossible; a structurally equal term rebuilt
    after the reset is a distinct object and blasts fresh, correct bits.
    """
    import gc

    blaster = BitBlaster()
    term = T.bv_add(T.bv_var("rst_a", 4), T.bv_const(3, 4))
    before = blaster.blast(term)
    assert all(isinstance(key, T.Term) for key in blaster._cache)

    T.reset_interner()
    del term
    gc.collect()

    # Rebuild dozens of distinct terms so a recycled id would have ample
    # opportunity to collide with a stale integer key.
    rebuilt = T.bv_add(T.bv_var("rst_a", 4), T.bv_const(3, 4))
    decoys = [T.bv_sub(T.bv_var("rst_a", 4), T.bv_const(k, 4))
              for k in range(16)]
    again = blaster.blast(rebuilt)
    # Same variable registry, same structure: identical literals — but via
    # a fresh cache entry, not a stale alias.
    assert again == before
    for k, decoy in enumerate(decoys):
        bits = blaster.blast(decoy)
        # Semantic spot-check through the AIG: rst_a=5 -> 5-k mod 16.
        inputs = {
            bit >> 1: (5 >> i) & 1
            for i, bit in enumerate(blaster.var_bits["rst_a"])
        }
        value = 0
        for i, out in enumerate(blaster.aig.evaluate(list(bits), inputs)):
            value |= out << i
        assert value == (5 - k) % 16
    T.reset_interner()


def test_incremental_sharing_across_adds():
    x = T.bv_var("ix", 8)
    y = T.bv_var("iy", 8)
    solver = Solver()
    solver.add(T.bv_eq(T.bv_add(x, y), T.bv_const(100, 8)))
    assert solver.check() is SAT
    solver.add(T.bv_eq(x, T.bv_const(99, 8)))
    assert solver.check() is SAT
    assert solver.model().value(y) == 1
    solver.add(T.bv_ne(y, T.bv_const(1, 8)))
    assert solver.check() is UNSAT
