"""Differential testing across every registered solver backend.

The backend seam's contract is that the decision procedure is
interchangeable: the in-process CDCL core, the sandboxed worker pool and
an external DIMACS solver must all return the same SAT/UNSAT verdicts —
and, because CEGIS is deterministic given those verdicts, bit-identical
synthesized control logic — on the same designs.  Any divergence means a
backend is mistranslating queries or models.

The external backend runs against the bundled fake solver (which really
solves, via the repo's own CDCL), so this suite is hermetic: no kissat
or minisat install is needed.
"""

import os
import sys

import pytest

from repro.designs import accumulator, alu_machine
from repro.runtime import SolverWorkerPool
from repro.smt import Solver
from repro.smt import terms as T
from repro.smt.backends import SolverConfig
from repro.smt.backends.subprocess_dimacs import SubprocessDimacsBackend
from repro.smt.solver import SAT, UNSAT
from repro.synthesis import synthesize, verify_design

FAKE_SOLVER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fake_sat_solver.py")

BACKENDS = ("inprocess", "isolated", "subprocess-dimacs",
            "incremental-subprocess", "portfolio")


def _make_config(backend_name, pool):
    if backend_name == "isolated":
        return SolverConfig(backend="isolated", worker_pool=pool)
    if backend_name == "incremental-subprocess":
        # By *name*, not instance: every Solver must get its own child
        # (the backend is stateful — it IS the solver's encoding core).
        # The default command is the repo's own worker, so this row is
        # hermetic too.
        return SolverConfig(backend="incremental-subprocess")
    if backend_name == "subprocess-dimacs":
        return SolverConfig(backend=SubprocessDimacsBackend(
            command=[sys.executable, FAKE_SOLVER]))
    if backend_name == "portfolio":
        # The acceptance-criteria chaos portfolio: the honest CDCL racing
        # a member that hangs forever and one that crashes instantly.
        from repro.smt.backends import PortfolioBackend

        return SolverConfig(backend=PortfolioBackend(members=[
            "inprocess",
            SubprocessDimacsBackend(
                command=[sys.executable, FAKE_SOLVER, "--hang", "60"]),
            SubprocessDimacsBackend(
                command=[sys.executable, FAKE_SOLVER, "--crash"]),
        ]))
    return SolverConfig(backend=backend_name)


@pytest.fixture(scope="module", params=[accumulator, alu_machine],
                ids=["accumulator", "alu_machine"])
def results_by_backend(request):
    """One synthesis result per registered backend, same problem."""
    design = request.param
    pool = SolverWorkerPool(size=2)
    try:
        results = {}
        for name in BACKENDS:
            problem = design.build_problem()
            results[name] = synthesize(
                problem, timeout=300, config=_make_config(name, pool))
        yield design, results
    finally:
        pool.shutdown()


def test_backends_report_their_own_name(results_by_backend):
    _, results = results_by_backend
    for name, result in results.items():
        assert result.stats["backend"] == name


def test_all_backends_solve_every_instruction(results_by_backend):
    _, results = results_by_backend
    reference = results["inprocess"]
    for name, result in results.items():
        assert len(result.per_instruction) == \
            len(reference.per_instruction), name


def test_control_logic_is_bit_identical_across_backends(results_by_backend):
    """The tentpole acceptance bar: identical hole values everywhere."""
    _, results = results_by_backend
    reference = results["inprocess"]
    for name, result in results.items():
        for solution in reference.per_instruction:
            assert result.hole_values_for(solution.instruction_name) \
                == solution.hole_values, (name, solution.instruction_name)


def test_backends_match_published_reference_values(results_by_backend):
    design, results = results_by_backend
    expected = getattr(design, "REFERENCE_HOLE_VALUES", None)
    if expected is None:
        pytest.skip(f"{design.__name__} publishes no reference values")
    for name, result in results.items():
        for instruction, values in expected.items():
            assert result.hole_values_for(instruction) == values, \
                (name, instruction)


def test_every_backend_result_verifies_independently(results_by_backend):
    design, results = results_by_backend
    problem = design.build_problem()
    for name, result in results.items():
        verdict = verify_design(result.completed_design, problem.spec,
                                problem.alpha)
        assert verdict.ok, (name, verdict.summary())


# ---------------------------------------------------------------------------
# Raw verdict differential: the same queries straight through the facade.
# ---------------------------------------------------------------------------


def _solver_for(backend_name, pool):
    return Solver(**_make_config(backend_name, pool).solver_kwargs())


@pytest.fixture(scope="module")
def verdict_pool():
    pool = SolverWorkerPool(size=1)
    yield pool
    pool.shutdown()


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_sat_verdicts_and_models_agree(backend_name, verdict_pool):
    solver = _solver_for(backend_name, verdict_pool)
    x = T.bv_var("x", 8)
    solver.add(T.bv_eq(T.bv_add(x, T.bv_const(1, 8)), T.bv_const(10, 8)))
    assert solver.check() is SAT
    assert solver.model().value(x) == 9


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_unsat_verdicts_agree(backend_name, verdict_pool):
    solver = _solver_for(backend_name, verdict_pool)
    x = T.bv_var("x", 8)
    solver.add(T.bv_eq(x, T.bv_const(3, 8)))
    solver.add(T.bv_eq(x, T.bv_const(4, 8)))
    assert solver.check() is UNSAT


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_assumption_verdicts_agree(backend_name, verdict_pool):
    """Assumptions work on every backend — natively on incremental ones,
    by re-encoding as unit constraints on stateless ones."""
    solver = _solver_for(backend_name, verdict_pool)
    x = T.bv_var("x", 8)
    solver.add(T.bv_ult(x, T.bv_const(10, 8)))
    assert solver.check(
        assumptions=[T.bv_eq(x, T.bv_const(4, 8))]) is SAT
    assert solver.check(
        assumptions=[T.bv_eq(x, T.bv_const(12, 8))]) is UNSAT
    # The base formula is untouched by failed assumptions.
    assert solver.check() is SAT
