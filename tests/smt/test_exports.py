"""Tests for the SMT-LIB and DIMACS exporters."""

import re

from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.dimacs import to_dimacs
from repro.smt.smtlib import query_to_smtlib, to_smtlib


def test_smtlib_renders_basic_ops():
    x = T.bv_var("x", 8)
    y = T.bv_var("y", 8)
    text = to_smtlib(T.bv_add(x, y))
    assert text == "(bvadd x y)"
    assert to_smtlib(T.bv_const(5, 8)) == "(_ bv5 8)"
    assert "extract" in to_smtlib(T.bv_extract(x, 6, 2))
    assert to_smtlib(T.bv_eq(x, y)).startswith("(ite (= ")


def test_smtlib_quotes_exotic_names():
    v = T.bv_var("i0!hole!x", 4)
    assert to_smtlib(v) == "i0!hole!x"  # ! is a legal simple-symbol char
    v2 = T.bv_var("a b", 4)
    assert to_smtlib(v2) == "|a b|"


def test_query_script_structure():
    x = T.bv_var("qx", 8)
    script = query_to_smtlib(
        [T.bv_eq(x, T.bv_const(3, 8))], get_model=True
    )
    assert script.startswith("(set-logic QF_BV)")
    assert "(declare-const qx (_ BitVec 8))" in script
    assert "(assert (= " in script
    assert "(check-sat)" in script
    assert "(get-model)" in script


def test_query_declares_each_var_once():
    x = T.bv_var("dx", 8)
    script = query_to_smtlib([
        T.bv_eq(x, T.bv_const(1, 8)),
        T.bv_ne(x, T.bv_const(2, 8)),
    ])
    assert script.count("declare-const dx") == 1


@settings(max_examples=50, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
)
def test_smtlib_export_covers_all_ops(a, b):
    x = T.bv_var("ex", 8)
    y = T.bv_var("ey", 8)
    builders = [
        T.bv_add, T.bv_sub, T.bv_mul, T.bv_and, T.bv_or, T.bv_xor,
        T.bv_udiv, T.bv_urem, T.bv_shl, T.bv_lshr, T.bv_ashr,
        T.bv_eq, T.bv_ult, T.bv_slt, T.bv_concat,
    ]
    for build in builders:
        text = to_smtlib(build(x, y))
        assert text.startswith("(")


# ---------------------------------------------------------------------------
# DIMACS
# ---------------------------------------------------------------------------


def _parse_dimacs(text):
    clauses = []
    num_vars = 0
    for line in text.splitlines():
        if line.startswith("c"):
            continue
        if line.startswith("p cnf"):
            num_vars = int(line.split()[2])
            continue
        lits = [int(tok) for tok in line.split()[:-1]]
        clauses.append(lits)
    return num_vars, clauses


def _brute_force_sat(num_vars, clauses):
    import itertools

    for bits in itertools.product([0, 1], repeat=num_vars):
        assignment = dict(enumerate(bits, start=1))
        if all(
            any(
                (assignment[abs(l)] == 1) == (l > 0) for l in clause
            )
            for clause in clauses
        ):
            return True
    return False


def test_dimacs_header_and_var_map():
    x = T.bv_var("mv", 3)
    text = to_dimacs([T.bv_eq(x, T.bv_const(5, 3))])
    assert re.search(r"p cnf \d+ \d+", text)
    assert "c var mv bits" in text
    assert text.strip().endswith("0")


def test_dimacs_sat_agrees_with_solver():
    from repro.smt.solver import Solver, SAT, UNSAT

    x = T.bv_var("dv", 4)
    cases = [
        ([T.bv_eq(x, T.bv_const(9, 4))], True),
        ([T.bv_ult(x, T.bv_const(3, 4)),
          T.bv_ugt(x, T.bv_const(12, 4))], False),
    ]
    for assertions, expected in cases:
        solver = Solver()
        solver.add_all(assertions)
        assert (solver.check() is SAT) == expected
        num_vars, clauses = _parse_dimacs(to_dimacs(assertions))
        if num_vars <= 16:
            assert _brute_force_sat(num_vars, clauses) == expected


def test_dimacs_trivial_assertions():
    assert "p cnf" in to_dimacs([T.TRUE])
    num_vars, clauses = _parse_dimacs(to_dimacs([T.FALSE]))
    assert not _brute_force_sat(num_vars, clauses)
