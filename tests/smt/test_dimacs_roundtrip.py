"""Property tests: DIMACS export/replay round-trips the wire format.

The isolated-execution wire format is exactly ``to_dimacs`` →
``from_dimacs`` → ``solve_dimacs``: these properties pin down that a
replayed query always agrees with a direct ``Solver.check`` on the same
assertions, and that SAT assignments decode (via the ``c var`` bit
headers) into models of the original term-level query.
"""

from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.dimacs import DimacsCnf, from_dimacs, solve_dimacs, to_dimacs
from repro.smt.solver import Solver, SAT

_OPS = [T.bv_add, T.bv_sub, T.bv_mul, T.bv_and, T.bv_or, T.bv_xor,
        T.bv_shl, T.bv_lshr]
_RELS = [T.bv_eq, T.bv_ne, T.bv_ult, T.bv_ugt, T.bv_ule, T.bv_slt]


def _build_assertions(op, rel, c1, c2, conjoin):
    x = T.bv_var("x", 4)
    y = T.bv_var("y", 4)
    assertions = [_RELS[rel](_OPS[op](x, y), T.bv_const(c1, 4))]
    if conjoin:
        assertions.append(T.bv_ult(y, T.bv_const(c2, 4)))
    return (x, y), assertions


@settings(max_examples=80, deadline=None)
@given(
    op=st.integers(0, len(_OPS) - 1),
    rel=st.integers(0, len(_RELS) - 1),
    c1=st.integers(0, 15),
    c2=st.integers(1, 15),
    conjoin=st.booleans(),
)
def test_replay_verdict_agrees_with_direct_check(op, rel, c1, c2, conjoin):
    variables, assertions = _build_assertions(op, rel, c1, c2, conjoin)
    direct = Solver()
    direct.add_all(assertions)
    direct_verdict = direct.check()

    verdict, values, _ = solve_dimacs(from_dimacs(to_dimacs(assertions)))
    assert verdict in ("sat", "unsat")
    assert (verdict == "sat") == (direct_verdict is SAT)

    if verdict == "sat":
        # The decoded assignment must be a model of the *original* terms:
        # pin every decoded variable and re-check.
        checker = Solver()
        checker.add_all(assertions)
        for var in variables:
            if var.name in values:
                checker.add(T.bv_eq(
                    var, T.bv_const(values[var.name], var.width)
                ))
        assert checker.check() is SAT


@settings(max_examples=30, deadline=None)
@given(value=st.integers(0, 255))
def test_model_bits_decode_lsb_first(value):
    x = T.bv_var("x", 8)
    wire = to_dimacs([T.bv_eq(x, T.bv_const(value, 8))])
    verdict, values, _ = solve_dimacs(wire)  # raw text accepted too
    assert verdict == "sat"
    assert values["x"] == value


def test_from_dimacs_round_trips_header():
    x = T.bv_var("rt", 5)
    wire = to_dimacs([T.bv_ugt(x, T.bv_const(17, 5))])
    cnf = from_dimacs(wire)
    assert isinstance(cnf, DimacsCnf)
    assert len(cnf.var_bits["rt"]) == 5
    assert all(1 <= b <= cnf.num_vars for b in cnf.var_bits["rt"])


def test_from_dimacs_tolerates_foreign_instances():
    # Plain DIMACS with no var headers and multi-line clauses.
    cnf = from_dimacs("c some other tool\np cnf 3 2\n1 -2\n0\n2 3 0\n")
    assert cnf.num_vars == 3
    assert cnf.clauses == [[1, -2], [2, 3]]
    verdict, values, _ = solve_dimacs(cnf)
    assert verdict == "sat"
    assert values == {}  # no headers -> no term-level model


def test_solve_dimacs_reports_conflict_cap():
    # A hard instance under an absurdly small conflict cap must come back
    # unknown with the exhausted cap named, mirroring Solver.check.
    import operator
    from functools import reduce

    xs = [T.bv_var(f"p{i}", 8) for i in range(4)]
    product = reduce(operator.mul, xs[1:], xs[0])
    wire = to_dimacs([
        T.bv_eq(product, T.bv_const(251, 8)),
        T.bv_ne(xs[0], T.bv_const(1, 8)),
    ])
    verdict, values, conflicts = solve_dimacs(wire, max_conflicts=1)
    if verdict.startswith("unknown"):
        assert verdict == "unknown:conflicts"
        assert values == {}
    assert conflicts >= 0
