"""Direct unit tests for the AIG layer (beyond what bitblast exercises)."""

from hypothesis import given, settings, strategies as st

from repro.smt.aig import AIG, FALSE_LIT, TRUE_LIT


def test_strashing_shares_structure():
    aig = AIG()
    a = aig.new_input()
    b = aig.new_input()
    before = len(aig)
    first = aig.and_(a, b)
    second = aig.and_(b, a)  # commuted
    assert first == second
    assert len(aig) == before + 1


def test_cone_excludes_unreachable():
    aig = AIG()
    a = aig.new_input()
    b = aig.new_input()
    used = aig.and_(a, b)
    aig.and_(a ^ 1, b)  # unreachable from `used`
    cone = aig.cone([used])
    assert used >> 1 in cone
    assert len(cone) == 3  # a, b, the AND


def test_is_input():
    aig = AIG()
    a = aig.new_input()
    b = aig.new_input()
    gate = aig.and_(a, b)
    assert aig.is_input(a >> 1)
    assert not aig.is_input(gate >> 1)
    assert not aig.is_input(0)


def test_neg_helper():
    assert AIG.neg(4) == 5
    assert AIG.neg(5) == 4


@settings(max_examples=200, deadline=None)
@given(
    a=st.integers(0, 1), b=st.integers(0, 1), c=st.integers(0, 1),
)
def test_gate_semantics(a, b, c):
    aig = AIG()
    ia, ib, ic = aig.new_input(), aig.new_input(), aig.new_input()
    env = {ia >> 1: a, ib >> 1: b, ic >> 1: c}
    and_gate = aig.and_(ia, ib)
    or_gate = aig.or_(ia, ib)
    xor_gate = aig.xor_(ia, ib)
    mux_gate = aig.mux(ic, ia, ib)
    results = aig.evaluate([and_gate, or_gate, xor_gate, mux_gate,
                            ia ^ 1, TRUE_LIT, FALSE_LIT], env)
    assert results == [
        a & b, a | b, a ^ b, a if c else b, 1 - a, 1, 0,
    ]


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_constant_simplifications_never_create_nodes(data):
    aig = AIG()
    a = aig.new_input()
    before = len(aig)
    lit = data.draw(st.sampled_from([TRUE_LIT, FALSE_LIT]))
    aig.and_(a, lit)
    aig.or_(a, lit)
    aig.xor_(a, lit)
    aig.mux(lit, a, a ^ 1)
    aig.and_(a, a)
    aig.and_(a, a ^ 1)
    assert len(aig) == before
