"""Unit and property tests for the term language and its rewrites."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T


def test_const_masks_value():
    assert T.bv_const(0x1FF, 8).value == 0xFF
    assert T.bv_const(-1, 4).value == 0xF


def test_const_rejects_bad_width():
    with pytest.raises(ValueError):
        T.bv_const(0, 0)
    with pytest.raises(ValueError):
        T.bv_var("x", -3)


def test_interning_makes_equal_terms_identical():
    a = T.bv_add(T.bv_var("x", 8), T.bv_const(1, 8))
    b = T.bv_add(T.bv_var("x", 8), T.bv_const(1, 8))
    assert a is b


def test_commutative_canonicalization():
    x = T.bv_var("x", 8)
    y = T.bv_var("y", 8)
    assert T.bv_and(x, y) is T.bv_and(y, x)
    assert T.bv_add(x, y) is T.bv_add(y, x)
    assert T.bv_eq(x, y) is T.bv_eq(y, x)


def test_constant_folding():
    assert T.bv_add(T.bv_const(3, 8), T.bv_const(4, 8)).value == 7
    assert T.bv_mul(T.bv_const(7, 8), T.bv_const(5, 8)).value == 35
    assert T.bv_sub(T.bv_const(3, 8), T.bv_const(4, 8)).value == 0xFF


def test_identity_rewrites():
    x = T.bv_var("x", 8)
    zero = T.bv_const(0, 8)
    ones = T.bv_const(0xFF, 8)
    assert T.bv_and(x, zero) is zero
    assert T.bv_and(x, ones) is x
    assert T.bv_or(x, zero) is x
    assert T.bv_xor(x, zero) is x
    assert T.bv_add(x, zero) is x
    assert T.bv_sub(x, zero) is x
    assert T.bv_xor(x, x).value == 0
    assert T.bv_and(x, T.bv_not(x)).value == 0


def test_add_reassociation_collects_constants():
    x = T.bv_var("x", 8)
    expr = T.bv_add(T.bv_add(x, T.bv_const(3, 8)), T.bv_const(4, 8))
    assert expr is T.bv_add(x, T.bv_const(7, 8))


def test_width_mismatch_raises():
    with pytest.raises(ValueError):
        T.bv_add(T.bv_var("x", 8), T.bv_var("y", 4))
    with pytest.raises(ValueError):
        T.bv_ite(T.bv_var("c", 2), T.bv_var("x", 8), T.bv_var("x", 8))


def test_shift_by_constant_becomes_wiring():
    x = T.bv_var("x", 8)
    shifted = T.bv_shl(x, T.bv_const(3, 8))
    assert shifted.op == "concat"
    assert T.evaluate(shifted, {"x": 0b10110011}) == (0b10110011 << 3) & 0xFF
    right = T.bv_lshr(x, T.bv_const(2, 8))
    assert T.evaluate(right, {"x": 0b10110011}) == 0b10110011 >> 2


def test_shift_overflow_folds():
    x = T.bv_var("x", 8)
    assert T.bv_shl(x, T.bv_const(8, 8)).value == 0
    assert T.bv_lshr(x, T.bv_const(200, 8)).value == 0


def test_extract_of_concat_descends():
    x = T.bv_var("x", 8)
    y = T.bv_var("y", 8)
    cat = T.bv_concat(x, y)
    assert T.bv_extract(cat, 7, 0) is y
    assert T.bv_extract(cat, 15, 8) is x
    mixed = T.bv_extract(cat, 11, 4)
    assert T.evaluate(mixed, {"x": 0xAB, "y": 0xCD}) == ((0xAB << 8 | 0xCD) >> 4) & 0xFF


def test_extract_of_extract_composes():
    x = T.bv_var("x", 16)
    inner = T.bv_extract(x, 11, 4)
    outer = T.bv_extract(inner, 5, 2)
    assert outer.op == "extract"
    assert outer.params == (9, 6)


def test_concat_of_adjacent_extracts_merges():
    x = T.bv_var("x", 16)
    hi = T.bv_extract(x, 11, 8)
    lo = T.bv_extract(x, 7, 4)
    assert T.bv_concat(hi, lo) is T.bv_extract(x, 11, 4)


def test_ite_simplifications():
    c = T.bv_var("c", 1)
    x = T.bv_var("x", 8)
    y = T.bv_var("y", 8)
    assert T.bv_ite(T.TRUE, x, y) is x
    assert T.bv_ite(T.FALSE, x, y) is y
    assert T.bv_ite(c, x, x) is x
    assert T.bv_ite(c, T.TRUE, T.FALSE) is c
    assert T.bv_ite(T.bv_not(c), x, y) is T.bv_ite(c, y, x)


def test_eq_of_ite_with_const_collapses():
    c = T.bv_var("c", 1)
    ite = T.bv_ite(c, T.bv_const(3, 4), T.bv_const(5, 4))
    assert T.bv_eq(ite, T.bv_const(3, 4)) is c
    assert T.bv_eq(ite, T.bv_const(5, 4)) is T.bv_not(c)
    assert T.bv_eq(ite, T.bv_const(9, 4)) is T.FALSE


def test_eq_concat_splits_against_constant():
    x = T.bv_var("x", 4)
    cat = T.bv_concat(T.bv_const(0b1010, 4), x)
    eq = T.bv_eq(cat, T.bv_const(0b1010_0110, 8))
    assert eq is T.bv_eq(x, T.bv_const(0b0110, 4))
    assert T.bv_eq(cat, T.bv_const(0b0000_0110, 8)) is T.FALSE


def test_repeat_bit():
    b = T.bv_var("b", 1)
    rep = T.repeat_bit(b, 5)
    assert rep.width == 5
    assert T.evaluate(rep, {"b": 1}) == 0b11111
    assert T.evaluate(rep, {"b": 0}) == 0


def test_extensions():
    x = T.bv_var("x", 4)
    assert T.evaluate(T.zero_extend(x, 8), {"x": 0b1010}) == 0b1010
    assert T.evaluate(T.sign_extend(x, 8), {"x": 0b1010}) == 0b11111010
    assert T.evaluate(T.sign_extend(x, 8), {"x": 0b0101}) == 0b0101


def test_rotates():
    x = T.bv_var("x", 8)
    assert T.evaluate(T.rotate_left(x, 3), {"x": 0b10010110}) == 0b10110100
    assert T.evaluate(T.rotate_right(x, 3), {"x": 0b10010110}) == 0b11010010
    assert T.rotate_left(x, 0) is x
    assert T.rotate_left(x, 8) is x


def test_reductions():
    x = T.bv_var("x", 4)
    assert T.evaluate(T.reduce_or(x), {"x": 0}) == 0
    assert T.evaluate(T.reduce_or(x), {"x": 2}) == 1
    assert T.evaluate(T.reduce_and(x), {"x": 0xF}) == 1
    assert T.evaluate(T.reduce_and(x), {"x": 0xE}) == 0


def test_substitute_folds():
    x = T.bv_var("x", 8)
    y = T.bv_var("y", 8)
    expr = T.bv_add(T.bv_mul(x, y), T.bv_const(1, 8))
    result = T.substitute(expr, {x: T.bv_const(6, 8), y: T.bv_const(7, 8)})
    assert result.is_const and result.value == 43


def test_substitute_partial():
    x = T.bv_var("x", 8)
    y = T.bv_var("y", 8)
    expr = T.bv_ite(T.bv_eq(x, T.bv_const(0, 8)), y, T.bv_not(y))
    result = T.substitute(expr, {x: T.bv_const(0, 8)})
    assert result is y


def test_free_variables():
    x = T.bv_var("x", 8)
    y = T.bv_var("y", 8)
    expr = T.bv_add(x, T.bv_and(y, x))
    assert T.free_variables(expr) == {x, y}


def test_term_size_counts_dag_nodes():
    x = T.bv_var("x", 8)
    shared = T.bv_add(x, x)
    expr = T.bv_xor(shared, shared)
    # xor(a, a) folds to 0, so build something non-degenerate
    expr = T.bv_or(T.bv_not(shared), shared)
    assert T.term_size(expr) <= 5


def test_udiv_urem_by_zero_smtlib_semantics():
    x = T.bv_var("x", 8)
    zero = T.bv_const(0, 8)
    assert T.bv_udiv(x, zero).value == 0xFF
    assert T.bv_urem(x, zero) is x


# ---------------------------------------------------------------------------
# Property tests: rewritten terms agree with direct integer semantics.
# ---------------------------------------------------------------------------

_BINOPS = {
    "add": (T.bv_add, lambda a, b, w: (a + b) % (1 << w)),
    "sub": (T.bv_sub, lambda a, b, w: (a - b) % (1 << w)),
    "mul": (T.bv_mul, lambda a, b, w: (a * b) % (1 << w)),
    "and": (T.bv_and, lambda a, b, w: a & b),
    "or": (T.bv_or, lambda a, b, w: a | b),
    "xor": (T.bv_xor, lambda a, b, w: a ^ b),
    "udiv": (T.bv_udiv, lambda a, b, w: ((1 << w) - 1) if b == 0 else a // b),
    "urem": (T.bv_urem, lambda a, b, w: a if b == 0 else a % b),
    "shl": (T.bv_shl, lambda a, b, w: (a << b) % (1 << w) if b < w else 0),
    "lshr": (T.bv_lshr, lambda a, b, w: a >> b if b < w else 0),
    "eq": (T.bv_eq, lambda a, b, w: int(a == b)),
    "ult": (T.bv_ult, lambda a, b, w: int(a < b)),
    "ule": (T.bv_ule, lambda a, b, w: int(a <= b)),
}


@settings(max_examples=300, deadline=None)
@given(
    op=st.sampled_from(sorted(_BINOPS)),
    width=st.integers(min_value=1, max_value=16),
    a=st.integers(min_value=0, max_value=(1 << 16) - 1),
    b=st.integers(min_value=0, max_value=(1 << 16) - 1),
)
def test_binop_agrees_with_integer_semantics(op, width, a, b):
    a %= 1 << width
    b %= 1 << width
    build, model = _BINOPS[op]
    x = T.bv_var("px", width)
    y = T.bv_var("py", width)
    term = build(x, y)
    assert T.evaluate(term, {"px": a, "py": b}) == model(a, b, width)
    # Constant-folded construction must agree as well.
    folded = build(T.bv_const(a, width), T.bv_const(b, width))
    assert folded.is_const or folded.width == term.width
    value = folded.value if folded.is_const else T.evaluate(folded, {})
    assert value == model(a, b, width)


@settings(max_examples=200, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=16),
    value=st.integers(min_value=0, max_value=(1 << 16) - 1),
    data=st.data(),
)
def test_extract_matches_python_bits(width, value, data):
    value %= 1 << width
    low = data.draw(st.integers(min_value=0, max_value=width - 1))
    high = data.draw(st.integers(min_value=low, max_value=width - 1))
    x = T.bv_var("ex", width)
    term = T.bv_extract(x, high, low)
    expected = (value >> low) & ((1 << (high - low + 1)) - 1)
    assert T.evaluate(term, {"ex": value}) == expected


@settings(max_examples=200, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=12),
    a=st.integers(min_value=0, max_value=4095),
    b=st.integers(min_value=0, max_value=4095),
)
def test_signed_comparisons(width, a, b):
    a %= 1 << width
    b %= 1 << width

    def signed(v):
        return v - (1 << width) if v & (1 << (width - 1)) else v

    x = T.bv_var("sx", width)
    y = T.bv_var("sy", width)
    env = {"sx": a, "sy": b}
    assert T.evaluate(T.bv_slt(x, y), env) == int(signed(a) < signed(b))
    assert T.evaluate(T.bv_sle(x, y), env) == int(signed(a) <= signed(b))
    assert T.evaluate(T.bv_ashr(x, y), env) == (
        (signed(a) >> min(b, width - 1)) % (1 << width)
    )
