"""Smoke tests for the fast runnable examples (the slow ones are covered by
the design tests and benchmarks, which exercise identical code paths)."""

import runpy
import sys

import pytest


def _run_example(name, argv=()):
    saved = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(f"examples/{name}", run_name="__main__")
    finally:
        sys.argv = saved


def test_quickstart(capsys):
    _run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "quickstart OK" in out


def test_export_artifacts(tmp_path, capsys):
    _run_example("export_artifacts.py", [str(tmp_path)])
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "accumulator.v").exists()
    assert (tmp_path / "accumulator.vcd").exists()
    assert (tmp_path / "go_start_query.smt2").exists()


@pytest.mark.slow
def test_riscv_core_example(capsys):
    _run_example("riscv_core.py")
    out = capsys.readouterr().out
    assert "fib(10) = 55" in out


@pytest.mark.slow
def test_diagnose_example(capsys):
    _run_example("diagnose_sketch.py")
    out = capsys.readouterr().out
    assert "[missing]" in out
