"""PyRTL-style ``conditional_assignment`` blocks.

Inside a ``conditional_assignment`` context, ``with <wire>:`` opens a
predicated region and ``target |= value`` records a predicated connect.
Blocks at the same nesting level have first-match-wins priority (each block
is implicitly guarded by the negation of its earlier siblings), and
``otherwise`` catches everything that remains — exactly PyRTL's semantics,
which the paper's sketches (Figures 2.2, 4.1) rely on.

On exit the context lowers every touched signal to one Oyster assignment:
registers default to holding their value, wires/outputs default to zero, and
memory writes get their predicate as the write enable.
"""

from __future__ import annotations

from repro.oyster import ast
from repro.hdl.core import current_module, HDLError, Register

__all__ = ["conditional_assignment", "otherwise"]


class _Otherwise:
    """Singleton usable as ``with otherwise:`` inside conditionals."""

    def __enter__(self):
        context = current_module()._conditional
        if context is None:
            raise HDLError("'otherwise' outside conditional_assignment")
        context.push(None)
        return self

    def __exit__(self, exc_type, exc, tb):
        current_module()._conditional.pop()
        return False


otherwise = _Otherwise()


class _Frame:
    __slots__ = ("predicate", "prior")

    def __init__(self, predicate):
        self.predicate = predicate  # Oyster expr for "this block is active"
        self.prior = []  # conditions of earlier sibling blocks (exprs)


class conditional_assignment:
    """Context manager collecting predicated connects; lowers on exit."""

    def __init__(self):
        self.module = current_module()
        self.updates = {}  # WireVector -> list of (predicate expr, value expr)
        self.order = []
        self.mem_writes = []  # (MemBlock, addr expr, data expr, predicate)
        self.is_register = {}
        self._frames = [_Frame(None)]  # sentinel root frame

    def __enter__(self):
        if self.module._conditional is not None:
            raise HDLError("conditional_assignment blocks do not nest")
        self.module._conditional = self
        return self

    def __exit__(self, exc_type, exc, tb):
        self.module._conditional = None
        if exc_type is None:
            if len(self._frames) != 1:
                raise HDLError("unbalanced conditional blocks")
            self._lower()
        return False

    # -- block tracking ------------------------------------------------------

    def push(self, condition_wire):
        """Enter a ``with <wire>:`` block (or ``otherwise`` when None)."""
        parent = self._frames[-1]
        terms = []
        if parent.predicate is not None:
            terms.append(parent.predicate)
        for prior_condition in parent.prior:
            terms.append(ast.Unop("~", prior_condition))
        if condition_wire is not None:
            terms.append(condition_wire.expr)
            parent.prior.append(condition_wire.expr)
        else:
            # ``otherwise`` closes the level: subsequent siblings would be
            # unreachable, mirroring PyRTL which forbids them.
            parent.prior.append(ast.Const(1, 1))
        predicate = _conjoin(terms)
        frame = _Frame(predicate)
        self._frames.append(frame)

    def pop(self):
        self._frames.pop()

    @property
    def current_predicate(self):
        predicate = self._frames[-1].predicate
        if predicate is None:
            raise HDLError(
                "a predicated connect must be inside a 'with <condition>:'"
            )
        return predicate

    # -- recording -------------------------------------------------------------

    def record(self, target, value, is_register=False):
        predicate = self.current_predicate
        if target not in self.updates:
            self.updates[target] = []
            self.order.append(target)
            self.is_register[target] = is_register or isinstance(
                target, Register
            )
        self.updates[target].append((predicate, value.expr))

    def record_memory_write(self, mem, addr, data):
        self.mem_writes.append(
            (mem, addr.expr, data.expr, self.current_predicate)
        )

    # -- lowering ----------------------------------------------------------------

    def _lower(self):
        module = self.module
        for target in self.order:
            if self.is_register[target]:
                default = ast.Var(target.name)  # registers hold their value
            else:
                default = ast.Const(0, target.width)  # PyRTL wires default to 0
            chain = default
            for predicate, value in reversed(self.updates[target]):
                chain = ast.Ite(predicate, value, chain)
            module.emit_stmt(ast.Assign(target.name, chain))
        for mem, addr, data, predicate in self.mem_writes:
            module.emit_stmt(ast.Write(mem.name, addr, data, predicate))


def _conjoin(exprs):
    if not exprs:
        return ast.Const(1, 1)
    result = exprs[0]
    for expr in exprs[1:]:
        result = ast.Binop("&", result, expr)
    return result
