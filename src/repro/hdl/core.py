"""Core wire/module machinery for the mini-PyRTL layer.

Every operator application emits one Oyster assignment to a fresh temporary
wire, so the generated IR is flat (one operation per line) — this is also
what makes the "lines of Oyster" sketch-size metric meaningful.

Semantics notes relative to PyRTL:

* widths must match exactly; use ``.zext()`` / ``.sext()`` / ``.truncate()``
  (ints are coerced to the other operand's width);
* ``==`` on wires builds hardware (use ``is`` for object identity; wires
  hash by identity so dict/set usage still works);
* ``reg.next <<= value`` assigns the register's next value, as in PyRTL;
* inside ``conditional_assignment`` blocks, ``|=`` is the predicated
  connect, with PyRTL's first-match-wins priority.
"""

from __future__ import annotations

from repro.oyster import ast

__all__ = [
    "Module",
    "WireVector",
    "Input",
    "Output",
    "Register",
    "Const",
    "Hole",
    "wire",
    "current_module",
    "HDLError",
]


class HDLError(Exception):
    """Raised for malformed hardware construction."""


_MODULE_STACK = []


def current_module():
    if not _MODULE_STACK:
        raise HDLError(
            "no active Module; build hardware inside 'with Module(...)'"
        )
    return _MODULE_STACK[-1]


class Module:
    """Collects declarations and statements; compiles to an Oyster design."""

    def __init__(self, name):
        self.name = name
        self.decls = []
        self.stmts = []
        self._names = set()
        self._tmp_counter = 0
        self._conditional = None  # active conditional_assignment context

    # -- context management -------------------------------------------------

    def __enter__(self):
        _MODULE_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        popped = _MODULE_STACK.pop()
        assert popped is self
        return False

    # -- naming ----------------------------------------------------------------

    def _claim_name(self, name):
        if name in self._names:
            raise HDLError(f"duplicate signal name {name!r}")
        self._names.add(name)
        return name

    def fresh_name(self, prefix="t"):
        while True:
            self._tmp_counter += 1
            name = f"{prefix}{self._tmp_counter}"
            if name not in self._names:
                self._names.add(name)
                return name

    # -- emission ---------------------------------------------------------------

    def emit_decl(self, decl):
        self.decls.append(decl)

    def emit_stmt(self, stmt):
        self.stmts.append(stmt)

    def emit_expr(self, expr, width, name=None, prefix="t"):
        """Assign ``expr`` to a fresh wire; returns that wire."""
        if name is None:
            name = self.fresh_name(prefix)
        else:
            self._claim_name(name)
        self.emit_stmt(ast.Assign(name, expr))
        return WireVector._make(self, name, width)

    def to_oyster(self):
        """The accumulated design as an Oyster ``Design`` (validated)."""
        from repro.oyster.typecheck import check_design

        design = ast.Design(self.name, tuple(self.decls), tuple(self.stmts))
        check_design(design)
        return design


def _coerce(module, value, width):
    if isinstance(value, WireVector):
        return value
    if hasattr(value, "as_wire"):  # lazy memory read handles
        return value.as_wire()
    if isinstance(value, int):
        return Const(value, width, module=module)
    raise HDLError(f"cannot use {value!r} as a wire")


class WireVector:
    """A named signal of fixed width.

    Instances are handles into their module's statement list; operators emit
    statements eagerly and return fresh handles.
    """

    def __init__(self, width, name=None, module=None):
        if width <= 0:
            raise HDLError(f"wire width must be positive, got {width}")
        self.module = module if module is not None else current_module()
        self.width = width
        self.name = (
            self.module._claim_name(name)
            if name is not None
            else self.module.fresh_name("w")
        )
        self._declared_unassigned = True

    @classmethod
    def _make(cls, module, name, width):
        """Internal: wrap an already-emitted signal without re-claiming."""
        wire_vector = object.__new__(cls)
        wire_vector.module = module
        wire_vector.name = name
        wire_vector.width = width
        wire_vector._declared_unassigned = False
        return wire_vector

    # -- expression handle ---------------------------------------------------

    @property
    def expr(self):
        override = getattr(self, "expr_override", None)
        if override is not None:
            return override
        return ast.Var(self.name)

    def __hash__(self):
        return id(self)

    def __bool__(self):
        raise HDLError(
            "wires have no truth value; use conditional_assignment blocks"
        )

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}/{self.width}>"

    # -- connections -----------------------------------------------------------

    def __ilshift__(self, other):
        """``w <<= value``: unconditional connect."""
        other = _coerce(self.module, other, self.width)
        if other.width != self.width:
            raise HDLError(
                f"connecting width {other.width} to {self.name!r} "
                f"of width {self.width}"
            )
        self.module.emit_stmt(ast.Assign(self.name, other.expr))
        return self

    def __ior__(self, other):
        """``w |= value``: predicated connect inside conditional blocks."""
        conditional = self.module._conditional
        if conditional is None:
            raise HDLError(
                "'|=' is only legal inside a conditional_assignment block"
            )
        other = _coerce(self.module, other, self.width)
        if other.width != self.width:
            raise HDLError(
                f"connecting width {other.width} to {self.name!r} "
                f"of width {self.width}"
            )
        conditional.record(self, other)
        return self

    # -- conditional block sugar (``with wire:``) -------------------------------

    def __enter__(self):
        conditional = self.module._conditional
        if conditional is None:
            raise HDLError(
                "'with <wire>:' is only legal inside conditional_assignment"
            )
        if self.width != 1:
            raise HDLError(
                f"condition {self.name!r} must have width 1, got {self.width}"
            )
        conditional.push(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.module._conditional.pop()
        return False

    # -- operators -------------------------------------------------------------

    def _binop(self, op, other, reverse=False):
        other = _coerce(self.module, other, self.width)
        if other.width != self.width:
            raise HDLError(
                f"width mismatch in {op!r}: {self.width} vs {other.width}"
            )
        left, right = (other, self) if reverse else (self, other)
        width = 1 if op in ast.COMPARISONS else self.width
        return self.module.emit_expr(
            ast.Binop(op, left.expr, right.expr), width
        )

    def __and__(self, other):
        return self._binop("&", other)

    __rand__ = lambda self, other: self._binop("&", other, reverse=True)

    def __or__(self, other):
        return self._binop("|", other)

    __ror__ = lambda self, other: self._binop("|", other, reverse=True)

    def __xor__(self, other):
        return self._binop("^", other)

    __rxor__ = lambda self, other: self._binop("^", other, reverse=True)

    def __add__(self, other):
        return self._binop("+", other)

    __radd__ = lambda self, other: self._binop("+", other, reverse=True)

    def __sub__(self, other):
        return self._binop("-", other)

    __rsub__ = lambda self, other: self._binop("-", other, reverse=True)

    def __mul__(self, other):
        return self._binop("*", other)

    __rmul__ = lambda self, other: self._binop("*", other, reverse=True)

    def __invert__(self):
        return self.module.emit_expr(
            ast.Unop("~", self.expr), self.width
        )

    def __eq__(self, other):
        return self._binop("==", other)

    def __ne__(self, other):
        return self._binop("!=", other)

    def __lt__(self, other):
        return self._binop("<u", other)

    def __le__(self, other):
        return self._binop("<=u", other)

    def __gt__(self, other):
        return self._binop(">u", other)

    def __ge__(self, other):
        return self._binop(">=u", other)

    def slt(self, other):
        return self._binop("<s", other)

    def sle(self, other):
        return self._binop("<=s", other)

    def sgt(self, other):
        return self._binop(">s", other)

    def sge(self, other):
        return self._binop(">=s", other)

    def shl(self, amount):
        """Shift left by a wire amount (same width) or a Python int."""
        return self._binop("<<", amount)

    def lshr(self, amount):
        return self._binop(">>u", amount)

    def ashr(self, amount):
        return self._binop(">>s", amount)

    # -- slicing / resizing -----------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, int):
            if key < 0:
                key += self.width
            if not 0 <= key < self.width:
                raise HDLError(f"bit {key} out of range for {self.name!r}")
            expr = ast.Extract(self.expr, key, key)
            return self.module.emit_expr(expr, 1)
        if isinstance(key, slice):
            if key.step is not None:
                raise HDLError("strided slices are not supported")
            low = 0 if key.start is None else key.start
            stop = self.width if key.stop is None else key.stop
            if low < 0:
                low += self.width
            if stop < 0:
                stop += self.width
            if not (0 <= low < stop <= self.width):
                raise HDLError(
                    f"slice [{key.start}:{key.stop}] out of range for "
                    f"{self.name!r} of width {self.width}"
                )
            expr = ast.Extract(self.expr, stop - 1, low)
            return self.module.emit_expr(expr, stop - low)
        raise HDLError(f"cannot index a wire with {key!r}")

    def zext(self, width):
        """Zero-extend to ``width`` bits."""
        if width < self.width:
            raise HDLError("zext target is narrower than the wire")
        if width == self.width:
            return self
        pad = ast.Const(0, width - self.width)
        return self.module.emit_expr(
            ast.Concat(pad, self.expr), width
        )

    def sext(self, width):
        """Sign-extend to ``width`` bits."""
        if width < self.width:
            raise HDLError("sext target is narrower than the wire")
        if width == self.width:
            return self
        sign = ast.Extract(self.expr, self.width - 1, self.width - 1)
        pad = sign
        for _ in range(width - self.width - 1):
            pad = ast.Concat(sign, pad)
        return self.module.emit_expr(ast.Concat(pad, self.expr), width)

    def truncate(self, width):
        if width > self.width:
            raise HDLError("truncate target is wider than the wire")
        if width == self.width:
            return self
        return self.module.emit_expr(
            ast.Extract(self.expr, width - 1, 0), width
        )

    def label(self, name):
        """Re-emit under a stable name (useful for debugging/codegen)."""
        return self.module.emit_expr(self.expr, self.width, name=name)


class Input(WireVector):
    def __init__(self, width, name, module=None):
        super().__init__(width, name, module)
        self.module.emit_decl(ast.InputDecl(self.name, width))

    def __ilshift__(self, other):
        raise HDLError(f"cannot drive input {self.name!r}")


class Output(WireVector):
    def __init__(self, width, name, module=None):
        super().__init__(width, name, module)
        self.module.emit_decl(ast.OutputDecl(self.name, width))


class _RegisterNext:
    """The ``reg.next`` handle: assignment target for the next-cycle value."""

    def __init__(self, register):
        self.register = register
        self.module = register.module
        self.width = register.width
        self.name = register.name

    def __ilshift__(self, other):
        other = _coerce(self.module, other, self.width)
        if other.width != self.width:
            raise HDLError(
                f"connecting width {other.width} to register "
                f"{self.name!r} of width {self.width}"
            )
        self.module.emit_stmt(ast.Assign(self.name, other.expr))
        return self

    def __ior__(self, other):
        conditional = self.module._conditional
        if conditional is None:
            raise HDLError(
                "'|=' is only legal inside a conditional_assignment block"
            )
        other = _coerce(self.module, other, self.width)
        if other.width != self.width:
            raise HDLError(
                f"connecting width {other.width} to register "
                f"{self.name!r} of width {self.width}"
            )
        conditional.record(self.register, other, is_register=True)
        return self


class Register(WireVector):
    """A clocked register; read it directly, drive it via ``.next``.

    ``init`` gives the register a reset value; registers without one start
    from an arbitrary (universally quantified) value during synthesis.
    """

    def __init__(self, width, name, init=None, module=None):
        super().__init__(width, name, module)
        self.module.emit_decl(ast.RegisterDecl(self.name, width, init))

    @property
    def next(self):
        return _RegisterNext(self)

    @next.setter
    def next(self, value):
        # ``reg.next <<= x`` re-assigns the property with the augmented
        # result; accept the handle back silently.
        if not isinstance(value, _RegisterNext) or value.register is not self:
            raise HDLError(
                f"drive register {self.name!r} via '.next <<= ...' only"
            )

    def __ilshift__(self, other):
        raise HDLError(
            f"drive register {self.name!r} via '{self.name}.next <<= ...'"
        )

    def __ior__(self, other):
        raise HDLError(
            f"drive register {self.name!r} via '{self.name}.next |= ...'"
        )


class Hole(WireVector):
    """A control-logic hole: the ``??`` of the paper's sketches.

    ``deps`` lists wires the synthesized control may depend on (the
    arguments of ``??(opcode, funct3, funct7)`` in the paper); they shape
    the generated code, not the synthesis query itself.
    """

    def __init__(self, width, name, deps=(), module=None):
        super().__init__(width, name, module)
        dep_names = tuple(
            dep.name if isinstance(dep, WireVector) else str(dep)
            for dep in deps
        )
        self.module.emit_decl(ast.HoleDecl(self.name, width, dep_names))

    def __ilshift__(self, other):
        raise HDLError(f"cannot drive hole {self.name!r}; it is synthesized")


def Const(value, width, module=None):
    """A constant wire (no statement is emitted; constants are inlined)."""
    module = module if module is not None else current_module()
    wire_vector = WireVector._make(module, f"const:{value}:{width}", width)
    wire_vector.expr_override = ast.Const(value, width)
    return wire_vector


def wire(width, name=None, module=None):
    """Declare a named wire to be driven later with ``<<=``."""
    return WireVector(width, name, module)
