"""Rendering synthesized control logic as PyRTL-style code (Figure 7).

The control union already produces Oyster expressions; this module renders
the same per-instruction solutions in the paper's presentation style::

    with op == LOAD:
        with funct3 == 0x2:
            mem_read |= 1
            mask_mode |= 2
            ...

The rendered text is the artifact whose line count Table 2 reports as
"HDL Control Logic (Generated)".
"""

from __future__ import annotations

from repro.ila import ast as ila_ast
from repro.oyster import ast as oy
from repro.oyster.printer import print_expr
from repro.synthesis.union import render_precondition

__all__ = ["generate_pyrtl_control", "control_loc"]


def _split_conjunction(expr):
    """Flatten a decode conjunction into its atoms (ILA expression level)."""
    if isinstance(expr, ila_ast.Binop) and expr.op == "&":
        return _split_conjunction(expr.left) + _split_conjunction(expr.right)
    return [expr]


def _atom_text(spec, alpha, atom):
    rendered = render_precondition(spec, alpha, atom)
    return print_expr(rendered)


def generate_pyrtl_control(problem, result):
    """PyRTL-style conditional-assignment text for a synthesis result."""
    spec = problem.spec
    alpha = problem.alpha
    lines = ["with conditional_assignment:"]
    solutions = {
        solution.instruction_name: solution
        for solution in result.per_instruction
    }
    # Group instructions by their first decode atom (typically the opcode
    # comparison), mirroring the paper's nested with-blocks.
    groups = {}
    order = []
    for instruction in spec.instructions:
        if instruction.name not in solutions:
            continue
        atoms = _split_conjunction(instruction.decode)
        head = _atom_text(spec, alpha, atoms[0])
        if head not in groups:
            groups[head] = []
            order.append(head)
        groups[head].append((instruction, atoms[1:]))
    for head in order:
        members = groups[head]
        lines.append(f"    with {head}:")
        for instruction, rest_atoms in members:
            indent = "        "
            if rest_atoms:
                condition = " & ".join(
                    f"({_atom_text(spec, alpha, atom)})"
                    for atom in rest_atoms
                )
                lines.append(f"{indent}with {condition}:")
                indent += "    "
            elif len(members) > 1:
                lines.append(f"{indent}with otherwise:")
                indent += "    "
            values = solutions[instruction.name].hole_values
            lines.append(f"{indent}# {instruction.name}")
            for hole in problem.sketch.holes:
                lines.append(
                    f"{indent}{hole.name} |= {values[hole.name]}"
                )
    return "\n".join(lines) + "\n"


def control_loc(text):
    """Non-empty, non-comment line count of rendered control code."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count
