"""A mini-PyRTL hardware description layer.

The paper writes datapath sketches in PyRTL extended with holes (``??``).
This package provides the same authoring experience — ``WireVector``
operators, ``Register``, ``MemBlock``, ``conditional_assignment`` blocks with
``|=`` predicated connects, and ``Hole`` — and compiles directly to the
Oyster IR, mirroring the paper's PyRTL-to-Oyster translator.

Example (the paper's Section 2.3 accumulator datapath)::

    from repro import hdl

    with hdl.Module("acc") as m:
        reset = hdl.Input(1, "reset")
        val = hdl.Input(2, "val")
        acc = hdl.Register(8, "acc")
        state_is_reset = hdl.Hole(1, "state_is_reset", deps=[reset])
        with hdl.conditional_assignment():
            with state_is_reset:
                acc.next |= hdl.Const(0, 8)
            with hdl.otherwise:
                acc.next |= acc + val.zext(8)
    design = m.to_oyster()
"""

from repro.hdl.core import (
    Module,
    WireVector,
    Input,
    Output,
    Register,
    Const,
    Hole,
    wire,
    current_module,
    HDLError,
)
from repro.hdl.conditional import conditional_assignment, otherwise
from repro.hdl.memblock import MemBlock
from repro.hdl.corecircuits import (
    mux,
    concat,
    select,
    barrel_shift_left,
    barrel_shift_right,
    rotate_left_by,
    carryless_multiply,
)

__all__ = [
    "Module",
    "WireVector",
    "Input",
    "Output",
    "Register",
    "Const",
    "Hole",
    "wire",
    "current_module",
    "HDLError",
    "conditional_assignment",
    "otherwise",
    "MemBlock",
    "mux",
    "concat",
    "select",
    "barrel_shift_left",
    "barrel_shift_right",
    "rotate_left_by",
    "carryless_multiply",
]
