"""Combinational building blocks: mux, concat, shifters, clmul.

``mux`` follows PyRTL's argument order — ``mux(select, falsecase, truecase)``
for one select bit, or ``mux(select, *inputs)`` selecting ``inputs[select]``
for wider selects — because the paper's sketches are written against it
(e.g. ``alu_in2 <<= mux(alu_imm, rs2_val, imm)``).
"""

from __future__ import annotations

from repro.oyster import ast
from repro.hdl.core import current_module, HDLError, WireVector, _coerce

__all__ = [
    "mux",
    "concat",
    "select",
    "barrel_shift_left",
    "barrel_shift_right",
    "rotate_left_by",
    "carryless_multiply",
]


def _as_wire(value, width_hint=None, module=None):
    module = module if module is not None else current_module()
    if isinstance(value, int):
        if width_hint is None:
            raise HDLError(
                f"cannot infer a width for bare int {value!r}; wrap in Const"
            )
        return _coerce(module, value, width_hint)
    return _coerce(module, value, width_hint or 1)


def mux(select, *inputs):
    """PyRTL-style mux: returns ``inputs[select]``.

    With a 1-bit select this is ``mux(select, falsecase, truecase)``.  The
    number of inputs must be exactly ``2 ** select.width``.
    """
    module = current_module()
    select = _coerce(module, select, 1)
    expected = 1 << select.width
    if len(inputs) != expected:
        raise HDLError(
            f"mux with a {select.width}-bit select needs {expected} inputs, "
            f"got {len(inputs)}"
        )
    width = None
    for candidate in inputs:
        if not isinstance(candidate, int):
            width = _as_wire(candidate, module=module).width
            break
    if width is None:
        raise HDLError("mux needs at least one non-integer input")
    wires = [_as_wire(value, width, module) for value in inputs]
    for w in wires:
        if w.width != width:
            raise HDLError(
                f"mux inputs have differing widths {width} and {w.width}"
            )
    return _mux_tree(module, select, wires, 0, select.width)


def _mux_tree(module, select, wires, base, bits_left):
    if bits_left == 0:
        return wires[base]
    bit_index = bits_left - 1
    bit = ast.Extract(select.expr, bit_index, bit_index)
    half = 1 << bit_index
    low = _mux_tree(module, select, wires, base, bit_index)
    high = _mux_tree(module, select, wires, base + half, bit_index)
    return module.emit_expr(
        ast.Ite(bit, high.expr, low.expr), low.width, prefix="mx"
    )


def select(condition, truecase, falsecase):
    """``condition ? truecase : falsecase`` (note: true first, unlike mux)."""
    module = current_module()
    condition = _coerce(module, condition, 1)
    if condition.width != 1:
        raise HDLError("select condition must have width 1")
    width = None
    for candidate in (truecase, falsecase):
        if not isinstance(candidate, int):
            width = _as_wire(candidate, module=module).width
    truecase = _as_wire(truecase, width, module)
    falsecase = _as_wire(falsecase, width, module)
    if truecase.width != falsecase.width:
        raise HDLError(
            f"select branches have widths {truecase.width} and "
            f"{falsecase.width}"
        )
    return module.emit_expr(
        ast.Ite(condition.expr, truecase.expr, falsecase.expr),
        truecase.width, prefix="sel",
    )


def concat(*wires):
    """Concatenate wires, first argument highest (PyRTL order)."""
    module = current_module()
    if not wires:
        raise HDLError("concat needs at least one wire")
    converted = [_as_wire(w, module=module) for w in wires]
    result = converted[0]
    for low in converted[1:]:
        result = module.emit_expr(
            ast.Concat(result.expr, low.expr), result.width + low.width,
            prefix="cat",
        )
    return result


def barrel_shift_left(value, amount):
    """Shift ``value`` left by the low bits of ``amount`` (zero fill)."""
    return value.shl(amount.zext(value.width)
                     if amount.width < value.width else amount)


def barrel_shift_right(value, amount, arithmetic=False):
    amount = (amount.zext(value.width)
              if amount.width < value.width else amount)
    if arithmetic:
        return value.ashr(amount)
    return value.lshr(amount)


def rotate_left_by(value, amount):
    """Rotate left by a wire amount (amount width = log2 of value width)."""
    module = current_module()
    width = value.width
    if width & (width - 1):
        raise HDLError("rotate requires a power-of-two width")
    shift_bits = width.bit_length() - 1
    if amount.width < shift_bits:
        raise HDLError("rotate amount is too narrow")
    amount_low = amount[0:shift_bits] if amount.width > shift_bits else amount
    result = value
    for stage in range(shift_bits):
        rotated = _rotate_const(module, result, 1 << stage)
        bit = amount_low[stage]
        result = module.emit_expr(
            ast.Ite(bit.expr, rotated.expr, result.expr), width, prefix="rot"
        )
    return result


def _rotate_const(module, value, count):
    width = value.width
    count %= width
    if count == 0:
        return value
    high = ast.Extract(value.expr, width - 1 - count, 0)
    low = ast.Extract(value.expr, width - 1, width - count)
    return module.emit_expr(ast.Concat(high, low), width, prefix="rc")


def carryless_multiply(a, b):
    """Carryless (GF(2)) multiply; returns the full 2w-bit product wire.

    This is the datapath for the Zbkc ``clmul``/``clmulh`` instructions:
    ``prod = XOR over i of (b[i] ? a << i : 0)``.
    """
    module = current_module()
    if a.width != b.width:
        raise HDLError("clmul operands must share a width")
    width = a.width
    wide = a.zext(2 * width)
    acc = None
    for i in range(width):
        shifted_expr = wide.expr if i == 0 else ast.Concat(
            ast.Extract(wide.expr, 2 * width - 1 - i, 0), ast.Const(0, i)
        )
        bit = b[i]
        term = module.emit_expr(
            ast.Ite(bit.expr, shifted_expr, ast.Const(0, 2 * width)),
            2 * width, prefix="cl",
        )
        acc = term if acc is None else acc ^ term
    return acc
