"""Memories for the mini-PyRTL layer.

``mem[addr]`` reads (start-of-cycle contents, as in the Oyster semantics);
``mem[addr] |= data`` inside a conditional block records a predicated write;
``mem.write(addr, data, enable)`` is the explicit form.  Indexing returns a
lazy handle so that a pure write (``rf[rd] |= value``) does not emit a
spurious read.
"""

from __future__ import annotations

from repro.oyster import ast
from repro.hdl.core import current_module, HDLError, WireVector, _coerce

__all__ = ["MemBlock"]


class MemBlock:
    """A synchronous memory (asynchronous read, next-cycle write)."""

    def __init__(self, addr_width, data_width, name, module=None):
        self.module = module if module is not None else current_module()
        if addr_width <= 0 or data_width <= 0:
            raise HDLError("memory widths must be positive")
        self.addr_width = addr_width
        self.data_width = data_width
        self.name = self.module._claim_name(name)
        self.module.emit_decl(
            ast.MemoryDecl(self.name, addr_width, data_width)
        )

    def __getitem__(self, addr):
        addr = _coerce(self.module, addr, self.addr_width)
        if addr.width != self.addr_width:
            raise HDLError(
                f"memory {self.name!r} indexed with width {addr.width}, "
                f"expected {self.addr_width}"
            )
        return _MemIndexed(self, addr)

    def __setitem__(self, addr, value):
        # ``mem[addr] |= data`` re-assigns the item with the augmented
        # result; accept our own handle back silently.
        if not (isinstance(value, _MemIndexed) and value.mem is self):
            raise HDLError(
                f"write memory {self.name!r} via 'mem[addr] |= data' inside "
                "a conditional block, or mem.write(addr, data, enable)"
            )

    def read(self, addr):
        """Read now; returns the value wire."""
        return self[addr].as_wire()

    def write(self, addr, data, enable=None):
        """Explicit write; ``enable`` defaults to always-on."""
        addr = _coerce(self.module, addr, self.addr_width)
        data = _coerce(self.module, data, self.data_width)
        if data.width != self.data_width:
            raise HDLError(
                f"memory {self.name!r} written with width {data.width}, "
                f"expected {self.data_width}"
            )
        if enable is None:
            enable_expr = ast.Const(1, 1)
        else:
            enable = _coerce(self.module, enable, 1)
            if enable.width != 1:
                raise HDLError("write enable must have width 1")
            enable_expr = enable.expr
        self.module.emit_stmt(
            ast.Write(self.name, addr.expr, data.expr, enable_expr)
        )

    def __repr__(self):
        return (
            f"<MemBlock {self.name} {self.addr_width}->{self.data_width}>"
        )


class _MemIndexed:
    """Lazy ``mem[addr]``: a read when used as a value, a write target
    under ``|=``."""

    def __init__(self, mem, addr):
        self.mem = mem
        self.addr = addr
        self._wire = None

    def as_wire(self):
        if self._wire is None:
            read = ast.Read(self.mem.name, self.addr.expr)
            self._wire = self.mem.module.emit_expr(
                read, self.mem.data_width, prefix="rd"
            )
        return self._wire

    def __ior__(self, data):
        conditional = self.mem.module._conditional
        if conditional is None:
            raise HDLError(
                "'mem[addr] |= data' requires a conditional_assignment block"
            )
        data = _coerce(self.mem.module, data, self.mem.data_width)
        if isinstance(data, _MemIndexed):
            data = data.as_wire()
        if data.width != self.mem.data_width:
            raise HDLError(
                f"memory {self.mem.name!r} written with width {data.width}, "
                f"expected {self.mem.data_width}"
            )
        conditional.record_memory_write(self.mem, self.addr, data)
        return self

    # Value-like forwarding: any arithmetic use materializes the read.
    def _delegate(self, method, *args):
        return getattr(self.as_wire(), method)(*args)

    @property
    def width(self):
        return self.mem.data_width

    @property
    def expr(self):
        return self.as_wire().expr

    @property
    def name(self):
        return self.as_wire().name

    def __and__(self, other):
        return self._delegate("__and__", other)

    def __or__(self, other):
        return self._delegate("__or__", other)

    def __xor__(self, other):
        return self._delegate("__xor__", other)

    def __add__(self, other):
        return self._delegate("__add__", other)

    def __sub__(self, other):
        return self._delegate("__sub__", other)

    def __invert__(self):
        return self._delegate("__invert__")

    def __eq__(self, other):
        return self._delegate("__eq__", other)

    def __ne__(self, other):
        return self._delegate("__ne__", other)

    def __getitem__(self, key):
        return self._delegate("__getitem__", key)

    def zext(self, width):
        return self._delegate("zext", width)

    def sext(self, width):
        return self._delegate("sext", width)

    def __hash__(self):
        return id(self)
