"""The embedded-class RISC-V cores of Section 4.1.

Variants (matching Table 1's rows):

* ``RV32I`` — the 37-instruction base set (no ecall/ebreak/fence, as in the
  paper);
* ``RV32I + Zbkb`` — plus the 12 bit-manipulation instructions;
* ``RV32I + Zbkc`` — plus Zbkb plus the 2 carryless-multiply instructions
  (the paper's +Zbkc row sizes imply Zbkc stacks on Zbkb).

Microarchitectures: a single-cycle core and a two-stage pipeline (IF/DE/EX
then MEM/WB), both with instruction-decoder-style control left as holes.

Memory model: instruction and data memories are word-addressed (30-bit word
index over a 32-bit byte address space); sub-word loads/stores select lanes
within the addressed word and stores read-modify-write, with misaligned
accesses treated lane-aligned (no traps — the cores do not implement
exceptions, as in the paper).  ``x0`` semantics live in the specification
(stores to x0 are skipped via a conditional Store) and in fixed datapath
gating, so no per-instruction ``rd != 0`` preconditions are needed.
"""

from repro.designs.riscv.encodings import (
    INSTRUCTIONS,
    VARIANTS,
    encode,
    variant_instructions,
)
from repro.designs.riscv.iss import GoldenISS
from repro.designs.riscv.spec import build_spec
from repro.designs.riscv.sketch_single_cycle import (
    build_single_cycle_sketch,
    build_single_cycle_alpha,
)
from repro.designs.riscv.sketch_two_stage import (
    build_two_stage_sketch,
    build_two_stage_alpha,
)
from repro.designs.riscv.problem import build_problem
from repro.designs.riscv.reference import reference_control_values

__all__ = [
    "INSTRUCTIONS",
    "VARIANTS",
    "encode",
    "variant_instructions",
    "GoldenISS",
    "build_spec",
    "build_single_cycle_sketch",
    "build_single_cycle_alpha",
    "build_two_stage_sketch",
    "build_two_stage_alpha",
    "build_problem",
    "reference_control_values",
]
