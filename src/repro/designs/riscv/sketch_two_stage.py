"""The two-stage pipelined RISC-V sketch (Section 4.1.2, Ibex-like).

Stage 1: fetch + decode + execute (and branch resolution); stage 2: memory
and write-back.  Fetch runs off its own ``fetch_pc`` register (updated every
cycle) while the architectural ``pc`` commits in stage 2 — the classic
flushed-pipeline abstraction: synthesis evaluates from a drained state where
``fetch_pc == pc``, expressed with the abstraction function's ``assume``
clause over the ``pcs_agree`` wire.

A write-back-to-read bypass on the register file (fixed datapath, not
control) resolves the stage-2-write/stage-1-read hazard so the completed
core is correct at CPI=1, which the differential tests against the golden
ISS exercise.
"""

from __future__ import annotations

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.designs.riscv.datapath import (
    build_alu,
    build_branch_unit,
    build_decode_unit,
    build_immediate_unit,
    build_load_unit,
    build_store_unit,
)
from repro.designs.riscv.sketch_single_cycle import CONTROL_HOLES

__all__ = ["build_two_stage_sketch", "build_two_stage_alpha"]


def build_two_stage_sketch():
    with hdl.Module("rv32_two_stage") as module:
        pc = hdl.Register(32, "pc")
        fetch_pc = hdl.Register(32, "fetch_pc")
        rf = hdl.MemBlock(5, 32, "rf")
        i_mem = hdl.MemBlock(30, 32, "i_mem")
        d_mem = hdl.MemBlock(30, 32, "d_mem")

        # Stage-2 pipeline registers (declared first so stage 1 can read the
        # bypass values; control-carrying registers reset to harmless 0).
        p_wb = hdl.Register(32, "p_wb")
        p_rd = hdl.Register(5, "p_rd")
        p_reg_write = hdl.Register(1, "p_reg_write", init=0)
        p_mem_read = hdl.Register(1, "p_mem_read", init=0)
        p_mem_write = hdl.Register(1, "p_mem_write", init=0)
        p_mask_mode = hdl.Register(2, "p_mask_mode")
        p_sign_ext = hdl.Register(1, "p_sign_ext")
        p_store_data = hdl.Register(32, "p_store_data")
        p_addr = hdl.Register(32, "p_addr")
        p_next_pc = hdl.Register(32, "p_next_pc")

        # The drained-pipeline invariant assumed by the abstraction function.
        pcs_agree = (fetch_pc == pc).label("pcs_agree")

        # ---- Stage 1: fetch, decode, execute --------------------------------
        instruction = i_mem.read(fetch_pc[2:32]).label("instruction")
        opcode, rd, funct3, rs1f, rs2f, funct7 = build_decode_unit(
            instruction
        )
        deps = [opcode, funct3, funct7, rs2f]
        holes = {
            name: hdl.Hole(width, name, deps=deps)
            for name, width in CONTROL_HOLES.items()
        }

        # Stage-2 write-back value (computed here: stage 2 is further down
        # the program but a cycle ahead for the older instruction).
        lane2 = p_addr[0:2]
        loaded_word = d_mem.read(p_addr[2:32])
        load_value = build_load_unit(
            loaded_word, lane2, p_mask_mode, p_sign_ext
        )
        wb_value = hdl.mux(p_mem_read, p_wb, load_value).label("wb_value")

        # Register read with write-back bypass (fixed hazard hardware).
        rs1_raw = rf.read(rs1f)
        rs2_raw = rf.read(rs2f)
        rd_live = (p_reg_write & (p_rd != 0)).label("rd_live")
        rs1_val = hdl.select(
            rd_live & (p_rd == rs1f), wb_value, rs1_raw
        ).label("rs1_val")
        rs2_val = hdl.select(
            rd_live & (p_rd == rs2f), wb_value, rs2_raw
        ).label("rs2_val")

        imm = build_immediate_unit(instruction, holes["imm_sel"])
        alu_in1 = hdl.select(holes["alu_src1_pc"], fetch_pc, rs1_val)
        alu_in2 = hdl.mux(holes["alu_imm"], rs2_val, imm)
        alu_out = build_alu(holes["alu_op"], alu_in1, alu_in2).label(
            "alu_out"
        )

        taken = build_branch_unit(funct3, rs1_val, rs2_val)
        fetch_pc_plus_4 = (fetch_pc + 4).label("fetch_pc_plus_4")
        branch_target = (fetch_pc + imm).label("branch_target")
        jalr_target = alu_out & hdl.Const(0xFFFFFFFE, 32)
        target = hdl.select(holes["jalr_sel"], jalr_target, branch_target)
        redirect = holes["jump"] | (holes["branch_en"] & taken)
        next_pc = hdl.select(redirect, target, fetch_pc_plus_4).label(
            "next_pc"
        )
        fetch_pc.next <<= next_pc

        # Latch stage-2 state.
        p_wb.next <<= hdl.mux(holes["jump"], alu_out, fetch_pc_plus_4)
        p_rd.next <<= rd
        p_reg_write.next <<= holes["reg_write"]
        p_mem_read.next <<= holes["mem_read"]
        p_mem_write.next <<= holes["mem_write"]
        p_mask_mode.next <<= holes["mask_mode"]
        p_sign_ext.next <<= holes["mem_sign_ext"]
        p_store_data.next <<= rs2_val
        p_addr.next <<= alu_out
        p_next_pc.next <<= next_pc

        # ---- Stage 2: memory + write back -------------------------------------
        merged = build_store_unit(
            loaded_word, p_store_data, lane2, p_mask_mode
        )
        d_mem.write(p_addr[2:32], merged, enable=p_mem_write)
        rf.write(p_rd, wb_value, enable=rd_live)
        pc.next <<= p_next_pc
    return module.to_oyster()


_ALPHA_TEXT = """
pc:  {name: 'pc', type: register, [read: 1, write: 2]}
GPR: {name: 'rf', type: memory, [read: 1, write: 2]}
mem: {name: 'd_mem', type: memory, [read: 2, write: 2]}
mem: {name: 'i_mem', type: memory, [read: 1]}
with cycles: 2, [pcs_agree: 1]
fields: {opcode: 'opcode', funct3: 'funct3', funct7: 'funct7', rs2f: 'rs2f'}
"""


def build_two_stage_alpha():
    return parse_abstraction(_ALPHA_TEXT)
