"""Shared datapath building blocks for the RISC-V sketches.

Both the single-cycle and pipelined cores instantiate the same decode unit,
immediate generator, ALU (with the Zbkb/Zbkc functional units), branch
comparator, and load/store lane units; the sketches differ only in staging
and control placement.  ``ALU_OPS`` fixes the ALU operation encoding that
the synthesized ``alu_op`` control selects from.
"""

from __future__ import annotations

from repro import hdl

__all__ = [
    "ALU_OPS",
    "alu_op_index",
    "build_decode_unit",
    "build_immediate_unit",
    "build_alu",
    "build_branch_unit",
    "build_load_unit",
    "build_store_unit",
    "IMM_SELECTS",
]

#: ALU operation encoding: index in this list == alu_op control value.
ALU_OPS = (
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "rol", "ror", "andn", "orn", "xnor", "pack", "packh", "rev8", "brev8",
    "zip", "unzip", "clmul", "clmulh", "copyb",
)

#: immediate-format encoding: imm_sel control value -> format
IMM_SELECTS = {"I": 0, "S": 1, "B": 2, "U": 3, "J": 4}


def alu_op_index(name):
    return ALU_OPS.index(name)


def build_decode_unit(inst):
    """Split an instruction word into its fields (wires named for codegen)."""
    opcode = inst[0:7].label("opcode")
    rd = inst[7:12].label("rd")
    funct3 = inst[12:15].label("funct3")
    rs1f = inst[15:20].label("rs1f")
    rs2f = inst[20:25].label("rs2f")
    funct7 = inst[25:32].label("funct7")
    return opcode, rd, funct3, rs1f, rs2f, funct7


def build_immediate_unit(inst, imm_sel):
    """All five immediate formats muxed by the 3-bit ``imm_sel`` control."""
    imm_i = inst[20:32].sext(32)
    imm_s = hdl.concat(inst[25:32], inst[7:12]).sext(32)
    imm_b = hdl.concat(
        inst[31], inst[7], inst[25:31], inst[8:12], hdl.Const(0, 1)
    ).sext(32)
    imm_u = hdl.concat(inst[12:32], hdl.Const(0, 12))
    imm_j = hdl.concat(
        inst[31], inst[12:20], inst[20], inst[21:31], hdl.Const(0, 1)
    ).sext(32)
    return hdl.mux(imm_sel, imm_i, imm_s, imm_b, imm_u, imm_j,
                   imm_i, imm_i, imm_i)


def build_alu(alu_op, in1, in2):
    """The full ALU: base ops plus the Zbkb/Zbkc units, muxed by alu_op."""
    amount = in2[0:5]
    wide_amount = amount.zext(32)
    complement = 32 - wide_amount
    clmul_full = hdl.carryless_multiply(in1, in2)
    byte0, byte1 = in1[0:8], in1[8:16]
    byte2, byte3 = in1[16:24], in1[24:32]

    def brev(byte):
        return hdl.concat(*[byte[i] for i in range(8)])

    zip_pairs = [
        hdl.concat(in1[i + 16], in1[i]) for i in range(15, -1, -1)
    ]
    unzip_high = hdl.concat(*[in1[2 * i + 1] for i in range(15, -1, -1)])
    unzip_low = hdl.concat(*[in1[2 * i] for i in range(15, -1, -1)])

    results = {
        "add": in1 + in2,
        "sub": in1 - in2,
        "sll": in1.shl(wide_amount),
        "slt": in1.slt(in2).zext(32),
        "sltu": (in1 < in2).zext(32),
        "xor": in1 ^ in2,
        "srl": in1.lshr(wide_amount),
        "sra": in1.ashr(wide_amount),
        "or": in1 | in2,
        "and": in1 & in2,
        "rol": in1.shl(wide_amount) | in1.lshr(complement),
        "ror": in1.lshr(wide_amount) | in1.shl(complement),
        "andn": in1 & ~in2,
        "orn": in1 | ~in2,
        "xnor": ~(in1 ^ in2),
        "pack": hdl.concat(in2[0:16], in1[0:16]),
        "packh": hdl.concat(in2[0:8], in1[0:8]).zext(32),
        "rev8": hdl.concat(byte0, byte1, byte2, byte3),
        "brev8": hdl.concat(brev(byte3), brev(byte2), brev(byte1),
                            brev(byte0)),
        "zip": hdl.concat(*zip_pairs),
        "unzip": hdl.concat(unzip_high, unzip_low),
        "clmul": clmul_full[0:32],
        "clmulh": clmul_full[32:64],
        "copyb": in2,
    }
    inputs = [results[name] for name in ALU_OPS]
    inputs += [results["copyb"]] * (32 - len(inputs))
    return hdl.mux(alu_op, *inputs)


def build_branch_unit(funct3, rs1_val, rs2_val):
    """Branch-taken condition selected by funct3 (fixed decode datapath)."""
    return hdl.mux(
        funct3,
        rs1_val == rs2_val,       # 000 beq
        rs1_val != rs2_val,       # 001 bne
        hdl.Const(0, 1),          # 010 (unused)
        hdl.Const(0, 1),          # 011 (unused)
        rs1_val.slt(rs2_val),     # 100 blt
        rs1_val.sge(rs2_val),     # 101 bge
        rs1_val < rs2_val,        # 110 bltu
        rs1_val >= rs2_val,       # 111 bgeu
    )


def build_load_unit(word, lane, mask_mode, sign_ext):
    """Lane-select + extend a loaded word (mask_mode: 0=b, 1=h, 2/3=w)."""
    half = hdl.select(lane[1], word[16:32], word[0:16])
    byte = hdl.mux(lane, word[0:8], word[8:16], word[16:24], word[24:32])
    byte_ext = hdl.select(sign_ext, byte.sext(32), byte.zext(32))
    half_ext = hdl.select(sign_ext, half.sext(32), half.zext(32))
    return hdl.mux(mask_mode, byte_ext, half_ext, word, word)


def build_store_unit(old_word, store_data, lane, mask_mode):
    """Read-modify-write merge for sub-word stores."""
    byte = store_data[0:8]
    half = store_data[0:16]
    merged_h = hdl.select(
        lane[1],
        hdl.concat(half, old_word[0:16]),
        hdl.concat(old_word[16:32], half),
    )
    merged_b = hdl.mux(
        lane,
        hdl.concat(old_word[8:32], byte),
        hdl.concat(old_word[16:32], byte, old_word[0:8]),
        hdl.concat(old_word[24:32], byte, old_word[0:16]),
        hdl.concat(byte, old_word[0:24]),
    )
    return hdl.mux(mask_mode, merged_b, merged_h, store_data, store_data)
