"""RV32I + Zbkb + Zbkc instruction encodings and an assembler.

The instruction table drives the ILA specification, the reference control
logic, the assembler, and the golden instruction-set simulator, so every
component agrees on one source of truth.

Formats: R (register), I (immediate), I-SHAMT (shift-immediate with a fixed
funct7), I-FUNCT12 (unary ops whose whole imm field is fixed, e.g. rev8),
S (store), B (branch), U (upper immediate), J (jump).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InstructionSpec",
    "INSTRUCTIONS",
    "VARIANTS",
    "variant_instructions",
    "encode",
    "assemble",
]

# Major opcodes.
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_OP = 0b0110011


@dataclass(frozen=True)
class InstructionSpec:
    name: str
    fmt: str           # R, I, I-SHAMT, I-FUNCT12, S, B, U, J
    opcode: int
    funct3: int = None
    funct7: int = None
    funct12_rs2: int = None  # rs2-field constant for I-FUNCT12 ops
    extension: str = "I"     # "I", "Zbkb", "Zbkc"


def _r(name, funct3, funct7, extension="I"):
    return InstructionSpec(name, "R", OP_OP, funct3, funct7,
                           extension=extension)


INSTRUCTIONS = {
    spec.name: spec
    for spec in [
        # --- RV32I base (37 instructions; no fence/ecall/ebreak) ---------
        InstructionSpec("lui", "U", OP_LUI),
        InstructionSpec("auipc", "U", OP_AUIPC),
        InstructionSpec("jal", "J", OP_JAL),
        InstructionSpec("jalr", "I", OP_JALR, 0b000),
        InstructionSpec("beq", "B", OP_BRANCH, 0b000),
        InstructionSpec("bne", "B", OP_BRANCH, 0b001),
        InstructionSpec("blt", "B", OP_BRANCH, 0b100),
        InstructionSpec("bge", "B", OP_BRANCH, 0b101),
        InstructionSpec("bltu", "B", OP_BRANCH, 0b110),
        InstructionSpec("bgeu", "B", OP_BRANCH, 0b111),
        InstructionSpec("lb", "I", OP_LOAD, 0b000),
        InstructionSpec("lh", "I", OP_LOAD, 0b001),
        InstructionSpec("lw", "I", OP_LOAD, 0b010),
        InstructionSpec("lbu", "I", OP_LOAD, 0b100),
        InstructionSpec("lhu", "I", OP_LOAD, 0b101),
        InstructionSpec("sb", "S", OP_STORE, 0b000),
        InstructionSpec("sh", "S", OP_STORE, 0b001),
        InstructionSpec("sw", "S", OP_STORE, 0b010),
        InstructionSpec("addi", "I", OP_IMM, 0b000),
        InstructionSpec("slti", "I", OP_IMM, 0b010),
        InstructionSpec("sltiu", "I", OP_IMM, 0b011),
        InstructionSpec("xori", "I", OP_IMM, 0b100),
        InstructionSpec("ori", "I", OP_IMM, 0b110),
        InstructionSpec("andi", "I", OP_IMM, 0b111),
        InstructionSpec("slli", "I-SHAMT", OP_IMM, 0b001, 0b0000000),
        InstructionSpec("srli", "I-SHAMT", OP_IMM, 0b101, 0b0000000),
        InstructionSpec("srai", "I-SHAMT", OP_IMM, 0b101, 0b0100000),
        _r("add", 0b000, 0b0000000),
        _r("sub", 0b000, 0b0100000),
        _r("sll", 0b001, 0b0000000),
        _r("slt", 0b010, 0b0000000),
        _r("sltu", 0b011, 0b0000000),
        _r("xor", 0b100, 0b0000000),
        _r("srl", 0b101, 0b0000000),
        _r("sra", 0b101, 0b0100000),
        _r("or", 0b110, 0b0000000),
        _r("and", 0b111, 0b0000000),
        # --- Zbkb: bit manipulation for cryptography (12) ------------------
        _r("rol", 0b001, 0b0110000, "Zbkb"),
        _r("ror", 0b101, 0b0110000, "Zbkb"),
        InstructionSpec("rori", "I-SHAMT", OP_IMM, 0b101, 0b0110000,
                        extension="Zbkb"),
        _r("andn", 0b111, 0b0100000, "Zbkb"),
        _r("orn", 0b110, 0b0100000, "Zbkb"),
        _r("xnor", 0b100, 0b0100000, "Zbkb"),
        InstructionSpec("rev8", "I-FUNCT12", OP_IMM, 0b101, 0b0110100,
                        funct12_rs2=0b11000, extension="Zbkb"),
        InstructionSpec("brev8", "I-FUNCT12", OP_IMM, 0b101, 0b0110100,
                        funct12_rs2=0b00111, extension="Zbkb"),
        InstructionSpec("zip", "I-FUNCT12", OP_IMM, 0b001, 0b0000100,
                        funct12_rs2=0b01111, extension="Zbkb"),
        InstructionSpec("unzip", "I-FUNCT12", OP_IMM, 0b101, 0b0000100,
                        funct12_rs2=0b01111, extension="Zbkb"),
        _r("pack", 0b100, 0b0000100, "Zbkb"),
        _r("packh", 0b111, 0b0000100, "Zbkb"),
        # --- Zbkc: carryless multiply (2) ------------------------------------
        _r("clmul", 0b001, 0b0000101, "Zbkc"),
        _r("clmulh", 0b011, 0b0000101, "Zbkc"),
        # --- the bespoke constant-time core's custom instruction -----------
        # cmov rd, rs1, rs2: rd <- (rs2 != 0) ? rs1 : rd  (custom-0 opcode)
        InstructionSpec("cmov", "R", 0b0001011, 0b000, 0b0000000,
                        extension="Xcmov"),
    ]
}

#: Table 1's design variants -> extensions included
VARIANTS = {
    "RV32I": ("I",),
    "RV32I+Zbkb": ("I", "Zbkb"),
    "RV32I+Zbkc": ("I", "Zbkb", "Zbkc"),
}


def variant_instructions(variant):
    """The instruction names belonging to a Table 1 variant, in table order."""
    extensions = VARIANTS[variant]
    return [
        name for name, spec in INSTRUCTIONS.items()
        if spec.extension in extensions
    ]


def _mask(width):
    return (1 << width) - 1


def encode(name, rd=0, rs1=0, rs2=0, imm=0):
    """Encode one instruction to its 32-bit word.

    ``imm`` is the architectural immediate (byte offsets for branches and
    jumps, the full 32-bit value for LUI/AUIPC with the low 12 bits zero).
    """
    spec = INSTRUCTIONS[name]
    opcode = spec.opcode
    if spec.fmt == "R":
        return (spec.funct7 << 25 | rs2 << 20 | rs1 << 15
                | spec.funct3 << 12 | rd << 7 | opcode)
    if spec.fmt == "I":
        return ((imm & 0xFFF) << 20 | rs1 << 15 | spec.funct3 << 12
                | rd << 7 | opcode)
    if spec.fmt == "I-SHAMT":
        return (spec.funct7 << 25 | (imm & 0x1F) << 20 | rs1 << 15
                | spec.funct3 << 12 | rd << 7 | opcode)
    if spec.fmt == "I-FUNCT12":
        return (spec.funct7 << 25 | spec.funct12_rs2 << 20 | rs1 << 15
                | spec.funct3 << 12 | rd << 7 | opcode)
    if spec.fmt == "S":
        imm &= 0xFFF
        return ((imm >> 5) << 25 | rs2 << 20 | rs1 << 15
                | spec.funct3 << 12 | (imm & 0x1F) << 7 | opcode)
    if spec.fmt == "B":
        imm &= 0x1FFF
        return (((imm >> 12) & 1) << 31 | ((imm >> 5) & 0x3F) << 25
                | rs2 << 20 | rs1 << 15 | spec.funct3 << 12
                | ((imm >> 1) & 0xF) << 8 | ((imm >> 11) & 1) << 7 | opcode)
    if spec.fmt == "U":
        return (imm & 0xFFFFF000) | rd << 7 | opcode
    if spec.fmt == "J":
        imm &= 0x1FFFFF
        return (((imm >> 20) & 1) << 31 | ((imm >> 1) & 0x3FF) << 21
                | ((imm >> 11) & 1) << 20 | ((imm >> 12) & 0xFF) << 12
                | rd << 7 | opcode)
    raise ValueError(f"unknown format {spec.fmt!r}")


def assemble(program, base=0):
    """Assemble ``(name, kwargs)`` pairs into a word-indexed memory image.

    Returns ``{word_index: instruction_word}`` suitable for loading into
    ``i_mem``.  ``base`` is the byte address of the first instruction.
    """
    image = {}
    for offset, (name, kwargs) in enumerate(program):
        image[(base >> 2) + offset] = encode(name, **kwargs)
    return image
