"""Hand-written reference control logic for the RISC-V cores (Table 2).

Two artifacts:

* ``reference_control_values(name)`` — the control-signal assignment a human
  designer would pick per instruction (the oracle for synthesized constants;
  don't-care signals are 0);
* ``reference_control_text(variant)`` / ``build_reference_design`` — a
  compact, hand-structured implementation of the full decoder in Oyster
  concrete syntax, spliced into the same sketch the synthesizer uses.  Its
  line count is Table 2's "HDL Control Logic (Reference)" column.
"""

from __future__ import annotations

from repro.designs.riscv import encodings
from repro.designs.riscv.datapath import ALU_OPS, IMM_SELECTS, alu_op_index
from repro.designs.riscv.encodings import INSTRUCTIONS
from repro.oyster.parser import _LineParser, _tokenize
from repro.synthesis.engine import splice_control

__all__ = [
    "reference_control_values",
    "reference_control_text",
    "build_reference_design",
    "parse_control_text",
]

_LOADS = {"lb": (0, 1), "lh": (1, 1), "lw": (2, 0), "lbu": (0, 0),
          "lhu": (1, 0)}
_STORES = {"sb": 0, "sh": 1, "sw": 2}

_IMM_ALIASES = {
    "addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
    "ori": "or", "andi": "and", "slli": "sll", "srli": "srl",
    "srai": "sra", "rori": "ror",
}


def reference_control_values(name):
    """The hand-chosen control constants for one instruction."""
    values = {
        "imm_sel": 0, "alu_src1_pc": 0, "alu_imm": 0, "alu_op": 0,
        "reg_write": 0, "mem_read": 0, "mem_write": 0, "mask_mode": 0,
        "mem_sign_ext": 0, "jump": 0, "jalr_sel": 0, "branch_en": 0,
    }
    spec = INSTRUCTIONS[name]
    if name == "lui":
        values.update(imm_sel=IMM_SELECTS["U"], alu_imm=1,
                      alu_op=alu_op_index("copyb"), reg_write=1)
    elif name == "auipc":
        values.update(imm_sel=IMM_SELECTS["U"], alu_src1_pc=1, alu_imm=1,
                      alu_op=alu_op_index("add"), reg_write=1)
    elif name == "jal":
        values.update(imm_sel=IMM_SELECTS["J"], jump=1, reg_write=1)
    elif name == "jalr":
        values.update(imm_sel=IMM_SELECTS["I"], alu_imm=1,
                      alu_op=alu_op_index("add"), jump=1, jalr_sel=1,
                      reg_write=1)
    elif spec.fmt == "B":
        values.update(imm_sel=IMM_SELECTS["B"], branch_en=1)
    elif name in _LOADS:
        mask, sign = _LOADS[name]
        values.update(imm_sel=IMM_SELECTS["I"], alu_imm=1,
                      alu_op=alu_op_index("add"), mem_read=1, reg_write=1,
                      mask_mode=mask, mem_sign_ext=sign)
    elif name in _STORES:
        values.update(imm_sel=IMM_SELECTS["S"], alu_imm=1,
                      alu_op=alu_op_index("add"), mem_write=1,
                      mask_mode=_STORES[name])
    else:
        base = _IMM_ALIASES.get(name, name)
        values.update(alu_op=alu_op_index(base), reg_write=1)
        if spec.fmt != "R":
            values.update(imm_sel=IMM_SELECTS["I"], alu_imm=1)
    return values


def reference_control_text(variant="RV32I"):
    """A compact hand-written decoder in Oyster concrete syntax."""
    zbkb = "Zbkb" in encodings.VARIANTS[variant]
    zbkc = "Zbkc" in encodings.VARIANTS[variant]

    def op(name):
        return f"5'{alu_op_index(name)}"

    lines = [
        "is_op := opcode == 7'0x33",
        "is_opimm := opcode == 7'0x13",
        "is_load := opcode == 7'0x03",
        "is_store := opcode == 7'0x23",
        "is_branch := opcode == 7'0x63",
        "is_lui := opcode == 7'0x37",
        "is_auipc := opcode == 7'0x17",
        "is_jal := opcode == 7'0x6f",
        "is_jalr := opcode == 7'0x67",
        "reg_write := is_op | is_opimm | is_load | is_lui | is_auipc"
        " | is_jal | is_jalr",
        "alu_imm := ~is_op",
        "alu_src1_pc := is_auipc",
        "mem_read := is_load",
        "mem_write := is_store",
        "mask_mode := funct3[1:0]",
        "mem_sign_ext := ~funct3[2]",
        "jump := is_jal | is_jalr",
        "jalr_sel := is_jalr",
        "branch_en := is_branch",
        "imm_sel := if is_store then 3'1 else if is_branch then 3'2"
        " else if is_lui | is_auipc then 3'3 else if is_jal then 3'4"
        " else 3'0",
    ]
    if zbkb:
        lines += [
            "f7_zext := {2'0, funct7}",
            "is_rot := f7_zext == 9'0x30",
            "is_neg := f7_zext == 9'0x20",
            "is_pck := f7_zext == 9'0x04",
            "is_unary := f7_zext == 9'0x34",
        ]
        alu_001 = "if is_rot then OPROL else "
        if zbkc:
            alu_001 += "if f7_zext == 9'0x05 then OPCLMUL else "
        alu_001 += "if is_pck then OPZIP else OPSLL"
        alu_011 = ("if f7_zext == 9'0x05 then OPCLMULH else OPSLTU"
                   if zbkc else "OPSLTU")
        alu_100 = ("if is_neg then OPXNOR else if is_pck then OPPACK"
                   " else OPXOR")
        alu_101 = ("if is_rot then OPROR else if is_unary then"
                   " (if rs2f == 5'24 then OPREV8 else OPBREV8)"
                   " else if is_pck then OPUNZIP"
                   " else if funct7[5] then OPSRA else OPSRL")
        alu_110 = "if is_neg then OPORN else OPOR"
        alu_111 = ("if is_neg then OPANDN else if is_pck then OPPACKH"
                   " else OPAND")
    else:
        alu_001 = "OPSLL"
        alu_011 = "OPSLTU"
        alu_100 = "OPXOR"
        alu_101 = "if funct7[5] then OPSRA else OPSRL"
        alu_110 = "OPOR"
        alu_111 = "OPAND"
    alu_000 = "if is_op & funct7[5] then OPSUB else OPADD"
    lines += [
        "alu_compute := if funct3 == 3'0 then ALU000"
        " else if funct3 == 3'1 then ALU001"
        " else if funct3 == 3'2 then OPSLT"
        " else if funct3 == 3'3 then ALU011"
        " else if funct3 == 3'4 then ALU100"
        " else if funct3 == 3'5 then ALU101"
        " else if funct3 == 3'6 then ALU110 else ALU111",
        "alu_op := if is_lui then OPCOPYB"
        " else if is_op | is_opimm then alu_compute else OPADD",
    ]
    replacements = {
        "ALU000": f"({alu_000})",
        "ALU001": f"({alu_001})",
        "ALU011": f"({alu_011})",
        "ALU100": f"({alu_100})",
        "ALU101": f"({alu_101})",
        "ALU110": f"({alu_110})",
        "ALU111": f"({alu_111})",
    }
    text = "\n".join(lines)
    for key, value in replacements.items():
        text = text.replace(key, value)
    # Longest names first so OPSLTU/OPPACKH/OPCLMULH survive OPSLT/etc.
    for name in sorted(ALU_OPS, key=len, reverse=True):
        text = text.replace(f"OP{name.upper()}", f"5'{alu_op_index(name)}")
    return text


def parse_control_text(text):
    """Parse bare ``wire := expr`` lines into Oyster Assign statements."""
    from repro.oyster import ast

    stmts = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parser = _LineParser(_tokenize(line, line_number), line_number)
        target = parser.expect_name()
        parser.expect(":=")
        expr = parser.parse_expr()
        parser.done()
        stmts.append(ast.Assign(target, expr))
    return stmts


def build_reference_design(sketch, variant="RV32I"):
    """The sketch completed with the hand-written reference control."""
    stmts = parse_control_text(reference_control_text(variant))
    return splice_control(sketch, stmts)
