"""Problem assembly for the RISC-V case studies (Table 1 rows)."""

from __future__ import annotations

from repro.designs.riscv.spec import build_spec
from repro.designs.riscv.sketch_single_cycle import (
    build_single_cycle_alpha,
    build_single_cycle_sketch,
)
from repro.designs.riscv.sketch_two_stage import (
    build_two_stage_alpha,
    build_two_stage_sketch,
)
from repro.synthesis import SynthesisProblem

__all__ = ["build_problem"]

_MICROARCHES = {
    "single_cycle": (build_single_cycle_sketch, build_single_cycle_alpha),
    "two_stage": (build_two_stage_sketch, build_two_stage_alpha),
}


def build_problem(variant="RV32I", microarch="single_cycle",
                  instructions=None):
    """Build a synthesis problem for one (variant, microarchitecture) pair.

    ``instructions`` optionally restricts the specification to the named
    subset (used by tests and the scaling ablation).
    """
    build_sketch, build_alpha = _MICROARCHES[microarch]
    spec = build_spec(variant)
    if instructions is not None:
        wanted = set(instructions)
        spec.instructions = [
            instr for instr in spec.instructions if instr.name in wanted
        ]
        missing = wanted - {instr.name for instr in spec.instructions}
        if missing:
            raise ValueError(f"unknown instructions: {sorted(missing)}")
    return SynthesisProblem(
        sketch=build_sketch(),
        spec=spec,
        alpha=build_alpha(),
        name=f"{variant}/{microarch}",
    )
