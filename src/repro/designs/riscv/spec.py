"""The ILA specification for the RV32I(+Zbkb/Zbkc) cores.

Built from the same instruction table as the assembler/ISS.  Architectural
state: ``pc`` (32), ``GPR`` (32 x 32, including x0 — stores to x0 are
skipped with a conditional Store, and reset establishes the x0==0
invariant), and a unified word-addressed memory ``mem`` (2^30 x 32) whose
fetch and data views the abstraction function maps to ``i_mem``/``d_mem``.

Decode fields ``opcode``, ``funct3``, ``funct7`` and ``rs2f`` (the rs2/shamt
bit field, needed to distinguish rev8/brev8/zip/unzip) are declared for the
control-union code generator.
"""

from __future__ import annotations

from repro.designs.riscv.encodings import INSTRUCTIONS, variant_instructions
from repro.ila import (
    And,
    BvConst,
    Concat,
    Extract,
    Ila,
    Ite,
    Load,
    SExt,
    Store,
    ZExt,
)

__all__ = ["build_spec", "XLEN"]

XLEN = 32


def build_spec(variant="RV32I", names=None, spec_name=None):
    """Build the ILA for one Table 1 variant.

    ``names`` overrides the instruction list entirely (used by the bespoke
    constant-time core, whose ISA is an RV32I subset plus ``cmov``).
    """
    default_name = f"riscv_{variant.replace('+', '_').lower()}"
    ila = Ila(spec_name or default_name)
    pc = ila.new_bv_state("pc", XLEN)
    gpr = ila.new_mem_state("GPR", 5, XLEN)
    mem = ila.new_mem_state("mem", 30, XLEN)

    inst = ila.set_fetch(Load(mem, Extract(pc, 31, 2)))
    opcode = ila.declare_decode_field("opcode", Extract(inst, 6, 0))
    funct3 = ila.declare_decode_field("funct3", Extract(inst, 14, 12))
    funct7 = ila.declare_decode_field("funct7", Extract(inst, 31, 25))
    rs2f = ila.declare_decode_field("rs2f", Extract(inst, 24, 20))

    rd = Extract(inst, 11, 7)
    rs1f = Extract(inst, 19, 15)
    rs1_val = Load(gpr, rs1f)
    rs2_val = Load(gpr, rs2f)

    imm_i = SExt(Extract(inst, 31, 20), XLEN)
    imm_s = SExt(Concat(Extract(inst, 31, 25), Extract(inst, 11, 7)), XLEN)
    imm_b = SExt(
        Concat(
            Extract(inst, 31, 31),
            Concat(
                Extract(inst, 7, 7),
                Concat(
                    Extract(inst, 30, 25),
                    Concat(Extract(inst, 11, 8), BvConst(0, 1)),
                ),
            ),
        ),
        XLEN,
    )
    imm_u = Concat(Extract(inst, 31, 12), BvConst(0, 12))
    imm_j = SExt(
        Concat(
            Extract(inst, 31, 31),
            Concat(
                Extract(inst, 19, 12),
                Concat(
                    Extract(inst, 20, 20),
                    Concat(Extract(inst, 30, 21), BvConst(0, 1)),
                ),
            ),
        ),
        XLEN,
    )
    shamt_imm = Extract(inst, 24, 20)

    pc_plus_4 = pc + BvConst(4, XLEN)

    def write_rd(value):
        """GPR update skipping x0 (reset keeps x0 at zero)."""
        return Ite(rd == BvConst(0, 5), gpr, Store(gpr, rd, value))

    def decode_for(spec):
        terms = [opcode == BvConst(spec.opcode, 7)]
        if spec.funct3 is not None:
            terms.append(funct3 == BvConst(spec.funct3, 3))
        if spec.fmt in ("R", "I-SHAMT", "I-FUNCT12"):
            terms.append(funct7 == BvConst(spec.funct7, 7))
        if spec.fmt == "I-FUNCT12":
            terms.append(rs2f == BvConst(spec.funct12_rs2, 5))
        return And(*terms)

    # -- shared sub-expressions ------------------------------------------------

    def shift_amount(value):
        return ZExt(value, XLEN)

    def rotate_left(value, amount5):
        amount = shift_amount(amount5)
        complement = BvConst(XLEN, XLEN) - amount
        return value.shl(amount) | value.lshr(complement)

    def rotate_right(value, amount5):
        amount = shift_amount(amount5)
        complement = BvConst(XLEN, XLEN) - amount
        return value.lshr(amount) | value.shl(complement)

    def bool_to_bv(bit):
        return ZExt(bit, XLEN)

    def rev8_expr(value):
        return Concat(
            Extract(value, 7, 0),
            Concat(
                Extract(value, 15, 8),
                Concat(Extract(value, 23, 16), Extract(value, 31, 24)),
            ),
        )

    def brev8_expr(value):
        out = None
        for byte_index in range(3, -1, -1):
            byte = None
            for bit in range(8):
                piece = Extract(value, 8 * byte_index + bit,
                                8 * byte_index + bit)
                byte = piece if byte is None else Concat(byte, piece)
            out = byte if out is None else Concat(out, byte)
        return out

    def zip_expr(value):
        out = None  # build MSB-first: bit 31 down to 0
        for i in range(15, -1, -1):
            pair = Concat(
                Extract(value, i + 16, i + 16), Extract(value, i, i)
            )
            out = pair if out is None else Concat(out, pair)
        return out

    def unzip_expr(value):
        high = None
        low = None
        for i in range(15, -1, -1):
            odd = Extract(value, 2 * i + 1, 2 * i + 1)
            even = Extract(value, 2 * i, 2 * i)
            high = odd if high is None else Concat(high, odd)
            low = even if low is None else Concat(low, even)
        return Concat(high, low)

    def clmul_wide(a, b):
        wide_a = ZExt(a, 2 * XLEN)
        accumulator = BvConst(0, 2 * XLEN)
        for i in range(XLEN):
            bit = Extract(b, i, i)
            term = Ite(
                bit == BvConst(1, 1),
                wide_a.shl(BvConst(i, 2 * XLEN)),
                BvConst(0, 2 * XLEN),
            )
            accumulator = accumulator ^ term
        return accumulator

    # -- ALU-style result per instruction ------------------------------------------

    def alu_result(name, operand, amount):
        results = {
            "add": lambda: rs1_val + operand,
            "sub": lambda: rs1_val - operand,
            "sll": lambda: rs1_val.shl(shift_amount(amount)),
            "slt": lambda: bool_to_bv(rs1_val.slt(operand)),
            "sltu": lambda: bool_to_bv(rs1_val < operand),
            "xor": lambda: rs1_val ^ operand,
            "srl": lambda: rs1_val.lshr(shift_amount(amount)),
            "sra": lambda: rs1_val.ashr(shift_amount(amount)),
            "or": lambda: rs1_val | operand,
            "and": lambda: rs1_val & operand,
            "rol": lambda: rotate_left(rs1_val, amount),
            "ror": lambda: rotate_right(rs1_val, amount),
            "andn": lambda: rs1_val & ~operand,
            "orn": lambda: rs1_val | ~operand,
            "xnor": lambda: ~(rs1_val ^ operand),
            "pack": lambda: Concat(Extract(operand, 15, 0),
                                   Extract(rs1_val, 15, 0)),
            "packh": lambda: ZExt(
                Concat(Extract(operand, 7, 0), Extract(rs1_val, 7, 0)),
                XLEN,
            ),
            "rev8": lambda: rev8_expr(rs1_val),
            "brev8": lambda: brev8_expr(rs1_val),
            "zip": lambda: zip_expr(rs1_val),
            "unzip": lambda: unzip_expr(rs1_val),
            "clmul": lambda: Extract(clmul_wide(rs1_val, operand),
                                     XLEN - 1, 0),
            "clmulh": lambda: Extract(clmul_wide(rs1_val, operand),
                                      2 * XLEN - 1, XLEN),
        }
        return results[name]()

    _IMM_ALIASES = {
        "addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
        "ori": "or", "andi": "and", "slli": "sll", "srli": "srl",
        "srai": "sra", "rori": "ror",
    }

    # -- memory access helpers --------------------------------------------------------

    def load_value(name, addr):
        word = Load(mem, Extract(addr, 31, 2))
        if name == "lw":
            return word
        if name in ("lh", "lhu"):
            half = Ite(
                Extract(addr, 1, 1) == BvConst(1, 1),
                Extract(word, 31, 16),
                Extract(word, 15, 0),
            )
            return SExt(half, XLEN) if name == "lh" else ZExt(half, XLEN)
        lane = Extract(addr, 1, 0)
        byte = Ite(
            Extract(lane, 1, 1) == BvConst(1, 1),
            Ite(Extract(lane, 0, 0) == BvConst(1, 1),
                Extract(word, 31, 24), Extract(word, 23, 16)),
            Ite(Extract(lane, 0, 0) == BvConst(1, 1),
                Extract(word, 15, 8), Extract(word, 7, 0)),
        )
        return SExt(byte, XLEN) if name == "lb" else ZExt(byte, XLEN)

    def store_merge(name, addr, old):
        if name == "sw":
            return rs2_val
        if name == "sh":
            return Ite(
                Extract(addr, 1, 1) == BvConst(1, 1),
                Concat(Extract(rs2_val, 15, 0), Extract(old, 15, 0)),
                Concat(Extract(old, 31, 16), Extract(rs2_val, 15, 0)),
            )
        lane = Extract(addr, 1, 0)
        byte = Extract(rs2_val, 7, 0)
        lane_bit1 = Extract(lane, 1, 1) == BvConst(1, 1)
        lane_bit0 = Extract(lane, 0, 0) == BvConst(1, 1)
        return Ite(
            lane_bit1,
            Ite(
                lane_bit0,
                Concat(byte, Extract(old, 23, 0)),
                Concat(Extract(old, 31, 24),
                       Concat(byte, Extract(old, 15, 0))),
            ),
            Ite(
                lane_bit0,
                Concat(Extract(old, 31, 16),
                       Concat(byte, Extract(old, 7, 0))),
                Concat(Extract(old, 31, 8), byte),
            ),
        )

    # -- instruction construction ----------------------------------------------------

    branch_conditions = {
        "beq": lambda: rs1_val == rs2_val,
        "bne": lambda: rs1_val != rs2_val,
        "blt": lambda: rs1_val.slt(rs2_val),
        "bge": lambda: rs1_val.sge(rs2_val),
        "bltu": lambda: rs1_val < rs2_val,
        "bgeu": lambda: rs1_val >= rs2_val,
    }

    chosen = names if names is not None else variant_instructions(variant)
    for name in chosen:
        spec = INSTRUCTIONS[name]
        instr = ila.new_instr(name)
        instr.set_decode(decode_for(spec))
        if name == "lui":
            instr.set_update(gpr, write_rd(imm_u))
            instr.set_update(pc, pc_plus_4)
        elif name == "auipc":
            instr.set_update(gpr, write_rd(pc + imm_u))
            instr.set_update(pc, pc_plus_4)
        elif name == "jal":
            instr.set_update(gpr, write_rd(pc_plus_4))
            instr.set_update(pc, pc + imm_j)
        elif name == "jalr":
            instr.set_update(gpr, write_rd(pc_plus_4))
            instr.set_update(
                pc, (rs1_val + imm_i) & BvConst(0xFFFFFFFE, XLEN)
            )
        elif spec.fmt == "B":
            instr.set_update(
                pc, Ite(branch_conditions[name](), pc + imm_b, pc_plus_4)
            )
        elif name in ("lb", "lh", "lw", "lbu", "lhu"):
            addr = rs1_val + imm_i
            instr.set_update(gpr, write_rd(load_value(name, addr)))
            instr.set_update(pc, pc_plus_4)
        elif name == "cmov":
            rd_val = Load(gpr, rd)
            instr.set_update(
                gpr,
                write_rd(Ite(rs2_val != BvConst(0, XLEN), rs1_val, rd_val)),
            )
            instr.set_update(pc, pc_plus_4)
        elif name in ("sb", "sh", "sw"):
            addr = rs1_val + imm_s
            word_addr = Extract(addr, 31, 2)
            old = Load(mem, word_addr)
            instr.set_update(
                mem, Store(mem, word_addr, store_merge(name, addr, old))
            )
            instr.set_update(pc, pc_plus_4)
        else:
            base = _IMM_ALIASES.get(name, name)
            if spec.fmt == "R":
                operand, amount = rs2_val, Extract(rs2_val, 4, 0)
            elif spec.fmt in ("I-SHAMT", "I-FUNCT12"):
                operand, amount = imm_i, shamt_imm
            else:
                operand, amount = imm_i, shamt_imm
            instr.set_update(gpr, write_rd(alu_result(base, operand, amount)))
            instr.set_update(pc, pc_plus_4)

    return ila.validate()
