"""The single-cycle RISC-V datapath sketch (Section 4.1.1).

Control points left as holes, mirroring the paper's listing::

    alu_imm  <<= ??(opcode, funct3, funct7)
    alu_op   <<= ??(opcode, funct3, funct7)
    reg_write <<= ??(opcode, funct3, funct7)
    ...

(our holes also observe ``rs2f``, required to distinguish the Zbkb unary
instructions rev8/brev8/zip/unzip, which share opcode/funct3/funct7).
"""

from __future__ import annotations

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.designs.riscv.datapath import (
    build_alu,
    build_branch_unit,
    build_decode_unit,
    build_immediate_unit,
    build_load_unit,
    build_store_unit,
)

__all__ = ["build_single_cycle_sketch", "build_single_cycle_alpha",
           "CONTROL_HOLES"]

#: hole name -> width (instruction-decoder control, Figure 7 style)
CONTROL_HOLES = {
    "imm_sel": 3,
    "alu_src1_pc": 1,
    "alu_imm": 1,
    "alu_op": 5,
    "reg_write": 1,
    "mem_read": 1,
    "mem_write": 1,
    "mask_mode": 2,
    "mem_sign_ext": 1,
    "jump": 1,
    "jalr_sel": 1,
    "branch_en": 1,
}


def build_single_cycle_sketch():
    with hdl.Module("rv32_single_cycle") as module:
        pc = hdl.Register(32, "pc")
        rf = hdl.MemBlock(5, 32, "rf")
        i_mem = hdl.MemBlock(30, 32, "i_mem")
        d_mem = hdl.MemBlock(30, 32, "d_mem")

        # Fetch and decode.
        instruction = i_mem.read(pc[2:32]).label("instruction")
        opcode, rd, funct3, rs1f, rs2f, funct7 = build_decode_unit(
            instruction
        )

        # Control logic left as holes.
        deps = [opcode, funct3, funct7, rs2f]
        holes = {
            name: hdl.Hole(width, name, deps=deps)
            for name, width in CONTROL_HOLES.items()
        }

        # Register file read.
        rs1_val = rf.read(rs1f).label("rs1_val")
        rs2_val = rf.read(rs2f).label("rs2_val")

        # Immediates and ALU.
        imm = build_immediate_unit(instruction, holes["imm_sel"])
        alu_in1 = hdl.select(holes["alu_src1_pc"], pc, rs1_val)
        alu_in2 = hdl.mux(holes["alu_imm"], rs2_val, imm)
        alu_out = build_alu(holes["alu_op"], alu_in1, alu_in2).label(
            "alu_out"
        )

        # Data memory.
        lane = alu_out[0:2]
        word_addr = alu_out[2:32]
        loaded_word = d_mem.read(word_addr)
        load_value = build_load_unit(
            loaded_word, lane, holes["mask_mode"], holes["mem_sign_ext"]
        )
        merged = build_store_unit(
            loaded_word, rs2_val, lane, holes["mask_mode"]
        )
        d_mem.write(word_addr, merged, enable=holes["mem_write"])

        # Write back (x0 is structurally write-protected).
        pc_plus_4 = (pc + 4).label("pc_plus_4")
        wb_value = hdl.mux(
            holes["mem_read"],
            hdl.mux(holes["jump"], alu_out, pc_plus_4),
            load_value,
        )
        rd_is_zero = rd == 0
        rf.write(rd, wb_value, enable=holes["reg_write"] & ~rd_is_zero)

        # Next PC.
        taken = build_branch_unit(funct3, rs1_val, rs2_val)
        branch_target = (pc + imm).label("branch_target")
        jalr_target = alu_out & hdl.Const(0xFFFFFFFE, 32)
        target = hdl.select(holes["jalr_sel"], jalr_target, branch_target)
        redirect = holes["jump"] | (holes["branch_en"] & taken)
        pc.next <<= hdl.select(redirect, target, pc_plus_4)
    return module.to_oyster()


_ALPHA_TEXT = """
pc:  {name: 'pc', type: register, [read: 1, write: 1]}
GPR: {name: 'rf', type: memory, [read: 1, write: 1]}
mem: {name: 'd_mem', type: memory, [read: 1, write: 1]}
mem: {name: 'i_mem', type: memory, [read: 1]}
with cycles: 1
fields: {opcode: 'opcode', funct3: 'funct3', funct7: 'funct7', rs2f: 'rs2f'}
"""


def build_single_cycle_alpha():
    return parse_abstraction(_ALPHA_TEXT)
