"""A golden instruction-set simulator for the RV32I(+Zbkb/Zbkc) subset.

Used as the differential oracle for the synthesized cores and by the
constant-time study's cycle accounting.  Memory is word-addressed (matching
the spec and datapath model); sub-word accesses are lane-aligned.
"""

from __future__ import annotations

from repro.designs.riscv.encodings import INSTRUCTIONS

__all__ = [
    "GoldenISS",
    "rev8",
    "brev8",
    "zip32",
    "unzip32",
    "clmul32",
    "clmulh32",
]

_MASK32 = 0xFFFFFFFF


def _signed(value):
    return value - (1 << 32) if value & 0x80000000 else value


def _sext(value, bits):
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & _MASK32


def rev8(x):
    """Byte-reverse a 32-bit value."""
    return ((x & 0xFF) << 24 | (x & 0xFF00) << 8
            | (x >> 8) & 0xFF00 | (x >> 24) & 0xFF)


def brev8(x):
    """Bit-reverse within each byte."""
    out = 0
    for byte_index in range(4):
        byte = (x >> (8 * byte_index)) & 0xFF
        reversed_byte = int(f"{byte:08b}"[::-1], 2)
        out |= reversed_byte << (8 * byte_index)
    return out


def zip32(x):
    """Interleave: out[2i] = x[i], out[2i+1] = x[i+16]."""
    out = 0
    for i in range(16):
        out |= ((x >> i) & 1) << (2 * i)
        out |= ((x >> (i + 16)) & 1) << (2 * i + 1)
    return out


def unzip32(x):
    """The inverse of zip32: out[i] = x[2i], out[i+16] = x[2i+1]."""
    out = 0
    for i in range(16):
        out |= ((x >> (2 * i)) & 1) << i
        out |= ((x >> (2 * i + 1)) & 1) << (i + 16)
    return out


def _clmul64(a, b):
    out = 0
    for i in range(32):
        if (b >> i) & 1:
            out ^= a << i
    return out


def clmul32(a, b):
    return _clmul64(a, b) & _MASK32


def clmulh32(a, b):
    return (_clmul64(a, b) >> 32) & _MASK32


class GoldenISS:
    """Executes decoded RV32I(+Zbkb/Zbkc) instructions one at a time."""

    def __init__(self, memory=None, pc=0, regs=None):
        self.pc = pc & _MASK32
        self.regs = [0] * 32
        if regs:
            for index, value in regs.items():
                self.regs[index] = value & _MASK32
        self.regs[0] = 0
        self.memory = dict(memory or {})  # word index -> 32-bit word
        self.instret = 0

    # -- memory helpers ------------------------------------------------------

    def load_word(self, byte_addr):
        return self.memory.get((byte_addr >> 2) & 0x3FFFFFFF, 0)

    def store_word(self, byte_addr, value):
        self.memory[(byte_addr >> 2) & 0x3FFFFFFF] = value & _MASK32

    def _write_rd(self, rd, value):
        if rd != 0:
            self.regs[rd] = value & _MASK32

    # -- decode ------------------------------------------------------------------

    @staticmethod
    def decode(word):
        """Decode a word to (name, fields) or raise ValueError."""
        opcode = word & 0x7F
        rd = (word >> 7) & 0x1F
        funct3 = (word >> 12) & 0x7
        rs1 = (word >> 15) & 0x1F
        rs2 = (word >> 20) & 0x1F
        funct7 = (word >> 25) & 0x7F
        for name, spec in INSTRUCTIONS.items():
            if spec.opcode != opcode:
                continue
            if spec.funct3 is not None and spec.funct3 != funct3:
                continue
            if spec.fmt in ("R", "I-SHAMT", "I-FUNCT12") and (
                spec.funct7 != funct7
            ):
                continue
            if spec.fmt == "I-FUNCT12" and spec.funct12_rs2 != rs2:
                continue
            return name, {
                "rd": rd, "rs1": rs1, "rs2": rs2,
                "funct3": funct3, "funct7": funct7, "word": word,
            }
        raise ValueError(f"cannot decode {word:#010x}")

    # -- immediates -----------------------------------------------------------------

    @staticmethod
    def _imm(fmt, word):
        if fmt in ("I", "I-SHAMT", "I-FUNCT12"):
            return _sext(word >> 20, 12)
        if fmt == "S":
            return _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
        if fmt == "B":
            imm = (((word >> 31) & 1) << 12 | ((word >> 7) & 1) << 11
                   | ((word >> 25) & 0x3F) << 5 | ((word >> 8) & 0xF) << 1)
            return _sext(imm, 13)
        if fmt == "U":
            return word & 0xFFFFF000
        if fmt == "J":
            imm = (((word >> 31) & 1) << 20 | ((word >> 12) & 0xFF) << 12
                   | ((word >> 20) & 1) << 11 | ((word >> 21) & 0x3FF) << 1)
            return _sext(imm, 21)
        raise ValueError(fmt)

    # -- execution ----------------------------------------------------------------------

    def step(self):
        """Fetch, decode, and execute one instruction."""
        word = self.load_word(self.pc)
        name, fields = self.decode(word)
        self.execute(name, fields)
        self.instret += 1
        return name

    def run(self, max_steps, halt_pc=None):
        """Step until ``halt_pc`` (a tight self-loop also counts as halted)."""
        for _ in range(max_steps):
            if halt_pc is not None and self.pc == halt_pc:
                return True
            before = self.pc
            self.step()
            if halt_pc is None and self.pc == before:
                return True  # self-loop: conventional halt
        return False

    def execute(self, name, fields):
        spec = INSTRUCTIONS[name]
        rd = fields["rd"]
        rs1_val = self.regs[fields["rs1"]]
        rs2_val = self.regs[fields["rs2"]]
        word = fields["word"]
        imm = self._imm(spec.fmt, word) if spec.fmt != "R" else 0
        shamt = (word >> 20) & 0x1F
        next_pc = (self.pc + 4) & _MASK32

        if name == "lui":
            self._write_rd(rd, imm)
        elif name == "auipc":
            self._write_rd(rd, self.pc + imm)
        elif name == "jal":
            self._write_rd(rd, self.pc + 4)
            next_pc = (self.pc + imm) & _MASK32
        elif name == "jalr":
            self._write_rd(rd, self.pc + 4)
            next_pc = (rs1_val + imm) & ~1 & _MASK32
        elif spec.fmt == "B":
            taken = {
                "beq": rs1_val == rs2_val,
                "bne": rs1_val != rs2_val,
                "blt": _signed(rs1_val) < _signed(rs2_val),
                "bge": _signed(rs1_val) >= _signed(rs2_val),
                "bltu": rs1_val < rs2_val,
                "bgeu": rs1_val >= rs2_val,
            }[name]
            if taken:
                next_pc = (self.pc + imm) & _MASK32
        elif name in ("lb", "lh", "lw", "lbu", "lhu"):
            addr = (rs1_val + imm) & _MASK32
            loaded = self.load_word(addr)
            if name == "lw":
                value = loaded
            elif name in ("lh", "lhu"):
                half = (loaded >> (16 * ((addr >> 1) & 1))) & 0xFFFF
                value = _sext(half, 16) if name == "lh" else half
            else:
                byte = (loaded >> (8 * (addr & 3))) & 0xFF
                value = _sext(byte, 8) if name == "lb" else byte
            self._write_rd(rd, value)
        elif name in ("sb", "sh", "sw"):
            addr = (rs1_val + imm) & _MASK32
            old = self.load_word(addr)
            if name == "sw":
                merged = rs2_val
            elif name == "sh":
                shift = 16 * ((addr >> 1) & 1)
                merged = (old & ~(0xFFFF << shift)) | (
                    (rs2_val & 0xFFFF) << shift
                )
            else:
                shift = 8 * (addr & 3)
                merged = (old & ~(0xFF << shift)) | ((rs2_val & 0xFF) << shift)
            self.store_word(addr, merged)
        elif name == "cmov":
            self._write_rd(rd, rs1_val if rs2_val != 0 else self.regs[rd])
        else:
            operand = rs2_val if spec.fmt == "R" else imm & _MASK32
            amount = (rs2_val if spec.fmt == "R" else shamt) & 0x1F
            self._write_rd(rd, self._alu(name, rs1_val, operand, amount))
        self.pc = next_pc
        self.regs[0] = 0

    _IMM_ALIASES = {
        "addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
        "ori": "or", "andi": "and", "slli": "sll", "srli": "srl",
        "srai": "sra", "rori": "ror",
    }

    @classmethod
    def _alu(cls, name, a, b, amount):
        base = cls._IMM_ALIASES.get(name, name)
        operations = {
            "add": lambda: a + b,
            "sub": lambda: a - b,
            "sll": lambda: a << amount,
            "slt": lambda: int(_signed(a) < _signed(b)),
            "sltu": lambda: int(a < b),
            "xor": lambda: a ^ b,
            "srl": lambda: a >> amount,
            "sra": lambda: _signed(a) >> amount,
            "or": lambda: a | b,
            "and": lambda: a & b,
            "rol": lambda: (a << amount) | (a >> ((32 - amount) % 32))
            if amount else a,
            "ror": lambda: (a >> amount) | (a << ((32 - amount) % 32))
            if amount else a,
            "andn": lambda: a & ~b,
            "orn": lambda: a | ~b,
            "xnor": lambda: ~(a ^ b),
            "pack": lambda: ((b & 0xFFFF) << 16) | (a & 0xFFFF),
            "packh": lambda: ((b & 0xFF) << 8) | (a & 0xFF),
            "rev8": lambda: rev8(a),
            "brev8": lambda: brev8(a),
            "zip": lambda: zip32(a),
            "unzip": lambda: unzip32(a),
            "clmul": lambda: clmul32(a, b),
            "clmulh": lambda: clmulh32(a, b),
        }
        return operations[base]() & _MASK32
