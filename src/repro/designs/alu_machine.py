"""The Section 2.2 ALU machine: spec, three-stage pipelined sketch, α.

The ILA models a 4-register machine with four ALU operations selected by a
2-bit ``op`` input.  The sketch implements the paper's Figure 2 datapath: a
three-stage pipeline (register read / execute / write back) whose control —
the ALU operation select and the write-back enable — is left as holes.
"""

from __future__ import annotations

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.ila import BvConst, Ila, Load, Store
from repro.synthesis import SynthesisProblem

__all__ = [
    "build_spec",
    "build_sketch",
    "build_alpha",
    "build_problem",
    "REFERENCE_HOLE_VALUES",
    "OPCODES",
]

#: spec opcode -> operation (XOR occupies opcode 0)
OPCODES = {"XOR": 0, "ADD": 1, "SUB": 2, "AND": 3}


def build_spec():
    """The ALU machine ILA (extends the paper's ADD listing to 4 ops)."""
    ila = Ila("alu_ila")
    op = ila.new_bv_input("op", 2)
    dest = ila.new_bv_input("dest", 2)
    src1 = ila.new_bv_input("src1", 2)
    src2 = ila.new_bv_input("src2", 2)
    regs = ila.new_mem_state("regs", 2, 8)
    rs1_val = Load(regs, src1)
    rs2_val = Load(regs, src2)
    operations = {
        "ADD": rs1_val + rs2_val,
        "SUB": rs1_val - rs2_val,
        "AND": rs1_val & rs2_val,
        "XOR": rs1_val ^ rs2_val,
    }
    for name, result in operations.items():
        instr = ila.new_instr(name)
        instr.set_decode(op == BvConst(OPCODES[name], 2))
        instr.set_update(regs, Store(regs, dest, result))
    return ila.validate()


def build_sketch():
    """The three-stage pipelined datapath with control holes (Figure 2)."""
    with hdl.Module("alu_pipeline") as module:
        op = hdl.Input(2, "op")
        dest = hdl.Input(2, "dest")
        src1 = hdl.Input(2, "src1")
        src2 = hdl.Input(2, "src2")
        regfile = hdl.MemBlock(2, 8, "regfile")

        # Control holes: what the ALU does and whether write-back happens.
        alu_op = hdl.Hole(2, "alu_op", deps=[op])
        wb_en = hdl.Hole(1, "wb_en", deps=[op])

        # Stage 1: register read; latch operands, destination and control.
        rs1_val = regfile.read(src1)
        rs2_val = regfile.read(src2)
        p_rs1 = hdl.Register(8, "p_rs1")
        p_rs2 = hdl.Register(8, "p_rs2")
        p_dest = hdl.Register(2, "p_dest")
        p_aluop = hdl.Register(2, "p_aluop")
        p_wben = hdl.Register(1, "p_wben", init=0)
        p_rs1.next <<= rs1_val
        p_rs2.next <<= rs2_val
        p_dest.next <<= dest
        p_aluop.next <<= alu_op
        p_wben.next <<= wb_en

        # Stage 2: execute; latch the result and piped control.
        alu_out = hdl.mux(
            p_aluop,
            p_rs1 ^ p_rs2,  # select 0
            p_rs1 + p_rs2,  # select 1
            p_rs1 - p_rs2,  # select 2
            p_rs1 & p_rs2,  # select 3
        )
        p_res = hdl.Register(8, "p_res")
        p_dest2 = hdl.Register(2, "p_dest2")
        p_wben2 = hdl.Register(1, "p_wben2", init=0)
        p_res.next <<= alu_out
        p_dest2.next <<= p_dest
        p_wben2.next <<= p_wben

        # Stage 3: write back.
        regfile.write(p_dest2, p_res, enable=p_wben2)
    return module.to_oyster()


_ALPHA_TEXT = """
op:   {name: 'op',   type: input, [read: 1]}
dest: {name: 'dest', type: input, [read: 1]}
src1: {name: 'src1', type: input, [read: 1]}
src2: {name: 'src2', type: input, [read: 1]}
regs: {name: 'regfile', type: memory, [read: 1, write: 3]}
with cycles: 3
"""


def build_alpha():
    return parse_abstraction(_ALPHA_TEXT)


def build_problem():
    return SynthesisProblem(
        sketch=build_sketch(),
        spec=build_spec(),
        alpha=build_alpha(),
        name="alu_machine",
    )


#: hand-written reference control (mux select wiring makes these evident)
REFERENCE_HOLE_VALUES = {
    "XOR": {"alu_op": 0, "wb_en": 1},
    "ADD": {"alu_op": 1, "wb_en": 1},
    "SUB": {"alu_op": 2, "wb_en": 1},
    "AND": {"alu_op": 3, "wb_en": 1},
}
