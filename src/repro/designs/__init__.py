"""Case-study designs.

Each design module/package exposes ``build_problem()`` returning a ready
``repro.synthesis.SynthesisProblem`` (sketch + ILA spec + abstraction
function), plus whatever reference implementations and helpers the
evaluation needs.

* ``alu_machine`` — the three-stage pipelined ALU of Section 2.2
* ``accumulator`` — the FSM accumulator of Section 2.3
* ``riscv`` — the embedded-class RV32I cores of Section 4.1 (+Zbkb/Zbkc)
* ``crypto_core`` — the constant-time cryptography core of Section 4.2
* ``aes`` — the AES-128 accelerator of Section 4.3
"""
