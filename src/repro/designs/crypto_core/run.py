"""Running programs on the (completed) constant-time core.

``run_sha256`` loads the kernel and a message, runs the core to the halt
self-loop, and returns the cycle count and digest — the Section 5.2
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.crypto_core.sha256_program import (
    MSG_BASE,
    OUT_BASE,
    halt_pc,
    pack_message_words,
    program_image,
)
from repro.oyster.compiled import CompiledSimulator

__all__ = ["run_sha256", "CoreRun"]


@dataclass
class CoreRun:
    cycles: int
    digest_words: list
    halted: bool

    @property
    def digest_bytes(self):
        return b"".join(w.to_bytes(4, "big") for w in self.digest_words)


def run_sha256(design, message, hole_values=None, max_cycles=100_000):
    """Execute the SHA-256 kernel on ``design`` for ``message``.

    ``cycles`` counts until the fetch stage first reaches the halt self-loop
    (plus the two cycles needed to drain the final stores through the
    pipeline) — a deterministic, architecture-level completion event.
    """
    simulator = CompiledSimulator(
        design,
        hole_values=hole_values,
        memory_init={
            "i_mem": program_image(),
            "d_mem": pack_message_words(message),
            "rf": {1: MSG_BASE, 2: len(message)},
        },
    )
    halt = halt_pc()
    cycles = None
    for cycle in range(max_cycles):
        simulator.step({})
        if simulator.peek("fetch_pc") == halt:
            cycles = cycle + 1
            break
    if cycles is None:
        return CoreRun(max_cycles, [], False)
    # Drain the two instructions still in flight (the halt loop itself
    # fetches forever; two more cycles commit every outstanding store).
    simulator.step({})
    simulator.step({})
    digest = [
        simulator.peek_memory("d_mem", (OUT_BASE >> 2) + i)
        for i in range(8)
    ]
    return CoreRun(cycles, digest, True)
