"""Hand-written reference control for the bespoke constant-time core.

Used by the Section 5.2 study: the paper compares the synthesized-control
core against a hand-written reference and finds identical cycle counts and
results.
"""

from __future__ import annotations

from repro.designs.crypto_core.sketch import (
    CRYPTO_IMM_SELECTS,
    crypto_alu_op_index,
)
from repro.designs.riscv.encodings import INSTRUCTIONS

__all__ = ["reference_control_values"]

_IMM_ALIASES = {
    "addi": "add", "xori": "xor", "ori": "or", "andi": "and",
    "slli": "sll", "srli": "srl",
}


def reference_control_values(name):
    values = {
        "imm_sel": 0, "alu_src1_pc": 0, "alu_imm": 0, "alu_op": 0,
        "reg_write": 0, "mem_read": 0, "mem_write": 0, "jump": 0,
        "jalr_sel": 0,
    }
    spec = INSTRUCTIONS[name]
    if name == "lui":
        values.update(imm_sel=CRYPTO_IMM_SELECTS["U"], alu_imm=1,
                      alu_op=crypto_alu_op_index("copyb"), reg_write=1)
    elif name == "auipc":
        values.update(imm_sel=CRYPTO_IMM_SELECTS["U"], alu_src1_pc=1,
                      alu_imm=1, alu_op=crypto_alu_op_index("add"),
                      reg_write=1)
    elif name == "jal":
        values.update(imm_sel=CRYPTO_IMM_SELECTS["J"], jump=1, reg_write=1)
    elif name == "jalr":
        values.update(imm_sel=CRYPTO_IMM_SELECTS["I"], alu_imm=1,
                      alu_op=crypto_alu_op_index("add"), jump=1,
                      jalr_sel=1, reg_write=1)
    elif name == "lw":
        values.update(imm_sel=CRYPTO_IMM_SELECTS["I"], alu_imm=1,
                      alu_op=crypto_alu_op_index("add"), mem_read=1,
                      reg_write=1)
    elif name == "sw":
        values.update(imm_sel=CRYPTO_IMM_SELECTS["S"], alu_imm=1,
                      alu_op=crypto_alu_op_index("add"), mem_write=1)
    elif name == "cmov":
        values.update(alu_op=crypto_alu_op_index("cmov"), reg_write=1)
    elif name == "sltu":
        values.update(alu_op=crypto_alu_op_index("sltu"), reg_write=1)
    else:
        base = _IMM_ALIASES.get(name, name)
        values.update(alu_op=crypto_alu_op_index(base), reg_write=1)
        if spec.fmt != "R":
            values.update(imm_sel=CRYPTO_IMM_SELECTS["I"], alu_imm=1)
    return values
