"""Problem assembly for the constant-time crypto core."""

from __future__ import annotations

from repro.designs.crypto_core.sketch import build_alpha, build_sketch
from repro.designs.crypto_core.spec import build_spec
from repro.synthesis import SynthesisProblem

__all__ = ["build_problem"]


def build_problem(instructions=None):
    spec = build_spec()
    if instructions is not None:
        wanted = set(instructions)
        spec.instructions = [
            instr for instr in spec.instructions if instr.name in wanted
        ]
    return SynthesisProblem(
        sketch=build_sketch(),
        spec=spec,
        alpha=build_alpha(),
        name="crypto_core/CMOV_ISA",
    )
