"""The three-stage constant-time core datapath sketch.

Stage 1 (IF) fetches; stage 2 (DE/EX) decodes, reads registers (three read
ports — cmov needs the old rd value), executes, resolves jumps, and commits
the architectural pc; stage 3 (MEM/WB) accesses data memory and writes back.

Jumps resolving in stage 2 squash the instruction fetched in stage 1 via the
``flush`` register, whose reset-time value is *unconstrained* — this is
exactly the control-hazard scenario Section 4.2 describes, and synthesis
fails without the ``instruction_valid`` assume (a test checks that).
"""

from __future__ import annotations

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.designs.riscv.datapath import build_decode_unit

__all__ = ["build_sketch", "build_alpha", "CRYPTO_ALU_OPS",
           "CRYPTO_CONTROL_HOLES", "crypto_alu_op_index"]

#: the bespoke core's ALU encoding (4-bit alu_op)
CRYPTO_ALU_OPS = (
    "add", "sub", "sll", "srl", "xor", "or", "and", "sltu", "copyb", "cmov",
)

#: hole name -> width
CRYPTO_CONTROL_HOLES = {
    "imm_sel": 3,
    "alu_src1_pc": 1,
    "alu_imm": 1,
    "alu_op": 4,
    "reg_write": 1,
    "mem_read": 1,
    "mem_write": 1,
    "jump": 1,
    "jalr_sel": 1,
}


def crypto_alu_op_index(name):
    return CRYPTO_ALU_OPS.index(name)


def _build_crypto_alu(alu_op, in1, in2, rd_val):
    amount = in2[0:5].zext(32)
    results = {
        "add": in1 + in2,
        "sub": in1 - in2,
        "sll": in1.shl(amount),
        "srl": in1.lshr(amount),
        "xor": in1 ^ in2,
        "or": in1 | in2,
        "and": in1 & in2,
        "sltu": (in1 < in2).zext(32),
        "copyb": in2,
        "cmov": hdl.select(in2 != 0, in1, rd_val),
    }
    inputs = [results[name] for name in CRYPTO_ALU_OPS]
    inputs += [results["copyb"]] * (16 - len(inputs))
    return hdl.mux(alu_op, *inputs)


def _build_immediates(inst, imm_sel):
    imm_i = inst[20:32].sext(32)
    imm_s = hdl.concat(inst[25:32], inst[7:12]).sext(32)
    imm_u = hdl.concat(inst[12:32], hdl.Const(0, 12))
    imm_j = hdl.concat(
        inst[31], inst[12:20], inst[20], inst[21:31], hdl.Const(0, 1)
    ).sext(32)
    return hdl.mux(imm_sel, imm_i, imm_s, imm_u, imm_j,
                   imm_i, imm_i, imm_i, imm_i)


#: imm_sel encoding for the bespoke core (no B format: no branches!)
CRYPTO_IMM_SELECTS = {"I": 0, "S": 1, "U": 2, "J": 3}


def build_sketch():
    with hdl.Module("crypto_core") as module:
        pc = hdl.Register(32, "pc")
        fetch_pc = hdl.Register(32, "fetch_pc")
        flush = hdl.Register(1, "flush")  # reset value unconstrained
        rf = hdl.MemBlock(5, 32, "rf")
        i_mem = hdl.MemBlock(30, 32, "i_mem")
        d_mem = hdl.MemBlock(30, 32, "d_mem")

        # Stage-2 state (IF/DE boundary).
        v2 = hdl.Register(1, "v2", init=0)
        p_inst = hdl.Register(32, "p_inst")
        p_pc = hdl.Register(32, "p_pc")
        # Stage-3 state (DE/MEM boundary).
        v3 = hdl.Register(1, "v3", init=0)
        p3_wb = hdl.Register(32, "p3_wb")
        p3_rd = hdl.Register(5, "p3_rd")
        p3_reg_write = hdl.Register(1, "p3_reg_write", init=0)
        p3_mem_read = hdl.Register(1, "p3_mem_read", init=0)
        p3_mem_write = hdl.Register(1, "p3_mem_write", init=0)
        p3_store_data = hdl.Register(32, "p3_store_data")
        p3_addr = hdl.Register(32, "p3_addr")

        pcs_agree = (fetch_pc == pc).label("pcs_agree")
        instruction_valid = (~flush).label("instruction_valid")

        # ---- Stage 3: memory + write back (oldest instruction first) ------
        loaded_word = d_mem.read(p3_addr[2:32])
        wb_value = hdl.mux(p3_mem_read, p3_wb, loaded_word).label("wb_value")
        wb_live = (v3 & p3_reg_write & (p3_rd != 0)).label("wb_live")
        rf.write(p3_rd, wb_value, enable=wb_live)
        d_mem.write(p3_addr[2:32], p3_store_data,
                    enable=v3 & p3_mem_write)

        # ---- Stage 2: decode + execute --------------------------------------
        opcode, rd, funct3, rs1f, rs2f, funct7 = build_decode_unit(p_inst)
        deps = [opcode, funct3, funct7]
        holes = {
            name: hdl.Hole(width, name, deps=deps)
            for name, width in CRYPTO_CONTROL_HOLES.items()
        }
        rs1_raw = rf.read(rs1f)
        rs2_raw = rf.read(rs2f)
        rd_raw = rf.read(rd)  # third read port for cmov
        rs1_val = hdl.select(wb_live & (p3_rd == rs1f), wb_value, rs1_raw)
        rs2_val = hdl.select(wb_live & (p3_rd == rs2f), wb_value, rs2_raw)
        rd_val = hdl.select(wb_live & (p3_rd == rd), wb_value, rd_raw)

        imm = _build_immediates(p_inst, holes["imm_sel"])
        alu_in1 = hdl.select(holes["alu_src1_pc"], p_pc, rs1_val)
        alu_in2 = hdl.mux(holes["alu_imm"], rs2_val, imm)
        alu_out = _build_crypto_alu(
            holes["alu_op"], alu_in1, alu_in2, rd_val
        ).label("alu_out")

        p_pc_plus_4 = (p_pc + 4).label("p_pc_plus_4")
        jalr_target = alu_out & hdl.Const(0xFFFFFFFE, 32)
        jump_target = hdl.select(
            holes["jalr_sel"], jalr_target, (p_pc + imm)
        )
        de_redirect = (v2 & holes["jump"]).label("de_redirect")
        committed_next_pc = hdl.select(
            holes["jump"], jump_target, p_pc_plus_4
        )
        with hdl.conditional_assignment():
            with v2:
                pc.next |= committed_next_pc
        flush.next <<= de_redirect

        # Latch stage 3.
        v3.next <<= v2
        p3_wb.next <<= hdl.mux(holes["jump"], alu_out, p_pc_plus_4)
        p3_rd.next <<= rd
        p3_reg_write.next <<= holes["reg_write"]
        p3_mem_read.next <<= holes["mem_read"]
        p3_mem_write.next <<= holes["mem_write"]
        p3_store_data.next <<= rs2_val
        p3_addr.next <<= alu_out

        # ---- Stage 1: fetch ----------------------------------------------------
        instruction = i_mem.read(fetch_pc[2:32]).label("instruction")
        fetch_pc_plus_4 = fetch_pc + 4
        fetch_next = hdl.select(de_redirect, jump_target, fetch_pc_plus_4)
        fetch_pc.next <<= fetch_next
        v2.next <<= instruction_valid
        p_inst.next <<= instruction
        p_pc.next <<= fetch_pc
    return module.to_oyster()


_ALPHA_TEXT = """
pc:  {name: 'pc', type: register, [read: 1, write: 2]}
GPR: {name: 'rf', type: memory, [read: 2, write: 3]}
mem: {name: 'd_mem', type: memory, [read: 3, write: 3]}
mem: {name: 'i_mem', type: memory, [read: 1]}
with cycles: 3, [pcs_agree: 1], [instruction_valid: 1]
fields: {opcode: 'opcode', funct3: 'funct3', funct7: 'funct7', rs2f: 'rs2f'}
"""


def build_alpha():
    return parse_abstraction(_ALPHA_TEXT)
