"""The constant-time cryptography core of Section 4.2.

A bespoke three-stage core: the RISC-V ISA stripped of conditional branches
(and of everything SHA-256 does not need) plus a custom conditional-move
instruction (``cmov rd, rs1, rs2``: rd <- rs2 != 0 ? rs1 : rd).  Removing
data-dependent control flow makes execution time independent of input
values; the Section 5.2 study runs SHA-256 over inputs of different lengths
and checks the cycle count never changes.

Stages: (1) instruction fetch, (2) decode + execute (jumps resolve here,
flushing the fetch stage — the ``instruction_valid`` assume in the
abstraction function), (3) memory + write back.
"""

from repro.designs.crypto_core.spec import build_spec, CMOV_ISA
from repro.designs.crypto_core.sketch import build_sketch, build_alpha
from repro.designs.crypto_core.problem import build_problem
from repro.designs.crypto_core.reference import reference_control_values
from repro.designs.crypto_core.sha256_program import (
    sha256_program,
    sha256_reference,
)
from repro.designs.crypto_core.run import run_sha256, CoreRun

__all__ = [
    "build_spec",
    "CMOV_ISA",
    "build_sketch",
    "build_alpha",
    "build_problem",
    "reference_control_values",
    "sha256_program",
    "sha256_reference",
    "run_sha256",
    "CoreRun",
]
