"""The bespoke constant-time ISA: an RV32I subset plus CMOV.

Built by the shared RISC-V spec builder — the paper modifies the RISC-V ILA
the same way (Section 4.2: "We modify the RISC-V ISA specification to remove
conditional branch instructions and all other instructions not necessary to
execute SHA-256.  We then extend it with a custom instruction for
conditional move").
"""

from __future__ import annotations

from repro.designs.riscv.spec import build_spec as build_riscv_spec

__all__ = ["build_spec", "CMOV_ISA"]

#: the bespoke instruction set (no conditional branches)
CMOV_ISA = (
    "lui", "auipc", "jal", "jalr", "lw", "sw",
    "addi", "xori", "ori", "andi", "slli", "srli", "sltu",
    "add", "sub", "sll", "srl", "xor", "or", "and",
    "cmov",
)


def build_spec():
    return build_riscv_spec(names=list(CMOV_ISA), spec_name="cmov_isa")
