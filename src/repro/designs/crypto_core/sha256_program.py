"""A branch-free SHA-256 kernel for the bespoke constant-time ISA.

The program is fully unrolled straight-line code (the ISA has no conditional
branches): padding is computed with ``cmov``/``sltu`` arithmetic, the message
schedule and all 64 compression rounds are unrolled, and the working
variables a..h live in a rotating register window so each round needs only
two writes.  It ends in a ``jal x0, 0`` self-loop (the halt convention).

Memory map (byte addresses, word-aligned):

* ``MSG_BASE``   the message, packed big-endian into words, zero-padded;
* ``OUT_BASE``   the eight digest words (big-endian words, as in FIPS-180);
* ``W_BASE``     the 64-entry message schedule scratch area.

Inputs: ``x1`` = MSG_BASE, ``x2`` = message length in bytes (0..55 — one
block).  The host packs bytes beyond the length as zero; all
length-dependent selection happens on-core, branch-free.
"""

from __future__ import annotations

import hashlib

from repro.designs.riscv.encodings import assemble

__all__ = [
    "sha256_program",
    "sha256_reference",
    "pack_message_words",
    "MSG_BASE",
    "OUT_BASE",
    "W_BASE",
    "HALT_OFFSET",
]

#: data segment well above the (unrolled, ~4k instruction) program image
MSG_BASE = 0x8000
OUT_BASE = 0x8400
W_BASE = 0x8600

_H_INIT = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

# Register roles.
_MSG = 1      # x1: message base (input)
_LEN = 2      # x2: length in bytes (input)
_ACC = 3      # x3..x10: rotating a..h window
_WPTR = 11    # x11: W base address
_T = (12, 13, 14, 15, 16, 17)  # temporaries
_HSAVE = 18   # x18..x25: initial hash values
_C4 = 26      # x26: the constant 4
_C24 = 27     # x27: the constant 24
_OPTR = 29    # x29: output (digest) base address


class _Asm:
    def __init__(self):
        self.code = []

    def emit(self, name, **kwargs):
        self.code.append((name, kwargs))

    def li(self, rd, value):
        """Load a 32-bit immediate (1 or 2 instructions)."""
        value &= 0xFFFFFFFF
        signed = value - (1 << 32) if value & 0x80000000 else value
        if -2048 <= signed < 2048:
            self.emit("addi", rd=rd, rs1=0, imm=signed)
            return
        low = value & 0xFFF
        if low >= 0x800:
            low -= 0x1000
        high = (value - low) & 0xFFFFFFFF
        self.emit("lui", rd=rd, imm=high)
        if low:
            self.emit("addi", rd=rd, rs1=rd, imm=low)

    def ror(self, rd, rs, amount, scratch):
        """rd = rs rotated right by a constant amount (3 instructions)."""
        self.emit("srli", rd=scratch, rs1=rs, imm=amount)
        self.emit("slli", rd=rd, rs1=rs, imm=(32 - amount) % 32)
        self.emit("or", rd=rd, rs1=rd, rs2=scratch)

    def shr(self, rd, rs, amount):
        self.emit("srli", rd=rd, rs1=rs, imm=amount)


def _reg(role, round_index):
    """Register holding working-variable ``role`` (0=a..7=h) at a round."""
    return _ACC + ((role - round_index) % 8)


def sha256_program():
    """The instruction list (name, fields) of the SHA-256 kernel."""
    asm = _Asm()
    t0, t1, t2, t3, t4, t5 = _T

    # Constants and initial hash state.
    asm.li(_C4, 4)
    asm.li(_C24, 24)
    for index, value in enumerate(_H_INIT):
        asm.li(_HSAVE + index, value)
        asm.emit("addi", rd=_ACC + index, rs1=_HSAVE + index, imm=0)
    asm.li(_WPTR, W_BASE)
    asm.li(_OPTR, OUT_BASE)

    # Padding and W[0..14]: branch-free 0x80 insertion.
    for word_index in range(15):
        asm.emit("lw", rd=t0, rs1=_MSG, imm=4 * word_index)
        # delta = len - 4*word_index; in_range = delta < 4 (unsigned)
        asm.li(t1, 4 * word_index)
        asm.emit("sub", rd=t1, rs1=_LEN, rs2=t1)
        asm.emit("sltu", rd=t2, rs1=t1, rs2=_C4)
        # marker = 0x80 << (24 - 8*delta), gated by in_range
        asm.emit("slli", rd=t3, rs1=t1, imm=3)
        asm.emit("sub", rd=t3, rs1=_C24, rs2=t3)
        asm.li(t4, 0x80)
        asm.emit("sll", rd=t4, rs1=t4, rs2=t3)
        asm.li(t5, 0)
        asm.emit("cmov", rd=t5, rs1=t4, rs2=t2)
        asm.emit("or", rd=t0, rs1=t0, rs2=t5)
        asm.emit("sw", rs1=_WPTR, rs2=t0, imm=4 * word_index)
    # W[15] = bit length.
    asm.emit("slli", rd=t0, rs1=_LEN, imm=3)
    asm.emit("sw", rs1=_WPTR, rs2=t0, imm=60)

    # Message schedule W[16..63].
    for t in range(16, 64):
        asm.emit("lw", rd=t0, rs1=_WPTR, imm=4 * (t - 2))
        asm.ror(t1, t0, 17, t5)
        asm.ror(t2, t0, 19, t5)
        asm.emit("xor", rd=t1, rs1=t1, rs2=t2)
        asm.shr(t2, t0, 10)
        asm.emit("xor", rd=t1, rs1=t1, rs2=t2)  # t1 = sigma1
        asm.emit("lw", rd=t0, rs1=_WPTR, imm=4 * (t - 15))
        asm.ror(t2, t0, 7, t5)
        asm.ror(t3, t0, 18, t5)
        asm.emit("xor", rd=t2, rs1=t2, rs2=t3)
        asm.shr(t3, t0, 3)
        asm.emit("xor", rd=t2, rs1=t2, rs2=t3)  # t2 = sigma0
        asm.emit("lw", rd=t3, rs1=_WPTR, imm=4 * (t - 7))
        asm.emit("lw", rd=t4, rs1=_WPTR, imm=4 * (t - 16))
        asm.emit("add", rd=t1, rs1=t1, rs2=t3)
        asm.emit("add", rd=t1, rs1=t1, rs2=t2)
        asm.emit("add", rd=t1, rs1=t1, rs2=t4)
        asm.emit("sw", rs1=_WPTR, rs2=t1, imm=4 * t)

    # Compression rounds with a rotating register window.
    for t in range(64):
        a = _reg(0, t)
        b = _reg(1, t)
        c = _reg(2, t)
        d = _reg(3, t)
        e = _reg(4, t)
        f = _reg(5, t)
        g = _reg(6, t)
        h = _reg(7, t)
        # Sigma1(e), Ch(e, f, g), temp1 = h + Sigma1 + Ch + K[t] + W[t]
        asm.ror(t0, e, 6, t5)
        asm.ror(t1, e, 11, t5)
        asm.emit("xor", rd=t0, rs1=t0, rs2=t1)
        asm.ror(t1, e, 25, t5)
        asm.emit("xor", rd=t0, rs1=t0, rs2=t1)
        asm.emit("and", rd=t1, rs1=e, rs2=f)
        asm.emit("xori", rd=t2, rs1=e, imm=-1)
        asm.emit("and", rd=t2, rs1=t2, rs2=g)
        asm.emit("xor", rd=t1, rs1=t1, rs2=t2)
        asm.emit("add", rd=t0, rs1=t0, rs2=t1)
        asm.emit("add", rd=t0, rs1=t0, rs2=h)
        asm.li(t1, _K[t])
        asm.emit("add", rd=t0, rs1=t0, rs2=t1)
        asm.emit("lw", rd=t1, rs1=_WPTR, imm=4 * t)
        asm.emit("add", rd=t0, rs1=t0, rs2=t1)  # t0 = temp1
        # Sigma0(a), Maj(a, b, c), temp2 = Sigma0 + Maj
        asm.ror(t1, a, 2, t5)
        asm.ror(t2, a, 13, t5)
        asm.emit("xor", rd=t1, rs1=t1, rs2=t2)
        asm.ror(t2, a, 22, t5)
        asm.emit("xor", rd=t1, rs1=t1, rs2=t2)
        asm.emit("and", rd=t2, rs1=a, rs2=b)
        asm.emit("and", rd=t3, rs1=a, rs2=c)
        asm.emit("xor", rd=t2, rs1=t2, rs2=t3)
        asm.emit("and", rd=t3, rs1=b, rs2=c)
        asm.emit("xor", rd=t2, rs1=t2, rs2=t3)
        asm.emit("add", rd=t1, rs1=t1, rs2=t2)  # t1 = temp2
        # Window rotation: new e into old d's register, new a into old h's.
        asm.emit("add", rd=d, rs1=d, rs2=t0)
        asm.emit("add", rd=h, rs1=t0, rs2=t1)

    # Digest: H[i] + final working variable i (window is realigned: 64%8==0).
    for index in range(8):
        asm.emit("add", rd=_T[0], rs1=_HSAVE + index, rs2=_ACC + index)
        asm.emit("sw", rs1=_OPTR, rs2=_T[0], imm=4 * index)

    # Halt: self-loop.
    asm.emit("jal", rd=0, imm=0)
    return asm.code


def program_image():
    """The assembled instruction memory image (word index -> word)."""
    return assemble(sha256_program(), base=0)


HALT_OFFSET = None  # computed lazily; see halt_pc()


def halt_pc():
    """Byte address of the final self-loop."""
    return (len(sha256_program()) - 1) * 4


def pack_message_words(message):
    """Pack bytes big-endian into the d_mem word image at MSG_BASE."""
    words = {}
    padded = bytes(message) + b"\x00" * ((-len(message)) % 4)
    for index in range(0, len(padded), 4):
        words[(MSG_BASE + index) >> 2] = int.from_bytes(
            padded[index:index + 4], "big"
        )
    return words


def sha256_reference(message):
    """The expected digest as eight 32-bit words (via hashlib)."""
    digest = hashlib.sha256(bytes(message)).digest()
    return [int.from_bytes(digest[i:i + 4], "big") for i in range(0, 32, 4)]
