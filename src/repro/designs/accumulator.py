"""The Section 2.3 accumulator machine: FSM-style control synthesis.

The spec is the paper's three-state accumulator (RESET/GO/STOP) with the
``go`` behaviour split into its two FSM edges (enter-GO and stay-in-GO) so
each instruction pins the machine state — the form required for
per-instruction constants.  The sketch follows the paper's pseudocode::

    state := ??
    with state:
      ?? -> acc := 0
      ?? -> acc := acc + val
      ?? -> acc := acc

i.e. the next-state transition *and* the state encodings guarding each
accumulator update are all holes; synthesis infers the encodings, transition
conditions and transitions (Section 2.3's closing claim).
"""

from __future__ import annotations

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.ila import And, BvConst, Ila, Not, ZExt
from repro.synthesis import SynthesisProblem

__all__ = [
    "build_spec",
    "build_sketch",
    "build_alpha",
    "build_problem",
    "STATES",
]

#: architectural state encodings fixed by the specification
STATES = {"RESET": 0, "GO": 1, "STOP": 2}


def build_spec():
    ila = Ila("acc_ila")
    reset = ila.new_bv_input("reset", 1)
    go = ila.new_bv_input("go", 1)
    stop = ila.new_bv_input("stop", 1)
    val = ila.new_bv_input("val", 2)
    acc = ila.new_bv_state("acc", 8)
    state = ila.new_bv_state("state", 2)

    reset_c = BvConst(STATES["RESET"], 2)
    go_c = BvConst(STATES["GO"], 2)
    stop_c = BvConst(STATES["STOP"], 2)

    reset_instr = ila.new_instr("reset_instr")
    reset_instr.set_decode(And(state == stop_c, reset == 1))
    reset_instr.set_update(acc, BvConst(0, 8))
    reset_instr.set_update(state, reset_c)

    # The paper's go_instr decodes on either FSM edge into GO; per-edge
    # instructions pin the current state, which a `with state == ??` sketch
    # dispatch requires.
    go_start = ila.new_instr("go_start")
    go_start.set_decode(And(state == reset_c, go == 1))
    go_start.set_update(acc, acc + ZExt(val, 8))
    go_start.set_update(state, go_c)

    go_continue = ila.new_instr("go_continue")
    go_continue.set_decode(And(state == go_c, Not(stop == 1)))
    go_continue.set_update(acc, acc + ZExt(val, 8))
    go_continue.set_update(state, go_c)

    stop_instr = ila.new_instr("stop_instr")
    stop_instr.set_decode(And(state == go_c, stop == 1))
    stop_instr.set_update(acc, acc)
    stop_instr.set_update(state, stop_c)
    return ila.validate()


def build_sketch():
    with hdl.Module("acc_datapath") as module:
        hdl.Input(1, "reset")
        hdl.Input(1, "go")
        hdl.Input(1, "stop")
        val = hdl.Input(2, "val")
        acc = hdl.Register(8, "acc")
        state = hdl.Register(2, "state")
        out = hdl.Output(8, "out")

        # state := ??   (the transition logic is a hole)
        state_next = hdl.Hole(2, "state_next",
                              deps=["state", "reset", "go", "stop"])
        state.next <<= state_next

        # with state: ?? -> ... (the dispatch encodings are holes too)
        s_clear = hdl.Hole(2, "s_clear")
        s_accumulate = hdl.Hole(2, "s_accumulate")
        s_hold = hdl.Hole(2, "s_hold")
        with hdl.conditional_assignment():
            with state == s_clear:
                acc.next |= 0
            with state == s_accumulate:
                acc.next |= acc + val.zext(8)
            with state == s_hold:
                acc.next |= acc
        out <<= acc
    return module.to_oyster()


_ALPHA_TEXT = """
reset: {name: 'reset', type: input, [read: 1]}
go:    {name: 'go',    type: input, [read: 1]}
stop:  {name: 'stop',  type: input, [read: 1]}
val:   {name: 'val',   type: input, [read: 1]}
acc:   {name: 'acc',   type: register, [read: 1, write: 1]}
state: {name: 'state', type: register, [read: 1, write: 1]}
with cycles: 1
"""


def build_alpha():
    return parse_abstraction(_ALPHA_TEXT)


def build_problem():
    return SynthesisProblem(
        sketch=build_sketch(),
        spec=build_spec(),
        alpha=build_alpha(),
        name="accumulator",
    )
