"""The AES-128 hardware accelerator of Section 4.3.

FSM-style control: the ILA models the encryption as three "instructions"
(first / intermediate / final round, decoded from the ``round`` counter);
the sketch leaves the FSM state encodings and the transition logic as holes.
The S-box and round-constant tables are ``MemConst`` read-only memories in
the spec and constant-backed memories in the datapath (Section 5.1's
"Racket immutable vectors").
"""

from repro.designs.aes.golden import aes128_encrypt_block, expand_key
from repro.designs.aes.tables import SBOX, RCON
from repro.designs.aes.spec import build_spec
from repro.designs.aes.sketch import build_sketch, build_alpha
from repro.designs.aes.problem import build_problem

__all__ = [
    "aes128_encrypt_block",
    "expand_key",
    "SBOX",
    "RCON",
    "build_spec",
    "build_sketch",
    "build_alpha",
    "build_problem",
]
