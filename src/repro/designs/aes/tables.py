"""AES lookup tables: the S-box and the round-constant table."""

from __future__ import annotations

__all__ = ["SBOX", "RCON", "INV_SBOX"]


def _build_sbox():
    """Generate the AES S-box from GF(2^8) inversion + affine transform."""
    # Multiplicative inverse via exponentiation chains is overkill; build
    # log/antilog tables over the AES field generator 3.
    log = [0] * 256
    antilog = [0] * 256
    value = 1
    for exponent in range(255):
        antilog[exponent] = value
        log[value] = exponent
        # multiply by the generator 0x03 = x + 1
        value ^= (value << 1) ^ (0x11B if value & 0x80 else 0)
        value &= 0xFF
    sbox = [0] * 256
    for byte in range(256):
        if byte == 0:
            inverse = 0
        else:
            inverse = antilog[(255 - log[byte]) % 255]
        transformed = inverse
        for shift in (1, 2, 3, 4):
            transformed ^= ((inverse << shift) | (inverse >> (8 - shift))) & 0xFF
        sbox[byte] = transformed ^ 0x63
    return tuple(sbox)


SBOX = _build_sbox()

INV_SBOX = tuple(SBOX.index(i) for i in range(256))

#: round constants rcon[1..10] (index 0 unused)
RCON = (0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)
