"""AES round transforms, written once over an adapter.

The same transform code builds both the ILA specification expressions and
the datapath hardware: an adapter supplies the primitive operations (xor,
extract, concat, bit-mux, S-box lookup).  Sharing one code path guarantees
the specification and the sketch produce structurally identical symbolic
terms, which lets the synthesizer's verification queries fold away instead
of bit-blasting 20 S-box selector trees per round.

Byte convention matches ``golden.py``: byte 0 is bits [127:120].
"""

from __future__ import annotations

from repro.ila import ast as ila_ast
from repro.ila import BvConst, Concat, Extract, Ite, Load

__all__ = [
    "IlaAdapter",
    "HdlAdapter",
    "sub_bytes_t",
    "shift_rows_t",
    "mix_columns_t",
    "next_key_t",
    "round_outputs",
]


class IlaAdapter:
    """Builds ILA expressions; S-box/rcon are MemConst loads."""

    def __init__(self, sbox_mem, rcon_mem):
        self.sbox_mem = sbox_mem
        self.rcon_mem = rcon_mem

    def xor(self, a, b):
        return a ^ b

    def extract(self, value, high, low):
        return Extract(value, high, low)

    def concat(self, *parts):
        result = parts[0]
        for part in parts[1:]:
            result = Concat(result, part)
        return result

    def mux_bit(self, bit, then, els):
        return Ite(bit == BvConst(1, 1), then, els)

    def const(self, value, width):
        return BvConst(value, width)

    def sbox(self, byte):
        return Load(self.sbox_mem, byte)

    def rcon(self, round_value):
        return Load(self.rcon_mem, round_value)


class HdlAdapter:
    """Builds hardware through the mini-PyRTL layer."""

    def __init__(self, sbox_mem, rcon_mem):
        self.sbox_mem = sbox_mem
        self.rcon_mem = rcon_mem

    def xor(self, a, b):
        return a ^ b

    def extract(self, value, high, low):
        return value[low:high + 1]

    def concat(self, *parts):
        from repro import hdl

        return hdl.concat(*parts)

    def mux_bit(self, bit, then, els):
        from repro import hdl

        return hdl.select(bit, then, els)

    def const(self, value, width):
        from repro import hdl

        return hdl.Const(value, width)

    def sbox(self, byte):
        return self.sbox_mem.read(byte)

    def rcon(self, round_value):
        return self.rcon_mem.read(round_value)


def _byte(ops, state, index):
    return ops.extract(state, 127 - 8 * index, 120 - 8 * index)


def _from_bytes(ops, byte_list):
    return ops.concat(*byte_list)


def sub_bytes_t(ops, state):
    return _from_bytes(ops, [ops.sbox(_byte(ops, state, i)) for i in range(16)])


def shift_rows_t(ops, state):
    out = []
    for column in range(4):
        for row in range(4):
            out.append(_byte(ops, state, 4 * ((column + row) % 4) + row))
    return _from_bytes(ops, out)


def _xtime(ops, byte):
    shifted = ops.concat(ops.extract(byte, 6, 0), ops.const(0, 1))
    top = ops.extract(byte, 7, 7)
    return ops.mux_bit(top, ops.xor(shifted, ops.const(0x1B, 8)), shifted)


def _mul3(ops, byte):
    return ops.xor(_xtime(ops, byte), byte)


def mix_columns_t(ops, state):
    matrix = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
    factors = {1: lambda b: b, 2: lambda b: _xtime(ops, b),
               3: lambda b: _mul3(ops, b)}
    out = []
    for column in range(4):
        col = [_byte(ops, state, 4 * column + row) for row in range(4)]
        for row in range(4):
            acc = None
            for k in range(4):
                term = factors[matrix[row][k]](col[k])
                acc = term if acc is None else ops.xor(acc, term)
            out.append(acc)
    return _from_bytes(ops, out)


def _word(ops, key, index):
    return ops.extract(key, 127 - 32 * index, 96 - 32 * index)


def next_key_t(ops, round_key, round_value):
    """One key-schedule step; ``round_value`` indexes the rcon table."""
    w3 = _word(ops, round_key, 3)
    rotated = ops.concat(ops.extract(w3, 23, 0), ops.extract(w3, 31, 24))
    substituted = ops.concat(*[
        ops.sbox(ops.extract(rotated, 31 - 8 * i, 24 - 8 * i))
        for i in range(4)
    ])
    rcon_word = ops.concat(ops.rcon(round_value), ops.const(0, 24))
    temp = ops.xor(substituted, rcon_word)
    words = []
    previous = temp
    for i in range(4):
        previous = ops.xor(_word(ops, round_key, i), previous)
        words.append(previous)
    return ops.concat(*words)


def round_outputs(ops, ciphertext, round_key, round_value):
    """(mid-round ct', final-round ct', next round key)."""
    next_key = next_key_t(ops, round_key, round_value)
    shifted = shift_rows_t(ops, sub_bytes_t(ops, ciphertext))
    mid = ops.xor(mix_columns_t(ops, shifted), next_key)
    final = ops.xor(shifted, next_key)
    return mid, final, next_key
