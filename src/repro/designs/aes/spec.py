"""The ILA specification for the AES-128 accelerator.

Three "instructions" model the FSM states, decoded from the ``round``
counter (Section 4.3's listing): FirstRound (round == 0) whitens the
plaintext, IntermediateRound (0 < round < 10) applies a full round, and
FinalRound (round == 10) applies the last round without MixColumns.  The
S-box and round constants are ``MemConst`` read-only memories.
"""

from __future__ import annotations

from repro.designs.aes.tables import RCON, SBOX
from repro.designs.aes.transforms import IlaAdapter, round_outputs
from repro.ila import BvConst, Ila

__all__ = ["build_spec"]


def build_spec():
    ila = Ila("aes128")
    key_in = ila.new_bv_input("key_in", 128)
    plaintext = ila.new_bv_input("plaintext", 128)
    round_state = ila.new_bv_state("round", 4)
    round_key = ila.new_bv_state("round_key", 128)
    ciphertext = ila.new_bv_state("ciphertext", 128)
    sbox = ila.new_mem_const("sbox", 8, 8, list(SBOX))
    rcon = ila.new_mem_const("rcon", 4, 8, list(RCON))

    ops = IlaAdapter(sbox, rcon)
    mid_ct, final_ct, next_key = round_outputs(
        ops, ciphertext, round_key, round_state
    )
    one = BvConst(1, 4)

    first = ila.new_instr("FirstRound")
    first.set_decode(round_state == BvConst(0, 4))
    first.set_update(ciphertext, plaintext ^ key_in)
    first.set_update(round_key, key_in)
    first.set_update(round_state, round_state + one)

    intermediate = ila.new_instr("IntermediateRound")
    intermediate.set_decode(
        (round_state > BvConst(0, 4)) & (round_state < BvConst(10, 4))
    )
    intermediate.set_update(ciphertext, mid_ct)
    intermediate.set_update(round_key, next_key)
    intermediate.set_update(round_state, round_state + one)

    final = ila.new_instr("FinalRound")
    final.set_decode(round_state == BvConst(10, 4))
    final.set_update(ciphertext, final_ct)
    final.set_update(round_key, next_key)
    final.set_update(round_state, round_state + one)

    return ila.validate()
