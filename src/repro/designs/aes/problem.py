"""Problem assembly for the AES accelerator."""

from __future__ import annotations

from repro.designs.aes.sketch import build_alpha, build_sketch, const_memories
from repro.designs.aes.spec import build_spec
from repro.synthesis import SynthesisProblem

__all__ = ["build_problem"]


def build_problem():
    return SynthesisProblem(
        sketch=build_sketch(),
        spec=build_spec(),
        alpha=build_alpha(),
        const_mems=const_memories(),
        name="aes_accelerator",
    )
