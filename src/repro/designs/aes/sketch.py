"""The AES accelerator datapath sketch with FSM-style control holes.

Following Section 4.3: the datapath computes one round per cycle; the FSM
state wire and the per-branch state encodings are holes::

    state <<= ??
    with conditional_assignment:
        with state == ??:   # first round ...
        with state == ??:   # intermediate rounds ...
        with state == ??:   # final round ...
"""

from __future__ import annotations

from repro import hdl
from repro.abstraction import parse_abstraction
from repro.designs.aes.tables import RCON, SBOX
from repro.designs.aes.transforms import HdlAdapter, round_outputs
from repro.oyster.memory import ConstMemory

__all__ = ["build_sketch", "build_alpha", "const_memories",
           "SBOX_INIT", "RCON_INIT"]

SBOX_INIT = {i: SBOX[i] for i in range(256)}
RCON_INIT = {i: RCON[i] for i in range(len(RCON))}


def build_sketch():
    with hdl.Module("aes_accelerator") as module:
        key_in = hdl.Input(128, "key_in")
        plaintext = hdl.Input(128, "plaintext")
        round_reg = hdl.Register(4, "round")
        round_key = hdl.Register(128, "round_key")
        ciphertext = hdl.Register(128, "ciphertext")
        done = hdl.Output(128, "ct_out")
        sbox = hdl.MemBlock(8, 8, "sbox")
        rcon = hdl.MemBlock(4, 8, "rcon")

        ops = HdlAdapter(sbox, rcon)
        mid_ct, final_ct, next_key = round_outputs(
            ops, ciphertext, round_key, round_reg
        )

        # FSM control: the state and its encodings are synthesized.
        state = hdl.Hole(2, "state", deps=[round_reg])
        s_first = hdl.Hole(2, "s_first")
        s_mid = hdl.Hole(2, "s_mid")
        s_final = hdl.Hole(2, "s_final")

        with hdl.conditional_assignment():
            with state == s_first:
                ciphertext.next |= plaintext ^ key_in
                round_key.next |= key_in
                round_reg.next |= round_reg + 1
            with state == s_mid:
                ciphertext.next |= mid_ct
                round_key.next |= next_key
                round_reg.next |= round_reg + 1
            with state == s_final:
                ciphertext.next |= final_ct
                round_key.next |= next_key
                round_reg.next |= round_reg + 1
        done <<= ciphertext
    return module.to_oyster()


def const_memories():
    """Constant backings for the datapath lookup tables."""
    return {
        "sbox": ConstMemory("sbox", 8, 8, SBOX_INIT),
        "rcon": ConstMemory("rcon", 4, 8, RCON_INIT),
    }


_ALPHA_TEXT = """
key_in:     {name: 'key_in', type: input, [read: 1]}
plaintext:  {name: 'plaintext', type: input, [read: 1]}
round:      {name: 'round', type: register, [read: 1, write: 1]}
round_key:  {name: 'round_key', type: register, [read: 1, write: 1]}
ciphertext: {name: 'ciphertext', type: register, [read: 1, write: 1]}
with cycles: 1
"""


def build_alpha():
    return parse_abstraction(_ALPHA_TEXT)
