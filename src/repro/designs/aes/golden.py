"""A pure-Python AES-128 golden model (encryption only).

State convention: the 128-bit state is treated big-endian byte-wise — byte 0
(the first plaintext byte) occupies bits [127:120].  Column-major state
matrix as in FIPS-197.
"""

from __future__ import annotations

from repro.designs.aes.tables import RCON, SBOX

__all__ = [
    "aes128_encrypt_block",
    "expand_key",
    "bytes_to_int",
    "int_to_bytes",
    "sub_bytes",
    "shift_rows",
    "mix_columns",
    "next_round_key",
]


def bytes_to_int(data):
    return int.from_bytes(bytes(data), "big")


def int_to_bytes(value, length=16):
    return value.to_bytes(length, "big")


def _bytes(state):
    return list(int_to_bytes(state))


def sub_bytes(state):
    return bytes_to_int(SBOX[b] for b in _bytes(state))


def shift_rows(state):
    """Row r rotates left by r; byte index 4*c + r (column-major)."""
    b = _bytes(state)
    out = [0] * 16
    for column in range(4):
        for row in range(4):
            out[4 * column + row] = b[4 * ((column + row) % 4) + row]
    return bytes_to_int(out)


def _xtime(byte):
    byte <<= 1
    if byte & 0x100:
        byte ^= 0x11B
    return byte & 0xFF


def _mul(byte, factor):
    if factor == 1:
        return byte
    if factor == 2:
        return _xtime(byte)
    if factor == 3:
        return _xtime(byte) ^ byte
    raise ValueError(factor)


def mix_columns(state):
    b = _bytes(state)
    out = [0] * 16
    matrix = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
    for column in range(4):
        col = b[4 * column:4 * column + 4]
        for row in range(4):
            out[4 * column + row] = (
                _mul(col[0], matrix[row][0]) ^ _mul(col[1], matrix[row][1])
                ^ _mul(col[2], matrix[row][2]) ^ _mul(col[3], matrix[row][3])
            )
    return bytes_to_int(out)


def next_round_key(round_key, round_index):
    """One 128-bit key-schedule step (producing the key for round_index)."""
    words = [
        (round_key >> (96 - 32 * i)) & 0xFFFFFFFF for i in range(4)
    ]
    rotated = ((words[3] << 8) | (words[3] >> 24)) & 0xFFFFFFFF
    substituted = 0
    for shift in (24, 16, 8, 0):
        substituted |= SBOX[(rotated >> shift) & 0xFF] << shift
    temp = substituted ^ (RCON[round_index] << 24)
    out = []
    previous = temp
    for word in words:
        previous = word ^ previous
        out.append(previous)
    return bytes_to_int(
        b"".join(w.to_bytes(4, "big") for w in out)
    )


def expand_key(key):
    """All 11 round keys (index 0 is the cipher key)."""
    keys = [key]
    for round_index in range(1, 11):
        keys.append(next_round_key(keys[-1], round_index))
    return keys


def aes128_encrypt_block(plaintext, key):
    """Encrypt one 128-bit block; ints in, int out."""
    keys = expand_key(key)
    state = plaintext ^ keys[0]
    for round_index in range(1, 10):
        state = mix_columns(shift_rows(sub_bytes(state))) ^ keys[round_index]
    return shift_rows(sub_bytes(state)) ^ keys[10]
