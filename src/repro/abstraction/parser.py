"""Parser for the textual abstraction-function format of Section 3.2.

Accepts exactly the paper's concrete syntax, e.g.::

    pc: {name: 'pc', type: register, [read: 1, write: 2]}
    GPR: {name: 'rf', type: memory, [read: 2, write: 3]}
    mem: {name: 'i_mem', type: memory, [read: 1]}
    mem: {name: 'd_mem', type: memory, [read: 3, write: 3]}
    with cycles: 3, [instruction_valid: 1]

plus an optional ``fields`` line binding decode-field names to datapath
wires::

    fields: {opcode: 'opcode', funct3: 'funct3', funct7: 'funct7'}
"""

from __future__ import annotations

import re

from repro.abstraction.model import (
    AbstractionFunction,
    AbstractionError,
    Effect,
    Mapping,
)

__all__ = ["parse_abstraction"]

_ENTRY_RE = re.compile(
    r"""^(?P<spec>[\w.]+)\s*:\s*\{
        \s*name\s*:\s*'(?P<dp>[\w.]+)'\s*,
        \s*type\s*:\s*(?P<type>\w+)\s*,
        \s*\[(?P<effects>[^\]]*)\]\s*
        \}$""",
    re.VERBOSE,
)

_EFFECT_RE = re.compile(r"^(read|write)\s*:\s*(\d+)$")

_WITH_RE = re.compile(
    r"^with\s+cycles\s*:\s*(?P<cycles>\d+)\s*(?:,\s*(?P<assumes>.*))?$"
)

_ASSUME_RE = re.compile(r"\[\s*([\w.]+)\s*:\s*(\d+)\s*\]")

_FIELDS_RE = re.compile(r"^fields\s*:\s*\{(?P<body>[^}]*)\}$")

_FIELD_RE = re.compile(r"^([\w.]+)\s*:\s*'([\w.]+)'$")


def parse_abstraction(text):
    """Parse the textual abstraction-function format; returns the model."""
    mappings = []
    cycles = None
    assumes = []
    field_bindings = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        entry = _ENTRY_RE.match(line)
        if entry:
            effects = []
            for chunk in entry.group("effects").split(","):
                chunk = chunk.strip()
                if not chunk:
                    continue
                effect = _EFFECT_RE.match(chunk)
                if effect is None:
                    raise AbstractionError(
                        f"line {line_number}: bad effect {chunk!r}"
                    )
                effects.append(Effect(effect.group(1), int(effect.group(2))))
            mappings.append(
                Mapping(entry.group("spec"), entry.group("dp"),
                        entry.group("type"), effects)
            )
            continue
        with_clause = _WITH_RE.match(line)
        if with_clause:
            if cycles is not None:
                raise AbstractionError(
                    f"line {line_number}: duplicate 'with cycles'"
                )
            cycles = int(with_clause.group("cycles"))
            rest = with_clause.group("assumes") or ""
            for signal, time in _ASSUME_RE.findall(rest):
                assumes.append((signal, int(time)))
            continue
        fields = _FIELDS_RE.match(line)
        if fields:
            for chunk in fields.group("body").split(","):
                chunk = chunk.strip()
                if not chunk:
                    continue
                binding = _FIELD_RE.match(chunk)
                if binding is None:
                    raise AbstractionError(
                        f"line {line_number}: bad field binding {chunk!r}"
                    )
                field_bindings[binding.group(1)] = binding.group(2)
            continue
        raise AbstractionError(
            f"line {line_number}: cannot parse {line!r}"
        )
    if cycles is None:
        raise AbstractionError("missing 'with cycles: <n>' clause")
    return AbstractionFunction(mappings, cycles, assumes, field_bindings)
