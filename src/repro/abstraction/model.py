"""The abstraction function data model.

Follows the grammar of Section 3.2::

    α ::= (SpecID: {name: DatapathID, type: type, [effect+]})+
          with cycles: TimeStep, assume*
    type ::= input | output | register | memory
    effect ::= read: TimeStep | write: TimeStep
    assume ::= [DatapathID: TimeStep]+

Extensions used by the toolchain:

* a spec memory may map to several datapath memories (the paper's
  ``i_mem``/``d_mem`` example); the entry whose effects are read-only serves
  *fetch* loads, the read-write entry serves data loads/stores;
* ``field_bindings`` binds spec decode-field names to datapath wire names
  for code generation (defaults to the same name);
* ``decode_step`` is the timestep at which decode-field wires are sampled
  when validating/rendering preconditions (default 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AbstractionFunction", "Mapping", "Effect", "AbstractionError"]

_TYPES = ("input", "output", "register", "memory")


class AbstractionError(Exception):
    """Raised for ill-formed abstraction functions."""


@dataclass(frozen=True)
class Effect:
    kind: str  # "read" or "write"
    time: int

    def __post_init__(self):
        if self.kind not in ("read", "write"):
            raise AbstractionError(f"unknown effect kind {self.kind!r}")
        if self.time < 1:
            raise AbstractionError(
                f"effect timestep must be >= 1, got {self.time}"
            )


@dataclass(frozen=True)
class Mapping:
    """One entry: spec state element -> datapath component with timing."""

    spec_name: str
    dp_name: str
    dp_type: str
    effects: tuple

    def __post_init__(self):
        if self.dp_type not in _TYPES:
            raise AbstractionError(f"unknown datapath type {self.dp_type!r}")
        object.__setattr__(self, "effects", tuple(self.effects))
        if not self.effects:
            raise AbstractionError(
                f"mapping for {self.spec_name!r} has no effects"
            )

    @property
    def read_time(self):
        for effect in self.effects:
            if effect.kind == "read":
                return effect.time
        return None

    @property
    def write_time(self):
        for effect in self.effects:
            if effect.kind == "write":
                return effect.time
        return None

    @property
    def is_read_only(self):
        return self.write_time is None


class AbstractionFunction:
    """The complete abstraction function for one (spec, sketch) pair."""

    def __init__(self, mappings, cycles, assumes=(), field_bindings=None,
                 decode_step=1):
        self.mappings = tuple(mappings)
        if cycles < 1:
            raise AbstractionError(f"cycles must be >= 1, got {cycles}")
        self.cycles = cycles
        self.assumes = tuple(assumes)  # (datapath signal name, timestep)
        self.field_bindings = dict(field_bindings or {})
        self.decode_step = decode_step
        self._by_spec = {}
        for mapping in self.mappings:
            self._by_spec.setdefault(mapping.spec_name, []).append(mapping)
            for effect in mapping.effects:
                if effect.time > cycles:
                    raise AbstractionError(
                        f"{mapping.spec_name!r} has effect at time "
                        f"{effect.time} beyond cycles={cycles}"
                    )
        for signal, time in self.assumes:
            if not 1 <= time <= cycles:
                raise AbstractionError(
                    f"assume [{signal}: {time}] outside 1..{cycles}"
                )

    def entries_for(self, spec_name):
        entries = self._by_spec.get(spec_name)
        if not entries:
            raise AbstractionError(
                f"no abstraction entry for spec element {spec_name!r}"
            )
        return entries

    def has_entry(self, spec_name):
        return spec_name in self._by_spec

    def entry(self, spec_name, role="data"):
        """The entry serving ``role`` ("data" or "fetch") for a spec element.

        With a single entry it serves both roles.  With several, the
        read-only entry serves fetch and the writable entry serves data.
        """
        entries = self.entries_for(spec_name)
        if len(entries) == 1:
            return entries[0]
        read_only = [m for m in entries if m.is_read_only]
        writable = [m for m in entries if not m.is_read_only]
        if role == "fetch":
            if not read_only:
                raise AbstractionError(
                    f"{spec_name!r} has no read-only entry for fetch"
                )
            return read_only[0]
        if not writable:
            raise AbstractionError(
                f"{spec_name!r} has no writable entry for data access"
            )
        return writable[0]

    def binding(self, field_name):
        """Datapath wire bound to a decode field (defaults to same name)."""
        return self.field_bindings.get(field_name, field_name)

    def __repr__(self):
        return (
            f"<AbstractionFunction {len(self.mappings)} entries, "
            f"cycles={self.cycles}>"
        )
