"""Abstraction functions: the lightweight microarchitectural model (§3.2).

An abstraction function maps each architectural state element of the ILA
specification to a datapath component, annotated with read/write timesteps,
plus the number of cycles to evaluate and optional ``assume`` signals.
"""

from repro.abstraction.model import (
    AbstractionFunction,
    Mapping,
    Effect,
    AbstractionError,
)
from repro.abstraction.parser import parse_abstraction

__all__ = [
    "AbstractionFunction",
    "Mapping",
    "Effect",
    "AbstractionError",
    "parse_abstraction",
]
