"""The Section 5.2 constant-time study.

Compiles (a branch-free) SHA-256 to the bespoke ISA, runs it on the
synthesized-control core and on the hand-written-reference core for inputs
of varying length, and reports cycle counts and digest correctness.  The
paper's claims: cycle count is independent of input length, and the
generated-control core matches the reference cycle-for-cycle and
result-for-result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.crypto_core import (
    build_problem,
    reference_control_values,
    run_sha256,
    sha256_reference,
)
from repro.synthesis import synthesize
from repro.synthesis.engine import splice_control
from repro.synthesis.result import InstructionSolution
from repro.synthesis.union import control_union

__all__ = ["run_constant_time", "ConstantTimeRow", "build_cores"]


@dataclass
class ConstantTimeRow:
    length: int
    generated_cycles: int
    reference_cycles: int
    digest_ok: bool
    reference_digest_ok: bool


def build_cores(timeout=1800):
    """(reference-control design, synthesized-control design)."""
    problem = build_problem()
    solutions = [
        InstructionSolution(
            instr.name, reference_control_values(instr.name), 0, 0.0
        )
        for instr in problem.spec.instructions
    ]
    _, stmts = control_union(problem, solutions)
    reference = splice_control(problem.sketch, stmts)
    generated = synthesize(problem, timeout=timeout).completed_design
    return reference, generated


def _message(length):
    return bytes((37 * i + 11) & 0xFF for i in range(length))


def run_constant_time(lengths=tuple(range(4, 33)), cores=None,
                      timeout=1800, progress=None):
    """Run the study over ``lengths`` (the paper sweeps 4..32)."""
    if cores is None:
        cores = build_cores(timeout=timeout)
    reference, generated = cores
    rows = []
    for length in lengths:
        message = _message(length)
        expected = sha256_reference(message)
        generated_run = run_sha256(generated, message)
        reference_run = run_sha256(reference, message)
        row = ConstantTimeRow(
            length=length,
            generated_cycles=generated_run.cycles,
            reference_cycles=reference_run.cycles,
            digest_ok=generated_run.digest_words == expected,
            reference_digest_ok=reference_run.digest_words == expected,
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows
