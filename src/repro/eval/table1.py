"""Table 1: control logic synthesis times over all case studies.

Rows (matching the paper):

===================  ==========================  =====================
AES Accelerator       FSM control                 per-instruction
AES Accelerator †     FSM control                 monolithic
Single-Cycle Core     RV32I / +Zbkb / +Zbkc       per-instruction
Single-Cycle Core †   RV32I                       monolithic (times out)
Two-Stage Core        RV32I / +Zbkb / +Zbkc       per-instruction
Crypto Core           CMOV ISA                    per-instruction
===================  ==========================  =====================

``quick=True`` (the default for the pytest benchmarks) restricts the RISC-V
rows to a representative instruction subset so a full Table 1 pass stays
inside a CI-scale budget; ``quick=False`` reproduces the full paper rows.
The monolithic RV32I row is bounded by ``monolithic_timeout`` and is
*expected* to time out, reproducing the paper's Timeout entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs import trace as _obs
from repro.oyster.printer import design_loc
from repro.smt import counters as _counters
from repro.smt.backends import SolverConfig, resolve_backend_name
from repro.synthesis import SynthesisTimeout, resolve_pipeline, synthesize
from repro.synthesis.result import PartialSynthesisResult, SynthesisError

__all__ = ["run_table1", "TABLE1_CONFIGS", "Table1Row", "build_config"]

_QUICK_SUBSET = [
    "lui", "auipc", "jal", "jalr", "beq", "bltu", "lw", "lb", "sw", "sh",
    "addi", "srai", "add", "sltu", "and",
]
_QUICK_ZBKB = _QUICK_SUBSET + ["rol", "rori", "andn", "pack", "rev8", "zip"]
_QUICK_ZBKC = _QUICK_ZBKB + ["clmul", "clmulh"]

_QUICK_CRYPTO = ["lui", "jal", "jalr", "lw", "sw", "addi", "slli", "sltu",
                 "add", "xor", "cmov"]

#: row id -> (description fields, problem factory kwargs)
TABLE1_CONFIGS = (
    ("aes", "AES Accelerator", "-", "per_instruction"),
    ("aes_mono", "AES Accelerator †", "-", "monolithic"),
    ("sc_rv32i", "Single-Cycle Core", "RV32I", "per_instruction"),
    ("sc_zbkb", "Single-Cycle Core", "RV32I + Zbkb", "per_instruction"),
    ("sc_zbkc", "Single-Cycle Core", "RV32I + Zbkc", "per_instruction"),
    ("sc_rv32i_mono", "Single-Cycle Core †", "RV32I", "monolithic"),
    ("ts_rv32i", "Two-Stage Core", "RV32I", "per_instruction"),
    ("ts_zbkb", "Two-Stage Core", "RV32I + Zbkb", "per_instruction"),
    ("ts_zbkc", "Two-Stage Core", "RV32I + Zbkc", "per_instruction"),
    ("crypto", "Crypto Core", "CMOV ISA", "per_instruction"),
)


@dataclass
class Table1Row:
    row_id: str
    design: str
    variant: str
    mode: str
    sketch_size: int
    instructions: int
    time_seconds: float
    status: str  # "ok" or "timeout"
    reason: str = ""             # machine-readable stop reason on timeout
    completed_instructions: int = -1  # solved before the budget hit (-1: all)
    resumed_instructions: int = 0  # reused verbatim from a resume handle
    # Which decision procedure answered the row's solver queries — makes
    # every published number attributable to a backend.
    backend: str = ""
    # Encode accounting (deltas of repro.smt.counters across the run).
    pipeline: str = ""
    iterations: int = 0
    solver_instances: int = 0
    aig_nodes: int = 0
    tseitin_clauses: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0


def build_config(row_id, quick=True):
    """Build the synthesis problem for one Table 1 row."""
    from repro.designs import aes
    from repro.designs import crypto_core
    from repro.designs import riscv

    def riscv_problem(variant, microarch):
        subset = None
        if quick:
            subset = {
                "RV32I": _QUICK_SUBSET,
                "RV32I+Zbkb": _QUICK_ZBKB,
                "RV32I+Zbkc": _QUICK_ZBKC,
            }[variant]
        return riscv.build_problem(variant, microarch, instructions=subset)

    factories = {
        "aes": lambda: aes.build_problem(),
        "aes_mono": lambda: aes.build_problem(),
        "sc_rv32i": lambda: riscv_problem("RV32I", "single_cycle"),
        "sc_zbkb": lambda: riscv_problem("RV32I+Zbkb", "single_cycle"),
        "sc_zbkc": lambda: riscv_problem("RV32I+Zbkc", "single_cycle"),
        "sc_rv32i_mono": lambda: riscv_problem("RV32I", "single_cycle"),
        "ts_rv32i": lambda: riscv_problem("RV32I", "two_stage"),
        "ts_zbkb": lambda: riscv_problem("RV32I+Zbkb", "two_stage"),
        "ts_zbkc": lambda: riscv_problem("RV32I+Zbkc", "two_stage"),
        "crypto": lambda: crypto_core.build_problem(
            instructions=_QUICK_CRYPTO if quick else None
        ),
    }
    return factories[row_id]()


def _applicable_resume(resume_from, problem, mode):
    """The resume handle, if it matches this row's problem and mode."""
    if resume_from is None:
        return None
    if isinstance(resume_from, dict):
        resume_from = PartialSynthesisResult.from_dict(resume_from)
    if resume_from.problem_name != problem.name:
        return None
    if resume_from.mode != mode:
        return None
    return resume_from


def run_row(row_id, quick=True, timeout=1800, monolithic_timeout=120,
            resume_from=None, pipeline=None, backend=None):
    """Run one Table 1 row; returns a ``Table1Row``.

    ``resume_from`` is a :class:`PartialSynthesisResult` (or its
    ``to_dict`` form) from an interrupted earlier run; when it matches
    this row's problem and mode, the already-solved instructions are
    reused verbatim and counted in ``resumed_instructions``.

    ``pipeline`` selects ``"fresh"``/``"incremental"`` (``None`` takes
    the engine default); ``backend`` selects the solver backend (``None``
    takes the process default).  The row records which of each actually
    ran plus the encode-counter deltas, so BENCH_table1.json can track
    the perf trajectory in deterministic units — and every number is
    attributable to the decision procedure that produced it.
    """
    row_config = next(c for c in TABLE1_CONFIGS if c[0] == row_id)
    _, design_name, variant, mode = row_config
    problem = build_config(row_id, quick=quick)
    resume = _applicable_resume(resume_from, problem, mode)
    budget = monolithic_timeout if mode == "monolithic" else timeout
    solver_config = SolverConfig(backend=backend, pipeline=pipeline)
    started = time.monotonic()
    status = "ok"
    reason = ""
    completed = -1
    iterations = 0
    encode_before = _counters.snapshot()
    with _obs.span("table1.row", row=row_id, mode=mode, quick=quick,
                   backend=solver_config.backend_name):
        try:
            result = synthesize(problem, mode=mode, timeout=budget,
                                resume_from=resume, config=solver_config)
            elapsed = result.elapsed
            if "cegis" in result.stats:
                iterations = result.stats["cegis"]["iterations"]
            else:
                iterations = sum(
                    s.iterations for s in result.per_instruction
                )
        except SynthesisTimeout as exc:
            # An honest Timeout row: record *why* the budget tripped and
            # how much per-instruction work finished before it did.
            elapsed = time.monotonic() - started
            status = "timeout"
            reason = exc.reason
            if exc.partial is not None:
                completed = exc.partial.completed_count
                iterations = sum(
                    s.iterations for s in exc.partial.completed
                )
    encode = _counters.delta_since(encode_before)
    return Table1Row(
        row_id=row_id,
        design=design_name,
        variant=variant,
        mode=mode,
        sketch_size=design_loc(problem.sketch),
        instructions=len(problem.spec.instructions),
        time_seconds=elapsed,
        status=status,
        reason=reason,
        completed_instructions=completed,
        resumed_instructions=resume.completed_count if resume else 0,
        backend=resolve_backend_name(backend),
        pipeline=resolve_pipeline(pipeline),
        iterations=iterations,
        solver_instances=encode["solver_instances"],
        aig_nodes=encode["aig_nodes"],
        tseitin_clauses=encode["tseitin_clauses"],
        trace_cache_hits=encode["trace_cache_hits"],
        trace_cache_misses=encode["trace_cache_misses"],
    )


def run_table1(row_ids=None, quick=True, timeout=1800,
               monolithic_timeout=120, progress=None, resume_from=None,
               backend=None):
    """Run Table 1 (all rows by default); returns the row list.

    ``resume_from`` is matched against each row (by problem name and
    mode), so an interrupted full run's handle restarts only the work
    that was actually lost.  ``backend`` selects the solver backend for
    every row (``None``: the process default).
    """
    chosen = row_ids or [config[0] for config in TABLE1_CONFIGS]
    rows = []
    for row_id in chosen:
        row = run_row(row_id, quick=quick, timeout=timeout,
                      monolithic_timeout=monolithic_timeout,
                      resume_from=resume_from, backend=backend)
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows
