"""Table 2: size of generated vs hand-written control (single-cycle core).

For each variant: the line count of the control logic (hand-written
reference vs the Figure 7-style rendering of the generated control), and
the gate count of the complete synthesized core (reference control,
generated control, and generated control after logic optimization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs import riscv
from repro.designs.riscv.reference import (
    build_reference_design,
    reference_control_text,
)
from repro.hdl.codegen import control_loc, generate_pyrtl_control
from repro.netlist import gate_count, optimize, synthesize_netlist
from repro.obs import trace as _obs
from repro.synthesis import synthesize

__all__ = ["run_table2", "Table2Row"]


@dataclass
class Table2Row:
    variant: str
    reference_loc: int
    generated_loc: int
    reference_gates: int
    generated_gates: int
    optimized_gates: int
    optimized_reference_gates: int
    synthesis_seconds: float


def run_variant(variant, quick=True, timeout=1800, instructions=None):
    """Build one Table 2 row for a single-cycle core variant."""
    problem = riscv.build_problem(variant, "single_cycle",
                                  instructions=instructions)
    with _obs.span("table2.variant", row=variant):
        result = synthesize(problem, timeout=timeout)

    generated_text = generate_pyrtl_control(problem, result)
    reference_text = reference_control_text(variant)
    reference_design = build_reference_design(
        riscv.build_problem(variant, "single_cycle").sketch, variant
    )

    reference_netlist = synthesize_netlist(reference_design)
    generated_netlist = synthesize_netlist(result.completed_design)
    optimized_netlist = optimize(generated_netlist)
    # The paper reports raw reference vs raw/optimized generated; our naive
    # lowering leaves more shared-datapath redundancy than PyRTL's, so we
    # additionally optimize the reference for a like-for-like column.
    optimized_reference = optimize(reference_netlist)
    return Table2Row(
        variant=variant,
        reference_loc=control_loc(reference_text),
        generated_loc=control_loc(generated_text),
        reference_gates=gate_count(reference_netlist),
        generated_gates=gate_count(generated_netlist),
        optimized_gates=gate_count(optimized_netlist),
        optimized_reference_gates=gate_count(optimized_reference),
        synthesis_seconds=result.elapsed,
    )


_QUICK_SUBSETS = {
    "RV32I": ["lui", "auipc", "jal", "jalr", "beq", "lw", "sw", "addi",
              "srai", "add", "sltu", "and"],
    "RV32I+Zbkb": ["lui", "jal", "lw", "sw", "addi", "add", "rol", "rori",
                   "andn", "pack", "rev8", "zip"],
    "RV32I+Zbkc": ["lui", "jal", "lw", "sw", "addi", "add", "rol", "andn",
                   "rev8", "clmul", "clmulh"],
}


def run_table2(variants=("RV32I", "RV32I+Zbkb", "RV32I+Zbkc"), quick=True,
               timeout=1800, progress=None):
    """Run Table 2; ``quick`` restricts synthesis to instruction subsets.

    Note the reference design and its gate count always cover the *full*
    variant (the hand-written decoder is whole-ISA either way); only the
    synthesis side is reduced in quick mode.
    """
    rows = []
    for variant in variants:
        instructions = _QUICK_SUBSETS[variant] if quick else None
        row = run_variant(variant, quick=quick, timeout=timeout,
                          instructions=instructions)
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows
