"""Plain-text rendering of evaluation rows (dataclasses) as tables."""

from __future__ import annotations

from dataclasses import fields

__all__ = ["format_table", "format_rows"]


def format_rows(headers, rows):
    """Align a header list + list-of-string-lists into a text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(rows, title=None):
    """Render a list of dataclass rows."""
    if not rows:
        return "(no rows)"
    headers = [f.name for f in fields(rows[0])]
    body = [[_cell(getattr(row, name)) for name in headers] for row in rows]
    table = format_rows(headers, body)
    if title:
        return f"{title}\n{table}"
    return table
