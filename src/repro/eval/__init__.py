"""The evaluation harness: regenerates every table and figure of Section 5.

* ``table1`` — control logic synthesis times over all case studies;
* ``table2`` — generated vs hand-written control size (LoC and gates);
* ``constant_time`` — the Section 5.2 SHA-256 cycle-count study;
* ``report`` — plain-text rendering of the result rows.
"""

from repro.eval.table1 import run_table1, TABLE1_CONFIGS, Table1Row
from repro.eval.table2 import run_table2, Table2Row
from repro.eval.constant_time import run_constant_time, ConstantTimeRow
from repro.eval.report import format_table

__all__ = [
    "run_table1",
    "TABLE1_CONFIGS",
    "Table1Row",
    "run_table2",
    "Table2Row",
    "run_constant_time",
    "ConstantTimeRow",
    "format_table",
]
