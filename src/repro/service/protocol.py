"""The wire protocol: one JSON object per line, over Unix or TCP sockets.

Requests are ``{"op": ..., ...}`` dicts; responses are either
``{"ok": true, ...}`` or ``{"ok": false, "error": {...}}`` where the
error object is *typed*: a stable ``type`` (``"service.admission"``,
``"service.journal"``, ``"service.request"``, ``"service.internal"``), a
machine-readable ``reason`` from the canonical taxonomy, a human
``message``, and ``retryable`` so clients know whether backing off can
help.  Typed errors are the protocol-level face of the store's
durability contract: a ``service.journal`` error means the job was
*never acknowledged* and therefore never owed.
"""

from __future__ import annotations

import json

from repro.service.admission import AdmissionRejected
from repro.service.journal import JournalFault

__all__ = ["encode_line", "decode_line", "ok_response", "error_response",
           "read_lines"]

_MAX_LINE = 1 << 20  # 1 MiB: a request is a name + knobs, never a design


def encode_line(obj):
    """Serialize one protocol message to its wire line (bytes)."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line):
    """Parse one wire line; raises ``ValueError`` on malformed input."""
    text = line.decode("utf-8") if isinstance(line, bytes) else line
    obj = json.loads(text)
    if not isinstance(obj, dict):
        raise ValueError("protocol message must be a JSON object")
    return obj


def ok_response(**fields):
    response = {"ok": True}
    response.update(fields)
    return response


def error_response(exc):
    """Shape an exception into the typed error object."""
    if isinstance(exc, AdmissionRejected):
        kind, reason, retryable = ("service.admission", exc.reason,
                                   exc.retryable)
    elif isinstance(exc, JournalFault):
        kind, reason, retryable = "service.journal", "journal-fault", True
    elif isinstance(exc, (ValueError, KeyError, TypeError)):
        kind, reason, retryable = "service.request", "malformed-request", False
    else:
        kind, reason, retryable = "service.internal", "internal", True
    return {
        "ok": False,
        "error": {
            "type": kind,
            "reason": reason,
            "message": str(exc) or type(exc).__name__,
            "retryable": retryable,
        },
    }


def read_lines(sock_file):
    """Yield decoded request dicts from a socket file object.

    Stops at EOF; oversized lines raise ``ValueError`` (the server turns
    that into a ``service.request`` error and drops the connection).
    """
    while True:
        line = sock_file.readline(_MAX_LINE + 1)
        if not line:
            return
        if len(line) > _MAX_LINE:
            raise ValueError("protocol line exceeds 1 MiB")
        if not line.strip():
            continue
        yield decode_line(line)
