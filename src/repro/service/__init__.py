"""``repro.service``: the crash-safe synthesis daemon.

A long-lived service wrapper around ``repro.synthesis.synthesize`` whose
core guarantee is durability: every *accepted* job survives ``kill -9``
at any instant, because acceptance is acknowledged only after the job's
record is fsync'd into a write-ahead journal, progress is checkpointed
to crash-atomic resume handles, and a restart replays
``snapshot ∘ journal`` and finishes exactly the work the dead process
owed.

Layering (each module usable on its own):

* :mod:`~repro.service.journal` — fsync'd JSONL write-ahead journal,
  torn-tail-tolerant replay, fault injection;
* :mod:`~repro.service.jobs` — the job model and its recovery state
  machine;
* :mod:`~repro.service.store` — journal-then-apply job index with
  atomic-snapshot compaction and the idempotency/result cache;
* :mod:`~repro.service.admission` — bounded queues, per-tenant budgets,
  typed backpressure;
* :mod:`~repro.service.runner` — checkpointing job runners and the
  crash-containing supervisor (poison jobs fail permanently);
* :mod:`~repro.service.daemon` — the ``SynthesisService`` tying it all
  together behind a JSON-lines socket protocol;
* :mod:`~repro.service.client` — the matching client.
"""

from repro.service.admission import AdmissionController, AdmissionRejected
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import SynthesisService
from repro.service.jobs import (
    INTERRUPTED_STATES,
    JOB_STATES,
    TERMINAL_STATES,
    IllegalTransition,
    Job,
)
from repro.service.journal import Journal, JournalFault
from repro.service.problems import (
    PROBLEMS,
    build_problem,
    idempotency_key,
    register_problem,
)
from repro.service.runner import JobRunner, Supervisor
from repro.service.store import JobStore

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "ServiceClient",
    "ServiceError",
    "SynthesisService",
    "INTERRUPTED_STATES",
    "JOB_STATES",
    "TERMINAL_STATES",
    "IllegalTransition",
    "Job",
    "Journal",
    "JournalFault",
    "PROBLEMS",
    "build_problem",
    "idempotency_key",
    "register_problem",
    "JobRunner",
    "Supervisor",
    "JobStore",
]
