"""A small JSON-lines client for the synthesis service.

Speaks the :mod:`repro.service.protocol` framing over a Unix or TCP
socket, raises the daemon's typed errors locally
(:class:`ServiceError` carrying ``type``/``reason``/``retryable``), and
wraps the common ops.  Used by the smoke/chaos harnesses and
``python -m repro.service.client``-style scripting.
"""

from __future__ import annotations

import socket
import time

from repro.obs.trace import new_trace_id
from repro.service.protocol import decode_line, encode_line

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A typed error response from the daemon."""

    def __init__(self, error):
        super().__init__(error.get("message", "service error"))
        self.type = error.get("type", "service.internal")
        self.reason = error.get("reason", "internal")
        self.retryable = bool(error.get("retryable", False))

    @classmethod
    def timeout(cls, exc):
        """A client-side socket timeout as a typed, retryable error."""
        return cls({
            "type": "service.client",
            "reason": "timeout",
            "message": f"request timed out: {exc or 'socket timeout'}",
            "retryable": True,
        })


class ServiceClient:
    """One connection to the daemon; requests are serialized on it."""

    def __init__(self, socket_path=None, host=None, port=None,
                 timeout=180.0):
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def close(self):
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    # -- plumbing --------------------------------------------------------

    def request(self, **message):
        """Send one request dict; return the ``ok`` payload or raise.

        A socket timeout surfaces as a *typed*
        ``ServiceError(reason="timeout", retryable=True)`` — callers get
        the same error shape for client-side deadlines as for daemon
        rejections instead of a raw ``socket.timeout`` leaking through.
        """
        try:
            self._sock.sendall(encode_line(message))
            line = self._reader.readline()
        except socket.timeout as exc:
            raise ServiceError.timeout(exc) from exc
        if not line:
            raise ConnectionError("service closed the connection")
        response = decode_line(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", {}))
        return response

    # -- convenience ops -------------------------------------------------

    def ping(self):
        return self.request(op="ping")

    def submit(self, design, mode="per_instruction", tenant="default",
               timeout=None, trace_id=None):
        """Submit a job, minting its cross-process trace context.

        The trace id rides the request as ``trace``; the daemon stamps
        every event the job produces — across runner threads and worker
        subprocesses — with it, and echoes it in the ack
        (``trace_id``), so the submitter can later slice the daemon's
        trace with ``scripts/trace_report.py --job``.
        """
        return self.request(op="submit", design=design, mode=mode,
                            tenant=tenant, timeout=timeout,
                            trace=trace_id or new_trace_id())

    def status(self, job_id):
        return self.request(op="status", job_id=job_id)["job"]

    def wait(self, job_id, timeout=120.0):
        return self.request(op="wait", job_id=job_id,
                            timeout=timeout)["job"]

    def stats(self):
        return self.request(op="stats")

    def telemetry(self):
        """Metrics snapshot + Prometheus exposition + flight status."""
        return self.request(op="telemetry")

    def health(self):
        """Typed health checks (``status``/``checks``/``draining``)."""
        return self.request(op="health")

    def shutdown(self):
        return self.request(op="shutdown")

    @staticmethod
    def connect_retry(socket_path=None, host=None, port=None,
                      deadline=10.0, pause=0.05):
        """Connect, retrying while the daemon is still binding its socket."""
        stop = time.monotonic() + deadline
        while True:
            try:
                return ServiceClient(socket_path=socket_path, host=host,
                                     port=port)
            except (FileNotFoundError, ConnectionError, OSError):
                if time.monotonic() >= stop:
                    raise
                time.sleep(pause)
