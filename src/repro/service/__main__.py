"""Run the synthesis daemon: ``python -m repro.service``.

Examples::

    python -m repro.service --state-dir /tmp/synth --socket /tmp/synth.sock
    python -m repro.service --state-dir /tmp/synth --tcp 127.0.0.1:7341

The daemon prints one JSON line (``{"listening": ...}``) once the socket
is bound, so harnesses can wait for readiness by reading stdout.  Send
SIGTERM (or SIGINT) for a graceful drain; ``kill -9`` to exercise the
crash-recovery path — the next start replays the journal and finishes
the stranded jobs.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.daemon import SynthesisService
from repro.smt.backends import SolverConfig


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Crash-safe control-logic synthesis daemon.",
    )
    parser.add_argument("--state-dir", required=True,
                        help="durable state directory (journal, snapshot, "
                        "checkpoints)")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--socket", help="Unix socket path to listen on")
    group.add_argument("--tcp", metavar="HOST:PORT",
                       help="TCP address to listen on (PORT may be 0 for "
                       "an ephemeral port)")
    parser.add_argument("--threads", type=int, default=1,
                        help="runner worker threads (default 1)")
    parser.add_argument("--backend", default=None,
                        help="solver backend name for all jobs")
    parser.add_argument("--max-queue-depth", type=int, default=32)
    parser.add_argument("--max-active-per-tenant", type=int, default=8)
    parser.add_argument("--tenant-conflict-cap", type=int, default=None)
    parser.add_argument("--max-crashes", type=int, default=3)
    parser.add_argument("--stall", type=float, default=0.0,
                        help="sleep this many seconds after every "
                        "checkpoint (chaos-test determinism knob)")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip fsync on journal/handle writes "
                        "(tests only; voids the durability contract)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record an obs/v1 JSONL trace of the "
                        "daemon's lifetime to PATH")
    args = parser.parse_args(argv)

    if args.trace:
        from repro.obs.trace import Tracer, install
        install(Tracer(args.trace))

    config = SolverConfig(backend=args.backend) if args.backend else None
    service = SynthesisService(
        args.state_dir, config=config, threads=args.threads,
        max_queue_depth=args.max_queue_depth,
        max_active_per_tenant=args.max_active_per_tenant,
        tenant_conflict_cap=args.tenant_conflict_cap,
        max_crashes=args.max_crashes, fsync=not args.no_fsync,
        stall=args.stall,
    )

    host = port = None
    if args.tcp:
        host, _, port_text = args.tcp.rpartition(":")
        host, port = host or "127.0.0.1", int(port_text)

    def ready(address):
        if isinstance(address, tuple):
            payload = {"listening": list(address)}
        else:
            payload = {"listening": address}
        payload["recovery"] = service.recovery_report
        print(json.dumps(payload), flush=True)

    service.serve(socket_path=args.socket, host=host, port=port,
                  ready=ready)
    return 0


if __name__ == "__main__":
    sys.exit(main())
