"""Job model and the recovery state machine of the synthesis service.

A job moves through::

    accepted ──► running ──► done
        ▲           │  ▲
        │           ▼  │ (periodic durability snapshots)
        │       checkpointed ──► done
        │           │
        └───────────┤  (crash recovery / runner restart)
                    ▼
                 failed / failed-permanent

``accepted``, ``running`` and ``checkpointed`` are the *interrupted*
states: a daemon restart re-admits every job found in one of them,
resuming ``checkpointed`` jobs from their on-disk resume handles.
``done``, ``failed`` and ``failed-permanent`` are terminal.
``failed-permanent`` is the poison verdict: the job crashed its runner
more than the supervisor's crash cap and will not be retried.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.errors import RuntimeFault

__all__ = [
    "Job",
    "IllegalTransition",
    "JOB_STATES",
    "INTERRUPTED_STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
]

JOB_STATES = (
    "accepted", "running", "checkpointed", "done", "failed",
    "failed-permanent",
)

#: States a crash can strand a job in; recovery re-admits all of them.
INTERRUPTED_STATES = frozenset({"accepted", "running", "checkpointed"})

TERMINAL_STATES = frozenset({"done", "failed", "failed-permanent"})

#: state -> states it may legally move to.  Recovery and runner-crash
#: requeues move running/checkpointed jobs *back* to accepted.  The
#: non-terminal states allow self-edges: a crash requeue may re-journal
#: ``accepted`` (to persist the crash count before the ``running``
#: transition ever became durable), and a re-run after a requeue whose
#: transition could not be journaled re-asserts ``running``.
LEGAL_TRANSITIONS = {
    "accepted": frozenset({"accepted", "running", "failed",
                           "failed-permanent"}),
    "running": frozenset({"running", "checkpointed", "done", "failed",
                          "failed-permanent", "accepted"}),
    "checkpointed": frozenset({"checkpointed", "running", "done", "failed",
                               "failed-permanent", "accepted"}),
    "done": frozenset(),
    "failed": frozenset(),
    "failed-permanent": frozenset(),
}


class IllegalTransition(RuntimeFault):
    """A job was asked to move along an edge the state machine forbids."""

    reason = "illegal-transition"

    def __init__(self, job_id, current, requested):
        super().__init__(
            f"job {job_id}: illegal transition {current!r} -> {requested!r}"
        )
        self.job_id = job_id
        self.current = current
        self.requested = requested


@dataclass
class Job:
    """One synthesis request and its durable lifecycle state.

    Everything here round-trips through the journal as JSON; the large
    artifacts (resume handles) live in sibling files named by
    ``checkpoint_path`` so journal records stay small.
    """

    job_id: str
    design: str                  # problem-registry name
    mode: str = "per_instruction"
    tenant: str = "default"
    timeout: object = None       # per-job wall-clock seconds, or None
    idempotency_key: str = ""
    state: str = "accepted"
    crashes: int = 0             # runner crashes while executing this job
    instructions_done: int = 0   # progress at the last checkpoint
    checkpoint_path: str = ""    # resume handle on disk, "" if none yet
    reason: str = ""             # machine-readable outcome qualifier
    error: str = ""              # human-readable failure detail
    result: object = None        # dict payload once done
    submitted_at: float = 0.0    # service clock, informational only
    trace_id: str = ""           # cross-process trace context, "" if none

    def validate_transition(self, state):
        """Raise :class:`IllegalTransition` if the edge is forbidden."""
        if state not in JOB_STATES:
            raise IllegalTransition(self.job_id, self.state, state)
        if state not in LEGAL_TRANSITIONS[self.state]:
            raise IllegalTransition(self.job_id, self.state, state)

    def transition(self, state):
        """Validate and apply a state-machine edge (in memory)."""
        self.validate_transition(state)
        self.state = state

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    @property
    def interrupted(self):
        return self.state in INTERRUPTED_STATES

    def to_dict(self):
        return {
            "job_id": self.job_id,
            "design": self.design,
            "mode": self.mode,
            "tenant": self.tenant,
            "timeout": self.timeout,
            "idempotency_key": self.idempotency_key,
            "state": self.state,
            "crashes": self.crashes,
            "instructions_done": self.instructions_done,
            "checkpoint_path": self.checkpoint_path,
            "reason": self.reason,
            "error": self.error,
            "result": self.result,
            "submitted_at": self.submitted_at,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            job_id=data["job_id"],
            design=data["design"],
            mode=data.get("mode", "per_instruction"),
            tenant=data.get("tenant", "default"),
            timeout=data.get("timeout"),
            idempotency_key=data.get("idempotency_key", ""),
            state=data.get("state", "accepted"),
            crashes=int(data.get("crashes", 0)),
            instructions_done=int(data.get("instructions_done", 0)),
            checkpoint_path=data.get("checkpoint_path", ""),
            reason=data.get("reason", ""),
            error=data.get("error", ""),
            result=data.get("result"),
            submitted_at=float(data.get("submitted_at", 0.0)),
            trace_id=data.get("trace_id", ""),
        )

    def public_view(self):
        """The client-facing status dict (no internal bookkeeping)."""
        view = {
            "job_id": self.job_id,
            "design": self.design,
            "mode": self.mode,
            "tenant": self.tenant,
            "state": self.state,
            "instructions_done": self.instructions_done,
            "crashes": self.crashes,
        }
        if self.reason:
            view["reason"] = self.reason
        if self.error:
            view["error"] = self.error
        if self.trace_id:
            view["trace_id"] = self.trace_id
        return view
