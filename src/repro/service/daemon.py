"""``SynthesisService``: the long-lived, crash-safe synthesis daemon.

The service composes the layer below into one process:

* a :class:`~repro.service.store.JobStore` (WAL + snapshots) so a
  ``kill -9`` at any instant loses no *accepted* job;
* an :class:`~repro.service.admission.AdmissionController` so overload
  produces typed backpressure instead of an unbounded queue;
* a :class:`~repro.service.runner.Supervisor` of checkpointing runners
  with crash containment and poison-job detection;
* idempotency keys doubling as a content-addressed result cache.

Lifecycle::

    service = SynthesisService(state_dir)
    service.start()        # replay journal, re-admit interrupted jobs
    service.serve(...)     # JSON-lines over a Unix or TCP socket
    service.shutdown()     # graceful: drain, checkpoint, flush, park

``start`` is where kill-resume recovery happens: the store's replay
reports every job a previous incarnation stranded in ``accepted``,
``running`` or ``checkpointed``; the service moves the latter two back to
``accepted`` (their resume handles survive on ``checkpoint_path``) and
requeues all of them, so the restarted daemon finishes exactly the work
the dead one owed.

``SIGTERM`` and ``SIGINT`` both trigger the same graceful drain: stop
admitting (``"draining"`` rejections), let in-flight runners stop at
their next engine checkpoint, flush the journal, exit.  The engine's own
SIGTERM degradation (PR satellite) covers the *non*-service path; here
the drain event reaches runners through their checkpoint callbacks
because jobs execute on worker threads where signals never arrive.
"""

from __future__ import annotations

import itertools
import os
import signal
import socket
import threading
import time

from repro.obs import flight as _flight
from repro.obs import trace as _obs
from repro.obs.export import render_prometheus
from repro.obs.metrics import METRICS as _METRICS
from repro.service.admission import AdmissionController
from repro.service.jobs import INTERRUPTED_STATES, Job
from repro.service.problems import build_problem, idempotency_key
from repro.service.protocol import (
    encode_line,
    error_response,
    ok_response,
    read_lines,
)
from repro.service.runner import JobRunner, Supervisor
from repro.service.store import JobStore

__all__ = ["SynthesisService"]


class SynthesisService:
    """The synthesis daemon: durable jobs, admission control, recovery."""

    def __init__(self, state_dir, config=None, threads=1,
                 max_queue_depth=32, max_active_per_tenant=8,
                 tenant_conflict_cap=None, max_crashes=3, fsync=True,
                 stall=0.0, compact_every=256, retry_policy=None):
        self.config = config
        self.store = JobStore(state_dir, fsync=fsync,
                              compact_every=compact_every)
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            max_active_per_tenant=max_active_per_tenant,
            tenant_conflict_cap=tenant_conflict_cap,
        )
        self.drain_event = threading.Event()
        self.runner = JobRunner(self.store, self.admission, config=config,
                                drain_event=self.drain_event, stall=stall)
        self.supervisor = Supervisor(self.store, self.runner,
                                     threads=threads,
                                     max_crashes=max_crashes,
                                     retry_policy=retry_policy)
        self.recovery_report = None
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        # One submission commits at a time: the dedup lookup, admission
        # decision and durable store.submit must be atomic against
        # concurrent connection threads, or two submissions with the
        # same idempotency key can both miss the dedup check (duplicate
        # solving) and queue/tenant caps can be overshot.
        self._submit_lock = threading.Lock()
        self._serve_stop = threading.Event()
        self._started = False
        # The flight recorder is the always-on half of observability: it
        # captures recent spans/events even with JSONL tracing off, and
        # is dumped on poison verdicts, crash storms and unhandled
        # daemon errors.  Installing replaces any prior recorder — one
        # daemon, one ring.
        self.flight = _flight.install_flight(
            dump_dir=os.path.join(self.store.state_dir, "flight"))

    # -- lifecycle -------------------------------------------------------

    def start(self):
        """Open the store, replay the journal, re-admit stranded jobs."""
        with _obs.span("service.recovery"):
            report = self.store.open()
            self.supervisor.start()
            requeued = 0
            for job in self.store.interrupted():
                if job.state in ("running", "checkpointed"):
                    self.store.transition(job.job_id, "accepted",
                                          reason="recovered")
                    _METRICS.inc("service.recovery.requeued")
                self.supervisor.submit(job.job_id)
                requeued += 1
            report["requeued"] = requeued
        self.recovery_report = report
        self._started = True
        return report

    def shutdown(self, timeout=30.0):
        """Graceful drain: reject new work, park runners, flush, close.

        In-flight jobs stop at their next checkpoint (state
        ``checkpointed``, handle on disk); queued jobs stay ``accepted``;
        both complete on the next ``start``.  Returns ``True`` when every
        runner parked within ``timeout``.
        """
        self.drain_event.set()
        self._serve_stop.set()
        parked = self.supervisor.drain(timeout=timeout)
        self.store.close()
        _obs.event("service.recovery", shutdown=True, parked=parked,
                   states=str(sorted(self.store.counts().items())))
        _METRICS.inc("service.shutdowns")
        return parked

    # -- the service API -------------------------------------------------

    def _new_job_id(self):
        with self._lock:
            serial = next(self._counter)
        return f"job-{serial:05d}-{os.urandom(3).hex()}"

    def _queue_depth(self):
        counts = self.store.counts()
        return sum(counts.get(state, 0) for state in INTERRUPTED_STATES)

    def submit(self, design, mode="per_instruction", tenant="default",
               timeout=None, trace_id=None):
        """Admit one job; returns an ack dict the caller may rely on.

        The ack is sent only after the job's record is durable in the
        journal — a :class:`JournalFault` propagates instead, and by the
        WAL contract the job was then never accepted.

        ``trace_id`` is the client-minted cross-process trace context;
        one is minted here when the caller did not send one, so every
        accepted job carries a correlation id.  It is persisted on the
        job record — a restarted daemon resumes the job under the *same*
        trace id, which is what makes a kill-resume job one trace.
        """
        trace_id = trace_id or _obs.new_trace_id()
        with _obs.trace_context(trace_id):
            problem = build_problem(design)  # typed rejection if unknown
            key = idempotency_key(problem, mode=mode, config=self.config)
            with self._submit_lock:
                cached = self.store.cached_result(key)
                if cached is not None:
                    _METRICS.inc("service.cache.hits")
                    _obs.event("service.admission", decision="cache-hit",
                               job_id=cached.job_id, tenant=tenant)
                    return {"job_id": cached.job_id, "state": "done",
                            "cached": True, "result": cached.result,
                            "trace_id": cached.trace_id or trace_id}
                live = self.store.find_by_key(key)
                if live is not None:
                    _METRICS.inc("service.cache.joined")
                    return {"job_id": live.job_id, "state": live.state,
                            "cached": False, "deduplicated": True,
                            "trace_id": live.trace_id or trace_id}
                job = Job(job_id=self._new_job_id(), design=design,
                          mode=mode, tenant=tenant, timeout=timeout,
                          idempotency_key=key, submitted_at=time.time(),
                          trace_id=trace_id)
                self.admission.admit(
                    job, queue_depth=self._queue_depth(),
                    tenant_active=self.store.active_for_tenant(tenant),
                    draining=self.drain_event.is_set(),
                )
                self.store.submit(job)  # durability point: ack past here
            self.supervisor.submit(job.job_id)
            return {"job_id": job.job_id, "state": "accepted",
                    "cached": False, "trace_id": trace_id}

    def status(self, job_id):
        job = self.store.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        view = job.public_view()
        if job.state == "done" and job.result is not None:
            view["result"] = job.result
        return view

    def wait(self, job_id, timeout=120.0, poll=0.02):
        """Block until the job is terminal (or ``timeout`` elapses)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.store.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.terminal:
                return self.status(job_id)
            if time.monotonic() >= deadline:
                view = job.public_view()
                view["timed_out"] = True
                return view
            time.sleep(poll)

    def stats(self):
        counts = self.store.counts()
        return {
            "jobs": counts,
            "queue_depth": self._queue_depth(),
            "draining": self.drain_event.is_set(),
            "recovery": self.recovery_report,
        }

    def telemetry(self):
        """The live metrics surface: snapshot + Prometheus exposition."""
        snap = _METRICS.snapshot()
        return {
            "metrics": snap,
            "prometheus": render_prometheus(snap),
            "flight": {
                "entries": len(self.flight),
                "capacity": self.flight.capacity,
                "dumps": len(self.flight.dumps),
            },
        }

    def health(self):
        """Typed health checks; ``status`` is ``ok`` or ``degraded``.

        Each check is independently ``ok``-flagged so an operator (or
        the chaos harness) can gate on exactly the property it cares
        about — e.g. ``recovery.requeued`` after a kill -9 restart.
        """
        checks = {}
        checks["journal"] = self.store.journal_health()
        depth = self._queue_depth()
        cap = self.admission.max_queue_depth
        checks["queue"] = {"ok": depth <= cap, "depth": depth, "cap": cap}
        alive = self.supervisor.alive_threads()
        total = len(self.supervisor._threads)
        draining = self.drain_event.is_set()
        checks["supervisor"] = {
            "ok": draining or alive == total,
            "alive": alive,
            "threads": total,
        }
        last_crash = self.supervisor.last_crash_at
        age = None if last_crash is None else round(
            time.time() - last_crash, 3)
        checks["last_crash"] = {
            # A runner crash in the last minute means the daemon is
            # likely still crash-looping something: degraded, not down.
            "ok": age is None or age >= 60.0,
            "age_seconds": age,
            "crashes": _METRICS.get("service.runner.crashes"),
        }
        report = self.recovery_report or {}
        checks["recovery"] = {
            "ok": self._started,
            "requeued": report.get("requeued", 0),
            "replayed": report.get("replayed", 0),
            "torn_tail": report.get("torn_tail", False),
        }
        checks["flight"] = {
            "ok": True,
            "entries": len(self.flight),
            "dumps": len(self.flight.dumps),
        }
        status = "ok" if all(c["ok"] for c in checks.values()) \
            else "degraded"
        return {"status": status, "checks": checks, "draining": draining}

    # -- protocol --------------------------------------------------------

    def handle_request(self, request):
        """One request dict in, one response dict out (never raises).

        Every request runs under a ``service.request`` span (inside the
        client's trace context when the request carried one) and charges
        its wall time to the ``service.request`` and
        ``service.request.<op>`` latency histograms.  An error the
        taxonomy calls ``service.internal`` — a daemon bug, not a typed
        rejection — additionally dumps the flight recorder.
        """
        op = request.get("op")
        op_name = op if isinstance(op, str) else "invalid"
        trace_id = request.get("trace")
        if not isinstance(trace_id, str):
            trace_id = None
        started = time.monotonic()
        try:
            with _obs.trace_context(trace_id), \
                    _obs.span("service.request", op=op_name):
                try:
                    return self._dispatch(op, request)
                except Exception as exc:  # noqa: BLE001 - protocol boundary
                    response = error_response(exc)
                    if response["error"]["type"] == "service.internal":
                        _METRICS.inc("service.request.internal_errors")
                        _flight.flight_dump(f"daemon-error-{op_name}")
                    return response
        finally:
            wall = time.monotonic() - started
            _METRICS.observe("service.request", wall)
            _METRICS.observe(f"service.request.{op_name}", wall)

    def _dispatch(self, op, request):
        if op == "ping":
            return ok_response(pong=True, started=self._started)
        if op == "submit":
            return ok_response(**self.submit(
                request["design"],
                mode=request.get("mode", "per_instruction"),
                tenant=request.get("tenant", "default"),
                timeout=request.get("timeout"),
                trace_id=request.get("trace"),
            ))
        if op == "status":
            return ok_response(job=self.status(request["job_id"]))
        if op == "wait":
            return ok_response(job=self.wait(
                request["job_id"],
                timeout=float(request.get("timeout", 120.0)),
            ))
        if op == "stats":
            return ok_response(**self.stats())
        if op == "telemetry":
            return ok_response(**self.telemetry())
        if op == "health":
            return ok_response(**self.health())
        if op == "shutdown":
            # Ack first; the drain happens after the response flushes.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return ok_response(draining=True)
        raise ValueError(f"unknown op {op!r}")

    # -- serving ---------------------------------------------------------

    def _bind(self, socket_path=None, host=None, port=None):
        if socket_path is not None:
            try:
                os.unlink(socket_path)
            except FileNotFoundError:
                pass
            server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            server.bind(socket_path)
        else:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((host or "127.0.0.1", port or 0))
        server.listen(16)
        server.settimeout(0.2)
        return server

    def _handle_connection(self, conn):
        try:
            with conn, conn.makefile("rb") as reader:
                for request in read_lines(reader):
                    response = self.handle_request(request)
                    conn.sendall(encode_line(response))
        except (ValueError, OSError) as exc:
            _obs.event("service.admission", connection_error=str(exc))

    def serve(self, socket_path=None, host=None, port=None,
              install_signals=True, ready=None):
        """Accept JSON-lines connections until shutdown.

        ``ready`` (optional callable) receives the bound address once the
        socket is listening — the smoke/chaos harnesses use it to learn
        an ephemeral TCP port.  With ``install_signals`` (main thread
        only), SIGTERM and SIGINT both trigger the graceful drain.
        """
        if not self._started:
            self.start()
        server = self._bind(socket_path=socket_path, host=host, port=port)
        if install_signals and \
                threading.current_thread() is threading.main_thread():
            def _graceful(signum, frame):
                self.drain_event.set()
                self._serve_stop.set()
            signal.signal(signal.SIGTERM, _graceful)
            signal.signal(signal.SIGINT, _graceful)
        if ready is not None:
            ready(server.getsockname())
        handlers = []
        try:
            while not self._serve_stop.is_set():
                try:
                    conn, _addr = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._handle_connection, args=(conn,),
                    daemon=True,
                )
                thread.start()
                handlers.append(thread)
        finally:
            server.close()
            if socket_path is not None:
                try:
                    os.unlink(socket_path)
                except FileNotFoundError:
                    pass
            self.shutdown()
