"""Admission control: bounded queues, typed backpressure, tenant budgets.

A long-lived daemon that accepts everything it is offered does not fail
gracefully — it OOMs with a queue full of promises it cannot keep.  The
:class:`AdmissionController` is the single gate every submission passes:

* **queue depth** — at most ``max_queue_depth`` non-terminal jobs may be
  in the system; beyond that submissions are rejected with the typed
  reason ``"queue-full"`` (the client should back off and retry);
* **per-tenant concurrency** — a tenant may hold at most
  ``max_active_per_tenant`` non-terminal jobs (``"tenant-cap"``);
* **per-tenant conflict budgets** — each tenant gets a long-lived
  :class:`repro.runtime.Budget` capping total SAT conflicts; every job
  runs under a child slice, so charges aggregate across jobs and a
  tenant that has burned its cap is rejected at admission
  (``"tenant-budget"``) instead of wasting runner time;
* **draining** — once a graceful shutdown begins, every submission is
  rejected with ``"draining"``.

Rejections are *typed* (:class:`AdmissionRejected` carrying the reason)
and observable (``service.admission`` events, ``service.admission.*``
metrics) — backpressure you cannot see is backpressure you cannot tune.
"""

from __future__ import annotations

import threading

from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.runtime import Budget
from repro.runtime.errors import RuntimeFault

__all__ = ["AdmissionController", "AdmissionRejected"]


class AdmissionRejected(RuntimeFault):
    """A submission was refused at the admission gate.

    ``reason`` is machine-readable backpressure: ``"queue-full"``,
    ``"tenant-cap"``, ``"tenant-budget"``, ``"draining"`` or
    ``"unknown-design"``.  ``retryable`` tells the client whether backing
    off and resubmitting can ever succeed (a drained daemon will be
    back; an exhausted tenant budget will not refill by itself).
    """

    def __init__(self, message="", reason="queue-full", retryable=True):
        super().__init__(message or f"admission rejected ({reason})")
        self.reason = reason
        self.retryable = retryable


class AdmissionController:
    """The single admission gate in front of the job queue."""

    def __init__(self, max_queue_depth=32, max_active_per_tenant=8,
                 tenant_conflict_cap=None):
        self.max_queue_depth = max_queue_depth
        self.max_active_per_tenant = max_active_per_tenant
        self.tenant_conflict_cap = tenant_conflict_cap
        self._tenant_budgets = {}
        self._lock = threading.Lock()

    def tenant_budget(self, tenant):
        """The tenant's long-lived budget (created on first use).

        Uncapped when ``tenant_conflict_cap`` is ``None`` — still useful,
        because every job's child slice charges it and the aggregate is
        visible in ``conflicts_used``.
        """
        with self._lock:
            budget = self._tenant_budgets.get(tenant)
            if budget is None:
                budget = Budget(max_conflicts=self.tenant_conflict_cap)
                self._tenant_budgets[tenant] = budget
            return budget

    def admit(self, job, *, queue_depth, tenant_active, draining=False):
        """Pass ``job`` through the gate; raises :class:`AdmissionRejected`.

        ``queue_depth`` and ``tenant_active`` are supplied by the caller
        (the store owns those counts); the controller owns the policy.
        """
        reason = None
        retryable = True
        if draining:
            reason = "draining"
        elif queue_depth >= self.max_queue_depth:
            reason = "queue-full"
        elif tenant_active >= self.max_active_per_tenant:
            reason = "tenant-cap"
        else:
            budget = self.tenant_budget(job.tenant)
            if budget.exhausted_reason() is not None:
                reason = "tenant-budget"
                retryable = False
        if reason is not None:
            _METRICS.inc("service.admission.rejected")
            _METRICS.inc(f"service.admission.rejected.{reason}")
            _obs.event("service.admission", decision="rejected",
                       reason=reason, job_id=job.job_id,
                       tenant=job.tenant, queue_depth=queue_depth)
            raise AdmissionRejected(
                f"job {job.job_id} rejected: {reason} "
                f"(queue {queue_depth}/{self.max_queue_depth}, tenant "
                f"{job.tenant!r} active {tenant_active})",
                reason=reason, retryable=retryable,
            )
        _METRICS.inc("service.admission.accepted")
        _obs.event("service.admission", decision="accepted",
                   job_id=job.job_id, tenant=job.tenant,
                   queue_depth=queue_depth)
