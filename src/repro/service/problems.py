"""The service's problem registry and content-addressed idempotency keys.

Jobs name their problem (``"accumulator"``, ``"alu_machine"``, ...) rather
than shipping a serialized sketch over the wire: the registry maps those
names to the repo's ``build_problem`` factories, and the daemon constructs
the :class:`repro.synthesis.SynthesisProblem` fresh in whatever process
runs the job.  That keeps journal records and protocol messages small and
makes jobs trivially resumable after a restart.

The **idempotency key** is the content address of a synthesis request:
a SHA-256 over the printed sketch text (``print_design`` output is the
repo's canonical, parseable design encoding), the spec's instruction
names in order, the synthesis mode, and the solver-visible bits of the
:class:`~repro.smt.backends.SolverConfig` (backend name + pipeline).
Two submissions with the same key would provably do the same work, so a
``done`` job's result is served straight from the journal-backed cache —
including across daemon restarts.
"""

from __future__ import annotations

import hashlib
import os
import threading

from repro.oyster import print_design
from repro.service.admission import AdmissionRejected

__all__ = ["PROBLEMS", "register_problem", "build_problem",
           "idempotency_key"]


def _accumulator():
    from repro.designs.accumulator import build_problem as factory
    return factory()


def _alu_machine():
    from repro.designs.alu_machine import build_problem as factory
    return factory()


def _chaos_poison():
    """A deliberate poison pill for the chaos lane.

    Builds fine on the daemon's accept path (submission must succeed:
    the idempotency key needs a real problem), then raises in every
    runner thread — so the job crash-loops to its poison verdict and
    the flight recorder's post-mortem dump can be asserted end to end.
    The sketch is renamed so the content-addressed idempotency key
    cannot collide with an honest accumulator submission (a cache hit
    would serve the poison job a real result).  Registered only under
    ``REPRO_SERVICE_CHAOS=1``; production daemons never know the name.
    """
    import dataclasses

    if threading.current_thread().name.startswith("service-runner"):
        raise RuntimeError("chaos poison pill: injected runner crash")
    problem = _accumulator()
    return dataclasses.replace(
        problem, sketch=dataclasses.replace(
            problem.sketch, name="chaos_poison_datapath"))


#: design name -> zero-argument SynthesisProblem factory
PROBLEMS = {
    "accumulator": _accumulator,
    "alu_machine": _alu_machine,
}

if os.environ.get("REPRO_SERVICE_CHAOS") == "1":
    PROBLEMS["chaos_poison"] = _chaos_poison


def register_problem(name, factory):
    """Add (or replace) a named problem factory."""
    PROBLEMS[name] = factory


def build_problem(name):
    """Instantiate the named problem; typed rejection for unknown names."""
    factory = PROBLEMS.get(name)
    if factory is None:
        raise AdmissionRejected(
            f"unknown design {name!r} (known: {', '.join(sorted(PROBLEMS))})",
            reason="unknown-design", retryable=False,
        )
    return factory()


def idempotency_key(problem, mode="per_instruction", config=None):
    """Content-address a synthesis request.

    Hashes exactly the inputs that determine the answer: the canonical
    sketch text, the instruction names (order matters — it is the spec's
    order), the mode, and the solver configuration's result-visible
    knobs.  Worker counts and pool objects are deliberately excluded:
    they change *how fast* the answer arrives, not what it is.
    """
    digest = hashlib.sha256()
    digest.update(print_design(problem.sketch).encode("utf-8"))
    for instruction in problem.spec.instructions:
        digest.update(b"\x00" + instruction.name.encode("utf-8"))
    digest.update(b"\x01" + mode.encode("utf-8"))
    backend_name = "inprocess"
    pipeline = ""
    if config is not None:
        backend_name = config.backend_name or "inprocess"
        pipeline = config.pipeline or ""
    digest.update(b"\x02" + backend_name.encode("utf-8"))
    digest.update(b"\x03" + pipeline.encode("utf-8"))
    return digest.hexdigest()
