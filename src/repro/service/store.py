"""The durable, crash-safe job store: WAL + atomic snapshots.

State layout under ``state_dir``::

    journal.<gen>.jsonl   write-ahead journal of job records & transitions
    snapshot.json         atomic-rename snapshot (compaction baseline)
    checkpoints/          per-job resume handles (crash-atomic writes)

The store's invariant is *journal-then-apply*: every mutation is made
durable in the journal before the in-memory index (and therefore any
client-visible acknowledgement) reflects it.  Opening a store replays
``snapshot ∘ journal`` and reports what a crash stranded; the daemon
re-admits the interrupted jobs.

Compaction uses journal *generations* so every crash point is covered:
the snapshot atomically records ``folded_gen`` (the journal generation it
absorbed), then a fresh ``journal.<gen+1>.jsonl`` is started and the old
file deleted.  On open, journal generations ``<= folded_gen`` are stale
(their records are already in the snapshot) and are discarded; newer ones
are replayed.  A crash anywhere in that sequence leaves at least one
complete representation of the state on disk, and never replays a record
into a state it has already produced.

Opening also rotates: every incarnation appends to its *own* fresh
generation, never to a file a crash may have left with a torn tail —
replay tolerates a torn tail only as the frozen end of a closed file,
and appending past one would fuse it with the next record, turning an
ignorable tail into mid-file corruption (or silently dropping the fused
record).

Idempotency keys double as a content-addressed result cache: a ``done``
job's record carries its full result payload, so a duplicate submission
with the same key is answered from the journal-backed index without any
solving — including across restarts.
"""

from __future__ import annotations

import json
import os
import re
import threading

from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.runtime.persist import atomic_write_json
from repro.service.jobs import Job
from repro.service.journal import Journal, JournalFault

__all__ = ["JobStore", "JournalFault"]

_SNAPSHOT_SCHEMA = "repro.service.snapshot/1"
_JOURNAL_RE = re.compile(r"^journal\.(\d+)\.jsonl$")


class JobStore:
    """Durable job index over a write-ahead journal and a snapshot."""

    def __init__(self, state_dir, fsync=True, compact_every=256):
        self.state_dir = os.fspath(state_dir)
        self.fsync = fsync
        self.compact_every = compact_every
        os.makedirs(self.state_dir, exist_ok=True)
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.jobs = {}            # job_id -> Job
        self._by_key = {}         # idempotency_key -> job_id
        self._lock = threading.RLock()
        self._since_compact = 0
        self._gen = 0
        self._journal = None      # until open()

    @property
    def snapshot_path(self):
        return os.path.join(self.state_dir, "snapshot.json")

    @property
    def journal_path(self):
        """The active journal file (valid after :meth:`open`)."""
        return self._journal_file(self._gen)

    def _journal_file(self, gen):
        return os.path.join(self.state_dir, f"journal.{gen}.jsonl")

    @property
    def checkpoint_dir(self):
        return os.path.join(self.state_dir, "checkpoints")

    def checkpoint_path(self, job_id):
        return os.path.join(self.checkpoint_dir, f"{job_id}.json")

    def _journal_generations(self):
        gens = []
        for name in os.listdir(self.state_dir):
            match = _JOURNAL_RE.match(name)
            if match:
                gens.append(int(match.group(1)))
        return sorted(gens)

    # -- lifecycle -------------------------------------------------------

    def open(self):
        """Replay snapshot + journal; returns a recovery report dict.

        The report counts what the previous incarnation left behind:
        ``replayed`` journal records, ``torn_tail`` (a crash mid-append),
        and the jobs per state — the daemon re-admits the interrupted
        ones.
        """
        with self._lock:
            folded_gen = -1
            if os.path.exists(self.snapshot_path):
                with open(self.snapshot_path) as handle:
                    snapshot = json.load(handle)
                if snapshot.get("schema") != _SNAPSHOT_SCHEMA:
                    raise JournalFault(
                        f"snapshot {self.snapshot_path!r} has foreign "
                        f"schema {snapshot.get('schema')!r}"
                    )
                folded_gen = int(snapshot.get("folded_gen", 0))
                for data in snapshot.get("jobs", []):
                    self._index(Job.from_dict(data))
            replayed = 0
            torn = False
            live_records = []
            gens = self._journal_generations()
            for gen in gens:
                if gen <= folded_gen:
                    # Already folded into the snapshot; a crash between
                    # snapshot write and journal rotation left it behind.
                    os.unlink(self._journal_file(gen))
                    continue
                records, gen_torn = Journal.replay(self._journal_file(gen))
                torn = torn or gen_torn
                replayed += len(records)
                for record in records:
                    self._apply(record)
                live_records.extend(records)
            # Never append to a file a crash may have torn: each
            # incarnation writes a fresh generation, so a torn tail stays
            # frozen where replay tolerates it (the end of a closed file)
            # instead of being fused with the next incarnation's appends.
            # Older live generations keep replaying until a compaction
            # folds them away.
            self._gen = max([folded_gen] + gens) + 1
            self._journal = Journal(self.journal_path, fsync=self.fsync)
            self._journal.resume_from(live_records)
            states = self.counts()
            report = {
                "replayed": replayed,
                "torn_tail": torn,
                "jobs": len(self.jobs),
                "states": states,
            }
            _obs.event("service.recovery", replayed=replayed,
                       torn_tail=torn, jobs=len(self.jobs),
                       states=str(sorted(states.items())))
            _METRICS.inc("service.recovery.opens")
            if torn:
                _METRICS.inc("service.recovery.torn_tails")
            return report

    def close(self):
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None

    # -- replay plumbing -------------------------------------------------

    def _index(self, job):
        self.jobs[job.job_id] = job
        if job.idempotency_key:
            self._by_key[job.idempotency_key] = job.job_id

    def _apply(self, record):
        kind = record.get("type")
        if kind == "job":
            self._index(Job.from_dict(record["job"]))
        elif kind == "transition":
            job = self.jobs.get(record["job_id"])
            if job is None:
                raise JournalFault(
                    f"journal transition for unknown job "
                    f"{record['job_id']!r}"
                )
            job.transition(record["state"])
            for field in ("crashes", "instructions_done", "checkpoint_path",
                          "reason", "error", "result"):
                if field in record:
                    setattr(job, field, record[field])
        else:
            raise JournalFault(f"unknown journal record type {kind!r}")

    # -- mutations (journal-then-apply) ----------------------------------

    def submit(self, job):
        """Durably log a new job, then index it.

        Raises :class:`JournalFault` without indexing when the record
        cannot be made durable — the caller must then *not* acknowledge.
        """
        with self._lock:
            if job.job_id in self.jobs:
                raise JournalFault(f"duplicate job id {job.job_id!r}")
            self._journal.append({"type": "job", "job": job.to_dict()})
            self._index(job)
            self._maybe_compact()
        _METRICS.inc("service.jobs.submitted")
        return job

    def transition(self, job_id, state, **fields):
        """Durably log a state transition, then apply it."""
        with self._lock:
            job = self.jobs[job_id]
            # Validate the edge before paying for durability: an illegal
            # transition must not leave a poisoned record in the journal.
            job.validate_transition(state)
            record = {"type": "transition", "job_id": job_id,
                      "state": state}
            record.update(fields)
            self._journal.append(record)
            self._apply(record)
            self._maybe_compact()
        _METRICS.inc("service.jobs.transitions")
        _METRICS.inc(f"service.jobs.state.{state}")
        _obs.event("service.job", job_id=job_id, state=state,
                   **{k: v for k, v in fields.items() if k != "result"})
        return self.jobs[job_id]

    # -- queries ---------------------------------------------------------

    def get(self, job_id):
        with self._lock:
            return self.jobs.get(job_id)

    def cached_result(self, idempotency_key):
        """A ``done`` job with this key, or ``None`` — the content-
        addressed result cache."""
        if not idempotency_key:
            return None
        with self._lock:
            job_id = self._by_key.get(idempotency_key)
            if job_id is None:
                return None
            job = self.jobs[job_id]
            if job.state == "done" and job.result is not None:
                return job
            return None

    def find_by_key(self, idempotency_key):
        """The live (non-failed) job for this key, in any state."""
        if not idempotency_key:
            return None
        with self._lock:
            job_id = self._by_key.get(idempotency_key)
            if job_id is None:
                return None
            job = self.jobs[job_id]
            if job.state in ("failed", "failed-permanent"):
                return None
            return job

    def interrupted(self):
        """Jobs a crash stranded mid-flight, in submission order."""
        with self._lock:
            return [job for job in self.jobs.values() if job.interrupted]

    def active_for_tenant(self, tenant):
        with self._lock:
            return sum(1 for job in self.jobs.values()
                       if job.tenant == tenant and not job.terminal)

    def counts(self):
        with self._lock:
            states = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return states

    def journal_health(self):
        """Typed health probe for the active journal.

        Checks existence and writability of the live generation without
        appending (a probe must not grow the WAL).  ``ok`` is ``False``
        before :meth:`open` / after :meth:`close` — a serving daemon
        whose journal is closed is exactly the failure this surfaces.
        """
        with self._lock:
            if self._journal is None:
                return {"ok": False, "open": False, "writable": False}
            path = self.journal_path
            generation = self._gen
        exists = os.path.exists(path)
        writable = exists and os.access(path, os.W_OK)
        return {
            "ok": writable,
            "open": True,
            "writable": writable,
            "generation": generation,
        }

    # -- compaction ------------------------------------------------------

    def _maybe_compact(self):
        self._since_compact += 1
        if self.compact_every and self._since_compact >= self.compact_every:
            self.compact()

    def compact(self):
        """Fold the journal into an atomic snapshot and rotate generations.

        Ordering covers every crash point: (1) the snapshot recording
        ``folded_gen`` replaces its predecessor atomically; (2) a fresh
        journal generation is started; (3) the folded file is deleted.
        A crash after (1) leaves a stale journal that the next open
        recognizes as folded and discards.
        """
        with self._lock:
            atomic_write_json(
                self.snapshot_path,
                {
                    "schema": _SNAPSHOT_SCHEMA,
                    "folded_gen": self._gen,
                    "jobs": [job.to_dict() for job in self.jobs.values()],
                },
                fsync=self.fsync,
            )
            folded = self._gen
            self._journal.close()
            self._gen += 1
            self._journal = Journal(self.journal_path, fsync=self.fsync)
            # Restarts leave one live generation per incarnation; the
            # snapshot just absorbed every record up to `folded`, so all
            # of them are stale now, not only the newest.
            for gen in self._journal_generations():
                if gen > folded:
                    continue
                try:
                    os.unlink(self._journal_file(gen))
                except FileNotFoundError:  # pragma: no cover - gone
                    pass
            self._since_compact = 0
        _METRICS.inc("service.store.compactions")
