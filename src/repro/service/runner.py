"""Job execution: checkpointing runners and the crash-restarting supervisor.

:class:`JobRunner` executes one job end to end — build the problem from
the registry, resume from the job's on-disk handle if one survived a
crash, run the engine with a periodic checkpoint hook, and record the
terminal transition.  Every durability step happens in the safe order:
the resume handle is written crash-atomically *first*, then the
``checkpointed`` transition is journaled, so the journal never points at
a handle that does not exist.

:class:`Supervisor` owns the worker threads that drain the run queue.
A runner that raises *unexpectedly* (a bug, an injected crash — anything
other than the engine's typed degradation path) does not take the
service down: the supervisor logs the crash, requeues the job with
decorrelated-jitter backoff, and after ``max_crashes`` crashes declares
it poison (``failed-permanent``, reason ``"poisoned"``) so one bad job
cannot crash-loop the daemon forever.
"""

from __future__ import annotations

import queue
import random
import threading
import time
import traceback

from repro.obs import flight as _flight
from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.oyster import print_design
from repro.runtime.retry import RetryPolicy, decorrelated_jitter
from repro.service.problems import build_problem
from repro.synthesis import (
    MalformedResumeHandle,
    load_resume_handle,
    save_resume_handle,
    synthesize,
)

__all__ = ["JobRunner", "Supervisor"]


class JobRunner:
    """Executes one job under the store's durability contract."""

    def __init__(self, store, admission, config=None, drain_event=None,
                 stall=0.0):
        self.store = store
        self.admission = admission
        self.config = config
        self.drain_event = drain_event or threading.Event()
        #: per-checkpoint sleep (seconds) — the chaos harness uses this to
        #: make "killed mid-job with checkpoints on disk" deterministic.
        self.stall = stall

    def _load_resume(self, job):
        """The job's surviving resume handle, or ``None`` to start fresh.

        A torn/corrupt handle is not fatal: the journal is the source of
        truth for the job's existence, the handle only saves re-solving.
        """
        if not job.checkpoint_path:
            return None
        try:
            return load_resume_handle(job.checkpoint_path)
        except FileNotFoundError:
            return None
        except MalformedResumeHandle as exc:
            _METRICS.inc("service.recovery.bad_handles")
            _obs.event("service.recovery", job_id=job.job_id,
                       bad_handle=str(exc), reason=exc.reason)
            return None

    def run(self, job_id):
        """Run the job to a terminal or ``checkpointed``-for-drain state.

        Raises only on *unexpected* failure (the supervisor treats that
        as a runner crash); typed synthesis outcomes are absorbed into
        job transitions here.
        """
        job = self.store.get(job_id)
        if job.submitted_at:
            # Admission-queue wait: submission ack to runner pickup.  A
            # crash-requeued job charges again from its original
            # submission — the operator-facing truth is "how long did
            # accepted work sit unserved", retries included.
            _METRICS.observe("service.queue_wait",
                             max(0.0, time.time() - job.submitted_at))
        with _obs.trace_context(job.trace_id), \
                _obs.span("service.job", job_id=job_id, design=job.design,
                          tenant=job.tenant, mode=job.mode):
            self.store.transition(job_id, "running")
            problem = build_problem(job.design)
            resume = self._load_resume(job)
            tenant_budget = self.admission.tenant_budget(job.tenant)
            budget = tenant_budget.child(timeout=job.timeout)
            handle_path = self.store.checkpoint_path(job_id)

            def checkpoint(partial):
                # Handle first (crash-atomic), then journal: the journal
                # must never reference a handle that is not on disk.
                save_resume_handle(partial, handle_path,
                                   fsync=self.store.fsync)
                self.store.transition(
                    job_id, "checkpointed",
                    checkpoint_path=handle_path,
                    instructions_done=partial.completed_count,
                )
                if self.stall:
                    time.sleep(self.stall)
                if self.drain_event.is_set():
                    return False
                return True

            result = synthesize(
                problem, mode=job.mode, budget=budget,
                config=self.config, resume_from=resume,
                checkpoint=checkpoint, on_timeout="partial",
            )
            if not getattr(result, "is_partial", False):
                payload = {
                    "design": print_design(result.completed_design),
                    "instructions": len(problem.spec.instructions),
                }
                self.store.transition(job_id, "done", result=payload,
                                      reason="done")
                _METRICS.inc("service.jobs.done")
                return self.store.get(job_id)
            if result.reason == "drained":
                # The drain checkpoint already journaled the handle; the
                # job stays `checkpointed` and resumes on the next start.
                _METRICS.inc("service.jobs.drained")
                return self.store.get(job_id)
            self.store.transition(
                job_id, "failed", reason=result.reason,
                error=f"synthesis stopped: {result.reason} "
                      f"({result.completed_count} instruction(s) done)",
            )
            _METRICS.inc("service.jobs.failed")
            return self.store.get(job_id)


class Supervisor:
    """Worker threads + crash containment around :class:`JobRunner`.

    The queue carries job ids (the store owns the state).  ``submit``
    enqueues; worker threads run jobs; a crash requeues with backoff
    until the poison cap.  ``drain`` stops the workers at the next job
    boundary and lets in-flight jobs stop at their next checkpoint.
    """

    def __init__(self, store, runner, threads=1, max_crashes=3,
                 retry_policy=None):
        self.store = store
        self.runner = runner
        self.max_crashes = max_crashes
        self.retry_policy = retry_policy or RetryPolicy()
        self._queue = queue.Queue()
        self._rng = random.Random(self.retry_policy.seed)
        self._stop = threading.Event()
        self._previous_backoff = 0.0
        self._timers = []         # pending delayed requeues
        self._timer_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"service-runner-{i}")
            for i in range(max(1, threads))
        ]
        self._started = False
        #: wall-clock time of the most recent runner crash (health op).
        self.last_crash_at = None

    def start(self):
        if not self._started:
            self._started = True
            for thread in self._threads:
                thread.start()

    def submit(self, job_id):
        self._queue.put(job_id)

    def pending(self):
        return self._queue.unfinished_tasks

    def alive_threads(self):
        """How many worker threads are still running (health op)."""
        return sum(1 for thread in self._threads if thread.is_alive())

    def _worker(self):
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                self._run_one(job_id)
            finally:
                self._queue.task_done()

    def _run_one(self, job_id):
        job = self.store.get(job_id)
        if job is None or job.terminal:
            return
        try:
            self.runner.run(job_id)
        except Exception as exc:  # noqa: BLE001 - crash containment
            try:
                self._on_crash(job_id, exc)
            except Exception as handler_exc:  # noqa: BLE001
                # The crash handler is the last line of containment: if
                # it raises, the worker thread dies and (threads=1) the
                # daemon silently stops draining the queue.  Log, leave
                # the job interrupted (the next start re-admits it).
                _METRICS.inc("service.runner.crash_handler_errors")
                _obs.event("service.job", job_id=job_id,
                           crash_handler_error=str(handler_exc))

    def _on_crash(self, job_id, exc):
        """Contain a runner crash: requeue with backoff, or poison.

        Must not propagate — the store calls below journal transitions
        and can themselves fault (e.g. an injected journal fault crashed
        the runner in the first place).  A requeue whose transition could
        not be journaled still requeues: the in-memory state is
        unchanged and the self-edges in the job state machine make the
        re-run legal.
        """
        job = self.store.get(job_id)
        if job is None:
            return
        with _obs.trace_context(job.trace_id):
            self._contain_crash(job, exc)

    def _contain_crash(self, job, exc):
        job_id = job.job_id
        crashes = job.crashes + 1
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        self.last_crash_at = time.time()
        _METRICS.inc("service.runner.crashes")
        _obs.event("service.job", job_id=job_id, crash=detail,
                   crashes=crashes)
        if job.terminal:
            return
        if crashes >= self.max_crashes:
            try:
                self.store.transition(
                    job_id, "failed-permanent", crashes=crashes,
                    reason="poisoned",
                    error=f"poison job: runner crashed {crashes} "
                          f"time(s), last: {detail}",
                )
                _METRICS.inc("service.jobs.poisoned")
                # Poison is a post-mortem moment by definition: the ring
                # holds the crash-looping job's last attempts.
                _flight.flight_dump(f"poison-{job_id}")
            except Exception as store_exc:  # noqa: BLE001
                # The poison verdict could not be made durable; park the
                # job (still interrupted, re-admitted on next start)
                # rather than kill the worker or retry past the cap.
                _METRICS.inc("service.runner.crash_handler_errors")
                _obs.event("service.job", job_id=job_id,
                           crash_handler_error=str(store_exc))
            return
        pause = decorrelated_jitter(
            self._rng, self.retry_policy.backoff,
            self.retry_policy.backoff_ceiling, self._previous_backoff,
        )
        self._previous_backoff = pause
        try:
            self.store.transition(job_id, "accepted", crashes=crashes,
                                  reason="requeued", error=detail)
        except Exception as store_exc:  # noqa: BLE001
            _METRICS.inc("service.runner.crash_handler_errors")
            _obs.event("service.job", job_id=job_id,
                       crash_handler_error=str(store_exc))
        _METRICS.inc("service.runner.requeues")
        self._requeue_later(job_id, pause)

    def _requeue_later(self, job_id, pause):
        """Requeue after the backoff without blocking a worker thread.

        Sleeping the backoff on the worker would stall every other job
        (with the default single worker, the whole daemon); a timer
        re-enqueues instead.  A timer still pending at drain is
        cancelled — the job stays ``accepted`` and the next start
        re-admits it.
        """
        if not pause or pause <= 0:
            self._queue.put(job_id)
            return
        timer = threading.Timer(pause, self._queue.put, args=(job_id,))
        timer.daemon = True
        with self._timer_lock:
            self._timers = [t for t in self._timers if t.is_alive()]
            self._timers.append(timer)
        timer.start()

    def drain(self, timeout=30.0):
        """Stop pulling new jobs; wait for in-flight runners to park.

        In-flight jobs stop at their next engine checkpoint (the runner's
        drain event makes the checkpoint callback return ``False``);
        queued-but-unstarted jobs simply stay ``accepted``.  Both resume
        on the next daemon start.
        """
        self._stop.set()
        with self._timer_lock:
            for timer in self._timers:
                timer.cancel()
            self._timers = []
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            if not thread.is_alive():
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(remaining)
        return all(not thread.is_alive() for thread in self._threads)
