"""The service's write-ahead journal: durable JSONL state transitions.

Every job-store mutation is a record appended here *before* it takes
effect in memory and long before the client sees an acknowledgement —
the classic WAL contract.  A ``kill -9`` at any instant then loses at
most the record being written, and that record was by construction never
acknowledged, so no *accepted* work is ever lost.

Durability mechanics:

* appends are a single ``write`` of one JSON line followed by ``flush`` +
  ``fsync`` (opt-out via ``fsync=False`` for tests);
* replay tolerates exactly one *torn tail* — a final line the crash cut
  short — and counts it, because a torn tail is the expected signature of
  dying mid-append; corruption anywhere *else* means the file was
  damaged outside the protocol and raises :class:`JournalFault`;
* compaction is snapshot-then-reset: the caller atomically writes a
  snapshot of the full state (``repro.runtime.persist``), then
  :meth:`Journal.reset` atomically replaces the journal with an empty
  file, so there is no instant at which neither representation exists.

Fault injection: each append first consults the installed
:class:`repro.runtime.FaultInjector` (``inject_journal_fault``); an
injected fault raises *before* any byte is written, modelling a failed
write/fsync whose record must be treated as never durable.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import METRICS as _METRICS
from repro.runtime.errors import RuntimeFault
from repro.runtime.faults import active_injector
from repro.runtime.persist import atomic_write_text, fsync_dir

__all__ = ["Journal", "JournalFault"]


class JournalFault(RuntimeFault):
    """A journal record could not be made durable (write/fsync failure),
    or the journal file is damaged beyond the torn-tail tolerance.

    ``reason`` is ``"journal-fault"``: callers (the daemon's submit path)
    convert this into a typed ``service.journal`` error response and must
    never acknowledge the job whose record failed.
    """

    reason = "journal-fault"

    def __init__(self, message=""):
        super().__init__(message or "journal append failed (journal-fault)")


class Journal:
    """An append-only JSONL journal with fsync'd writes and torn-tail
    tolerant replay."""

    def __init__(self, path, fsync=True):
        self.path = os.fspath(path)
        self.fsync = fsync
        self._seq = 0
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    # -- writing ---------------------------------------------------------

    def append(self, record):
        """Durably append one record dict; returns its sequence number.

        Raises :class:`JournalFault` if the write cannot be made durable
        (real OS error or injected fault).  On fault nothing is visible
        to a replay, so the caller must treat the record as never
        written — in particular, never acknowledge the job it carried.
        """
        injector = active_injector()
        if injector is not None and injector.on_journal_append():
            _METRICS.inc("service.journal.faults")
            raise JournalFault("injected journal write fault")
        self._seq += 1
        line = json.dumps(dict(record, seq=self._seq), sort_keys=True)
        try:
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except (OSError, ValueError) as exc:
            _METRICS.inc("service.journal.faults")
            raise JournalFault(f"journal append failed: {exc}") from exc
        _METRICS.inc("service.journal.appends")
        return self._seq

    # -- replay ----------------------------------------------------------

    @staticmethod
    def replay(path):
        """Read back every durable record; returns ``(records, torn)``.

        ``torn`` is ``True`` when the final line was cut short by a crash
        (unparseable or missing its newline) — expected, tolerated, and
        by the WAL contract never an acknowledged record.  Unparseable
        records *before* the tail mean out-of-protocol damage and raise
        :class:`JournalFault`.
        """
        if not os.path.exists(path):
            return [], False
        with open(path, encoding="utf-8") as handle:
            raw = handle.read()
        records = []
        torn = False
        lines = raw.split("\n")
        # A well-formed file ends with "\n", so the last split element is
        # empty; anything else is a tail the crash cut short.
        complete, tail = lines[:-1], lines[-1]
        if tail:
            torn = True
        for index, line in enumerate(complete):
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if index == len(complete) - 1 and not tail:
                    # The crash tore the final line but still got the
                    # newline out: same torn-tail case.
                    torn = True
                    break
                raise JournalFault(
                    f"journal {path!r} is corrupt at record {index + 1}: "
                    f"{exc}"
                ) from exc
        return records, torn

    def resume_from(self, records):
        """Continue sequence numbering after a replay."""
        if records:
            self._seq = max(int(r.get("seq", 0)) for r in records)

    # -- compaction ------------------------------------------------------

    def reset(self):
        """Atomically truncate the journal (post-snapshot compaction)."""
        self._handle.close()
        atomic_write_text(self.path, "", fsync=self.fsync)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._seq = 0
        _METRICS.inc("service.journal.compactions")

    def close(self):
        if not self._handle.closed:
            self._handle.flush()
            if self.fsync:
                try:
                    os.fsync(self._handle.fileno())
                except OSError:  # pragma: no cover - already gone
                    pass
            self._handle.close()
        directory = os.path.dirname(self.path)
        if directory and self.fsync:
            fsync_dir(directory)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
