"""Control logic synthesis: a reproduction of the ASPLOS 2024 OWL paper.

The three-input workflow (Figure 4 of the paper)::

    from repro import hdl
    from repro.abstraction import parse_abstraction
    from repro.ila import Ila
    from repro.synthesis import SynthesisProblem, synthesize, verify_design

1. write a datapath sketch with ``hdl`` (holes mark missing control);
2. specify instruction semantics with ``ila``;
3. connect them with an abstraction function;
4. ``synthesize`` fills the holes; ``verify_design`` independently checks
   the completed design.

Sub-packages: ``smt`` (the QF_BV solver), ``oyster`` (the IR and its
evaluators), ``hdl`` (the mini-PyRTL frontend), ``ila``, ``abstraction``,
``synthesis``, ``netlist`` (gate-level backend), ``designs`` (the case
studies), ``eval`` (the Table 1/2 and constant-time harnesses).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
