"""Naive word-to-bit lowering of Oyster designs into gate netlists.

Deliberately performs no sharing or simplification (beyond constant nets):
the output is the honest "unoptimized" netlist whose gate count Table 2
reports, leaving all cleanup to ``repro.netlist.optimize``.

Memories with address width at most ``SynthesisOptions.expand_memories_to``
are decomposed into DFF words with write-decoders and read mux trees (the
register file); wider memories remain opaque macros with ``memrd``/``memwr``
port gates (instruction/data RAM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oyster import ast
from repro.oyster.typecheck import check_design

__all__ = ["synthesize_netlist", "SynthesisOptions", "NetlistSynthesisError"]

from repro.netlist.gates import Netlist


class NetlistSynthesisError(Exception):
    pass


@dataclass
class SynthesisOptions:
    expand_memories_to: int = 6  # expand memories with addr_width <= this


def synthesize_netlist(design, options=None, hole_values=None):
    """Lower a (hole-free, or hole-bound) design to a gate netlist."""
    options = options or SynthesisOptions()
    widths = check_design(design)
    if design.holes and not hole_values:
        raise NetlistSynthesisError(
            f"design {design.name!r} has unfilled holes"
        )
    lowering = _Lowering(design, widths, options, hole_values or {})
    return lowering.run()


class _Lowering:
    def __init__(self, design, widths, options, hole_values):
        self.design = design
        self.widths = widths
        self.options = options
        self.hole_values = hole_values
        self.netlist = Netlist(design.name)
        self.env = {}  # signal name -> tuple of nets (current value)
        self.dffs = {}  # register name -> tuple of dff nets
        self.mem_words = {}  # expanded memory name -> [tuple of dff nets]
        self.mem_writes = {}  # memory name -> list of (addr, data, enable)
        self.register_names = {reg.name for reg in design.registers}
        self.register_next = {}  # register name -> nets

    def run(self):
        netlist = self.netlist
        design = self.design
        for decl in design.inputs:
            self.env[decl.name] = tuple(
                netlist.add("input", name=f"{decl.name}[{i}]")
                for i in range(decl.width)
            )
        for decl in design.registers:
            nets = tuple(
                netlist.new_dff(f"{decl.name}[{i}]")
                for i in range(decl.width)
            )
            self.dffs[decl.name] = nets
            self.env[decl.name] = nets
        for decl in design.memories:
            self.mem_writes[decl.name] = []
            if decl.addr_width <= self.options.expand_memories_to:
                self.mem_words[decl.name] = [
                    tuple(
                        netlist.new_dff(f"{decl.name}[{word}][{bit}]")
                        for bit in range(decl.data_width)
                    )
                    for word in range(1 << decl.addr_width)
                ]
        for decl in design.holes:
            value = self.hole_values[decl.name]
            self.env[decl.name] = self._const_bits(value, decl.width)

        for stmt in design.stmts:
            if isinstance(stmt, ast.Assign):
                bits = self._expr(stmt.expr)
                if stmt.target in self.register_names:
                    self.register_next[stmt.target] = bits
                else:
                    self.env[stmt.target] = bits
            else:
                self.mem_writes[stmt.mem].append(
                    (self._expr(stmt.addr), self._expr(stmt.data),
                     self._expr(stmt.enable)[0])
                )

        self._close_registers()
        self._close_memories()
        for decl in design.outputs:
            for i, net in enumerate(self.env[decl.name]):
                netlist.add("output", (net,), name=f"{decl.name}[{i}]")
        return netlist.validate()

    # -- sequential closure ------------------------------------------------

    def _close_registers(self):
        for name, dffs in self.dffs.items():
            next_bits = self.register_next.get(name, dffs)
            for dff, data in zip(dffs, next_bits):
                self.netlist.connect_dff(dff, data)

    def _close_memories(self):
        netlist = self.netlist
        for decl in self.design.memories:
            writes = self.mem_writes[decl.name]
            if decl.name in self.mem_words:
                words = self.mem_words[decl.name]
                for word_index, word in enumerate(words):
                    data = word  # hold by default
                    for addr, wdata, enable in writes:
                        hit = self._addr_match(addr, word_index)
                        strobe = netlist.and_(enable, hit)
                        data = tuple(
                            netlist.mux(strobe, new, old)
                            for new, old in zip(wdata, data)
                        )
                    for dff, bit in zip(word, data):
                        netlist.connect_dff(dff, bit)
            else:
                for addr, wdata, enable in writes:
                    for net in addr:
                        netlist.add("memwr", (net,), name=decl.name)
                    for net in wdata:
                        netlist.add("memwr", (net,), name=decl.name)
                    netlist.add("memwr", (enable,), name=decl.name)

    def _addr_match(self, addr_bits, word_index):
        netlist = self.netlist
        acc = None
        for bit_index, net in enumerate(addr_bits):
            want = (word_index >> bit_index) & 1
            term = net if want else netlist.not_(net)
            acc = term if acc is None else netlist.and_(acc, term)
        return acc if acc is not None else netlist.const(1)

    # -- expressions ---------------------------------------------------------

    def _const_bits(self, value, width):
        return tuple(
            self.netlist.const((value >> i) & 1) for i in range(width)
        )

    def _expr(self, expr):
        netlist = self.netlist
        if isinstance(expr, ast.Const):
            return self._const_bits(expr.value, expr.width)
        if isinstance(expr, ast.Var):
            return self.env[expr.name]
        if isinstance(expr, ast.Unop):
            bits = self._expr(expr.arg)
            if expr.op == "~":
                return tuple(netlist.not_(b) for b in bits)
            zero = self._const_bits(0, len(bits))
            return self._subtract(zero, bits)[0]
        if isinstance(expr, ast.Binop):
            return self._binop(expr)
        if isinstance(expr, ast.Ite):
            sel = self._expr(expr.cond)[0]
            then = self._expr(expr.then)
            els = self._expr(expr.els)
            return tuple(
                netlist.mux(sel, t, e) for t, e in zip(then, els)
            )
        if isinstance(expr, ast.Extract):
            bits = self._expr(expr.arg)
            return bits[expr.low:expr.high + 1]
        if isinstance(expr, ast.Concat):
            high = self._expr(expr.high)
            low = self._expr(expr.low)
            return low + high
        if isinstance(expr, ast.Read):
            return self._read(expr)
        raise NetlistSynthesisError(f"cannot lower {type(expr).__name__}")

    def _read(self, expr):
        netlist = self.netlist
        decl = next(m for m in self.design.memories if m.name == expr.mem)
        addr = self._expr(expr.addr)
        if expr.mem in self.mem_words:
            words = self.mem_words[expr.mem]
            return self._read_mux_tree(words, addr, len(addr))
        return tuple(
            netlist.add("memrd", tuple(addr), name=f"{expr.mem}[{i}]")
            for i in range(decl.data_width)
        )

    def _read_mux_tree(self, words, addr, bits_left, base=0):
        if bits_left == 0:
            return words[base]
        sel = addr[bits_left - 1]
        half = 1 << (bits_left - 1)
        low = self._read_mux_tree(words, addr, bits_left - 1, base)
        high = self._read_mux_tree(words, addr, bits_left - 1, base + half)
        return tuple(
            self.netlist.mux(sel, h, l) for h, l in zip(high, low)
        )

    # -- arithmetic -------------------------------------------------------------

    def _binop(self, expr):
        netlist = self.netlist
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        op = expr.op
        if op == "&":
            return tuple(netlist.and_(a, b) for a, b in zip(left, right))
        if op == "|":
            return tuple(netlist.or_(a, b) for a, b in zip(left, right))
        if op == "^":
            return tuple(netlist.xor_(a, b) for a, b in zip(left, right))
        if op == "+":
            return self._add(left, right, netlist.const(0))
        if op == "-":
            return self._subtract(left, right)[0]
        if op == "*":
            return self._multiply(left, right)
        if op == "<<":
            return self._shift(left, right, "left", netlist.const(0))
        if op == ">>u":
            return self._shift(left, right, "right", netlist.const(0))
        if op == ">>s":
            return self._shift(left, right, "right", left[-1])
        if op == "==":
            return (self._equal(left, right),)
        if op == "!=":
            return (netlist.not_(self._equal(left, right)),)
        if op == "<u":
            return (self._less_unsigned(left, right),)
        if op == "<=u":
            return (netlist.not_(self._less_unsigned(right, left)),)
        if op == ">u":
            return (self._less_unsigned(right, left),)
        if op == ">=u":
            return (netlist.not_(self._less_unsigned(left, right)),)
        if op == "<s":
            return (self._less_signed(left, right),)
        if op == "<=s":
            return (netlist.not_(self._less_signed(right, left)),)
        if op == ">s":
            return (self._less_signed(right, left),)
        if op == ">=s":
            return (netlist.not_(self._less_signed(left, right)),)
        raise NetlistSynthesisError(f"cannot lower operator {op!r}")

    def _add(self, left, right, carry):
        netlist = self.netlist
        out = []
        for a, b in zip(left, right):
            partial = netlist.xor_(a, b)
            out.append(netlist.xor_(partial, carry))
            carry = netlist.or_(
                netlist.and_(a, b), netlist.and_(partial, carry)
            )
        return tuple(out)

    def _subtract(self, left, right):
        netlist = self.netlist
        inverted = tuple(netlist.not_(b) for b in right)
        out = []
        carry = netlist.const(1)
        for a, b in zip(left, inverted):
            partial = netlist.xor_(a, b)
            out.append(netlist.xor_(partial, carry))
            carry = netlist.or_(
                netlist.and_(a, b), netlist.and_(partial, carry)
            )
        return tuple(out), carry

    def _multiply(self, left, right):
        netlist = self.netlist
        width = len(left)
        acc = self._const_bits(0, width)
        for i, sel in enumerate(right):
            shifted = self._const_bits(0, i) + left[:width - i]
            partial = tuple(netlist.and_(bit, sel) for bit in shifted)
            acc = self._add(acc, partial, netlist.const(0))
        return acc

    def _shift(self, value, amount, direction, fill):
        netlist = self.netlist
        width = len(value)
        stages = max(1, (width - 1).bit_length())
        bits = list(value)
        for stage in range(min(stages, len(amount))):
            sel = amount[stage]
            step = 1 << stage
            shifted = [fill] * width
            for i in range(width):
                source = i - step if direction == "left" else i + step
                if 0 <= source < width:
                    shifted[i] = bits[source]
            bits = [netlist.mux(sel, s, b) for s, b in zip(shifted, bits)]
        overflow = netlist.const(0)
        for net in amount[stages:]:
            overflow = netlist.or_(overflow, net)
        if width & (width - 1):
            big = self._less_unsigned(
                tuple(amount[:stages]),
                self._const_bits(width, stages),
            )
            overflow = netlist.or_(overflow, netlist.not_(big))
        return tuple(netlist.mux(overflow, fill, b) for b in bits)

    def _equal(self, left, right):
        netlist = self.netlist
        acc = netlist.const(1)
        for a, b in zip(left, right):
            acc = netlist.and_(acc, netlist.not_(netlist.xor_(a, b)))
        return acc

    def _less_unsigned(self, left, right):
        netlist = self.netlist
        lt = netlist.const(0)
        for a, b in zip(left, right):
            eq = netlist.not_(netlist.xor_(a, b))
            lt = netlist.or_(
                netlist.and_(netlist.not_(a), b), netlist.and_(eq, lt)
            )
        return lt

    def _less_signed(self, left, right):
        netlist = self.netlist
        flipped_left = left[:-1] + (netlist.not_(left[-1]),)
        flipped_right = right[:-1] + (netlist.not_(right[-1]),)
        return self._less_unsigned(flipped_left, flipped_right)
