"""Gate-count metrics for Table 2."""

from __future__ import annotations

from collections import Counter

__all__ = ["netlist_stats", "gate_count"]

_LOGIC = ("and", "or", "xor", "not")


def netlist_stats(netlist):
    """Counts by gate kind plus the headline totals."""
    by_kind = Counter(gate.kind for gate in netlist.gates)
    logic = sum(by_kind[k] for k in _LOGIC)
    return {
        "by_kind": dict(by_kind),
        "logic_gates": logic,
        "flops": by_kind["dff"],
        "total": logic + by_kind["dff"],
    }


def gate_count(netlist):
    """The Table 2 metric: logic gates plus flip-flops."""
    return netlist_stats(netlist)["total"]
