"""Gate-level synthesis and optimization of Oyster designs.

This substitutes for the paper's two netlist tools: the PyRTL compiler
(which lowers a completed design to gates so Table 2 can count them) and the
Yosys optimization pass (the "Netlist Size (Optimized)" column).

``synth.synthesize_netlist`` performs a *naive* word-to-bit lowering with no
sharing — the honest "unoptimized" gate count — while ``optimize.optimize``
applies constant propagation, structural hashing/CSE, double-negation and
absorption rewrites, and dead-gate elimination to a fixpoint.
"""

from repro.netlist.gates import Netlist, Gate, GATE_KINDS
from repro.netlist.synth import synthesize_netlist, SynthesisOptions
from repro.netlist.optimize import optimize
from repro.netlist.stats import netlist_stats, gate_count

__all__ = [
    "Netlist",
    "Gate",
    "GATE_KINDS",
    "synthesize_netlist",
    "SynthesisOptions",
    "optimize",
    "netlist_stats",
    "gate_count",
]
