"""Combinational logic optimization over gate netlists.

Stands in for the paper's Yosys pass (Table 2's "Netlist Size (Optimized)"
column).  Rewrites applied to a fixpoint, then dead gates are swept:

* constant propagation through and/or/xor/not and derived mux structures;
* operand-level identities (``a&a``, ``a&~a``, ``a^a``, double negation);
* structural hashing / common-subexpression elimination;
* absorption of constant-fed flip-flop inputs is deliberately *not* done
  (sequential optimization is out of scope, as it is for the paper's flow).

The result is a new, compacted netlist; primary inputs, outputs, memory
macros, and flip-flops are preserved.
"""

from __future__ import annotations

from repro.netlist.gates import Netlist

__all__ = ["optimize"]


def optimize(netlist, max_rounds=20):
    """Optimize; returns a new ``Netlist``."""
    current = netlist
    for _ in range(max_rounds):
        rewritten, changed = _rewrite_once(current)
        compacted = _sweep(rewritten)
        if not changed and len(compacted) == len(current):
            return compacted
        current = compacted
    return current


def _rewrite_once(netlist):
    """One pass of local rewrites + CSE.  Returns (new netlist, changed?)."""
    new = Netlist(netlist.name)
    mapping = {}  # old net -> new net
    strash = {}
    changed = False
    const_of = {}  # new net -> 0/1 if constant

    def emit(kind, inputs=(), name=None):
        index = new.add(kind, inputs, name)
        if kind == "const0":
            const_of[index] = 0
        elif kind == "const1":
            const_of[index] = 1
        return index

    def const(value):
        key = ("const", value)
        if key not in strash:
            strash[key] = emit("const1" if value else "const0")
        return strash[key]

    def logic(kind, operands):
        nonlocal changed
        values = [const_of.get(op) for op in operands]
        if kind == "not":
            (a,) = operands
            if values[0] is not None:
                changed = True
                return const(1 - values[0])
            gate = new.gates[a]
            if gate.kind == "not":
                changed = True
                return gate.inputs[0]
            key = ("not", a)
        else:
            a, b = operands
            if a > b:
                a, b = b, a
            va, vb = const_of.get(a), const_of.get(b)
            if kind == "and":
                if va == 0 or vb == 0:
                    changed = True
                    return const(0)
                if va == 1:
                    changed = True
                    return b
                if vb == 1:
                    changed = True
                    return a
                if a == b:
                    changed = True
                    return a
                if _complements(new, a, b):
                    changed = True
                    return const(0)
            elif kind == "or":
                if va == 1 or vb == 1:
                    changed = True
                    return const(1)
                if va == 0:
                    changed = True
                    return b
                if vb == 0:
                    changed = True
                    return a
                if a == b:
                    changed = True
                    return a
                if _complements(new, a, b):
                    changed = True
                    return const(1)
            elif kind == "xor":
                if a == b:
                    changed = True
                    return const(0)
                if va is not None and vb is not None:
                    changed = True
                    return const(va ^ vb)
                if va == 0:
                    changed = True
                    return b
                if vb == 0:
                    changed = True
                    return a
                if va == 1:
                    changed = True
                    return logic("not", (b,))
                if vb == 1:
                    changed = True
                    return logic("not", (a,))
                if _complements(new, a, b):
                    changed = True
                    return const(1)
            key = (kind, a, b)
        cached = strash.get(key)
        if cached is not None:
            if key[0] != "not" or True:
                # a structural duplicate was eliminated
                pass
            return cached
        index = emit(kind, operands if kind == "not" else (key[1], key[2]))
        strash[key] = index
        return index

    # First pass: create placeholders for dffs so cyclic reads resolve.
    dff_map = {}
    for index, gate in enumerate(netlist.gates):
        if gate.kind == "dff":
            dff_map[index] = new.new_dff(gate.name)
    for index, gate in enumerate(netlist.gates):
        kind = gate.kind
        if kind == "dff":
            mapping[index] = dff_map[index]
            continue
        if kind in ("const0", "const1"):
            mapping[index] = const(1 if kind == "const1" else 0)
            continue
        if kind == "input":
            key = ("input", gate.name)
            if key not in strash:
                strash[key] = emit("input", name=gate.name)
            mapping[index] = strash[key]
            continue
        inputs = tuple(mapping[net] if net in mapping else dff_map[net]
                       for net in gate.inputs)
        if kind in ("and", "or", "xor", "not"):
            mapping[index] = logic(kind, inputs)
        else:  # memrd, memwr, output
            mapping[index] = emit(kind, inputs, gate.name)
    # Connect dff data inputs.
    for index, gate in enumerate(netlist.gates):
        if gate.kind == "dff":
            data = gate.inputs[0]
            new_data = mapping.get(data, dff_map.get(data))
            new.connect_dff(dff_map[index], new_data)
    return new, changed


def _complements(netlist, a, b):
    ga = netlist.gates[a]
    gb = netlist.gates[b]
    return (ga.kind == "not" and ga.inputs[0] == b) or (
        gb.kind == "not" and gb.inputs[0] == a
    )


def _sweep(netlist):
    """Remove gates not reachable from outputs, memory writes, or flops."""
    keep = set()
    stack = list(netlist.sinks())
    # Flip-flops and memory reads are state/interface: keep their cones.
    for index, gate in enumerate(netlist.gates):
        if gate.kind in ("dff", "memrd"):
            stack.append(index)
    while stack:
        index = stack.pop()
        if index in keep:
            continue
        keep.add(index)
        for net in netlist.gates[index].inputs:
            if net is not None and net not in keep:
                stack.append(net)
    new = Netlist(netlist.name)
    mapping = {}
    # Two-phase to keep dff cycles intact.
    for index in sorted(keep):
        gate = netlist.gates[index]
        if gate.kind == "dff":
            mapping[index] = new.new_dff(gate.name)
    for index in sorted(keep):
        gate = netlist.gates[index]
        if gate.kind == "dff":
            continue
        inputs = tuple(mapping[net] for net in gate.inputs)
        mapping[index] = new.add(gate.kind, inputs, gate.name)
    for index in sorted(keep):
        gate = netlist.gates[index]
        if gate.kind == "dff":
            new.connect_dff(mapping[index], mapping[gate.inputs[0]])
    return new
