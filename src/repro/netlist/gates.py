"""The gate-level netlist data structure.

A netlist is a list of gates; each gate drives exactly one net, identified
by the gate's index.  Gate kinds:

=========  =======================================================
``const0`` ``const1``  constants (no inputs)
``input``  a primary input bit (``name``)
``and`` ``or`` ``xor`` two-input logic
``not``    inverter
``dff``    D flip-flop; input set after creation (sequential loop)
``memrd``  one output bit of an opaque memory macro read port
``memwr``  a sink representing one write-port bit of a memory macro
``output`` a sink marking a primary output bit (``name``)
=========  =======================================================

Memories narrower than the expansion threshold are decomposed into DFFs and
muxes by the synthesizer; wide ones stay opaque macros (``memrd``/``memwr``),
matching how RAMs survive logic synthesis as block macros.
"""

from __future__ import annotations

__all__ = ["Netlist", "Gate", "GATE_KINDS"]

GATE_KINDS = (
    "const0", "const1", "input", "and", "or", "xor", "not", "dff",
    "memrd", "memwr", "output",
)

_LOGIC = frozenset({"and", "or", "xor", "not"})


class Gate:
    __slots__ = ("kind", "inputs", "name")

    def __init__(self, kind, inputs=(), name=None):
        self.kind = kind
        self.inputs = tuple(inputs)
        self.name = name

    def __repr__(self):
        label = f" {self.name}" if self.name else ""
        return f"Gate({self.kind}{label} <- {list(self.inputs)})"


class Netlist:
    """A flat gate list; net ids are gate indices."""

    def __init__(self, name=""):
        self.name = name
        self.gates = []
        self._const0 = None
        self._const1 = None

    def __len__(self):
        return len(self.gates)

    def add(self, kind, inputs=(), name=None):
        if kind not in GATE_KINDS:
            raise ValueError(f"unknown gate kind {kind!r}")
        self.gates.append(Gate(kind, inputs, name))
        return len(self.gates) - 1

    def const(self, value):
        if value:
            if self._const1 is None:
                self._const1 = self.add("const1")
            return self._const1
        if self._const0 is None:
            self._const0 = self.add("const0")
        return self._const0

    def and_(self, a, b):
        return self.add("and", (a, b))

    def or_(self, a, b):
        return self.add("or", (a, b))

    def xor_(self, a, b):
        return self.add("xor", (a, b))

    def not_(self, a):
        return self.add("not", (a,))

    def mux(self, sel, then, els):
        """then if sel else els — four gates, as a naive lowering would."""
        sel_n = self.not_(sel)
        return self.or_(self.and_(sel, then), self.and_(sel_n, els))

    def new_dff(self, name=None):
        """A flip-flop with its data input unset; connect via connect_dff."""
        return self.add("dff", (None,), name)

    def connect_dff(self, dff, data):
        gate = self.gates[dff]
        if gate.kind != "dff":
            raise ValueError(f"net {dff} is not a dff")
        gate.inputs = (data,)

    # -- queries -----------------------------------------------------------

    def sinks(self):
        """Indices whose gates anchor liveness (outputs, memory writes)."""
        return [
            index for index, gate in enumerate(self.gates)
            if gate.kind in ("output", "memwr")
        ]

    def validate(self):
        """Check structural sanity; returns self."""
        for index, gate in enumerate(self.gates):
            for net in gate.inputs:
                if net is None:
                    raise ValueError(f"gate {index} has an unconnected input")
                if not 0 <= net < len(self.gates):
                    raise ValueError(f"gate {index} reads bogus net {net}")
                # Only dffs may close cycles.
                if net >= index and gate.kind != "dff" and (
                    self.gates[net].kind != "dff"
                ):
                    raise ValueError(
                        f"combinational gate {index} reads forward net {net}"
                    )
        return self

    def evaluate(self, input_bits, dff_state=None, max_iterations=None):
        """One combinational evaluation; returns (net values, next dff state).

        ``input_bits`` maps input gate name -> 0/1; ``dff_state`` maps dff
        index -> 0/1 (default 0).  Used by equivalence tests.
        """
        dff_state = dict(dff_state or {})
        values = [0] * len(self.gates)
        for index, gate in enumerate(self.gates):
            kind = gate.kind
            if kind == "const0":
                values[index] = 0
            elif kind == "const1":
                values[index] = 1
            elif kind == "input":
                values[index] = input_bits.get(gate.name, 0)
            elif kind == "dff":
                values[index] = dff_state.get(index, 0)
            elif kind == "and":
                values[index] = values[gate.inputs[0]] & values[gate.inputs[1]]
            elif kind == "or":
                values[index] = values[gate.inputs[0]] | values[gate.inputs[1]]
            elif kind == "xor":
                values[index] = values[gate.inputs[0]] ^ values[gate.inputs[1]]
            elif kind == "not":
                values[index] = 1 - values[gate.inputs[0]]
            elif kind == "memrd":
                values[index] = 0  # opaque macro: contents unmodelled
            elif kind in ("memwr", "output"):
                if gate.inputs:
                    values[index] = values[gate.inputs[0]]
        next_state = {
            index: values[gate.inputs[0]]
            for index, gate in enumerate(self.gates)
            if gate.kind == "dff" and gate.inputs[0] is not None
        }
        return values, next_state
