"""Backend registry: names to factories, and the resolution rules.

``resolve_backend`` is the single place a backend *name* becomes a live
:class:`~repro.smt.backends.base.SolverBackend` instance.  Everything
above the solver facade deals in names (CLI flags, ``SolverConfig``,
Table 1 rows, obs events); everything below deals in instances.

Registering a custom backend is the extension point every future
"drop in a real solver" PR uses::

    from repro.smt.backends import SolverBackend, register_backend

    class MyBackend(SolverBackend):
        name = "my-solver"
        def check(self, cnf, assumptions=(), limits=None): ...

    register_backend("my-solver", lambda worker_pool=None: MyBackend(),
                     cls=MyBackend)

after which ``backend="my-solver"`` works everywhere a backend name is
accepted — ``Solver``, ``synthesize``, ``run_full_eval.py --backend``.

The default backend is ``"inprocess"``, overridable process-wide with the
``REPRO_BACKEND`` environment variable (how CI's backend-matrix lane runs
an unmodified test subset under ``subprocess-dimacs``).
"""

from __future__ import annotations

import os

from repro.smt.backends.base import SolverBackend

__all__ = [
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
    "available_backends",
    "backend_capabilities",
    "default_backend_name",
    "BACKEND_ENV",
]

#: Environment variable naming the process-wide default backend.
BACKEND_ENV = "REPRO_BACKEND"

#: name -> (factory(worker_pool=None) -> SolverBackend, class-for-introspection)
_REGISTRY = {}


def register_backend(name, factory, cls=None, replace=False):
    """Register ``factory`` under ``name``.

    ``factory`` is called as ``factory(worker_pool=...)`` and must return
    a :class:`SolverBackend`.  ``cls`` (optional) lets
    :func:`backend_capabilities` report capability flags without
    instantiating — needed for backends whose construction probes the
    environment (e.g. subprocess-dimacs scanning PATH).
    """
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = (factory, cls)


def available_backends():
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def backend_capabilities():
    """``{name: {capability flag: bool}}`` for every registered backend."""
    table = {}
    for name, (_factory, cls) in _REGISTRY.items():
        flags = cls if cls is not None else SolverBackend
        table[name] = {
            "supports_assumptions": bool(flags.supports_assumptions),
            "supports_incremental": bool(flags.supports_incremental),
            "produces_models": bool(flags.produces_models),
        }
    return table


def default_backend_name():
    """The process default: ``$REPRO_BACKEND`` or ``"inprocess"``."""
    return os.environ.get(BACKEND_ENV) or "inprocess"


def resolve_backend_name(spec):
    """The backend *name* ``spec`` resolves to (no instantiation)."""
    if spec is None:
        return default_backend_name()
    if isinstance(spec, SolverBackend):
        return spec.name
    return str(spec)


def resolve_backend(spec, worker_pool=None):
    """Resolve ``spec`` into a live backend instance.

    ``spec`` may be ``None`` (the process default), a registered name, or
    an already-constructed :class:`SolverBackend` (returned as-is, so
    callers can share one instance — e.g. one ``IsolatedBackend`` around
    one pool — across many solvers).
    """
    if isinstance(spec, SolverBackend):
        return spec
    name = resolve_backend_name(spec)
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(
            f"unknown solver backend {name!r}; registered: "
            f"{', '.join(available_backends())}"
        )
    factory, _cls = entry
    return factory(worker_pool=worker_pool)


# -- built-in backends ----------------------------------------------------

def _make_inprocess(worker_pool=None):
    from repro.smt.backends.inprocess import InProcessBackend

    return InProcessBackend()


def _make_isolated(worker_pool=None):
    from repro.smt.backends.isolated import IsolatedBackend

    return IsolatedBackend(worker_pool)


def _make_subprocess(worker_pool=None):
    from repro.smt.backends.subprocess_dimacs import SubprocessDimacsBackend

    return SubprocessDimacsBackend()


def _make_incremental_subprocess(worker_pool=None):
    from repro.smt.backends.incremental_subprocess import (
        IncrementalSubprocessBackend,
    )

    return IncrementalSubprocessBackend()


def _make_portfolio(worker_pool=None):
    # A shared instance, not a fresh one per Solver: the health ledger
    # (EWMA latencies, quarantine state) must survive across the many
    # short-lived solvers one synthesis run creates.
    from repro.smt.backends.portfolio import shared_portfolio

    return shared_portfolio(worker_pool=worker_pool)


def _register_builtins():
    from repro.smt.backends.incremental_subprocess import (
        IncrementalSubprocessBackend,
    )
    from repro.smt.backends.inprocess import InProcessBackend
    from repro.smt.backends.isolated import IsolatedBackend
    from repro.smt.backends.portfolio import PortfolioBackend
    from repro.smt.backends.subprocess_dimacs import SubprocessDimacsBackend

    register_backend("inprocess", _make_inprocess, cls=InProcessBackend)
    register_backend("isolated", _make_isolated, cls=IsolatedBackend)
    register_backend("subprocess-dimacs", _make_subprocess,
                     cls=SubprocessDimacsBackend)
    register_backend("incremental-subprocess", _make_incremental_subprocess,
                     cls=IncrementalSubprocessBackend)
    register_backend("portfolio", _make_portfolio, cls=PortfolioBackend)


_register_builtins()
