"""The incremental-subprocess backend: a persistent out-of-process core.

The stateless workers of ``repro.runtime.workers`` buy crash containment
by re-shipping the full DIMACS export on every check — which forfeits
exactly the learned-clause and trail reuse the incremental pipeline is
built on.  This backend keeps both: it spawns ONE long-lived child
process (``python -m repro.runtime.incremental_worker``) hosting a
persistent ``SatSolver``, streams each clause over the wire once as the
facade encodes it, and then issues assumption solves against the
accumulated state.  ``supports_incremental`` is true, so the solver
facade makes this backend its encoding core — clauses flow here instead
of into an in-process ``SatSolver``, and the engine process never holds
the clause database at all.

Containment comes from the PR-2 worker sandbox this child reuses:
rlimit caps (``RLIMIT_DATA``/``RLIMIT_CPU``) are applied before the
first clause arrives, a heartbeat thread keeps beating during long
solves, and the parent-side watchdog loop in :meth:`check` kills a
silent or overdue child.  The parent also mirrors every clause it has
sent (plain int lists — cheap next to the child's watcher structures),
so a crashed, hung or OOM-killed child is *replayed* into a fresh
process on the next check instead of poisoning the solver: the check
that observed the fault reports a retryable ``unknown`` and the retry
machinery above the facade re-asks against the rebuilt state.

Literals on the wire are the core's internal encoding (``2*var``,
``2*var + 1``); the parent allocates variable ids and the child follows
via ``alloc``, so both sides agree by construction.  See
``repro.runtime.incremental_worker`` for the line protocol.

``command=`` (argv list or string) overrides the spawned command — how
the differential tests run the wire protocol against the scripted fake
solver — and the ``REPRO_INCREMENTAL_WORKER`` environment variable does
the same process-wide.
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sys
import threading
import time
from queue import Empty, Queue

from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.runtime._worker_proto import EXIT_OOM
from repro.smt.backends.base import BackendResult, CheckLimits, SolverBackend

__all__ = ["IncrementalSubprocessBackend", "WORKER_ENV"]

#: Environment variable overriding the worker command (shell-split).
WORKER_ENV = "REPRO_INCREMENTAL_WORKER"

#: How often the await loop polls cancellation/deadline (seconds).
_POLL_INTERVAL = 0.05


def _worker_command(command, mem_limit_mb, cpu_limit_s, heartbeat_interval):
    if command is not None:
        if isinstance(command, str):
            return shlex.split(command)
        return list(command)
    env = os.environ.get(WORKER_ENV)
    if env:
        return shlex.split(env)
    argv = [sys.executable, "-m", "repro.runtime.incremental_worker",
            "--heartbeat-interval", str(heartbeat_interval)]
    if mem_limit_mb:
        argv += ["--mem-limit-mb", str(mem_limit_mb)]
    if cpu_limit_s:
        argv += ["--cpu-limit-s", str(cpu_limit_s)]
    return argv


class IncrementalSubprocessBackend(SolverBackend):
    """One persistent sandboxed child per solver, clauses shipped once."""

    name = "incremental-subprocess"
    supports_assumptions = True
    supports_incremental = True
    produces_models = False  # raw assignments; the facade decodes

    def __init__(self, command=None, mem_limit_mb=None, cpu_limit_s=None,
                 heartbeat_interval=0.25, watchdog_grace=4.0,
                 spawn_timeout=20.0):
        self._command = _worker_command(command, mem_limit_mb, cpu_limit_s,
                                        heartbeat_interval)
        self._heartbeat_interval = heartbeat_interval
        self._watchdog_grace = watchdog_grace
        self._spawn_timeout = spawn_timeout
        self._num_vars = 0
        self._clauses = []        # parent mirror: replay source of truth
        self._conflicts = 0
        self._assignment = {}
        self._pending_seed = None
        self._proc = None
        self._lines = None        # Queue fed by the reader thread
        self.respawns = 0         # fresh spawns after a fault (tests/obs)
        self._sent_ctx = None     # trace context last shipped to the child
        self.last_wire_ctx = None  # trace context echoed on the last result

    def describe(self):
        return f"{self.name} ({' '.join(self._command)})"

    # -- incremental clause feeding -------------------------------------

    def new_var(self):
        self._num_vars += 1
        return self._num_vars

    def add_clause(self, lits):
        clause = list(lits)
        self._clauses.append(clause)
        if self._proc is not None:
            # Keep the live child in sync; a failed send just marks it
            # dead and the next check replays the mirror.
            self._send("a " + " ".join(map(str, clause)) + " 0")

    def assignment(self):
        return dict(self._assignment)

    def reseed(self, seed):
        self._pending_seed = seed

    @property
    def num_vars(self):
        return self._num_vars

    @property
    def clauses(self):
        return self._clauses

    @property
    def conflicts(self):
        return self._conflicts

    def close(self):
        if self._proc is not None:
            self._send("quit")
            self._shutdown()

    # -- child lifecycle -------------------------------------------------

    def _spawn(self):
        proc = subprocess.Popen(
            self._command,
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, bufsize=1,
        )
        lines = Queue()

        def reader():
            try:
                for line in proc.stdout:
                    lines.put(line)
            except ValueError:
                pass  # stdout closed under the reader during shutdown
            lines.put(None)  # EOF sentinel: the child is gone

        threading.Thread(target=reader, daemon=True).start()
        self._proc, self._lines = proc, lines
        # Wait for the ready line so rlimits are in place before clauses
        # flow; a child that cannot even boot is a hard error (matching
        # BackendUnavailable semantics, but detected at first use since
        # spawning is lazy).
        deadline = time.monotonic() + self._spawn_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._shutdown()
                raise OSError("incremental worker did not report ready")
            try:
                line = lines.get(timeout=min(_POLL_INTERVAL, remaining))
            except Empty:
                continue
            if line is None:
                self._shutdown()
                raise OSError("incremental worker died at boot")
            if line.split()[:1] == ["ready"]:
                return

    def _ensure_worker(self):
        if self._proc is not None and self._proc.poll() is None:
            return
        if self._proc is not None:
            self._shutdown()
            self.respawns += 1
        self._spawn()
        # Replay the mirrored state into the fresh child.  The fresh
        # child holds no trace context yet, whatever we sent before.
        self._sent_ctx = None
        self._send(f"alloc {self._num_vars}")
        for clause in self._clauses:
            self._send("a " + " ".join(map(str, clause)) + " 0")

    def _send(self, line):
        proc = self._proc
        if proc is None:
            return False
        try:
            proc.stdin.write(line + "\n")
            proc.stdin.flush()
            return True
        except (OSError, ValueError):
            # Broken pipe: leave the corpse for _ensure_worker to notice
            # (poll() reports the exit) and replay on the next check.
            return False

    def _shutdown(self):
        proc, self._proc, self._lines = self._proc, None, None
        if proc is None:
            return
        if proc.poll() is None:
            try:
                proc.kill()
            except OSError:
                pass
        try:
            proc.communicate(timeout=5.0)
        except (subprocess.TimeoutExpired, OSError, ValueError):
            pass

    def inject_fault(self, kind):
        """Arm a containment-test fault (``crash``/``hang``/``oom``) in
        the live child; spawns one if needed."""
        self._ensure_worker()
        self._send(f"fault {kind}")

    # -- the check itself ------------------------------------------------

    def check(self, cnf=None, assumptions=(), limits=None):
        if cnf is not None:
            raise ValueError(
                "the incremental-subprocess backend solves its streamed "
                "state; pass cnf=None"
            )
        if limits is None:
            limits = CheckLimits()
        try:
            self._ensure_worker()
        except OSError:
            return BackendResult("unknown", reason="backend-error")
        if self._pending_seed is not None:
            self._send(f"reseed {self._pending_seed}")
            self._pending_seed = None
        if limits.seed is not None:
            self._send(f"reseed {limits.seed}")
        max_conflicts = "-" if limits.max_conflicts is None else str(
            int(limits.max_conflicts))
        timeout = limits.timeout()
        timeout_tok = "-" if timeout is None else f"{timeout:.3f}"
        # Cross-process trace propagation: ship the current context when
        # it changed since the last solve; the child echoes it on every
        # result line, proving the persistent child's work is attributed
        # to the submitting job even across respawns.
        ctx = _obs.current_trace_id()
        if ctx != self._sent_ctx:
            self._send(f"ctx {ctx or '-'}")
            self._sent_ctx = ctx
        self._send(f"alloc {self._num_vars}")
        self._send("assume " + " ".join(map(str, assumptions)) + " 0")
        if not self._send(f"solve {max_conflicts} {timeout_tok}"):
            return self._fault("backend-error")
        return self._await_result(limits, timeout)

    def _await_result(self, limits, timeout):
        """Consume child lines until a result; watchdog in the gaps.

        The child enforces its own solve timeout, so the parent deadline
        only backstops a wedged child: heartbeat silence beyond
        ``watchdog_grace`` intervals, or running past the deadline by
        the same grace, kills and replays.
        """
        lines = self._lines
        assignment = {}
        silence_cap = self._watchdog_grace * self._heartbeat_interval
        hard_deadline = None
        if timeout is not None:
            hard_deadline = time.monotonic() + timeout + silence_cap
        last_line = time.monotonic()
        cancel = limits.cancel
        while True:
            if cancel is not None and cancel.is_set():
                return self._fault("cancelled")
            now = time.monotonic()
            if hard_deadline is not None and now > hard_deadline:
                return self._fault("deadline")
            if now - last_line > silence_cap:
                return self._fault("heartbeat-lost")
            try:
                line = lines.get(timeout=_POLL_INTERVAL)
            except Empty:
                continue
            if line is None:
                # EOF: the child died mid-solve.  Classify OOM exits so
                # the facade reports the canonical memory reason.
                code = self._proc.poll() if self._proc is not None else None
                reason = "worker-oom" if code == EXIT_OOM else "worker-crashed"
                return self._fault(reason)
            last_line = time.monotonic()
            tokens = line.split()
            if not tokens or tokens[0] == "hb":
                continue
            if tokens[0] == "v":
                for tok in tokens[1:-1]:
                    lit = int(tok)
                    assignment[abs(lit)] = 0 if lit < 0 else 1
                continue
            if tokens[0] == "r":
                return self._result(tokens, assignment)
            # Unknown chatter: tolerated (a future worker may add lines).

    def _result(self, tokens, assignment):
        try:
            verdict = tokens[1]
            reason = tokens[2]
            conflicts = int(tokens[3])
            internals = {}
            wire_ctx = None
            for pair in tokens[4:]:
                key, _, value = pair.partition("=")
                if key == "ctx":
                    # The echoed trace context: a string, not an
                    # internals counter.
                    wire_ctx = value
                    continue
                internals[key] = int(value)
        except (IndexError, ValueError):
            return self._fault("backend-error")
        self.last_wire_ctx = wire_ctx
        if wire_ctx is not None and wire_ctx != _obs.current_trace_id():
            # The child answered under a stale context (e.g. a result
            # raced a context switch) — count it; attribution reports
            # treat the echo as advisory.
            _METRICS.inc("incremental.ctx_mismatches")
        self._conflicts += conflicts
        if verdict == "sat":
            self._assignment = assignment
            return BackendResult("sat", conflicts=conflicts,
                                 internals=internals)
        if verdict == "unsat":
            return BackendResult("unsat", conflicts=conflicts,
                                 internals=internals)
        return BackendResult("unknown",
                             reason="" if reason == "-" else reason,
                             conflicts=conflicts, internals=internals)

    def _fault(self, reason):
        """Kill the child and report a per-check unknown; the mirror is
        replayed into a fresh child on the next check."""
        self._shutdown()
        self.respawns += 1
        return BackendResult("unknown", reason=reason)
