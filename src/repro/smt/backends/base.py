"""The ``SolverBackend`` seam: one protocol for every way to run a check.

The solver facade (``repro.smt.solver.Solver``) owns the term-to-CNF
pipeline — bit-blasting, Tseitin encoding, model decoding — and delegates
the *decision procedure* to a backend.  A backend is anything that can
answer "is this CNF satisfiable?":

* :class:`~repro.smt.backends.inprocess.InProcessBackend` — the bundled
  CDCL core, fed clauses incrementally by the facade;
* :class:`~repro.smt.backends.isolated.IsolatedBackend` — the sandboxed
  worker pool of ``repro.runtime.workers``, DIMACS over the wire;
* :class:`~repro.smt.backends.subprocess_dimacs.SubprocessDimacsBackend`
  — any installed DIMACS solver (kissat, cryptominisat, minisat, ...),
  shelled out per query.

Capability flags tell the facade how to drive a backend:

``supports_incremental``
    The backend keeps clause state between checks.  The facade encodes
    assertion cones into it via :meth:`SolverBackend.new_var` /
    :meth:`SolverBackend.add_clause` and passes ``cnf=None`` to
    :meth:`SolverBackend.check`.  Stateless backends instead receive the
    full DIMACS export of the current assertion set on every call.
``supports_assumptions``
    Per-call assumption literals are honored natively.  On backends
    without it the facade *re-encodes*: assumption terms ride along in
    the DIMACS export as unit clauses, which preserves correctness (each
    check re-exports from scratch, so per-call scoping is automatic) at
    the cost of losing learned-clause reuse.
``produces_models``
    SAT verdicts come with term-level model values decoded by the
    backend (stateless backends own the CNF header, so they decode).
    Incremental backends return a raw assignment instead and the facade
    decodes through its own AIG mapping.

Verdicts are plain strings here (``"sat"``/``"unsat"``/``"unknown"``);
the facade maps them onto its ``SAT``/``UNSAT``/``Unknown`` singletons.
This keeps the backend layer import-light — backends must never import
``repro.smt.solver`` (the facade imports *them*).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["BackendResult", "CheckLimits", "SolverBackend"]


@dataclass
class CheckLimits:
    """Per-check resource caps, pre-folded by the facade.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp (the
    facade has already taken the min of the caller's timeout and the
    budget's remaining wall clock); ``max_conflicts`` likewise already
    reflects the budget's remaining conflicts.  ``budget`` is passed
    through so cooperative backends can poll its memory cap mid-solve —
    backends must *not* charge conflicts to it (the facade charges once,
    from :attr:`BackendResult.conflicts`).  ``seed`` deterministically
    perturbs decision order where the backend supports it.  ``cancel``
    (a ``threading.Event``, set by a portfolio race once a winner is in)
    asks the backend to abandon the check: in-process members observe it
    at the CDCL checkpoints, subprocess members kill their child.
    """

    max_conflicts: int = None
    deadline: float = None
    budget: object = None
    seed: int = None
    cancel: object = None

    def timeout(self):
        """Remaining seconds until ``deadline`` (``None`` if uncapped)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())


@dataclass
class BackendResult:
    """One backend's answer to one check."""

    verdict: str            # "sat" | "unsat" | "unknown"
    reason: str = ""        # canonical unknown reason (see runtime.reasons)
    model: dict = None      # term-level values (produces_models backends)
    conflicts: int = 0      # conflicts spent (facade charges the budget)
    fallback: bool = False  # backend declined; facade must solve in-process
    assignment: dict = None  # raw DIMACS {var: 0/1} witness, when available
    #                          (lets the portfolio validate SAT claims
    #                          against the CNF before trusting them)
    internals: dict = None  # per-check solver work deltas (propagations,
    #                         restarts, learned, deleted, trail-reuse...);
    #                         the facade charges them to repro.smt.counters
    #                         and surfaces them on solver.check obs events


class SolverBackend:
    """Base class for pluggable decision procedures.

    Subclasses set the capability flags and implement :meth:`check`;
    incremental backends additionally implement the clause-feeding
    sub-interface (:meth:`new_var`, :meth:`add_clause`,
    :meth:`assignment`, :meth:`reseed`, plus the ``num_vars`` /
    ``clauses`` / ``conflicts`` properties).
    """

    #: Registry name; also what obs events and Table 1 rows record.
    name = "abstract"
    supports_assumptions = False
    supports_incremental = False
    produces_models = True

    # -- the decision procedure -----------------------------------------

    def check(self, cnf, assumptions=(), limits=None):
        """Decide one query; returns a :class:`BackendResult`.

        ``cnf`` is the DIMACS text of the query for stateless backends,
        or ``None`` for incremental backends (solve the accumulated
        clause state).  ``assumptions`` are internal SAT literals, only
        passed when ``supports_assumptions``.  Worker faults
        (``WorkerCrashed``/``WorkerKilled``) may propagate — the retry
        machinery above the facade handles them.
        """
        raise NotImplementedError

    def close(self):
        """Release backend-owned resources (pools, temp dirs).  No-op by
        default; the facade never calls this on shared backends."""

    # -- incremental sub-interface (supports_incremental only) ----------

    def new_var(self):
        raise NotImplementedError(
            f"backend {self.name!r} is not incremental"
        )

    def add_clause(self, lits):
        raise NotImplementedError(
            f"backend {self.name!r} is not incremental"
        )

    def assignment(self):
        """Raw SAT assignment after a SAT check (incremental backends)."""
        raise NotImplementedError(
            f"backend {self.name!r} is not incremental"
        )

    def reseed(self, seed):
        """Perturb decision order; default no-op for stateless backends
        (they receive the seed per-call via :class:`CheckLimits`)."""

    @property
    def num_vars(self):
        return 0

    @property
    def clauses(self):
        return ()

    @property
    def conflicts(self):
        return 0

    def describe(self):
        """One-line capability summary (docs, ``available_backends``)."""
        flags = []
        if self.supports_incremental:
            flags.append("incremental")
        if self.supports_assumptions:
            flags.append("assumptions")
        if self.produces_models:
            flags.append("models")
        return f"{self.name} ({', '.join(flags) or 'stateless'})"
