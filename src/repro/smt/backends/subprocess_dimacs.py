"""The subprocess-dimacs backend: shell out to any installed SAT solver.

FormalRTL-style scaling in one file: the facade exports the query as
DIMACS, this backend writes it to a temp file, execs an external solver
binary, and parses the standard SAT-competition output format back —
``s SATISFIABLE`` / ``s UNSATISFIABLE`` / ``s UNKNOWN`` verdict lines and
``v`` model lines — decoding the assignment into term-level values
through the very ``c var`` header :func:`repro.smt.dimacs.to_dimacs`
emitted.  Dropping in kissat (or cryptominisat, or a research solver)
therefore needs zero engine changes: install the binary, pass
``backend="subprocess-dimacs"``.

Solver discovery, in priority order:

1. an explicit ``command`` argument (string or argv list);
2. the ``REPRO_DIMACS_SOLVER`` environment variable (shell-split), which
   is how CI pins the bundled fake solver without installing anything;
3. a PATH scan over well-known binaries (:data:`KNOWN_SOLVERS`).

MiniSat predates the ``s``/``v`` convention — it takes an output *file*
and signals the verdict via exit code 10/20 — so commands whose basename
contains ``minisat`` get that calling convention automatically.

Failure taxonomy (all canonical, see ``repro.runtime.reasons``):
a solver that exceeds the deadline is killed and reported as
``unknown(deadline)``; garbage output, a crash, or a vanished binary is
``unknown(backend-error)`` (retryable — a reseeded retry may dodge a
flaky solver); no binary found at construction raises
:class:`BackendUnavailable` immediately rather than at the first check.
"""

from __future__ import annotations

import os
import re
import shlex
import shutil
import subprocess
import tempfile

from repro.smt.backends.base import BackendResult, CheckLimits, SolverBackend
from repro.smt.dimacs import from_dimacs

__all__ = ["SubprocessDimacsBackend", "BackendUnavailable", "KNOWN_SOLVERS"]

#: PATH-scanned binaries, in preference order.
KNOWN_SOLVERS = (
    "kissat", "cadical", "cryptominisat5", "cryptominisat", "picosat",
    "minisat", "glucose", "lingeling",
)

#: Environment variable naming the solver command (shell-split).
SOLVER_ENV = "REPRO_DIMACS_SOLVER"

_CONFLICTS_RE = re.compile(
    r"^c\s+(?:conflicts|number of conflicts)\s*[:=]?\s*(\d+)", re.IGNORECASE
)


class BackendUnavailable(RuntimeError):
    """No external DIMACS solver could be located."""


def _discover_command(command):
    """Resolve ``command`` to an argv list (see module docstring)."""
    if command is not None:
        if isinstance(command, str):
            return shlex.split(command)
        return list(command)
    env = os.environ.get(SOLVER_ENV)
    if env:
        return shlex.split(env)
    for name in KNOWN_SOLVERS:
        path = shutil.which(name)
        if path:
            return [path]
    raise BackendUnavailable(
        "backend 'subprocess-dimacs' found no SAT solver: pass command=, "
        f"set ${SOLVER_ENV}, or install one of {', '.join(KNOWN_SOLVERS)}"
    )


class SubprocessDimacsBackend(SolverBackend):
    """One external-solver invocation per check, DIMACS in, s/v lines out."""

    name = "subprocess-dimacs"
    supports_assumptions = False
    supports_incremental = False
    produces_models = True

    def __init__(self, command=None):
        self.command = _discover_command(command)
        base = os.path.basename(self.command[0]).lower()
        #: MiniSat calling convention: ``minisat in.cnf out`` + exit codes.
        self._minisat_style = "minisat" in base

    def describe(self):
        return (f"{self.name} ({' '.join(self.command)})")

    #: How often the wait loop polls the cancellation event (seconds);
    #: bounds how long a losing portfolio member outlives the winner.
    _POLL_INTERVAL = 0.05

    def check(self, cnf, assumptions=(), limits=None):
        if limits is None:
            limits = CheckLimits()
        workdir = tempfile.mkdtemp(prefix="repro-dimacs-")
        cnf_path = os.path.join(workdir, "query.cnf")
        out_path = os.path.join(workdir, "result.txt")
        proc = None
        try:
            with open(cnf_path, "w") as handle:
                handle.write(cnf)
            argv = list(self.command) + [cnf_path]
            if self._minisat_style:
                argv.append(out_path)
            try:
                proc = subprocess.Popen(
                    argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                    text=True,
                )
            except OSError:
                # The binary vanished (or was never executable) after
                # discovery: a backend failure, not a query property.
                return BackendResult("unknown", reason="backend-error")
            stdout, stopped = self._await(proc, limits)
            if stopped is not None:
                return BackendResult("unknown", reason=stopped)
            output = stdout or ""
            if self._minisat_style and os.path.exists(out_path):
                with open(out_path) as handle:
                    output = handle.read() + "\n" + output
            return self._parse(cnf, output, proc.returncode)
        finally:
            # Kill and *reap* the child before removing its workdir: a
            # solver crashed or hard-killed mid-race could otherwise
            # re-create its minisat-style result file after the rmtree,
            # leaking `repro-dimacs-*` litter (and an orphan process).
            if proc is not None:
                if proc.poll() is None:
                    proc.kill()
                try:
                    proc.communicate(timeout=5.0)
                except (subprocess.TimeoutExpired, OSError, ValueError):
                    pass
            shutil.rmtree(workdir, ignore_errors=True)

    def _await(self, proc, limits):
        """Wait for the child; returns ``(stdout, unknown_reason_or_None)``.

        Blocks in short slices so the deadline and the portfolio
        cancellation event are both observed within ``_POLL_INTERVAL``;
        on either, the child is killed (the ``finally`` in :meth:`check`
        reaps it and removes the workdir).
        """
        cancel = limits.cancel
        while True:
            if cancel is not None and cancel.is_set():
                proc.kill()
                return None, "cancelled"
            remaining = limits.timeout()
            if remaining is not None and remaining <= 0.0:
                proc.kill()
                return None, "deadline"
            if cancel is None and remaining is None:
                slice_s = None  # nothing to poll: block until exit
            elif remaining is None:
                slice_s = self._POLL_INTERVAL
            else:
                slice_s = min(self._POLL_INTERVAL, max(remaining, 0.001))
            try:
                stdout, _stderr = proc.communicate(timeout=slice_s)
                return stdout, None
            except subprocess.TimeoutExpired:
                continue

    # ------------------------------------------------------------------

    def _parse(self, cnf, output, returncode):
        """Decode solver output into a :class:`BackendResult`.

        Tolerates both the competition format (``s``/``v`` lines) and the
        MiniSat result-file format (``SAT``/``UNSAT`` headers, bare model
        line); exit codes 10/20 break ties when no verdict line exists.
        """
        verdict = None
        model_lits = []
        conflicts = 0
        for raw in output.splitlines():
            line = raw.strip()
            if not line:
                continue
            upper = line.upper()
            if upper.startswith("S "):
                word = upper[2:].strip()
                if word == "SATISFIABLE":
                    verdict = "sat"
                elif word == "UNSATISFIABLE":
                    verdict = "unsat"
                else:
                    verdict = "unknown"
            elif upper in ("SAT", "SATISFIABLE"):
                verdict = "sat"
            elif upper in ("UNSAT", "UNSATISFIABLE"):
                verdict = "unsat"
            elif upper in ("UNKNOWN", "INDETERMINATE"):
                verdict = "unknown"
            elif line.startswith(("v", "V")) and not line[1:2].isalpha():
                model_lits.extend(_ints(line[1:]))
            elif line[0] in "-0123456789" and verdict == "sat":
                # MiniSat result files carry a bare model line.
                model_lits.extend(_ints(line))
            else:
                match = _CONFLICTS_RE.match(line)
                if match:
                    conflicts = int(match.group(1))
        if verdict is None:
            if returncode == 10:
                verdict = "sat"
            elif returncode == 20:
                verdict = "unsat"
            else:
                # Crash, empty output, or text with no verdict line.
                return BackendResult("unknown", reason="backend-error")
        if verdict == "unknown":
            return BackendResult("unknown", reason="backend-error",
                                 conflicts=conflicts)
        if verdict == "unsat":
            return BackendResult("unsat", conflicts=conflicts)
        assignment = {abs(lit): (0 if lit < 0 else 1)
                      for lit in model_lits if lit != 0}
        if not assignment:
            # "SAT" with no witness: unusable for model extraction, and
            # trusting it would let a buggy solver corrupt control logic.
            return BackendResult("unknown", reason="backend-error",
                                 conflicts=conflicts)
        values = from_dimacs(cnf).model_values(assignment)
        return BackendResult("sat", model=values, conflicts=conflicts,
                             assignment=assignment)


def _ints(text):
    out = []
    for token in text.split():
        try:
            out.append(int(token))
        except ValueError:
            return []  # garbage inside a model line: discard the line
    return out
