"""Per-member health ledger for portfolio racing.

Every portfolio member has a :class:`MemberHealth` record tracking an
EWMA of its answer latency, consecutive-fault and consecutive-loss
counters, and its position in the quarantine state machine::

    healthy ──(faults ≥ quarantine_after,              ┌─────────┐
    ▲          or losses ≥ loss_quarantine_after)────► │quarantin│
    │                                                  │   ed    │
    │  probe answers sat/unsat                         └────┬────┘
    └──────────────◄── probe ◄──(backoff expired)──────────┘
                       │
                       └──(probe faults)──► re-quarantined,
                                            backoff grown (jittered)

*Faults* are unknowns whose canonical reason indicates the member is
sick (``backend-error``, ``deadline``, worker deaths, malformed models);
budget-reason unknowns (``conflicts``/``memory``/``iterations``) are
neutral — every member shares the caller's caps, so hitting one says
nothing about this member.  *Losses* are race cancellations: normal for
a slower member occasionally, but a member that never wins is dead
weight as a primary, so persistent losing also quarantines (with a
higher threshold).

Quarantine backoff grows by decorrelated jitter
(:func:`repro.runtime.retry.decorrelated_jitter`) — roughly exponential
but desynchronized across members, and deterministic given ``seed``.
Once the backoff expires the member becomes a *probe*: it rejoins races
as a hedge (never as primary); a definitive answer restores it to
healthy, another fault re-quarantines it with a grown backoff.

The ledger is thread-safe (race member threads deliver concurrently)
and lives as long as the portfolio backend — the registry factory hands
out a singleton, so health survives across ``Solver`` instances and
CEGIS iterations.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.runtime.reasons import BUDGET_REASONS, normalize_reason
from repro.runtime.retry import decorrelated_jitter

__all__ = ["MemberHealth", "HealthLedger"]

#: Unknown-reasons that are *neutral* for health purposes: shared
#: resource caps, or the race itself cancelling a loser.
_NEUTRAL_REASONS = (BUDGET_REASONS - {"deadline"}) | {"cancelled"}


@dataclass
class MemberHealth:
    """One member's ledger entry (mutated only under the ledger lock)."""

    name: str
    state: str = "healthy"          # "healthy" | "quarantined"
    ewma_latency: float = None      # seconds; None until first answer
    consecutive_faults: int = 0
    consecutive_losses: int = 0
    checks: int = 0                 # races this member was launched into
    wins: int = 0
    faults: int = 0                 # lifetime fault count
    losses: int = 0                 # lifetime cancelled-as-loser count
    quarantines: int = 0            # lifetime quarantine entries
    probes: int = 0                 # lifetime probe dispatches
    quarantined_until: float = None  # monotonic timestamp; None if healthy
    quarantine_backoff: float = 0.0  # last backoff duration (grows)
    last_reason: str = ""           # most recent fault reason
    reasons: dict = field(default_factory=dict)  # reason -> count

    def snapshot(self):
        """A JSON-able view for obs events and reports."""
        return {
            "name": self.name,
            "state": self.state,
            "ewma_latency": self.ewma_latency,
            "consecutive_faults": self.consecutive_faults,
            "consecutive_losses": self.consecutive_losses,
            "checks": self.checks,
            "wins": self.wins,
            "faults": self.faults,
            "losses": self.losses,
            "quarantines": self.quarantines,
            "probes": self.probes,
            "last_reason": self.last_reason,
            "reasons": dict(self.reasons),
        }


class HealthLedger:
    """Thread-safe health scoring and quarantine for portfolio members."""

    def __init__(self, quarantine_after=3, loss_quarantine_after=5,
                 quarantine_base=0.25, quarantine_cap=30.0,
                 ewma_alpha=0.3, seed=2024, clock=time.monotonic):
        self.quarantine_after = max(1, int(quarantine_after))
        self.loss_quarantine_after = max(1, int(loss_quarantine_after))
        self.quarantine_base = quarantine_base
        self.quarantine_cap = quarantine_cap
        self.ewma_alpha = ewma_alpha
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._members = {}
        #: quarantine entries this ledger has recorded (metrics hook).
        self.quarantine_events = 0

    # -- access ----------------------------------------------------------

    def member(self, name):
        with self._lock:
            return self._member(name)

    def _member(self, name):
        record = self._members.get(name)
        if record is None:
            record = self._members[name] = MemberHealth(name=name)
        return record

    def snapshot(self):
        with self._lock:
            return {name: record.snapshot()
                    for name, record in self._members.items()}

    # -- the state machine ----------------------------------------------

    def status(self, name):
        """``"healthy"``, ``"probe"`` (backoff expired) or ``"quarantined"``."""
        with self._lock:
            record = self._member(name)
            if record.state == "healthy":
                return "healthy"
            if (record.quarantined_until is not None
                    and self._clock() >= record.quarantined_until):
                return "probe"
            return "quarantined"

    def record_launch(self, name, probe=False):
        with self._lock:
            record = self._member(name)
            record.checks += 1
            if probe:
                record.probes += 1

    def record_success(self, name, latency, won=False):
        """A definitive (validated) sat/unsat answer: full health restore."""
        with self._lock:
            record = self._member(name)
            record.consecutive_faults = 0
            record.consecutive_losses = 0
            record.state = "healthy"
            record.quarantined_until = None
            record.quarantine_backoff = 0.0
            if won:
                record.wins += 1
            self._update_ewma(record, latency)

    def record_fault(self, name, reason, latency=None):
        """An unknown/exception from this member; may enter quarantine.

        Neutral reasons (shared budget caps, race cancellation) are
        recorded but do not count toward quarantine.  Returns the
        member's post-update state.
        """
        reason = normalize_reason(reason)
        with self._lock:
            record = self._member(name)
            record.reasons[reason] = record.reasons.get(reason, 0) + 1
            if reason in _NEUTRAL_REASONS:
                return record.state
            record.faults += 1
            record.consecutive_faults += 1
            record.last_reason = reason
            if latency is not None:
                self._update_ewma(record, latency)
            if (record.state == "quarantined"
                    or record.consecutive_faults >= self.quarantine_after):
                self._quarantine(record)
            return record.state

    def record_loss(self, name, latency=None):
        """The race cancelled this member after a winner answered."""
        with self._lock:
            record = self._member(name)
            record.losses += 1
            record.consecutive_losses += 1
            record.reasons["cancelled"] = record.reasons.get("cancelled", 0) + 1
            if record.state == "quarantined":
                # A probe that lost the race learned nothing: re-arm the
                # current backoff without growing it.
                record.quarantined_until = \
                    self._clock() + max(record.quarantine_backoff,
                                        self.quarantine_base)
            elif record.consecutive_losses >= self.loss_quarantine_after:
                self._quarantine(record)
            return record.state

    def _quarantine(self, record):
        """Enter (or deepen) quarantine with jittered exponential backoff."""
        record.state = "quarantined"
        record.quarantines += 1
        self.quarantine_events += 1
        record.quarantine_backoff = decorrelated_jitter(
            self._rng, self.quarantine_base, self.quarantine_cap,
            record.quarantine_backoff,
        )
        record.quarantined_until = self._clock() + record.quarantine_backoff
        record.consecutive_faults = 0
        record.consecutive_losses = 0

    def _update_ewma(self, record, latency):
        if latency is None:
            return
        if record.ewma_latency is None:
            record.ewma_latency = latency
        else:
            record.ewma_latency = (
                self.ewma_alpha * latency
                + (1.0 - self.ewma_alpha) * record.ewma_latency
            )

    # -- lineup help -----------------------------------------------------

    def sort_key(self, name, index):
        """Primary-selection key: proven-fast members first, then config
        order; members with no latency history sort after proven ones."""
        with self._lock:
            record = self._member(name)
            ewma = record.ewma_latency
        return (0, ewma, index) if ewma is not None else (1, 0.0, index)
