"""Fault-tolerant portfolio solving: hedged backend racing.

:class:`PortfolioBackend` answers each check by racing a configurable
set of *member* backends and returning the first trustworthy answer:

**Hedged dispatch.**  The primary member (healthiest, proven-fastest)
launches immediately; the remaining members launch only after a hedge
delay — explicit (``hedge_delay=``) or derived from the primary's EWMA
latency (``hedge_latency_factor`` × EWMA, ``default_hedge_delay`` when
there is no history yet).  A healthy fast path therefore pays ~zero
overhead: the hedges usually never start.

**First-answer-wins cancellation.**  Once a winner is in (and, for SAT
claims, its witness has been validated against the CNF), every other
member's ``CheckLimits.cancel`` event is set: in-process members stop
at the CDCL checkpoints, subprocess members are hard-killed and reaped.
All member threads are joined before ``check`` returns — no orphan
processes, no leaked temp files.

**Health ledger and quarantine.**  Every outcome feeds the
:class:`~repro.smt.backends.health.HealthLedger`: faults quarantine a
member behind jittered-exponential backoff, after which it re-enters
races as a *probe* hedge until it proves itself again.  A flaky external
solver therefore degrades to the in-process CDCL instead of stalling
CEGIS; if *every* member is quarantined, the trusted member answers
alone.

**Disagreement sentinel.**  Conflicting SAT/UNSAT verdicts are never
silently resolved: the portfolio re-checks with the trusted member (the
one-shot in-process CDCL), records a ``portfolio.disagreement`` obs
event with full query provenance, and raises
:class:`~repro.runtime.errors.SoundnessViolation`.  A lying member
cannot win by default either way: SAT claims are self-certifying (the
witness is validated against the CNF), and an UNSAT claim — which has
no cheap certificate — only wins outright when it comes from the
trusted member or a quorum of two; a sole untrusted UNSAT is confirmed
by the trusted member first (``confirm_unsat=False`` disables this,
trading soundness for speed).  ``min_agreement >= 2`` additionally
requires that many concurring members for *every* verdict.

Member roster, in priority order: an explicit ``members=`` list
(backend instances, registered names, or ``cmd:<argv>`` entries that
shell out via :class:`SubprocessDimacsBackend`), the
``$REPRO_PORTFOLIO`` environment variable (semicolon-separated entries
of the same forms), or the default roster (the one-shot in-process CDCL
plus any discoverable external DIMACS solver).

Obs: each check runs under a ``portfolio.race`` span with per-member
``portfolio.member`` events and a closing ``portfolio.outcome`` event
(winner, hedge-fired, cancel latency); counters land in the unified
metrics registry under ``portfolio.*``.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, replace

from repro.obs import flight as _flight
from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.runtime.errors import RuntimeFault, SoundnessViolation
from repro.runtime.reasons import normalize_reason
from repro.smt.backends.base import BackendResult, CheckLimits, SolverBackend
from repro.smt.backends.health import HealthLedger

__all__ = ["PortfolioBackend", "PORTFOLIO_ENV", "shared_portfolio"]

#: Semicolon-separated member roster (see module docstring).
PORTFOLIO_ENV = "REPRO_PORTFOLIO"
#: Optional env overrides for the two knobs CI lanes care about.
HEDGE_DELAY_ENV = "REPRO_PORTFOLIO_HEDGE_DELAY"
MIN_AGREEMENT_ENV = "REPRO_PORTFOLIO_MIN_AGREEMENT"

_DEFINITIVE = ("sat", "unsat")


@dataclass
class _Member:
    """One roster slot: a label unique within this portfolio."""

    label: str
    backend: SolverBackend
    index: int
    trusted: bool = False


class _ParsedCnf:
    """Lazy, once-per-check parse of the query (for model validation)."""

    def __init__(self, text):
        self._text = text
        self._lock = threading.Lock()
        self._parsed = None

    def get(self):
        with self._lock:
            if self._parsed is None:
                from repro.smt.dimacs import from_dimacs

                self._parsed = from_dimacs(self._text)
            return self._parsed


def _resolve_member(entry, worker_pool):
    """Turn one roster entry into a stateless member backend."""
    from repro.smt.backends.inprocess import (
        InProcessBackend,
        OneShotCdclBackend,
    )

    if isinstance(entry, SolverBackend):
        if isinstance(entry, InProcessBackend) or entry.supports_incremental:
            # Incremental backends cannot be raced (each member needs the
            # full query per call); substitute the one-shot equivalent.
            return OneShotCdclBackend()
        return entry
    text = str(entry).strip()
    if text.startswith("cmd:"):
        from repro.smt.backends.subprocess_dimacs import (
            SubprocessDimacsBackend,
        )

        return SubprocessDimacsBackend(command=text[len("cmd:"):].strip())
    if text in ("inprocess", "inprocess-oneshot"):
        return OneShotCdclBackend()
    if text == "portfolio":
        raise ValueError("a portfolio cannot be a member of itself")
    from repro.smt.backends.registry import resolve_backend

    backend = resolve_backend(text, worker_pool=worker_pool)
    if backend.supports_incremental:
        return OneShotCdclBackend()
    return backend


def _default_roster():
    """One-shot in-process CDCL, plus an external solver if one exists."""
    from repro.smt.backends.subprocess_dimacs import (
        BackendUnavailable,
        SubprocessDimacsBackend,
    )

    roster = ["inprocess"]
    try:
        roster.append(SubprocessDimacsBackend())
    except BackendUnavailable:
        pass
    return roster


class PortfolioBackend(SolverBackend):
    """Race member backends per check; first validated answer wins."""

    name = "portfolio"
    supports_assumptions = False
    supports_incremental = False
    produces_models = True

    def __init__(self, members=None, *, hedge_delay=None,
                 default_hedge_delay=0.05, hedge_latency_factor=2.0,
                 min_agreement=1, validate_models=True, confirm_unsat=True,
                 ledger=None,
                 quarantine_after=3, loss_quarantine_after=5,
                 quarantine_base=0.25, quarantine_cap=30.0,
                 seed=2024, join_timeout=10.0, worker_pool=None):
        if members is None:
            env = os.environ.get(PORTFOLIO_ENV, "")
            entries = [e.strip() for e in env.split(";") if e.strip()]
            members = entries or _default_roster()
        if not members:
            raise ValueError("portfolio needs at least one member backend")
        self.hedge_delay = hedge_delay
        self.default_hedge_delay = default_hedge_delay
        self.hedge_latency_factor = hedge_latency_factor
        self.min_agreement = max(1, int(min_agreement))
        self.validate_models = validate_models
        self.confirm_unsat = confirm_unsat
        self.seed = seed
        self.join_timeout = join_timeout
        self.ledger = ledger if ledger is not None else HealthLedger(
            quarantine_after=quarantine_after,
            loss_quarantine_after=loss_quarantine_after,
            quarantine_base=quarantine_base,
            quarantine_cap=quarantine_cap,
            seed=seed,
        )
        self._members = []
        labels = {}
        for index, entry in enumerate(members):
            backend = _resolve_member(entry, worker_pool)
            base = backend.name
            labels[base] = labels.get(base, 0) + 1
            label = base if labels[base] == 1 else f"{base}#{labels[base]}"
            self._members.append(_Member(label=label, backend=backend,
                                         index=index))
        # The trusted member: the first one-shot in-process CDCL on the
        # roster, or an implicit one kept off the roster.  It serves
        # disagreement re-checks and full-quarantine degradation.
        from repro.smt.backends.inprocess import OneShotCdclBackend

        trusted = next(
            (m for m in self._members
             if isinstance(m.backend, OneShotCdclBackend)), None)
        if trusted is not None:
            trusted.trusted = True
            self._trusted = trusted
        else:
            self._trusted = _Member(
                label="trusted-inprocess", backend=OneShotCdclBackend(),
                index=len(self._members), trusted=True,
            )

    def describe(self):
        roster = ", ".join(m.label for m in self._members)
        return f"{self.name} [{roster}]"

    @property
    def members(self):
        """Roster labels, config order (tests and reports)."""
        return tuple(m.label for m in self._members)

    # ------------------------------------------------------------------

    def check(self, cnf, assumptions=(), limits=None):
        if limits is None:
            limits = CheckLimits()
        _METRICS.inc("portfolio.races")
        with _obs.span(
            "portfolio.race", backend=self.name,
            members=list(self.members),
        ) as race_span:
            return self._race(cnf, limits, race_span)

    # -- race machinery -------------------------------------------------

    def _race(self, cnf, limits, race_span):
        primary, hedges = self._lineup()
        if primary is None:
            # Everyone quarantined with backoffs unexpired: degrade to
            # the trusted member (the "flaky solver must not stall
            # CEGIS" guarantee).
            _METRICS.inc("portfolio.degraded")
            _obs.event("portfolio.degraded", span_parent=race_span.id,
                       trusted=self._trusted.label)
            return self._trusted_check(cnf, limits)
        parsed = _ParsedCnf(cnf)
        cond = threading.Condition()
        outcomes = {}       # label -> (BackendResult, latency)
        order = []          # delivery order of definitive outcomes
        threads, events = {}, {}
        launched = []

        def deliver(member, result, latency):
            with cond:
                outcomes[member.label] = (result, latency)
                if result.verdict in _DEFINITIVE:
                    order.append(member.label)
                cond.notify_all()

        def launch(member, probe=False):
            event = threading.Event()
            events[member.label] = event
            launched.append(member)
            self.ledger.record_launch(member.label, probe=probe)
            member_limits = self._member_limits(member, limits, event)
            parent_id = race_span.id
            # Span parent AND trace context are both thread-local: pin
            # them here so member-thread events stay attached to the
            # race and attributed to the submitting job's trace.
            trace_ctx = _obs.current_trace_id()

            def run():
                started = time.monotonic()
                with _obs.trace_context(trace_ctx):
                    try:
                        result = member.backend.check(
                            cnf, limits=member_limits)
                    except Exception as exc:  # fault taxonomy + surprises
                        result = BackendResult(
                            "unknown", reason=_fault_reason(exc))
                    result = self._vet(parsed, result)
                    latency = time.monotonic() - started
                    _obs.event(
                        "portfolio.member", span_parent=parent_id,
                        member=member.label, verdict=result.verdict,
                        reason=result.reason, latency=round(latency, 6),
                        probe=probe,
                    )
                    deliver(member, result, latency)

            thread = threading.Thread(
                target=run, name=f"portfolio-{member.label}", daemon=True)
            threads[member.label] = thread
            thread.start()

        started = time.monotonic()
        launch(primary)
        hedge_at = started + self._hedge_delay_for(primary)
        hedges_fired = False
        aborted = None
        while True:
            with cond:
                verdicts = {label: outcomes[label][0].verdict
                            for label in order}
                if self._conflicting(verdicts):
                    break
                if self._agreed(verdicts) is not None:
                    break
                if len(outcomes) == len(launched) and (hedges_fired
                                                       or not hedges):
                    break  # drained: nobody else is coming
                now = time.monotonic()
                waits = [0.25]
                if not hedges_fired and hedges:
                    waits.append(hedge_at - now)
                if limits.deadline is not None:
                    waits.append(limits.deadline - now)
                wait = max(0.0, min(waits))
                cond.wait(wait)
            now = time.monotonic()
            if limits.cancel is not None and limits.cancel.is_set():
                aborted = "cancelled"
                break
            if limits.deadline is not None and now > limits.deadline:
                aborted = "deadline"
                break
            if not hedges_fired and hedges and (
                now >= hedge_at or len(outcomes) >= len(launched)
            ):
                # The hedge delay expired — or the primary already came
                # back without a definitive answer.
                hedges_fired = True
                _METRICS.inc("portfolio.hedges_fired")
                for member, probe in hedges:
                    launch(member, probe=probe)

        # First answer wins: cancel everyone still running, then join
        # every member thread so no process or temp dir outlives us.
        cancel_started = time.monotonic()
        with cond:
            still_running = [m.label for m in launched
                             if m.label not in outcomes]
        for event in events.values():
            event.set()
        for thread in threads.values():
            thread.join(timeout=self.join_timeout)
        stragglers = [label for label, thread in threads.items()
                      if thread.is_alive()]
        cancel_latency = time.monotonic() - cancel_started
        if still_running:
            _METRICS.inc("portfolio.cancellations", len(still_running))
        return self._settle(
            cnf, limits, parsed, outcomes, order, launched, stragglers,
            hedges_fired, cancel_latency, aborted, race_span,
        )

    def _settle(self, cnf, limits, parsed, outcomes, order, launched,
                stragglers, hedges_fired, cancel_latency, aborted,
                race_span):
        """Bookkeeping + verdict selection after every thread is joined."""
        verdicts = {label: outcomes[label][0].verdict for label in order}
        winner_label = self._agreed(verdicts)
        conflict = self._conflicting(verdicts)

        # Health bookkeeping for every launched member.
        quarantines_before = self.ledger.quarantine_events
        for member in launched:
            entry = outcomes.get(member.label)
            if entry is None:
                # Ignored the cancel event past the join timeout: as
                # good as a hang.
                self.ledger.record_fault(member.label, "heartbeat-lost")
                continue
            result, latency = entry
            if result.verdict in _DEFINITIVE:
                won = member.label == winner_label and not conflict
                self.ledger.record_success(member.label, latency, won=won)
            elif normalize_reason(result.reason) == "cancelled":
                self.ledger.record_loss(member.label, latency)
            else:
                self.ledger.record_fault(member.label, result.reason,
                                         latency)
        new_quarantines = self.ledger.quarantine_events - quarantines_before
        if new_quarantines:
            _METRICS.inc("portfolio.quarantines", new_quarantines)

        if conflict:
            self._disagree(cnf, limits, outcomes, order, race_span)

        outcome_attrs = {
            "winner": winner_label,
            "verdict": verdicts.get(winner_label),
            "hedges_fired": hedges_fired,
            "cancel_latency": round(cancel_latency, 6),
            "stragglers": stragglers,
            "outcomes": {
                label: {"verdict": result.verdict,
                        "reason": result.reason,
                        "latency": round(latency, 6)}
                for label, (result, latency) in outcomes.items()
            },
        }

        if winner_label is not None:
            _obs.event("portfolio.outcome", span_parent=race_span.id,
                       **outcome_attrs)
            return outcomes[winner_label][0]

        if order:
            # Definitive answers exist but fewer than min_agreement of
            # them agree (the rest hung, crashed, or were cancelled).
            sole = order[0]
            sole_result = outcomes[sole][0]
            member = next(m for m in launched if m.label == sole)
            if member.trusted:
                # The trusted member needs no confirmation.
                outcome_attrs["winner"] = sole
                outcome_attrs["verdict"] = sole_result.verdict
                _obs.event("portfolio.outcome", span_parent=race_span.id,
                           **outcome_attrs)
                return sole_result
            _METRICS.inc("portfolio.confirmations")
            trusted_result = self._trusted_check(cnf, limits)
            if trusted_result.verdict in _DEFINITIVE \
                    and trusted_result.verdict != sole_result.verdict:
                all_outcomes = dict(outcomes)
                all_outcomes[self._trusted.label] = (trusted_result, 0.0)
                self._disagree(cnf, limits, all_outcomes,
                               order + [self._trusted.label], race_span,
                               trusted_result=trusted_result)
            if trusted_result.verdict == sole_result.verdict:
                outcome_attrs["winner"] = sole
                outcome_attrs["verdict"] = sole_result.verdict
                outcome_attrs["confirmed_by"] = self._trusted.label
                _obs.event("portfolio.outcome", span_parent=race_span.id,
                           **outcome_attrs)
                return sole_result
            # The trusted member could not confirm (unknown): returning
            # the unverified verdict would defeat min_agreement, so
            # degrade honestly.
            _obs.event("portfolio.outcome", span_parent=race_span.id,
                       **outcome_attrs)
            return trusted_result

        # No definitive answer from anyone.
        _obs.event("portfolio.outcome", span_parent=race_span.id,
                   **outcome_attrs)
        if aborted == "cancelled":
            return BackendResult("unknown", reason="cancelled")
        if aborted == "deadline":
            return BackendResult("unknown", reason="deadline")
        # All members faulted or hit caps: one last trusted attempt
        # (unless the trusted member already raced and failed).
        if any(m.trusted for m in launched):
            entry = outcomes.get(self._trusted.label)
            if entry is not None:
                return entry[0]
        _METRICS.inc("portfolio.degraded")
        return self._trusted_check(cnf, limits)

    # -- helpers ---------------------------------------------------------

    def _lineup(self):
        """``(primary, [(member, probe), ...])`` for this race."""
        healthy, probes = [], []
        for member in self._members:
            status = self.ledger.status(member.label)
            if status == "healthy":
                healthy.append(member)
            elif status == "probe":
                probes.append(member)
        healthy.sort(
            key=lambda m: self.ledger.sort_key(m.label, m.index))
        if probes:
            _METRICS.inc("portfolio.probes", len(probes))
        if not healthy:
            if not probes:
                return None, []
            # Probes may not be primaries: the trusted member leads,
            # probes ride along as hedges.
            if any(m.trusted for m in probes):
                # ... unless the trusted member itself is the probe.
                trusted = next(m for m in probes if m.trusted)
                rest = [(m, True) for m in probes if m is not trusted]
                return trusted, rest
            return self._trusted, [(m, True) for m in probes]
        hedges = [(m, False) for m in healthy[1:]]
        hedges.extend((m, True) for m in probes)
        return healthy[0], hedges

    def _hedge_delay_for(self, primary):
        if self.hedge_delay is not None:
            return self.hedge_delay
        record = self.ledger.member(primary.label)
        if record.ewma_latency:
            return record.ewma_latency * self.hedge_latency_factor
        return self.default_hedge_delay

    def _member_limits(self, member, limits, cancel_event):
        seed = limits.seed
        if seed is not None and member.index:
            # Diversify decision order across members so they explore
            # the search space differently.
            seed = seed + 1009 * member.index
        return replace(limits, seed=seed, cancel=cancel_event)

    def _vet(self, parsed, result):
        """Validate a SAT claim's witness against the CNF.

        A fabricated or corrupted model (a lying solver) becomes a
        ``malformed-model`` fault instead of a race winner.
        """
        if (not self.validate_models or result.verdict != "sat"
                or result.assignment is None):
            return result
        assignment = result.assignment
        for clause in parsed.get().clauses:
            for lit in clause:
                value = assignment.get(abs(lit), 0)
                if (lit > 0 and value) or (lit < 0 and not value):
                    break
            else:
                return BackendResult("unknown", reason="malformed-model",
                                     conflicts=result.conflicts)
        return result

    def _agreed(self, verdicts):
        """The winning label once ``min_agreement`` members concur.

        An UNSAT claim has no checkable certificate (unlike a SAT
        witness, which :meth:`_vet` validates), so with
        ``confirm_unsat`` a sole untrusted UNSAT never wins here — it
        falls through to the trusted-confirmation path in
        :meth:`_settle` instead.
        """
        if self._conflicting(verdicts):
            return None
        counts = {}
        for label, verdict in verdicts.items():
            counts[verdict] = counts.get(verdict, 0) + 1
        quorum = min(self.min_agreement, len(self._members))
        for verdict, count in counts.items():
            if count < quorum:
                continue
            supporters = [label for label in verdicts
                          if verdicts[label] == verdict]
            if (verdict == "unsat" and self.confirm_unsat
                    and count < max(quorum, 2)
                    and self._trusted.label not in supporters):
                continue
            return supporters[0]  # first delivered wins
        return None

    @staticmethod
    def _conflicting(verdicts):
        values = set(verdicts.values())
        return "sat" in values and "unsat" in values

    def _trusted_check(self, cnf, limits):
        trusted_limits = replace(limits, cancel=None)
        return self._trusted.backend.check(cnf, limits=trusted_limits)

    def _disagree(self, cnf, limits, outcomes, order, race_span,
                  trusted_result=None):
        """The disagreement sentinel: evidence, ledger, typed raise."""
        _METRICS.inc("portfolio.disagreements")
        verdicts = {label: outcomes[label][0].verdict for label in order}
        if trusted_result is None and not any(
            label == self._trusted.label for label in order
        ):
            trusted_result = self._trusted_check(cnf, limits)
        if trusted_result is None:  # the trusted member raced and answered
            trusted_verdict = outcomes[self._trusted.label][0].verdict
        else:
            trusted_verdict = trusted_result.verdict
        # Fault whoever the trusted re-check contradicts; if the trusted
        # member could not answer, fault every definitive member (one of
        # them lies and we cannot tell which).
        for label in order:
            if label == self._trusted.label:
                continue
            if trusted_verdict not in _DEFINITIVE \
                    or verdicts[label] != trusted_verdict:
                self.ledger.record_fault(label, "disagreement")
        digest = hashlib.sha256(cnf.encode()).hexdigest()[:16]
        _obs.event(
            "portfolio.disagreement", span_parent=race_span.id,
            verdicts=verdicts, trusted=self._trusted.label,
            trusted_verdict=trusted_verdict, query_sha256=digest,
            query_chars=len(cnf),
            outcomes={
                label: {"verdict": result.verdict, "reason": result.reason,
                        "latency": round(latency, 6)}
                for label, (result, latency) in outcomes.items()
            },
            health=self.ledger.snapshot(),
        )
        # A soundness violation is exactly the moment the flight
        # recorder exists for: dump the recent-history ring before the
        # raise unwinds the engine, so the evidence survives even when
        # tracing is off.
        _flight.flight_dump(f"soundness-{digest}")
        raise SoundnessViolation(
            f"portfolio members disagree on query {digest}: "
            + ", ".join(f"{label}={verdict}"
                        for label, verdict in sorted(verdicts.items()))
            + f" (trusted {self._trusted.label} says {trusted_verdict})",
            verdicts=verdicts, trusted=self._trusted.label,
        )


def _fault_reason(exc):
    """Canonical reason for an exception a member raised mid-race."""
    if isinstance(exc, RuntimeFault):
        return normalize_reason(getattr(exc, "reason", "backend-error"))
    return "backend-error"


# -- registry factory -------------------------------------------------------

_SHARED_LOCK = threading.Lock()
_SHARED = {}


def shared_portfolio(worker_pool=None):
    """The process-wide portfolio instance for the current env config.

    The registry factory is called once per ``Solver`` construction;
    handing every solver the same instance is what makes the health
    ledger persist across CEGIS iterations and engine phases.  Keyed by
    the env knobs so tests that monkeypatch ``$REPRO_PORTFOLIO`` get a
    fresh portfolio rather than a stale roster.
    """
    key = (
        os.environ.get(PORTFOLIO_ENV, ""),
        os.environ.get(HEDGE_DELAY_ENV, ""),
        os.environ.get(MIN_AGREEMENT_ENV, ""),
        id(worker_pool) if worker_pool is not None else None,
    )
    with _SHARED_LOCK:
        backend = _SHARED.get(key)
        if backend is None:
            kwargs = {}
            if key[1]:
                kwargs["hedge_delay"] = float(key[1])
            if key[2]:
                kwargs["min_agreement"] = int(key[2])
            backend = PortfolioBackend(worker_pool=worker_pool, **kwargs)
            _SHARED[key] = backend
        return backend
