"""The in-process backend: the bundled CDCL core behind the seam.

This is the migration target of the old ``Solver._check_inprocess`` path:
the facade used to own a ``SatSolver`` directly and branch on
``execution=``; now the same core lives behind the
:class:`~repro.smt.backends.base.SolverBackend` protocol as the one
incremental, assumption-capable backend.  The facade feeds it Tseitin
clauses as assertions arrive (``new_var``/``add_clause``) and each
``check`` solves the accumulated state — learned clauses and variable
activities survive across calls, which is what the incremental CEGIS
pipeline's encode-once verifier is built on.
"""

from __future__ import annotations

from repro.runtime.reasons import normalize_reason
from repro.smt.backends.base import BackendResult, CheckLimits, SolverBackend
from repro.smt.sat.solver import SatSolver

__all__ = ["InProcessBackend", "OneShotCdclBackend"]


class InProcessBackend(SolverBackend):
    """The bundled CDCL SAT core, solving in the engine process."""

    name = "inprocess"
    supports_assumptions = True
    supports_incremental = True
    produces_models = False  # raw assignments; the facade decodes

    def __init__(self):
        self._sat = SatSolver()

    # -- incremental clause feeding -------------------------------------

    def new_var(self):
        return self._sat.new_var()

    def add_clause(self, lits):
        self._sat.add_clause(lits)

    def assignment(self):
        return self._sat.model()

    def reseed(self, seed):
        self._sat.reseed(seed)

    @property
    def num_vars(self):
        return self._sat.num_vars

    @property
    def clauses(self):
        return self._sat.clauses

    @property
    def conflicts(self):
        return self._sat.conflicts

    # -- the check itself ------------------------------------------------

    def check(self, cnf=None, assumptions=(), limits=None):
        """Solve the accumulated clause state (``cnf`` must be ``None``).

        The budget rides along only for its cooperative memory-cap polls
        at the core's checkpoints; conflict accounting is returned in the
        result and charged by the facade.
        """
        if cnf is not None:
            raise ValueError(
                "the in-process backend solves its incremental state; "
                "pass cnf=None (use solve_dimacs for one-shot CNF replay)"
            )
        if limits is None:
            limits = CheckLimits()
        before = self._sat.conflicts
        internals_before = self._sat.internals()
        verdict = self._sat.solve(
            assumptions=list(assumptions),
            max_conflicts=limits.max_conflicts,
            deadline=limits.deadline,
            budget=limits.budget,
            cancel=limits.cancel,
        )
        spent = self._sat.conflicts - before
        internals = {
            key: value - internals_before[key]
            for key, value in self._sat.internals().items()
        }
        if verdict is None:
            return BackendResult(
                "unknown",
                reason=normalize_reason(self._sat.stop_reason),
                conflicts=spent,
                internals=internals,
            )
        return BackendResult("sat" if verdict else "unsat", conflicts=spent,
                             internals=internals)


class OneShotCdclBackend(SolverBackend):
    """The bundled CDCL core as a *stateless* DIMACS-per-check backend.

    Same decision procedure as :class:`InProcessBackend`, but speaking
    the stateless protocol: every check replays the full DIMACS export
    on a fresh ``SatSolver`` and decodes the model itself.  This is the
    trusted member of a portfolio race — it shares no process, file or
    clause state with the external members it races, can be cancelled
    cooperatively at the CDCL checkpoints, and is always available (no
    binary discovery, no pool).
    """

    name = "inprocess-oneshot"
    supports_assumptions = False
    supports_incremental = False
    produces_models = True

    def check(self, cnf, assumptions=(), limits=None):
        from repro.smt.dimacs import from_dimacs, solve_dimacs

        if limits is None:
            limits = CheckLimits()
        parsed = from_dimacs(cnf)
        solver = SatSolver()
        verdict, values, conflicts = solve_dimacs(
            parsed,
            max_conflicts=limits.max_conflicts,
            deadline=limits.deadline,
            budget=limits.budget,
            seed=limits.seed,
            solver=solver,
            cancel=limits.cancel,
        )
        internals = solver.internals()  # fresh solver: totals == this check
        if verdict.startswith("unknown"):
            _, _, reason = verdict.partition(":")
            return BackendResult("unknown",
                                 reason=normalize_reason(reason),
                                 conflicts=conflicts,
                                 internals=internals)
        if verdict == "unsat":
            return BackendResult("unsat", conflicts=conflicts,
                                 internals=internals)
        assignment = solver.model()
        return BackendResult("sat", model=values, conflicts=conflicts,
                             assignment=assignment, internals=internals)
