"""Pluggable solver backends: one seam for every decision procedure.

The paper's engine is solver-agnostic in principle (Rosette retargets
Boolector or CVC4 per query); this package makes the reproduction match.
A :class:`SolverBackend` answers CNF queries; the facade
(``repro.smt.solver.Solver``) owns encoding and model decoding and
delegates the decision to whichever backend is selected — per solver,
per run (``SolverConfig``), or process-wide (``$REPRO_BACKEND``).

Built-ins: ``inprocess`` (the bundled CDCL core, incremental),
``isolated`` (sandboxed worker subprocesses), ``subprocess-dimacs``
(any installed DIMACS solver, kissat/cryptominisat/minisat-style),
``incremental-subprocess`` (a persistent sandboxed child hosting the
CDCL core — incremental solving *with* crash containment), and
``portfolio`` (hedged racing over member backends with health scoring
and a disagreement sentinel).  ``register_backend`` adds more without
touching any engine code.
"""

from repro.smt.backends.base import BackendResult, CheckLimits, SolverBackend
from repro.smt.backends.config import SolverConfig, resolve_solver_config
from repro.smt.backends.health import HealthLedger, MemberHealth
from repro.smt.backends.incremental_subprocess import (
    WORKER_ENV,
    IncrementalSubprocessBackend,
)
from repro.smt.backends.inprocess import InProcessBackend, OneShotCdclBackend
from repro.smt.backends.isolated import IsolatedBackend
from repro.smt.backends.portfolio import (
    PORTFOLIO_ENV,
    PortfolioBackend,
    shared_portfolio,
)
from repro.smt.backends.registry import (
    BACKEND_ENV,
    available_backends,
    backend_capabilities,
    default_backend_name,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)
from repro.smt.backends.subprocess_dimacs import (
    BackendUnavailable,
    KNOWN_SOLVERS,
    SubprocessDimacsBackend,
)

__all__ = [
    "SolverBackend",
    "BackendResult",
    "CheckLimits",
    "SolverConfig",
    "resolve_solver_config",
    "InProcessBackend",
    "OneShotCdclBackend",
    "IsolatedBackend",
    "SubprocessDimacsBackend",
    "IncrementalSubprocessBackend",
    "WORKER_ENV",
    "PortfolioBackend",
    "shared_portfolio",
    "PORTFOLIO_ENV",
    "HealthLedger",
    "MemberHealth",
    "BackendUnavailable",
    "KNOWN_SOLVERS",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
    "available_backends",
    "backend_capabilities",
    "default_backend_name",
    "BACKEND_ENV",
]
