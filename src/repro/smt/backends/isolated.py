"""The isolated backend: sandboxed worker subprocesses behind the seam.

Wraps :class:`repro.runtime.workers.SolverWorkerPool` — previously a
parallel code path inside ``Solver._check_isolated`` — behind the same
:class:`~repro.smt.backends.base.SolverBackend` protocol as every other
decision procedure.  The pool's crash classification, watchdog, and
retry semantics are unchanged: ``WorkerCrashed``/``WorkerKilled``
propagate out of :meth:`IsolatedBackend.check` exactly as they did out
of the facade, feeding the same retry-with-escalation machinery.

The backend is stateless per query (``supports_incremental=False``): any
worker, including a fresh respawn, can serve any check, which is what
makes hard-killing them safe.  Assumptions are therefore *re-encoded* by
the facade as unit clauses in the DIMACS export
(``supports_assumptions=False``) — per-call scoping falls out of the
per-call export.

The pool's per-query circuit breaker surfaces as
``BackendResult(fallback=True)``: the backend refuses a query that has
killed too many workers, and the facade — which still holds the fully
encoded in-process core — solves it there instead.
"""

from __future__ import annotations

from repro.runtime.reasons import normalize_reason
from repro.smt.backends.base import BackendResult, CheckLimits, SolverBackend

__all__ = ["IsolatedBackend"]


class IsolatedBackend(SolverBackend):
    """Checks run on a sandboxed worker of a ``SolverWorkerPool``."""

    name = "isolated"
    supports_assumptions = False
    supports_incremental = False
    produces_models = True

    def __init__(self, worker_pool):
        if worker_pool is None:
            raise ValueError(
                "backend 'isolated' requires a worker_pool "
                "(repro.runtime.SolverWorkerPool)"
            )
        self.pool = worker_pool

    def check(self, cnf, assumptions=(), limits=None):
        if limits is None:
            limits = CheckLimits()
        key = hash(cnf)
        if self.pool.should_fallback(key):
            # Circuit breaker: this query has killed enough workers that
            # isolation is costing more than it contains.
            self.pool.note_fallback(key)
            return BackendResult(
                "unknown", reason="circuit-breaker", fallback=True
            )
        outcome = self.pool.check(
            cnf,
            max_conflicts=limits.max_conflicts,
            timeout=limits.timeout(),
            seed=limits.seed,
            key=key,
        )
        if outcome.verdict == "sat":
            return BackendResult(
                "sat", model=dict(outcome.model or {}),
                conflicts=outcome.conflicts,
            )
        if outcome.verdict == "unsat":
            return BackendResult("unsat", conflicts=outcome.conflicts)
        return BackendResult(
            "unknown",
            reason=normalize_reason(outcome.reason),
            conflicts=outcome.conflicts,
        )
