"""``SolverConfig``: the one object that says how checks are solved.

PRs 1–4 accreted three overlapping dispatch knobs — ``execution=``
(where a check runs), ``worker_pool=`` (the sandbox it runs on), and
``pipeline=`` (how formulas are encoded) — each threaded separately
through ``Solver``, ``cegis_solve``, ``synthesize_instruction``,
``synthesize_monolithic_solutions``, ``IncrementalContext``, and
``synthesize``.  This dataclass collapses them: callers build one
``SolverConfig`` (or just pass ``backend="..."``), the engine resolves it
*once* at its boundary, and the resolved object rides down the stack.

The legacy kwargs still work everywhere they used to, but emit a
``DeprecationWarning`` pointing here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace as _dc_replace

from repro.smt.backends.registry import resolve_backend, resolve_backend_name

__all__ = ["SolverConfig", "resolve_solver_config"]

#: Legacy ``execution=`` values and the backend names they map to.
_EXECUTION_TO_BACKEND = {"inprocess": "inprocess", "isolated": "isolated"}


@dataclass(frozen=True)
class SolverConfig:
    """How solver checks run, resolved once and threaded everywhere.

    ``backend`` is a registered backend name, a live
    :class:`~repro.smt.backends.base.SolverBackend` instance, or ``None``
    (the process default — ``$REPRO_BACKEND`` or ``"inprocess"``).
    ``worker_pool`` binds the ``"isolated"`` backend to a caller-owned
    ``repro.runtime.SolverWorkerPool`` (the engine creates and shuts down
    its own when omitted).  ``pipeline`` is ``"fresh"``/``"incremental"``
    or ``None`` for the engine default; ``max_workers`` sizes an
    engine-owned pool and the per-instruction dispatch width.
    """

    backend: object = None
    worker_pool: object = None
    pipeline: str = None
    max_workers: int = None

    @property
    def backend_name(self):
        """The name this config's backend resolves to."""
        return resolve_backend_name(self.backend)

    def make_backend(self):
        """Instantiate (or pass through) the configured backend."""
        return resolve_backend(self.backend, worker_pool=self.worker_pool)

    def solver_kwargs(self):
        """Keyword arguments for ``Solver(...)`` under this config."""
        return {"backend": self.backend, "worker_pool": self.worker_pool}

    def replace(self, **changes):
        """A copy with ``changes`` applied (configs are frozen)."""
        return _dc_replace(self, **changes)


def resolve_solver_config(config=None, *, backend=None, execution=None,
                          worker_pool=None, pipeline=None, max_workers=None,
                          stacklevel=3):
    """Fold new-style and legacy knobs into one :class:`SolverConfig`.

    ``config`` and ``backend`` are the supported spellings; ``execution``,
    ``worker_pool`` and ``pipeline`` are the PR 1–4 legacy kwargs, kept as
    deprecated aliases (one ``DeprecationWarning`` naming the offenders).
    Passing ``config`` *and* any other knob is a contradiction and raises
    — a config is supposed to be resolved exactly once.
    """
    legacy = {
        name: value
        for name, value in (("execution", execution),
                            ("worker_pool", worker_pool),
                            ("pipeline", pipeline))
        if value is not None
    }
    if config is not None:
        if backend is not None or max_workers is not None or legacy:
            extras = sorted(set(legacy)
                            | ({"backend"} if backend is not None else set())
                            | ({"max_workers"} if max_workers is not None
                               else set()))
            raise ValueError(
                "pass either config= or individual solver knobs, not both "
                f"(got config plus {', '.join(extras)})"
            )
        return config
    if legacy:
        names = ", ".join(sorted(legacy))
        verb = "is" if len(legacy) == 1 else "are"
        warnings.warn(
            f"{names} {verb} deprecated; pass "
            "config=SolverConfig(backend=..., worker_pool=..., "
            "pipeline=...) (or just backend=...) instead",
            DeprecationWarning, stacklevel=stacklevel,
        )
    if execution is not None:
        mapped = _EXECUTION_TO_BACKEND.get(execution)
        if mapped is None:
            raise ValueError(f"unknown execution mode {execution!r}")
        if backend is not None and resolve_backend_name(backend) != mapped:
            raise ValueError(
                f"conflicting backend selection: execution={execution!r} "
                f"vs backend={backend!r}"
            )
        backend = backend if backend is not None else mapped
    return SolverConfig(backend=backend, worker_pool=worker_pool,
                        pipeline=pipeline, max_workers=max_workers)
