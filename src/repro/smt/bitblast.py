"""Bit-blasting of bitvector terms into an AIG.

``BitBlaster`` maps each term to a tuple of AIG literals (LSB first) and
keeps a per-variable registry so repeated blasts of the same variable share
inputs.  All traversal is iterative; datapath DAGs exceed Python's recursion
limit routinely.
"""

from __future__ import annotations

from repro.smt.aig import AIG, FALSE_LIT, TRUE_LIT

__all__ = ["BitBlaster"]


class BitBlaster:
    """Lowers terms to AIG literal vectors."""

    def __init__(self, aig=None):
        self.aig = aig if aig is not None else AIG()
        self._cache = {}
        self.var_bits = {}

    def blast(self, term):
        """Return the tuple of AIG literals (LSB first) for ``term``.

        The cache is keyed by the term object itself — terms hash by
        identity, and the key holds a strong reference.  Keying by
        ``id(term)`` without a reference would be unsound: after
        ``terms.reset_interner()`` a garbage-collected term's id can be
        reused by a *different* term, silently aliasing it to the stale
        entry's literals.
        """
        cache = self._cache
        stack = [(term, False)]
        while stack:
            node, expanded = stack.pop()
            if node in cache:
                continue
            if not expanded:
                stack.append((node, True))
                for arg in node.args:
                    if arg not in cache:
                        stack.append((arg, False))
            else:
                cache[node] = self._blast_node(node)
        return cache[term]

    def blast_bit(self, term):
        """Blast a width-1 term to a single literal."""
        bits = self.blast(term)
        if len(bits) != 1:
            raise ValueError(f"expected a width-1 term, got width {len(bits)}")
        return bits[0]

    # ------------------------------------------------------------------

    def _blast_node(self, node):
        op = node.op
        if op == "const":
            return tuple(
                TRUE_LIT if (node.value >> i) & 1 else FALSE_LIT
                for i in range(node.width)
            )
        if op == "var":
            bits = self.var_bits.get(node.name)
            if bits is None:
                bits = tuple(self.aig.new_input() for _ in range(node.width))
                self.var_bits[node.name] = bits
            elif len(bits) != node.width:
                raise ValueError(
                    f"variable {node.name!r} blasted at two widths: "
                    f"{len(bits)} and {node.width}"
                )
            return bits
        args = [self._cache[arg] for arg in node.args]
        handler = getattr(self, f"_op_{op}")
        return handler(node, *args)

    # --- bitwise ------------------------------------------------------

    def _op_not(self, node, a):
        return tuple(bit ^ 1 for bit in a)

    def _op_and(self, node, a, b):
        g = self.aig
        return tuple(g.and_(x, y) for x, y in zip(a, b))

    def _op_or(self, node, a, b):
        g = self.aig
        return tuple(g.or_(x, y) for x, y in zip(a, b))

    def _op_xor(self, node, a, b):
        g = self.aig
        return tuple(g.xor_(x, y) for x, y in zip(a, b))

    # --- arithmetic ----------------------------------------------------

    def _adder(self, a, b, carry_in):
        g = self.aig
        out = []
        carry = carry_in
        for x, y in zip(a, b):
            partial = g.xor_(x, y)
            out.append(g.xor_(partial, carry))
            carry = g.or_(g.and_(x, y), g.and_(partial, carry))
        return tuple(out), carry

    def _op_add(self, node, a, b):
        bits, _ = self._adder(a, b, FALSE_LIT)
        return bits

    def _op_sub(self, node, a, b):
        bits, _ = self._adder(a, tuple(bit ^ 1 for bit in b), TRUE_LIT)
        return bits

    def _op_mul(self, node, a, b):
        g = self.aig
        width = len(a)
        acc = tuple([FALSE_LIT] * width)
        for i, sel in enumerate(b):
            if sel == FALSE_LIT:
                continue
            shifted = tuple([FALSE_LIT] * i) + a[: width - i]
            partial = tuple(g.and_(bit, sel) for bit in shifted)
            acc, _ = self._adder(acc, partial, FALSE_LIT)
        return acc

    def _less_than_unsigned(self, a, b):
        """Literal for a < b (unsigned)."""
        g = self.aig
        lt = FALSE_LIT
        for x, y in zip(a, b):  # LSB to MSB; later bits dominate
            eq = g.xor_(x, y) ^ 1
            lt = g.or_(g.and_(x ^ 1, y), g.and_(eq, lt))
        return lt

    def _subtract_if_fits(self, rem, divisor):
        """One restoring-division step: (rem >= d) ? rem - d : rem."""
        g = self.aig
        diff, borrow_free = self._adder(
            rem, tuple(bit ^ 1 for bit in divisor), TRUE_LIT
        )
        fits = borrow_free  # carry out of (rem - d) means no borrow
        new_rem = tuple(g.mux(fits, dbit, rbit) for dbit, rbit in zip(diff, rem))
        return new_rem, fits

    def _divmod(self, a, b):
        g = self.aig
        width = len(a)
        rem = tuple([FALSE_LIT] * width)
        quot = [FALSE_LIT] * width
        for i in range(width - 1, -1, -1):
            rem = (a[i],) + rem[: width - 1]
            rem, fits = self._subtract_if_fits(rem, b)
            quot[i] = fits
        # SMT-LIB: division by zero yields all-ones, remainder yields a.
        zero = self._is_zero(b)
        quot = tuple(g.mux(zero, TRUE_LIT, q) for q in quot)
        rem = tuple(g.mux(zero, abit, rbit) for abit, rbit in zip(a, rem))
        return quot, rem

    def _op_udiv(self, node, a, b):
        return self._divmod(a, b)[0]

    def _op_urem(self, node, a, b):
        return self._divmod(a, b)[1]

    def _is_zero(self, bits):
        g = self.aig
        any_set = FALSE_LIT
        for bit in bits:
            any_set = g.or_(any_set, bit)
        return any_set ^ 1

    # --- shifts (barrel) -------------------------------------------------

    def _shift_overflow(self, amount, width):
        """Literal that is 1 when the shift amount is >= width."""
        g = self.aig
        stages = max(1, (width - 1).bit_length())
        overflow = FALSE_LIT
        for i in range(stages, len(amount)):
            overflow = g.or_(overflow, amount[i])
        # Amounts encodable in the low stage bits but still >= width.
        if width & (width - 1):
            low = amount[:stages]
            ge = self._less_than_unsigned(
                low, self._const_bits(width, stages)
            ) ^ 1
            overflow = g.or_(overflow, ge)
        return overflow

    @staticmethod
    def _const_bits(value, width):
        return tuple(
            TRUE_LIT if (value >> i) & 1 else FALSE_LIT for i in range(width)
        )

    def _barrel(self, a, amount, direction, fill):
        g = self.aig
        width = len(a)
        stages = max(1, (width - 1).bit_length())
        bits = list(a)
        for stage in range(min(stages, len(amount))):
            sel = amount[stage]
            if sel == FALSE_LIT:
                continue
            step = 1 << stage
            shifted = [fill] * width
            for i in range(width):
                if direction == "left":
                    if i - step >= 0:
                        shifted[i] = bits[i - step]
                else:
                    if i + step < width:
                        shifted[i] = bits[i + step]
            bits = [g.mux(sel, s, b) for s, b in zip(shifted, bits)]
        overflow = self._shift_overflow(amount, width)
        return tuple(g.mux(overflow, fill, bit) for bit in bits)

    def _op_shl(self, node, a, b):
        return self._barrel(a, b, "left", FALSE_LIT)

    def _op_lshr(self, node, a, b):
        return self._barrel(a, b, "right", FALSE_LIT)

    def _op_ashr(self, node, a, b):
        g = self.aig
        sign = a[-1]
        width = len(a)
        # ashr(a, n) for n >= width saturates to the sign bit, so clamp the
        # shift by muxing the overflow case explicitly.
        shifted = self._barrel(a, b, "right", FALSE_LIT)
        # Fill vacated high bits with the sign: compute both logical shift of
        # a and of the all-sign vector, then OR where the mask indicates.
        sign_vec = tuple([sign] * width)
        sign_shift = self._barrel(
            tuple([FALSE_LIT] * width), b, "right", TRUE_LIT
        )
        # sign_shift has 1s exactly in the vacated positions.
        return tuple(
            g.or_(s, g.and_(m, sign))
            for s, m in zip(shifted, sign_shift)
        )

    # --- predicates ------------------------------------------------------

    def _op_eq(self, node, a, b):
        g = self.aig
        acc = TRUE_LIT
        for x, y in zip(a, b):
            acc = g.and_(acc, g.xor_(x, y) ^ 1)
        return (acc,)

    def _op_ult(self, node, a, b):
        return (self._less_than_unsigned(a, b),)

    def _op_slt(self, node, a, b):
        # slt(a, b) == ult(a ^ MSB, b ^ MSB)
        a2 = a[:-1] + (a[-1] ^ 1,)
        b2 = b[:-1] + (b[-1] ^ 1,)
        return (self._less_than_unsigned(a2, b2),)

    # --- structure -------------------------------------------------------

    def _op_concat(self, node, high, low):
        return low + high

    def _op_extract(self, node, a):
        high, low = node.params
        return a[low : high + 1]

    def _op_ite(self, node, cond, then, els):
        g = self.aig
        sel = cond[0]
        return tuple(g.mux(sel, t, e) for t, e in zip(then, els))
