"""Hash-consed bitvector terms with rewriting smart constructors.

Every term is a fixed-width bitvector; booleans are width-1 bitvectors.  Terms
are immutable, interned, and form a DAG, so structural equality is pointer
equality.  The constructors below aggressively constant-fold and apply
algebraic rewrites; this partial evaluation is what keeps the CEGIS queries
produced by control logic synthesis small enough for the pure-Python SAT core
(the verify step runs with concrete hole values, so most of the datapath folds
away here before any bit-blasting happens).

Operator vocabulary (the bit-blaster understands exactly these):

=========  =========================================================
``const``  literal value (``term.value``), no arguments
``var``    free variable (``term.name``), no arguments
``not``    bitwise complement
``and``    bitwise and            ``or``   bitwise or
``xor``    bitwise xor
``add``    modular addition       ``sub``  modular subtraction
``mul``    modular multiplication
``udiv``   unsigned division (x/0 = all-ones, SMT-LIB semantics)
``urem``   unsigned remainder (x%0 = x, SMT-LIB semantics)
``shl``    shift left             ``lshr`` logical shift right
``ashr``   arithmetic shift right
``eq``     equality (width-1 result)
``ult``    unsigned less-than     ``slt``  signed less-than
``concat`` concatenation (first argument is the high part)
``extract`` bit slice (``term.params == (high, low)``)
``ite``    if-then-else (condition is width-1)
=========  =========================================================
"""

from __future__ import annotations

import weakref

__all__ = [
    "Term",
    "bv_const",
    "bv_var",
    "TRUE",
    "FALSE",
    "bv_not",
    "bv_neg",
    "bv_and",
    "bv_or",
    "bv_xor",
    "bv_add",
    "bv_sub",
    "bv_mul",
    "bv_udiv",
    "bv_urem",
    "bv_shl",
    "bv_lshr",
    "bv_ashr",
    "bv_eq",
    "bv_ne",
    "bv_ult",
    "bv_ule",
    "bv_ugt",
    "bv_uge",
    "bv_slt",
    "bv_sle",
    "bv_sgt",
    "bv_sge",
    "bv_concat",
    "bv_extract",
    "bv_ite",
    "zero_extend",
    "sign_extend",
    "repeat_bit",
    "reduce_or",
    "reduce_and",
    "rotate_left",
    "rotate_right",
    "and_",
    "or_",
    "not_",
    "xor_",
    "implies",
    "evaluate",
    "free_variables",
    "substitute",
    "term_size",
    "reset_interner",
]

_COMMUTATIVE = frozenset({"and", "or", "xor", "add", "mul", "eq"})

# Operators whose result width equals the (shared) width of their arguments.
_SAME_WIDTH = frozenset(
    {"not", "and", "or", "xor", "add", "sub", "mul", "udiv", "urem",
     "shl", "lshr", "ashr", "ite"}
)

_PREDICATES = frozenset({"eq", "ult", "slt"})


class Term:
    """A node in the hash-consed term DAG.

    Do not instantiate directly; use the ``bv_*`` constructor functions, which
    intern nodes and apply rewrites.  ``Term`` instances compare and hash by
    identity, which is sound because of interning.
    """

    __slots__ = ("op", "args", "width", "value", "name", "params", "_id",
                 "__weakref__")

    def __init__(self, op, args, width, value=None, name=None, params=None):
        self.op = op
        self.args = args
        self.width = width
        self.value = value
        self.name = name
        self.params = params
        self._id = 0  # assigned by the interner

    @property
    def is_const(self):
        return self.op == "const"

    @property
    def is_var(self):
        return self.op == "var"

    def __repr__(self):
        from repro.smt.printer import to_string

        return to_string(self, max_depth=6)

    # Arithmetic/bitwise sugar so terms compose naturally in host code.
    def __invert__(self):
        return bv_not(self)

    def __and__(self, other):
        return bv_and(self, _coerce(other, self.width))

    def __or__(self, other):
        return bv_or(self, _coerce(other, self.width))

    def __xor__(self, other):
        return bv_xor(self, _coerce(other, self.width))

    def __add__(self, other):
        return bv_add(self, _coerce(other, self.width))

    def __sub__(self, other):
        return bv_sub(self, _coerce(other, self.width))

    def __mul__(self, other):
        return bv_mul(self, _coerce(other, self.width))


def _coerce(value, width):
    if isinstance(value, Term):
        return value
    return bv_const(value, width)


class _Interner:
    """Interns terms so that structurally equal terms are the same object."""

    def __init__(self):
        self._table = weakref.WeakValueDictionary()
        self._next_id = 1

    def intern(self, term):
        key = (term.op, term.args, term.width, term.value, term.name,
               term.params)
        existing = self._table.get(key)
        if existing is not None:
            return existing
        term._id = self._next_id
        self._next_id += 1
        self._table[key] = term
        return term

    def __len__(self):
        return len(self._table)


_INTERNER = _Interner()


def reset_interner():
    """Drop the intern table (useful to bound memory across test sessions).

    The module-level ``TRUE``/``FALSE`` singletons are re-seeded into the
    fresh table; without that, the first post-reset ``bv_const(0, 1)``
    would intern a *new* object and every ``is FALSE`` identity check
    against the stale constant would fail.
    """
    global _INTERNER
    _INTERNER = _Interner()
    _INTERNER.intern(TRUE)
    _INTERNER.intern(FALSE)


def _mk(op, args, width, value=None, name=None, params=None):
    return _INTERNER.intern(Term(op, tuple(args), width, value, name, params))


def _mask(width):
    return (1 << width) - 1


def _check_width(width):
    if not isinstance(width, int) or width <= 0:
        raise ValueError(f"bitvector width must be a positive int, got {width!r}")


def _check_same_width(a, b, op):
    if a.width != b.width:
        raise ValueError(
            f"width mismatch in {op}: {a.width} vs {b.width}"
        )


def bv_const(value, width):
    """A bitvector constant; ``value`` is masked to ``width`` bits."""
    _check_width(width)
    if not isinstance(value, int):
        raise TypeError(f"constant value must be an int, got {value!r}")
    return _mk("const", (), width, value=value & _mask(width))


def bv_var(name, width):
    """A free bitvector variable, identified by name and width."""
    _check_width(width)
    return _mk("var", (), width, name=name)


TRUE = bv_const(1, 1)
FALSE = bv_const(0, 1)


def _to_signed(value, width):
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


# ---------------------------------------------------------------------------
# Bitwise operators
# ---------------------------------------------------------------------------


def bv_not(a):
    if a.is_const:
        return bv_const(~a.value, a.width)
    if a.op == "not":
        return a.args[0]
    if a.op == "ite":
        cond, then, els = a.args
        if then.is_const and els.is_const:
            return bv_ite(cond, bv_not(then), bv_not(els))
    return _mk("not", (a,), a.width)


def _comm_args(a, b):
    """Canonical argument order for commutative operators."""
    if b._id < a._id:
        return (b, a)
    return (a, b)


def bv_and(a, b):
    _check_same_width(a, b, "and")
    w = a.width
    if a.is_const and b.is_const:
        return bv_const(a.value & b.value, w)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, w)
            if x.value == _mask(w):
                return y
    if a is b:
        return a
    if (a.op == "not" and a.args[0] is b) or (b.op == "not" and b.args[0] is a):
        return bv_const(0, w)
    return _mk("and", _comm_args(a, b), w)


def bv_or(a, b):
    _check_same_width(a, b, "or")
    w = a.width
    if a.is_const and b.is_const:
        return bv_const(a.value | b.value, w)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return y
            if x.value == _mask(w):
                return bv_const(_mask(w), w)
    if a is b:
        return a
    if (a.op == "not" and a.args[0] is b) or (b.op == "not" and b.args[0] is a):
        return bv_const(_mask(w), w)
    return _mk("or", _comm_args(a, b), w)


def bv_xor(a, b):
    _check_same_width(a, b, "xor")
    w = a.width
    if a.is_const and b.is_const:
        return bv_const(a.value ^ b.value, w)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return y
            if x.value == _mask(w):
                return bv_not(y)
    if a is b:
        return bv_const(0, w)
    return _mk("xor", _comm_args(a, b), w)


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def bv_add(a, b):
    _check_same_width(a, b, "add")
    w = a.width
    if a.is_const and b.is_const:
        return bv_const(a.value + b.value, w)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.value == 0:
            return y
        # (y + c1) + c2  ->  y + (c1 + c2)
        if x.is_const and y.op == "add" and y.args[1].is_const:
            return bv_add(y.args[0], bv_const(x.value + y.args[1].value, w))
    # Keep a lone constant on the right for the reassociation rule above.
    if a.is_const:
        a, b = b, a
    if b.is_const:
        return _mk("add", (a, b), w)
    return _mk("add", _comm_args(a, b), w)


def bv_sub(a, b):
    _check_same_width(a, b, "sub")
    w = a.width
    if a.is_const and b.is_const:
        return bv_const(a.value - b.value, w)
    if b.is_const:
        if b.value == 0:
            return a
        return bv_add(a, bv_const(-b.value, w))
    if a is b:
        return bv_const(0, w)
    return _mk("sub", (a, b), w)


def bv_neg(a):
    return bv_sub(bv_const(0, a.width), a)


def bv_mul(a, b):
    _check_same_width(a, b, "mul")
    w = a.width
    if a.is_const and b.is_const:
        return bv_const(a.value * b.value, w)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, w)
            if x.value == 1:
                return y
            if x.value and (x.value & (x.value - 1)) == 0:
                shift = x.value.bit_length() - 1
                return bv_shl(y, bv_const(shift, w))
    return _mk("mul", _comm_args(a, b), w)


def bv_udiv(a, b):
    _check_same_width(a, b, "udiv")
    w = a.width
    if b.is_const:
        if b.value == 0:
            return bv_const(_mask(w), w)  # SMT-LIB: x / 0 = all-ones
        if a.is_const:
            return bv_const(a.value // b.value, w)
        if b.value == 1:
            return a
    return _mk("udiv", (a, b), w)


def bv_urem(a, b):
    _check_same_width(a, b, "urem")
    w = a.width
    if b.is_const:
        if b.value == 0:
            return a  # SMT-LIB: x % 0 = x
        if a.is_const:
            return bv_const(a.value % b.value, w)
        if b.value == 1:
            return bv_const(0, w)
    return _mk("urem", (a, b), w)


# ---------------------------------------------------------------------------
# Shifts.  Shifts by a constant amount are rewritten into pure wiring
# (extract/concat), which is free after bit-blasting.
# ---------------------------------------------------------------------------


def bv_shl(a, b):
    _check_same_width(a, b, "shl")
    w = a.width
    if b.is_const:
        n = b.value
        if n == 0:
            return a
        if n >= w:
            return bv_const(0, w)
        return bv_concat(bv_extract(a, w - 1 - n, 0), bv_const(0, n))
    if a.is_const and a.value == 0:
        return a
    return _mk("shl", (a, b), w)


def bv_lshr(a, b):
    _check_same_width(a, b, "lshr")
    w = a.width
    if b.is_const:
        n = b.value
        if n == 0:
            return a
        if n >= w:
            return bv_const(0, w)
        return bv_concat(bv_const(0, n), bv_extract(a, w - 1, n))
    if a.is_const and a.value == 0:
        return a
    return _mk("lshr", (a, b), w)


def bv_ashr(a, b):
    _check_same_width(a, b, "ashr")
    w = a.width
    if b.is_const:
        n = b.value
        sign = bv_extract(a, w - 1, w - 1)
        if n == 0:
            return a
        if n >= w:
            return repeat_bit(sign, w)
        return bv_concat(repeat_bit(sign, n), bv_extract(a, w - 1, n))
    return _mk("ashr", (a, b), w)


def rotate_left(a, n):
    """Rotate left by a Python-int amount (pure wiring)."""
    w = a.width
    n %= w
    if n == 0:
        return a
    return bv_concat(bv_extract(a, w - 1 - n, 0), bv_extract(a, w - 1, w - n))


def rotate_right(a, n):
    return rotate_left(a, (a.width - n) % a.width)


# ---------------------------------------------------------------------------
# Predicates (width-1 results)
# ---------------------------------------------------------------------------


def bv_eq(a, b):
    _check_same_width(a, b, "eq")
    if a is b:
        return TRUE
    if a.is_const and b.is_const:
        return TRUE if a.value == b.value else FALSE
    if a.width == 1:
        # eq over single bits is xnor; expressing it with xor unlocks the
        # boolean rewrites above.
        return bv_not(bv_xor(a, b))
    # eq(concat(a1, a0), concat(b1, b0)) with matching widths splits, which
    # lets constant halves fold away (common with decode-field matching).
    if (a.op == "concat" and b.op == "concat"
            and a.args[0].width == b.args[0].width):
        return and_(bv_eq(a.args[0], b.args[0]), bv_eq(a.args[1], b.args[1]))
    for x, y in ((a, b), (b, a)):
        if y.is_const and x.op == "concat":
            hi_w = x.args[0].width
            lo_w = x.args[1].width
            return and_(
                bv_eq(x.args[0], bv_const(y.value >> lo_w, hi_w)),
                bv_eq(x.args[1], bv_const(y.value, lo_w)),
            )
        if y.is_const and x.op == "ite":
            cond, then, els = x.args
            if then.is_const and els.is_const:
                t_hit = then.value == y.value
                e_hit = els.value == y.value
                if t_hit and e_hit:
                    return TRUE
                if t_hit:
                    return cond
                if e_hit:
                    return bv_not(cond)
                return FALSE
    return _mk("eq", _comm_args(a, b), 1)


def bv_ne(a, b):
    return bv_not(bv_eq(a, b))


def bv_ult(a, b):
    _check_same_width(a, b, "ult")
    if a is b:
        return FALSE
    if a.is_const and b.is_const:
        return TRUE if a.value < b.value else FALSE
    if b.is_const and b.value == 0:
        return FALSE
    if a.is_const and a.value == _mask(a.width):
        return FALSE
    return _mk("ult", (a, b), 1)


def bv_ule(a, b):
    return bv_not(bv_ult(b, a))


def bv_ugt(a, b):
    return bv_ult(b, a)


def bv_uge(a, b):
    return bv_not(bv_ult(a, b))


def bv_slt(a, b):
    _check_same_width(a, b, "slt")
    if a is b:
        return FALSE
    if a.is_const and b.is_const:
        w = a.width
        return TRUE if _to_signed(a.value, w) < _to_signed(b.value, w) else FALSE
    return _mk("slt", (a, b), 1)


def bv_sle(a, b):
    return bv_not(bv_slt(b, a))


def bv_sgt(a, b):
    return bv_slt(b, a)


def bv_sge(a, b):
    return bv_not(bv_slt(a, b))


# ---------------------------------------------------------------------------
# Structure: concat / extract / ite
# ---------------------------------------------------------------------------


def bv_concat(a, b):
    """Concatenate ``a`` (high bits) with ``b`` (low bits)."""
    w = a.width + b.width
    if a.is_const and b.is_const:
        return bv_const((a.value << b.width) | b.value, w)
    # Merge adjacent extracts of the same base term.
    if (a.op == "extract" and b.op == "extract" and a.args[0] is b.args[0]
            and a.params[1] == b.params[0] + 1):
        return bv_extract(a.args[0], a.params[0], b.params[1])
    # Reassociate concat(a, concat(x, y)) when a and x would merge, so chains
    # built low-bit-first still collapse.
    if b.op == "concat":
        hi2, lo2 = b.args
        mergeable = (a.is_const and hi2.is_const) or (
            a.op == "extract" and hi2.op == "extract"
            and a.args[0] is hi2.args[0]
            and a.params[1] == hi2.params[0] + 1
        )
        if mergeable:
            return bv_concat(bv_concat(a, hi2), lo2)
    return _mk("concat", (a, b), w)


def bv_extract(a, high, low):
    """Extract bits ``high`` down to ``low`` (inclusive, LSB is bit 0)."""
    if not (0 <= low <= high < a.width):
        raise ValueError(
            f"extract [{high}:{low}] out of range for width {a.width}"
        )
    w = high - low + 1
    if w == a.width:
        return a
    if a.is_const:
        return bv_const(a.value >> low, w)
    if a.op == "extract":
        base_low = a.params[1]
        return bv_extract(a.args[0], base_low + high, base_low + low)
    if a.op == "concat":
        hi_part, lo_part = a.args
        if high < lo_part.width:
            return bv_extract(lo_part, high, low)
        if low >= lo_part.width:
            return bv_extract(hi_part, high - lo_part.width, low - lo_part.width)
        return bv_concat(
            bv_extract(hi_part, high - lo_part.width, 0),
            bv_extract(lo_part, lo_part.width - 1, low),
        )
    if a.op in ("not", "and", "or", "xor"):
        # Bitwise ops commute with extraction; pushing the slice down exposes
        # constant sub-fields (decode logic is full of this pattern).
        parts = [bv_extract(arg, high, low) for arg in a.args]
        if a.op == "not":
            return bv_not(parts[0])
        if a.op == "and":
            return bv_and(*parts)
        if a.op == "or":
            return bv_or(*parts)
        return bv_xor(*parts)
    if a.op == "ite":
        cond, then, els = a.args
        if then.is_const or els.is_const or then.op == "concat" or els.op == "concat":
            return bv_ite(cond, bv_extract(then, high, low),
                          bv_extract(els, high, low))
    return _mk("extract", (a,), w, params=(high, low))


def bv_ite(cond, then, els):
    if cond.width != 1:
        raise ValueError(f"ite condition must have width 1, got {cond.width}")
    _check_same_width(then, els, "ite")
    if cond.is_const:
        return then if cond.value == 1 else els
    if then is els:
        return then
    if cond.op == "not":
        return bv_ite(cond.args[0], els, then)
    if then.width == 1:
        if then.is_const and els.is_const:
            # then=1, els=0 -> cond; then=0, els=1 -> not cond
            return cond if then.value == 1 else bv_not(cond)
        if then.is_const:
            if then.value == 1:
                return bv_or(cond, els)
            return bv_and(bv_not(cond), els)
        if els.is_const:
            if els.value == 0:
                return bv_and(cond, then)
            return bv_or(bv_not(cond), then)
    # ite(c, x, ite(c, _, y)) -> ite(c, x, y)
    if els.op == "ite" and els.args[0] is cond:
        return bv_ite(cond, then, els.args[2])
    if then.op == "ite" and then.args[0] is cond:
        return bv_ite(cond, then.args[1], els)
    return _mk("ite", (cond, then, els), then.width)


# ---------------------------------------------------------------------------
# Extension / reduction helpers
# ---------------------------------------------------------------------------


def zero_extend(a, new_width):
    if new_width < a.width:
        raise ValueError("zero_extend target narrower than source")
    if new_width == a.width:
        return a
    return bv_concat(bv_const(0, new_width - a.width), a)


def sign_extend(a, new_width):
    if new_width < a.width:
        raise ValueError("sign_extend target narrower than source")
    if new_width == a.width:
        return a
    sign = bv_extract(a, a.width - 1, a.width - 1)
    return bv_concat(repeat_bit(sign, new_width - a.width), a)


def repeat_bit(bit, count):
    """Replicate a 1-bit term ``count`` times (MSB-to-LSB identical)."""
    if bit.width != 1:
        raise ValueError("repeat_bit requires a width-1 term")
    if count <= 0:
        raise ValueError("repeat_bit count must be positive")
    if bit.is_const:
        return bv_const(-1 if bit.value else 0, count)
    result = bit
    built = 1
    while built < count:
        take = min(built, count - built)
        result = bv_concat(bv_extract(result, take - 1, 0), result)
        built += take
    return result


def reduce_or(a):
    """1 iff any bit of ``a`` is set."""
    return bv_ne(a, bv_const(0, a.width))


def reduce_and(a):
    """1 iff all bits of ``a`` are set."""
    return bv_eq(a, bv_const(_mask(a.width), a.width))


# Boolean (width-1) convenience connectives.


def and_(*args):
    result = TRUE
    for a in args:
        result = bv_and(result, a)
    return result


def or_(*args):
    result = FALSE
    for a in args:
        result = bv_or(result, a)
    return result


def not_(a):
    return bv_not(a)


def xor_(a, b):
    return bv_xor(a, b)


def implies(a, b):
    return bv_or(bv_not(a), b)


# ---------------------------------------------------------------------------
# Traversal utilities (iterative; term DAGs routinely exceed the recursion
# limit for multi-cycle datapaths)
# ---------------------------------------------------------------------------


def _postorder(roots):
    """Yield terms reachable from ``roots`` in dependency-first order."""
    seen = set()
    order = []
    stack = [(root, False) for root in reversed(list(roots))]
    while stack:
        term, expanded = stack.pop()
        if expanded:
            order.append(term)
            continue
        if id(term) in seen:
            continue
        seen.add(id(term))
        stack.append((term, True))
        for arg in reversed(term.args):
            if id(arg) not in seen:
                stack.append((arg, False))
    return order


def evaluate(term, env):
    """Evaluate a term to a Python int under a variable assignment.

    ``env`` maps variable *names* to ints.  Raises ``KeyError`` for
    unassigned variables.
    """
    values = evaluate_many([term], env)
    return values[0]


def evaluate_many(terms, env):
    """Evaluate several terms sharing one memo table; returns a list of ints."""
    memo = {}
    for node in _postorder(terms):
        memo[id(node)] = _eval_node(node, memo, env)
    return [memo[id(t)] for t in terms]


def _eval_node(node, memo, env):
    op = node.op
    w = node.width
    mask = _mask(w)
    if op == "const":
        return node.value
    if op == "var":
        value = env[node.name]
        return value & mask
    a = memo[id(node.args[0])] if node.args else None
    b = memo[id(node.args[1])] if len(node.args) > 1 else None
    if op == "not":
        return ~a & mask
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "add":
        return (a + b) & mask
    if op == "sub":
        return (a - b) & mask
    if op == "mul":
        return (a * b) & mask
    if op == "udiv":
        return mask if b == 0 else (a // b) & mask
    if op == "urem":
        return a if b == 0 else (a % b) & mask
    if op == "shl":
        return (a << b) & mask if b < w else 0
    if op == "lshr":
        return (a >> b) if b < w else 0
    if op == "ashr":
        sa = _to_signed(a, w)
        return (sa >> min(b, w - 1)) & mask
    if op == "eq":
        return 1 if a == b else 0
    if op == "ult":
        return 1 if a < b else 0
    if op == "slt":
        aw = node.args[0].width
        return 1 if _to_signed(a, aw) < _to_signed(b, aw) else 0
    if op == "concat":
        return (a << node.args[1].width) | b
    if op == "extract":
        high, low = node.params
        return (a >> low) & _mask(high - low + 1)
    if op == "ite":
        c = memo[id(node.args[0])]
        return memo[id(node.args[1])] if c else memo[id(node.args[2])]
    raise ValueError(f"unknown operator {op!r}")


def free_variables(terms):
    """The set of variable terms reachable from ``terms`` (a term or list)."""
    if isinstance(terms, Term):
        terms = [terms]
    return {node for node in _postorder(terms) if node.is_var}


def substitute(term, mapping):
    """Rebuild ``term`` with variables (or arbitrary subterms) replaced.

    ``mapping`` maps Term -> Term.  Rewrites re-run during reconstruction, so
    substituting constants triggers full constant folding.
    """
    memo = {id(k): v for k, v in mapping.items()}
    for node in _postorder([term]):
        if id(node) in memo:
            continue
        new_args = [memo[id(arg)] for arg in node.args]
        if all(na is a for na, a in zip(new_args, node.args)):
            memo[id(node)] = node
        else:
            memo[id(node)] = _rebuild(node, new_args)
    return memo[id(term)]


_REBUILDERS = {
    "not": lambda a, n: bv_not(a[0]),
    "and": lambda a, n: bv_and(a[0], a[1]),
    "or": lambda a, n: bv_or(a[0], a[1]),
    "xor": lambda a, n: bv_xor(a[0], a[1]),
    "add": lambda a, n: bv_add(a[0], a[1]),
    "sub": lambda a, n: bv_sub(a[0], a[1]),
    "mul": lambda a, n: bv_mul(a[0], a[1]),
    "udiv": lambda a, n: bv_udiv(a[0], a[1]),
    "urem": lambda a, n: bv_urem(a[0], a[1]),
    "shl": lambda a, n: bv_shl(a[0], a[1]),
    "lshr": lambda a, n: bv_lshr(a[0], a[1]),
    "ashr": lambda a, n: bv_ashr(a[0], a[1]),
    "eq": lambda a, n: bv_eq(a[0], a[1]),
    "ult": lambda a, n: bv_ult(a[0], a[1]),
    "slt": lambda a, n: bv_slt(a[0], a[1]),
    "concat": lambda a, n: bv_concat(a[0], a[1]),
    "extract": lambda a, n: bv_extract(a[0], n.params[0], n.params[1]),
    "ite": lambda a, n: bv_ite(a[0], a[1], a[2]),
}


def _rebuild(node, new_args):
    builder = _REBUILDERS.get(node.op)
    if builder is None:
        raise ValueError(f"cannot rebuild operator {node.op!r}")
    return builder(new_args, node)


def term_size(terms):
    """Number of distinct DAG nodes reachable from a term or list of terms."""
    if isinstance(terms, Term):
        terms = [terms]
    return len(_postorder(terms))
