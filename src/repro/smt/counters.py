"""Process-global encode counters for the synthesis pipeline.

The incremental pipeline's claim is *structural*: it creates fewer solver
instances, fewer AIG nodes and fewer Tseitin clauses than the fresh
pipeline for the same synthesis problem.  Wall clock is noisy and
machine-dependent; these counters are exact and deterministic, so the CI
perf-smoke lane and ``BENCH_table1.json`` report them instead.

The counters are advisory accounting, not synchronization: increments are
not atomic across threads, so concurrent isolated-execution runs may lose
an occasional tick.  The invariant tests and benches run serially, where
the counts are exact.
"""

from __future__ import annotations

__all__ = ["COUNTERS", "EncodeCounters", "snapshot", "delta_since"]

_FIELDS = (
    "solver_instances",
    "aig_nodes",
    "tseitin_clauses",
    "trace_cache_hits",
    "trace_cache_misses",
    "sat_propagations",
    "sat_restarts",
    "sat_learned",
    "sat_deleted",
    "sat_trail_reuse_hits",
    "sat_trail_reuse_levels_saved",
    "sat_chrono_backtracks",
)


class EncodeCounters:
    """Monotonic per-process counters of encode/solve work.

    ============================  ============================================
    ``solver_instances``          ``repro.smt.solver.Solver`` constructions
    ``aig_nodes``                 AIG nodes allocated (inputs + AND gates)
    ``tseitin_clauses``           CNF clauses emitted (in-process Tseitin
                                  encoding and DIMACS exports alike)
    ``trace_cache_hits``          shared-trace entries served from cache
    ``trace_cache_misses``        shared-trace entries built from scratch
    ``sat_propagations``          unit propagations inside CDCL checks
    ``sat_restarts``              CDCL restarts inside checks
    ``sat_learned``               clauses learned inside checks
    ``sat_deleted``               learned clauses dropped by DB reduction
    ``sat_trail_reuse_hits``      checks that reused a kept assumption trail
    ``sat_trail_reuse_levels_saved``  assumption levels kept across checks
    ``sat_chrono_backtracks``     deep backjumps converted to one-level
                                  chronological backtracks
    ============================  ============================================

    The ``sat_*`` solver-internals fields are charged once per check by
    the solver facade from :attr:`BackendResult.internals`, and the same
    numbers ride the ``solver.check`` obs event — so traced runs reconcile
    exactly (``repro.obs.report.totals``).
    """

    __slots__ = _FIELDS

    def __init__(self):
        self.reset()

    def reset(self):
        for name in _FIELDS:
            setattr(self, name, 0)

    def snapshot(self):
        """A plain-dict copy of the current counts."""
        return {name: getattr(self, name) for name in _FIELDS}


#: The process-wide counter instance every encoder increments.
COUNTERS = EncodeCounters()


def snapshot():
    """The current process-wide counts as a dict."""
    return COUNTERS.snapshot()


def delta_since(before):
    """Counts accumulated since an earlier :func:`snapshot`."""
    now = COUNTERS.snapshot()
    return {name: now[name] - before.get(name, 0) for name in _FIELDS}
