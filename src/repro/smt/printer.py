"""Rendering of terms for debugging and error messages."""

from __future__ import annotations

__all__ = ["to_string"]

_INFIX = {
    "and": "&",
    "or": "|",
    "xor": "^",
    "add": "+",
    "sub": "-",
    "mul": "*",
    "udiv": "/u",
    "urem": "%u",
    "shl": "<<",
    "lshr": ">>u",
    "ashr": ">>s",
    "eq": "==",
    "ult": "<u",
    "slt": "<s",
}


def to_string(term, max_depth=None):
    """A readable S-expression-ish rendering of a term.

    ``max_depth`` truncates deep subterms with ``...`` so that ``repr`` on a
    datapath-sized DAG stays bounded.
    """
    parts = []
    _emit(term, parts, 0, max_depth)
    return "".join(parts)


def _emit(term, parts, depth, max_depth):
    if max_depth is not None and depth > max_depth:
        parts.append("...")
        return
    op = term.op
    if op == "const":
        parts.append(f"{term.value}'{term.width}")
    elif op == "var":
        parts.append(term.name)
    elif op == "not":
        parts.append("~")
        _emit(term.args[0], parts, depth + 1, max_depth)
    elif op == "extract":
        _emit(term.args[0], parts, depth + 1, max_depth)
        high, low = term.params
        parts.append(f"[{high}:{low}]")
    elif op == "concat":
        parts.append("{")
        _emit(term.args[0], parts, depth + 1, max_depth)
        parts.append(", ")
        _emit(term.args[1], parts, depth + 1, max_depth)
        parts.append("}")
    elif op == "ite":
        parts.append("(if ")
        _emit(term.args[0], parts, depth + 1, max_depth)
        parts.append(" then ")
        _emit(term.args[1], parts, depth + 1, max_depth)
        parts.append(" else ")
        _emit(term.args[2], parts, depth + 1, max_depth)
        parts.append(")")
    elif op in _INFIX:
        parts.append("(")
        _emit(term.args[0], parts, depth + 1, max_depth)
        parts.append(f" {_INFIX[op]} ")
        _emit(term.args[1], parts, depth + 1, max_depth)
        parts.append(")")
    else:
        parts.append(f"({op}")
        for arg in term.args:
            parts.append(" ")
            _emit(arg, parts, depth + 1, max_depth)
        parts.append(")")
