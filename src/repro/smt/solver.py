"""Solver facade: assert width-1 terms, check satisfiability, read models.

Lowers terms through the bit-blaster into an AIG, Tseitin-encodes the cone
of each assertion into the CDCL core incrementally, and exposes models as
assignments to term-level variables.  Re-asserting into the same solver
shares AIG structure across queries (the CEGIS guess solver relies on
this), and several solvers may share one ``BitBlaster`` — each encodes
only the cones it actually asserts, so a shared AIG never leaks clauses
between instances.
"""

from __future__ import annotations

import time
import warnings

from repro.obs import trace as _obs
from repro.runtime import faults as _faults
from repro.smt.aig import FALSE_LIT, TRUE_LIT
from repro.smt.bitblast import BitBlaster
from repro.smt.counters import COUNTERS
from repro.smt.sat.solver import SatSolver
from repro.smt import terms as T

__all__ = [
    "Solver",
    "SolverResult",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "Unknown",
    "Model",
    "UnknownModelVariableWarning",
    "UnknownModelVariableError",
]


class SolverResult:
    """Tri-state solver verdict (a tiny enum with a readable repr).

    Verdicts compare equal by name, so a reason-carrying ``Unknown``
    instance satisfies ``verdict == UNKNOWN``.  ``SAT``/``UNSAT`` remain
    singletons (identity comparison keeps working for them).
    """

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, SolverResult) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __bool__(self):
        raise TypeError(
            "SolverResult is tri-state; compare against SAT/UNSAT/UNKNOWN"
        )


class Unknown(SolverResult):
    """An UNKNOWN verdict carrying *why* the solver gave up.

    ``reason`` is machine-readable: ``"deadline"``, ``"conflicts"``,
    ``"memory"``, ``"injected"``, or ``"unspecified"``.
    """

    __slots__ = ("reason",)

    def __init__(self, reason="unspecified"):
        super().__init__("unknown")
        self.reason = reason

    def __repr__(self):
        if self.reason == "unspecified":
            return "unknown"
        return f"unknown({self.reason})"


SAT = SolverResult("sat")
UNSAT = SolverResult("unsat")
UNKNOWN = Unknown()


class UnknownModelVariableWarning(UserWarning):
    """A model was queried for a variable the solver never blasted."""


class UnknownModelVariableError(KeyError):
    """Strict-mode version of :class:`UnknownModelVariableWarning`."""


class Model:
    """A satisfying assignment mapping term variables to ints."""

    def __init__(self, values, strict=False):
        self._values = dict(values)
        self._strict = strict
        self._warned = set()

    def value(self, var, default=0, warn=True):
        """Value of a variable, given a var term or a name.

        Variables the solver never saw (e.g. folded away by rewriting) are
        unconstrained; ``default`` (0) is as good a witness as any.  But an
        absent name is also what a typo'd hole name looks like, so the
        first query of each unknown name warns — or raises
        :class:`UnknownModelVariableError` when the model is strict.
        Internal callers that expect fold-away (CEGIS counterexample
        extraction) pass ``warn=False``.
        """
        name = var.name if isinstance(var, T.Term) else var
        if name not in self._values:
            if self._strict:
                raise UnknownModelVariableError(
                    f"variable {name!r} was never seen by the solver "
                    "(possible hole-name typo)"
                )
            if warn and name not in self._warned:
                self._warned.add(name)
                warnings.warn(
                    f"model queried for {name!r}, which the solver never "
                    f"saw; defaulting to {default} (possible hole-name typo"
                    " — construct the solver with strict_models=True to "
                    "raise instead)",
                    UnknownModelVariableWarning,
                    stacklevel=2,
                )
            return default
        return self._values[name]

    def __contains__(self, name):
        return name in self._values

    def as_dict(self):
        return dict(self._values)

    def __repr__(self):
        inner = ", ".join(
            f"{k}={v:#x}" for k, v in sorted(self._values.items())
        )
        return f"Model({inner})"


class Solver:
    """An incremental QF_BV solver over the term language.

    ``strict_models=True`` makes extracted models raise on queries for
    variables that were never blasted (catching hole-name typos) instead
    of warning and defaulting to 0.

    ``execution`` selects where checks run: ``"inprocess"`` (default)
    solves in this process; ``"isolated"`` ships each check as DIMACS to
    a sandboxed worker of the given
    :class:`repro.runtime.workers.SolverWorkerPool`, so a crash, hang or
    memory blow-up costs one disposable child process instead of the
    engine.  Worker deaths surface as ``WorkerCrashed``/``WorkerKilled``
    (retryable members of the runtime fault taxonomy), and a query that
    keeps killing workers trips the pool's circuit breaker, after which
    this facade quietly solves it in-process.
    """

    def __init__(self, strict_models=False, execution="inprocess",
                 worker_pool=None, blaster=None):
        if execution not in ("inprocess", "isolated"):
            raise ValueError(f"unknown execution mode {execution!r}")
        if execution == "isolated" and worker_pool is None:
            raise ValueError("execution='isolated' requires a worker_pool")
        # ``blaster`` may be shared with other solvers: cone-of-influence
        # encoding means this instance only Tseitin-encodes (and allocates
        # SAT variables for) the AIG regions its own assertions reach.
        self._blaster = blaster if blaster is not None else BitBlaster()
        self._sat = SatSolver()
        self._node_to_satvar = {}
        self._asserted = []
        self._trivially_false = False
        self.strict_models = strict_models
        self.execution = execution
        self._pool = worker_pool
        self._remote_model = None     # model values from the last worker SAT
        self._remote_conflicts = 0    # conflicts spent by workers for us
        self._pending_seed = None     # reseed to apply on the next check
        self.stats = {"asserts": 0, "checks": 0, "clauses": 0,
                      "worker_checks": 0, "worker_fallbacks": 0}
        COUNTERS.solver_instances += 1

    def add(self, term):
        """Assert that a width-1 term is 1."""
        if term.width != 1:
            raise ValueError(f"assertions must have width 1, got {term.width}")
        self.stats["asserts"] += 1
        self._asserted.append(term)
        lit = self._blaster.blast_bit(term)
        if lit == TRUE_LIT:
            return
        if lit == FALSE_LIT:
            self._trivially_false = True
            return
        self._encode_cone(lit)
        self._sat.add_clause([self._to_sat_lit(lit)])

    def add_all(self, terms):
        for term in terms:
            self.add(term)

    def check(self, max_conflicts=None, timeout=None, budget=None,
              assumptions=()):
        """Check satisfiability; returns SAT/UNSAT/UNKNOWN.

        ``timeout`` is in seconds (wall clock) and bounds only this call.
        ``budget`` is an optional ``repro.runtime.Budget``: its remaining
        wall clock and conflicts tighten the per-call caps, the conflicts
        this call consumes are charged back to it, and its memory cap is
        polled at the SAT core's checkpoints.  A pre-exhausted budget
        raises ``BudgetExhausted`` before any solving starts.

        ``assumptions`` is an iterable of width-1 terms held true for
        *this call only*: nothing is asserted permanently, so an UNSAT
        verdict means "unsatisfiable under these assumptions" and the
        solver (including its learned clauses) stays usable for the next
        check.  This is the encode-once/solve-many primitive the
        incremental CEGIS verify mode is built on.  In isolated mode the
        assumptions ride along in the DIMACS export as unit clauses
        (workers are stateless, so per-call scoping is automatic).

        An UNKNOWN verdict is an :class:`Unknown` instance whose
        ``reason`` names the exhausted cap (``"deadline"``,
        ``"conflicts"``, ``"memory"``) or ``"injected"`` under fault
        injection.

        When a :class:`repro.obs.Tracer` is installed, every check —
        including assumption-based incremental checks and isolated worker
        checks — emits a ``solver.check`` provenance event carrying the
        query kind (the enclosing span), clause/variable counts, conflicts
        consumed, the verdict, wall time, and the owning span id, so a run
        is fully reconstructible post-hoc.  With no tracer (the default)
        this wrapper costs one global read.
        """
        tracer = _obs.active_tracer()
        if tracer is None:
            return self._check(max_conflicts, timeout, budget, assumptions)
        started = time.monotonic()
        conflicts_before = self.conflicts
        worker_checks_before = self.stats["worker_checks"]
        verdict = None
        try:
            verdict = self._check(max_conflicts, timeout, budget,
                                  assumptions)
            return verdict
        finally:
            if verdict is None:
                result, reason = "raised", ""
            else:
                result = verdict.name
                reason = getattr(verdict, "reason", "") or ""
                if reason == "unspecified":
                    reason = ""
            tracer.event(
                "solver.check",
                kind=tracer.current_span_name(),
                result=result,
                reason=reason,
                wall=time.monotonic() - started,
                conflicts=self.conflicts - conflicts_before,
                clauses=len(self._sat.clauses),
                vars=self._sat.num_vars,
                asserts=self.stats["asserts"],
                assumptions=len(assumptions)
                if hasattr(assumptions, "__len__") else -1,
                execution="isolated"
                if self.stats["worker_checks"] > worker_checks_before
                else "inprocess",
            )

    def _check(self, max_conflicts=None, timeout=None, budget=None,
               assumptions=()):
        self.stats["checks"] += 1
        self._remote_model = None
        injector = _faults.active_injector()
        if injector is not None:
            injected_reason = injector.on_check()
            if injected_reason is not None:
                return Unknown(injected_reason)
        if self._trivially_false:
            return UNSAT
        assumption_terms = list(assumptions)
        sat_assumptions = []
        for term in assumption_terms:
            if term.width != 1:
                raise ValueError(
                    f"assumptions must have width 1, got {term.width}"
                )
            lit = self._blaster.blast_bit(term)
            if lit == TRUE_LIT:
                continue
            if lit == FALSE_LIT:
                # Constant-false assumption: UNSAT for this call only.
                return UNSAT
            self._encode_cone(lit)
            sat_assumptions.append(self._to_sat_lit(lit))
        deadline = None if timeout is None else time.monotonic() + timeout
        if budget is not None:
            budget.check()
            remaining = budget.remaining_time()
            if remaining is not None:
                budget_deadline = time.monotonic() + remaining
                if deadline is None or budget_deadline < deadline:
                    deadline = budget_deadline
            budget_conflicts = budget.remaining_conflicts()
            if budget_conflicts is not None and (
                max_conflicts is None or budget_conflicts < max_conflicts
            ):
                max_conflicts = budget_conflicts
        if self.execution == "isolated":
            return self._check_isolated(max_conflicts, deadline, budget,
                                        assumption_terms, sat_assumptions)
        return self._check_inprocess(max_conflicts, deadline, budget,
                                     sat_assumptions)

    def _check_inprocess(self, max_conflicts, deadline, budget,
                         sat_assumptions=()):
        conflicts_before = self._sat.conflicts
        verdict = self._sat.solve(assumptions=sat_assumptions,
                                  max_conflicts=max_conflicts,
                                  deadline=deadline, budget=budget)
        if budget is not None:
            budget.charge_conflicts(self._sat.conflicts - conflicts_before)
        if verdict is None:
            return Unknown(self._sat.stop_reason or "unspecified")
        return SAT if verdict else UNSAT

    def _check_isolated(self, max_conflicts, deadline, budget,
                        assumption_terms=(), sat_assumptions=()):
        """One check on a sandboxed worker, DIMACS over the wire.

        The full assertion set is re-exported per check (workers are
        stateless by design — any of them, including a fresh respawn,
        can serve any query).  Assumptions become extra unit clauses in
        the export; because every check re-exports from scratch, their
        per-call scoping is automatic.  Worker conflicts are charged to
        the budget exactly like in-process ones.
        """
        from repro.smt.dimacs import to_dimacs

        dimacs = to_dimacs(self._asserted + list(assumption_terms))
        key = hash(dimacs)
        if self._pool.should_fallback(key):
            # Circuit breaker: this query has killed enough workers that
            # isolation is costing more than it contains.
            self._pool.note_fallback(key)
            self.stats["worker_fallbacks"] += 1
            return self._check_inprocess(max_conflicts, deadline, budget,
                                         sat_assumptions)
        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        self.stats["worker_checks"] += 1
        seed, self._pending_seed = self._pending_seed, None
        outcome = self._pool.check(dimacs, max_conflicts=max_conflicts,
                                   timeout=timeout, seed=seed, key=key)
        self._remote_conflicts += outcome.conflicts
        if budget is not None:
            budget.charge_conflicts(outcome.conflicts)
        if outcome.verdict == "sat":
            self._remote_model = dict(outcome.model or {})
            return SAT
        if outcome.verdict == "unsat":
            return UNSAT
        return Unknown(outcome.reason or "unspecified")

    def model(self):
        """Extract the model after a SAT check."""
        if self._remote_model is not None:
            values = dict(self._remote_model)
        else:
            assignment = self._sat.model()
            values = {}
            for name, bits in self._blaster.var_bits.items():
                value = 0
                for i, lit in enumerate(bits):
                    bit = self._aig_lit_value(lit, assignment)
                    value |= bit << i
                values[name] = value
        injector = _faults.active_injector()
        if injector is not None:
            values = injector.on_model(values)
        return Model(values, strict=self.strict_models)

    @property
    def conflicts(self):
        """Total SAT conflicts this solver has spent (monotonic).

        Includes conflicts spent on our behalf by isolated workers, so
        CEGIS statistics and budget accounting are execution-agnostic.
        """
        return self._sat.conflicts + self._remote_conflicts

    def reseed(self, seed):
        """Deterministically perturb the decision order (retry escalation).

        In isolated mode the seed also rides along on the next worker
        request, where it perturbs the worker's fresh solver the same way.
        """
        self._pending_seed = seed
        self._sat.reseed(seed)

    # ------------------------------------------------------------------

    def _aig_lit_value(self, lit, assignment):
        node = lit >> 1
        if node == 0:
            value = 0
        else:
            sat_var = self._node_to_satvar.get(node)
            value = assignment.get(sat_var, 0) if sat_var is not None else 0
        return value ^ (lit & 1)

    def _to_sat_lit(self, aig_lit):
        node = aig_lit >> 1
        sat_var = self._node_to_satvar[node]
        return 2 * sat_var + (aig_lit & 1)

    def _encode_cone(self, root_lit):
        """Tseitin-encode the cone of ``root_lit`` (children first).

        Cone-of-influence encoding — rather than sweeping every AIG node
        created since the last assertion — is what makes a *shared*
        blaster sound: each solver allocates SAT variables and emits
        defining clauses only for the regions its own assertions (or
        assumptions) reach, regardless of what other solvers built into
        the same AIG in between.  Nodes already encoded by this instance
        are reused, so re-asserting shared structure costs nothing.
        """
        aig = self._blaster.aig
        sat = self._sat
        node_to_satvar = self._node_to_satvar
        left_of = aig.left
        right_of = aig.right
        root = root_lit >> 1
        if root == 0 or root in node_to_satvar:
            return
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in node_to_satvar:
                continue
            left = left_of[node]
            if left == -1:
                node_to_satvar[node] = sat.new_var()  # primary input
                continue
            right = right_of[node]
            if not expanded:
                stack.append((node, True))
                for child_lit in (left, right):
                    child = child_lit >> 1
                    if child and child not in node_to_satvar:
                        stack.append((child, False))
                continue
            sat_var = sat.new_var()
            node_to_satvar[node] = sat_var
            out = 2 * sat_var
            a = self._to_sat_lit(left)
            b = self._to_sat_lit(right)
            # out <-> a & b
            sat.add_clause([out ^ 1, a])
            sat.add_clause([out ^ 1, b])
            sat.add_clause([out, a ^ 1, b ^ 1])
            self.stats["clauses"] += 3
            COUNTERS.tseitin_clauses += 3
