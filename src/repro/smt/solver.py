"""Solver facade: assert width-1 terms, check satisfiability, read models.

Lowers terms through the bit-blaster into an AIG, Tseitin-encodes the cone
of each assertion into an incremental core, and exposes models as
assignments to term-level variables.  Re-asserting into the same solver
shares AIG structure across queries (the CEGIS guess solver relies on
this), and several solvers may share one ``BitBlaster`` — each encodes
only the cones it actually asserts, so a shared AIG never leaks clauses
between instances.

The *decision procedure* is pluggable (see ``repro.smt.backends``): the
facade owns encoding and model decoding and delegates each check to a
:class:`~repro.smt.backends.base.SolverBackend`.  Incremental backends
(the default ``"inprocess"`` CDCL core) are fed clauses as assertions
arrive; stateless backends (``"isolated"`` workers, external
``"subprocess-dimacs"`` solvers) receive a full DIMACS export per check,
with assumption terms re-encoded as unit clauses so per-call scoping
survives the loss of native assumption support.
"""

from __future__ import annotations

import time
import warnings

from repro.obs import trace as _obs
from repro.obs.metrics import METRICS as _METRICS
from repro.runtime import faults as _faults
from repro.runtime.reasons import normalize_reason
from repro.smt.aig import FALSE_LIT, TRUE_LIT
from repro.smt.backends.base import CheckLimits
from repro.smt.backends.inprocess import InProcessBackend
from repro.smt.backends.registry import resolve_backend, resolve_backend_name
from repro.smt.bitblast import BitBlaster
from repro.smt.counters import COUNTERS
from repro.smt.dimacs import to_dimacs
from repro.smt import terms as T

__all__ = [
    "Solver",
    "SolverResult",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "Unknown",
    "Model",
    "UnknownModelVariableWarning",
    "UnknownModelVariableError",
]

#: Legacy ``execution=`` values and the backend names they map to.
_EXECUTION_TO_BACKEND = {"inprocess": "inprocess", "isolated": "isolated"}


class SolverResult:
    """Tri-state solver verdict (a tiny enum with a readable repr).

    Verdicts compare equal by name, so a reason-carrying ``Unknown``
    instance satisfies ``verdict == UNKNOWN``.  ``SAT``/``UNSAT`` remain
    singletons (identity comparison keeps working for them).
    """

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, SolverResult) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __bool__(self):
        raise TypeError(
            "SolverResult is tri-state; compare against SAT/UNSAT/UNKNOWN"
        )


class Unknown(SolverResult):
    """An UNKNOWN verdict carrying *why* the solver gave up.

    ``reason`` is machine-readable and canonical (see
    ``repro.runtime.reasons``): ``"deadline"``, ``"conflicts"``,
    ``"memory"``, ``"injected"``, ``"backend-error"``,
    ``"circuit-breaker"``, or ``"unspecified"``.
    """

    __slots__ = ("reason",)

    def __init__(self, reason="unspecified"):
        super().__init__("unknown")
        self.reason = reason

    def __repr__(self):
        if self.reason == "unspecified":
            return "unknown"
        return f"unknown({self.reason})"


SAT = SolverResult("sat")
UNSAT = SolverResult("unsat")
UNKNOWN = Unknown()


class UnknownModelVariableWarning(UserWarning):
    """A model was queried for a variable the solver never blasted."""


class UnknownModelVariableError(KeyError):
    """Strict-mode version of :class:`UnknownModelVariableWarning`."""


class Model:
    """A satisfying assignment mapping term variables to ints."""

    def __init__(self, values, strict=False):
        self._values = dict(values)
        self._strict = strict
        self._warned = set()

    def value(self, var, default=0, warn=True):
        """Value of a variable, given a var term or a name.

        Variables the solver never saw (e.g. folded away by rewriting) are
        unconstrained; ``default`` (0) is as good a witness as any.  But an
        absent name is also what a typo'd hole name looks like, so the
        first query of each unknown name warns — or raises
        :class:`UnknownModelVariableError` when the model is strict.
        Internal callers that expect fold-away (CEGIS counterexample
        extraction) pass ``warn=False``.
        """
        name = var.name if isinstance(var, T.Term) else var
        if name not in self._values:
            if self._strict:
                raise UnknownModelVariableError(
                    f"variable {name!r} was never seen by the solver "
                    "(possible hole-name typo)"
                )
            if warn and name not in self._warned:
                self._warned.add(name)
                warnings.warn(
                    f"model queried for {name!r}, which the solver never "
                    f"saw; defaulting to {default} (possible hole-name typo"
                    " — construct the solver with strict_models=True to "
                    "raise instead)",
                    UnknownModelVariableWarning,
                    stacklevel=2,
                )
            return default
        return self._values[name]

    def __contains__(self, name):
        return name in self._values

    def as_dict(self):
        return dict(self._values)

    def __repr__(self):
        inner = ", ".join(
            f"{k}={v:#x}" for k, v in sorted(self._values.items())
        )
        return f"Model({inner})"


class Solver:
    """An incremental QF_BV solver over the term language.

    ``strict_models=True`` makes extracted models raise on queries for
    variables that were never blasted (catching hole-name typos) instead
    of warning and defaulting to 0.

    ``backend`` selects the decision procedure: a registered backend name
    (``"inprocess"``, ``"isolated"``, ``"subprocess-dimacs"``, or
    anything added via ``repro.smt.backends.register_backend``), a live
    :class:`~repro.smt.backends.base.SolverBackend` instance, or ``None``
    for the process default (``$REPRO_BACKEND`` or ``"inprocess"``).
    ``worker_pool`` binds the ``"isolated"`` backend to a
    :class:`repro.runtime.workers.SolverWorkerPool`, so a crash, hang or
    memory blow-up costs one disposable child process instead of the
    engine.  Worker deaths surface as ``WorkerCrashed``/``WorkerKilled``
    (retryable members of the runtime fault taxonomy), and a query that
    keeps killing workers trips the pool's circuit breaker, after which
    this facade quietly solves it in-process.

    Stateless backends never replace the in-process core: the facade
    keeps encoding every cone into it, both so encode counters stay
    execution-agnostic and so fallback (circuit breaker, backend refusal)
    is always one ``solve`` away.

    ``execution`` is the deprecated PR-2 spelling of the same choice
    (``"inprocess"``/``"isolated"``); prefer ``backend=``.
    """

    def __init__(self, strict_models=False, execution=None,
                 worker_pool=None, blaster=None, backend=None):
        if execution is not None:
            mapped = _EXECUTION_TO_BACKEND.get(execution)
            if mapped is None:
                raise ValueError(f"unknown execution mode {execution!r}")
            warnings.warn(
                "Solver(execution=...) is deprecated; pass backend="
                f"{mapped!r} instead",
                DeprecationWarning, stacklevel=2,
            )
            if backend is not None and resolve_backend_name(backend) != mapped:
                raise ValueError(
                    f"conflicting backend selection: execution={execution!r}"
                    f" vs backend={backend!r}"
                )
            backend = backend if backend is not None else mapped
        # ``blaster`` may be shared with other solvers: cone-of-influence
        # encoding means this instance only Tseitin-encodes (and allocates
        # SAT variables for) the AIG regions its own assertions reach.
        self._blaster = blaster if blaster is not None else BitBlaster()
        self._backend = resolve_backend(backend, worker_pool=worker_pool)
        # The encoding target.  An incremental backend *is* the core; a
        # stateless backend gets a private in-process core alongside it
        # (encode counters stay identical across backends, and the core
        # doubles as the circuit-breaker fallback solver).
        if self._backend.supports_incremental:
            self._core = self._backend
        else:
            self._core = InProcessBackend()
        self._node_to_satvar = {}
        self._asserted = []
        self._trivially_false = False
        self.strict_models = strict_models
        self._remote_model = None     # model values from a stateless backend
        self._remote_conflicts = 0    # conflicts spent out-of-process for us
        self._pending_seed = None     # reseed to apply on the next check
        self._last_backend = self._core.name  # who served the last check
        self._last_internals = {}     # solver work deltas of the last check
        self.stats = {"asserts": 0, "checks": 0, "clauses": 0,
                      "worker_checks": 0, "worker_fallbacks": 0}
        COUNTERS.solver_instances += 1

    @property
    def backend(self):
        """The configured :class:`SolverBackend` instance."""
        return self._backend

    @property
    def backend_name(self):
        return self._backend.name

    @property
    def execution(self):
        """Deprecated PR-2 spelling of the dispatch mode: the backend
        name for stateless backends, else ``"inprocess"``."""
        if self._backend.supports_incremental:
            return "inprocess"
        return self._backend.name

    def add(self, term):
        """Assert that a width-1 term is 1."""
        if term.width != 1:
            raise ValueError(f"assertions must have width 1, got {term.width}")
        self.stats["asserts"] += 1
        self._asserted.append(term)
        lit = self._blaster.blast_bit(term)
        if lit == TRUE_LIT:
            return
        if lit == FALSE_LIT:
            self._trivially_false = True
            return
        self._encode_cone(lit)
        self._core.add_clause([self._to_sat_lit(lit)])

    def add_all(self, terms):
        for term in terms:
            self.add(term)

    def check(self, max_conflicts=None, timeout=None, budget=None,
              assumptions=()):
        """Check satisfiability; returns SAT/UNSAT/UNKNOWN.

        ``timeout`` is in seconds (wall clock) and bounds only this call.
        ``budget`` is an optional ``repro.runtime.Budget``: its remaining
        wall clock and conflicts tighten the per-call caps, the conflicts
        this call consumes are charged back to it, and its memory cap is
        polled at the SAT core's checkpoints.  A pre-exhausted budget
        raises ``BudgetExhausted`` before any solving starts.

        ``assumptions`` is an iterable of width-1 terms held true for
        *this call only*: nothing is asserted permanently, so an UNSAT
        verdict means "unsatisfiable under these assumptions" and the
        solver (including its learned clauses) stays usable for the next
        check.  This is the encode-once/solve-many primitive the
        incremental CEGIS verify mode is built on.  Backends without
        native assumption support degrade gracefully: the assumptions
        ride along in the per-check DIMACS export as unit clauses
        (stateless backends re-export every check, so per-call scoping is
        automatic).

        An UNKNOWN verdict is an :class:`Unknown` instance whose
        ``reason`` names the exhausted cap (``"deadline"``,
        ``"conflicts"``, ``"memory"``), a backend failure
        (``"backend-error"``, ``"circuit-breaker"``), or ``"injected"``
        under fault injection.

        When a :class:`repro.obs.Tracer` is installed, every check —
        including assumption-based incremental checks and out-of-process
        backend checks — emits a ``solver.check`` provenance event
        carrying the query kind (the enclosing span), clause/variable
        counts, conflicts consumed, the verdict, wall time, the backend
        that actually served the query, and the owning span id, so a run
        is fully reconstructible post-hoc.  Wall time is always charged
        to the ``solver.check`` latency histogram in
        :data:`repro.obs.metrics.METRICS`; with no tracer (the default)
        that plus one global read is the whole wrapper cost.
        """
        tracer = _obs.active_tracer()
        if tracer is None:
            started = time.monotonic()
            try:
                return self._check(max_conflicts, timeout, budget,
                                   assumptions)
            finally:
                _METRICS.observe("solver.check",
                                 time.monotonic() - started)
        started = time.monotonic()
        conflicts_before = self.conflicts
        verdict = None
        try:
            verdict = self._check(max_conflicts, timeout, budget,
                                  assumptions)
            return verdict
        finally:
            _METRICS.observe("solver.check", time.monotonic() - started)
            if verdict is None:
                result, reason = "raised", ""
            else:
                result = verdict.name
                reason = getattr(verdict, "reason", "") or ""
                if reason == "unspecified":
                    reason = ""
            internals = self._last_internals
            tracer.event(
                "solver.check",
                kind=tracer.current_span_name(),
                result=result,
                reason=reason,
                wall=time.monotonic() - started,
                conflicts=self.conflicts - conflicts_before,
                clauses=len(self._core.clauses),
                vars=self._core.num_vars,
                asserts=self.stats["asserts"],
                assumptions=len(assumptions)
                if hasattr(assumptions, "__len__") else -1,
                backend=self._last_backend,
                execution=self._last_backend,
                # Solver internals, mirroring what _check charged to
                # repro.smt.counters for this check — the obs report
                # reconciles the two exactly.
                propagations=internals.get("propagations", 0),
                restarts=internals.get("restarts", 0),
                learned=internals.get("learned", 0),
                deleted=internals.get("deleted", 0),
                trail_reuse_hits=internals.get("trail_reuse_hits", 0),
                trail_reuse_levels_saved=internals.get(
                    "trail_reuse_levels_saved", 0),
                chrono_backtracks=internals.get("chrono_backtracks", 0),
            )

    def _check(self, max_conflicts=None, timeout=None, budget=None,
               assumptions=()):
        self.stats["checks"] += 1
        self._remote_model = None
        self._last_backend = self._core.name
        self._last_internals = {}
        injector = _faults.active_injector()
        if injector is not None:
            injected_reason = injector.on_check()
            if injected_reason is not None:
                return Unknown(normalize_reason(injected_reason))
        if self._trivially_false:
            return UNSAT
        assumption_terms = list(assumptions)
        sat_assumptions = []
        for term in assumption_terms:
            if term.width != 1:
                raise ValueError(
                    f"assumptions must have width 1, got {term.width}"
                )
            lit = self._blaster.blast_bit(term)
            if lit == TRUE_LIT:
                continue
            if lit == FALSE_LIT:
                # Constant-false assumption: UNSAT for this call only.
                return UNSAT
            self._encode_cone(lit)
            sat_assumptions.append(self._to_sat_lit(lit))
        deadline = None if timeout is None else time.monotonic() + timeout
        if budget is not None:
            budget.check()
            remaining = budget.remaining_time()
            if remaining is not None:
                budget_deadline = time.monotonic() + remaining
                if deadline is None or budget_deadline < deadline:
                    deadline = budget_deadline
            budget_conflicts = budget.remaining_conflicts()
            if budget_conflicts is not None and (
                max_conflicts is None or budget_conflicts < max_conflicts
            ):
                max_conflicts = budget_conflicts
        limits = CheckLimits(max_conflicts=max_conflicts, deadline=deadline,
                             budget=budget)
        backend = self._backend
        if backend.supports_incremental:
            self._last_backend = backend.name
            result = backend.check(None, sat_assumptions, limits)
        else:
            # Stateless dispatch: re-export the full assertion set per
            # check (any backend instance — worker respawn, fresh solver
            # process — can serve any query), with assumption terms as
            # unit clauses so per-call scoping survives.
            limits.seed, self._pending_seed = self._pending_seed, None
            dimacs = to_dimacs(self._asserted + assumption_terms)
            self.stats["worker_checks"] += 1
            self._last_backend = backend.name
            result = backend.check(dimacs, (), limits)
            if result.fallback:
                # The backend declined (circuit breaker): the un-dispatched
                # check doesn't count, and the in-process core — which holds
                # the same clauses — answers instead.
                self.stats["worker_checks"] -= 1
                self.stats["worker_fallbacks"] += 1
                self._last_backend = self._core.name
                result = self._core.check(None, sat_assumptions, limits)
            else:
                self._remote_conflicts += result.conflicts
                if result.verdict == "sat" and result.model is not None:
                    self._remote_model = dict(result.model)
        if budget is not None:
            budget.charge_conflicts(result.conflicts)
        if result.internals:
            internals = result.internals
            self._last_internals = internals
            COUNTERS.sat_propagations += internals.get("propagations", 0)
            COUNTERS.sat_restarts += internals.get("restarts", 0)
            COUNTERS.sat_learned += internals.get("learned", 0)
            COUNTERS.sat_deleted += internals.get("deleted", 0)
            COUNTERS.sat_trail_reuse_hits += internals.get(
                "trail_reuse_hits", 0)
            COUNTERS.sat_trail_reuse_levels_saved += internals.get(
                "trail_reuse_levels_saved", 0)
            COUNTERS.sat_chrono_backtracks += internals.get(
                "chrono_backtracks", 0)
        if result.verdict == "sat":
            return SAT
        if result.verdict == "unsat":
            return UNSAT
        return Unknown(normalize_reason(result.reason))

    def model(self):
        """Extract the model after a SAT check."""
        if self._remote_model is not None:
            values = dict(self._remote_model)
        else:
            assignment = self._core.assignment()
            values = {}
            for name, bits in self._blaster.var_bits.items():
                value = 0
                for i, lit in enumerate(bits):
                    bit = self._aig_lit_value(lit, assignment)
                    value |= bit << i
                values[name] = value
        injector = _faults.active_injector()
        if injector is not None:
            values = injector.on_model(values)
        return Model(values, strict=self.strict_models)

    @property
    def conflicts(self):
        """Total SAT conflicts this solver has spent (monotonic).

        Includes conflicts spent on our behalf by out-of-process backends
        (isolated workers, external solvers), so CEGIS statistics and
        budget accounting are backend-agnostic.
        """
        return self._core.conflicts + self._remote_conflicts

    def reseed(self, seed):
        """Deterministically perturb the decision order (retry escalation).

        For stateless backends the seed also rides along on the next
        check request, where it perturbs the remote solver the same way.
        """
        self._pending_seed = seed
        self._core.reseed(seed)

    # ------------------------------------------------------------------

    def _aig_lit_value(self, lit, assignment):
        node = lit >> 1
        if node == 0:
            value = 0
        else:
            sat_var = self._node_to_satvar.get(node)
            value = assignment.get(sat_var, 0) if sat_var is not None else 0
        return value ^ (lit & 1)

    def _to_sat_lit(self, aig_lit):
        node = aig_lit >> 1
        sat_var = self._node_to_satvar[node]
        return 2 * sat_var + (aig_lit & 1)

    def _encode_cone(self, root_lit):
        """Tseitin-encode the cone of ``root_lit`` (children first).

        Cone-of-influence encoding — rather than sweeping every AIG node
        created since the last assertion — is what makes a *shared*
        blaster sound: each solver allocates SAT variables and emits
        defining clauses only for the regions its own assertions (or
        assumptions) reach, regardless of what other solvers built into
        the same AIG in between.  Nodes already encoded by this instance
        are reused, so re-asserting shared structure costs nothing.
        """
        aig = self._blaster.aig
        sat = self._core
        node_to_satvar = self._node_to_satvar
        left_of = aig.left
        right_of = aig.right
        root = root_lit >> 1
        if root == 0 or root in node_to_satvar:
            return
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in node_to_satvar:
                continue
            left = left_of[node]
            if left == -1:
                node_to_satvar[node] = sat.new_var()  # primary input
                continue
            right = right_of[node]
            if not expanded:
                stack.append((node, True))
                for child_lit in (left, right):
                    child = child_lit >> 1
                    if child and child not in node_to_satvar:
                        stack.append((child, False))
                continue
            sat_var = sat.new_var()
            node_to_satvar[node] = sat_var
            out = 2 * sat_var
            a = self._to_sat_lit(left)
            b = self._to_sat_lit(right)
            # out <-> a & b
            sat.add_clause([out ^ 1, a])
            sat.add_clause([out ^ 1, b])
            sat.add_clause([out, a ^ 1, b ^ 1])
            self.stats["clauses"] += 3
            COUNTERS.tseitin_clauses += 3
