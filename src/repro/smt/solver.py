"""Solver facade: assert width-1 terms, check satisfiability, read models.

Lowers terms through the bit-blaster into an AIG, Tseitin-encodes new AND
nodes into the CDCL core incrementally, and exposes models as assignments to
term-level variables.  Re-asserting into the same solver shares AIG structure
across queries (the CEGIS guess solver relies on this).
"""

from __future__ import annotations

import time

from repro.smt.aig import FALSE_LIT, TRUE_LIT
from repro.smt.bitblast import BitBlaster
from repro.smt.sat.solver import SatSolver
from repro.smt import terms as T

__all__ = ["Solver", "SolverResult", "SAT", "UNSAT", "UNKNOWN", "Model"]


class SolverResult:
    """Tri-state solver verdict (a tiny enum with a readable repr)."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name

    def __bool__(self):
        raise TypeError(
            "SolverResult is tri-state; compare against SAT/UNSAT/UNKNOWN"
        )


SAT = SolverResult("sat")
UNSAT = SolverResult("unsat")
UNKNOWN = SolverResult("unknown")


class Model:
    """A satisfying assignment mapping term variables to ints."""

    def __init__(self, values):
        self._values = dict(values)

    def value(self, var):
        """Value of a variable, given a var term or a name; defaults to 0.

        Variables the solver never saw (e.g. folded away by rewriting) are
        unconstrained; 0 is as good a witness as any.
        """
        name = var.name if isinstance(var, T.Term) else var
        return self._values.get(name, 0)

    def __contains__(self, name):
        return name in self._values

    def as_dict(self):
        return dict(self._values)

    def __repr__(self):
        inner = ", ".join(
            f"{k}={v:#x}" for k, v in sorted(self._values.items())
        )
        return f"Model({inner})"


class Solver:
    """An incremental QF_BV solver over the term language."""

    def __init__(self):
        self._blaster = BitBlaster()
        self._sat = SatSolver()
        self._node_to_satvar = {}
        self._encoded_nodes = 0
        self._asserted = []
        self._trivially_false = False
        self.stats = {"asserts": 0, "checks": 0, "clauses": 0}

    def add(self, term):
        """Assert that a width-1 term is 1."""
        if term.width != 1:
            raise ValueError(f"assertions must have width 1, got {term.width}")
        self.stats["asserts"] += 1
        self._asserted.append(term)
        lit = self._blaster.blast_bit(term)
        self._encode_new_nodes()
        if lit == TRUE_LIT:
            return
        if lit == FALSE_LIT:
            self._trivially_false = True
            return
        self._sat.add_clause([self._to_sat_lit(lit)])

    def add_all(self, terms):
        for term in terms:
            self.add(term)

    def check(self, max_conflicts=None, timeout=None):
        """Check satisfiability; returns SAT/UNSAT/UNKNOWN.

        ``timeout`` is in seconds (wall clock) and bounds only this call.
        """
        self.stats["checks"] += 1
        if self._trivially_false:
            return UNSAT
        deadline = None if timeout is None else time.monotonic() + timeout
        verdict = self._sat.solve(max_conflicts=max_conflicts,
                                  deadline=deadline)
        if verdict is None:
            return UNKNOWN
        return SAT if verdict else UNSAT

    def model(self):
        """Extract the model after a SAT check."""
        assignment = self._sat.model()
        values = {}
        for name, bits in self._blaster.var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                bit = self._aig_lit_value(lit, assignment)
                value |= bit << i
            values[name] = value
        return Model(values)

    # ------------------------------------------------------------------

    def _aig_lit_value(self, lit, assignment):
        node = lit >> 1
        if node == 0:
            value = 0
        else:
            sat_var = self._node_to_satvar.get(node)
            value = assignment.get(sat_var, 0) if sat_var is not None else 0
        return value ^ (lit & 1)

    def _to_sat_lit(self, aig_lit):
        node = aig_lit >> 1
        sat_var = self._node_to_satvar[node]
        return 2 * sat_var + (aig_lit & 1)

    def _encode_new_nodes(self):
        """Tseitin-encode AIG nodes created since the last call."""
        aig = self._blaster.aig
        sat = self._sat
        node_to_satvar = self._node_to_satvar
        for node in range(max(1, self._encoded_nodes), len(aig)):
            sat_var = sat.new_var()
            node_to_satvar[node] = sat_var
            left = aig.left[node]
            if left == -1:
                continue  # primary input: free variable
            right = aig.right[node]
            out = 2 * sat_var
            a = self._to_sat_lit(left)
            b = self._to_sat_lit(right)
            # out <-> a & b
            sat.add_clause([out ^ 1, a])
            sat.add_clause([out ^ 1, b])
            sat.add_clause([out, a ^ 1, b ^ 1])
            self.stats["clauses"] += 3
        self._encoded_nodes = len(aig)
