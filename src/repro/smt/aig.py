"""And-inverter graphs with structural hashing.

The bit-blaster lowers terms to an AIG; CNF generation then Tseitin-encodes
the AND nodes.  Literals are ints: ``2 * node + sign`` where sign 1 means
complemented.  Node 0 is the constant-false node, so literal 0 is FALSE and
literal 1 is TRUE.
"""

from __future__ import annotations

from repro.smt.counters import COUNTERS

__all__ = ["AIG", "FALSE_LIT", "TRUE_LIT"]

FALSE_LIT = 0
TRUE_LIT = 1


class AIG:
    """A mutable and-inverter graph.

    ``inputs`` is the list of primary-input node indices.  AND nodes store
    their two operand literals in ``left``/``right`` (index-aligned lists;
    primary inputs and the constant node hold ``-1`` there).
    """

    def __init__(self):
        self.left = [-1]
        self.right = [-1]
        self._strash = {}

    def __len__(self):
        return len(self.left)

    def new_input(self):
        """Allocate a fresh primary input; returns its positive literal."""
        index = len(self.left)
        self.left.append(-1)
        self.right.append(-1)
        COUNTERS.aig_nodes += 1
        return index << 1

    def is_input(self, node):
        return node != 0 and self.left[node] == -1

    @staticmethod
    def neg(lit):
        return lit ^ 1

    def and_(self, a, b):
        """AND of two literals with constant/structural simplification."""
        if a == FALSE_LIT or b == FALSE_LIT or a == (b ^ 1):
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if b == TRUE_LIT or a == b:
            return a
        if b < a:
            a, b = b, a
        key = (a, b)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        index = len(self.left)
        self.left.append(a)
        self.right.append(b)
        COUNTERS.aig_nodes += 1
        lit = index << 1
        self._strash[key] = lit
        return lit

    def or_(self, a, b):
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor_(self, a, b):
        if a == FALSE_LIT:
            return b
        if b == FALSE_LIT:
            return a
        if a == TRUE_LIT:
            return b ^ 1
        if b == TRUE_LIT:
            return a ^ 1
        if a == b:
            return FALSE_LIT
        if a == (b ^ 1):
            return TRUE_LIT
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def mux(self, sel, then, els):
        """``then`` if ``sel`` else ``els``."""
        if sel == TRUE_LIT:
            return then
        if sel == FALSE_LIT:
            return els
        if then == els:
            return then
        return self.or_(self.and_(sel, then), self.and_(sel ^ 1, els))

    def cone(self, roots):
        """Node indices reachable from root literals (excluding node 0)."""
        seen = set()
        stack = [lit >> 1 for lit in roots]
        while stack:
            node = stack.pop()
            if node == 0 or node in seen:
                continue
            seen.add(node)
            left = self.left[node]
            if left != -1:
                stack.append(left >> 1)
                stack.append(self.right[node] >> 1)
        return seen

    def evaluate(self, roots, input_values):
        """Evaluate root literals given ``{input_node: 0/1}``; returns ints."""
        values = {0: 0}
        order = self._topo(roots)
        for node in order:
            left = self.left[node]
            if left == -1:
                values[node] = input_values.get(node, 0)
            else:
                lv = values[left >> 1] ^ (left & 1)
                right = self.right[node]
                rv = values[right >> 1] ^ (right & 1)
                values[node] = lv & rv
        return [values[lit >> 1] ^ (lit & 1) for lit in roots]

    def _topo(self, roots):
        seen = set()
        order = []
        stack = [(lit >> 1, False) for lit in roots]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            left = self.left[node]
            if left != -1:
                for operand in (left >> 1, self.right[node] >> 1):
                    if operand not in seen:
                        stack.append((operand, False))
        return order
