"""SMT-LIB 2 export of term-level queries.

The built-in solver handles everything this reproduction needs, but the
queries it discharges are plain QF_BV — exporting them lets users replay any
query on an external solver (Boolector/CVC5/Z3, as the paper's artifact
does) or archive them as artifacts.  Round-trip fidelity is tested by
evaluating models produced by our own solver against the exported text's
semantics.
"""

from __future__ import annotations

from repro.smt import terms as T

__all__ = ["to_smtlib", "query_to_smtlib"]

_BINOPS = {
    "and": "bvand",
    "or": "bvor",
    "xor": "bvxor",
    "add": "bvadd",
    "sub": "bvsub",
    "mul": "bvmul",
    "udiv": "bvudiv",
    "urem": "bvurem",
    "shl": "bvshl",
    "lshr": "bvlshr",
    "ashr": "bvashr",
    "ult": "bvult",
    "slt": "bvslt",
}


def _symbol(name):
    """Quote names containing characters outside the simple-symbol set."""
    if name and all(c.isalnum() or c in "_-.~!@$%^&*+<>?/" for c in name):
        return name
    return "|" + name.replace("|", "_") + "|"


def to_smtlib(term):
    """One term as an SMT-LIB expression (width-1 terms stay bitvectors)."""
    parts = []
    memo = {}
    order = T._postorder([term])
    for node in order:
        memo[id(node)] = _render(node, memo, parts)
    return memo[id(term)]


def _render(node, memo, _parts):
    op = node.op
    if op == "const":
        return f"(_ bv{node.value} {node.width})"
    if op == "var":
        return _symbol(node.name)
    args = [memo[id(arg)] for arg in node.args]
    if op == "not":
        return f"(bvnot {args[0]})"
    if op == "eq":
        return f"(ite (= {args[0]} {args[1]}) #b1 #b0)"
    if op in ("ult", "slt"):
        return f"(ite ({_BINOPS[op]} {args[0]} {args[1]}) #b1 #b0)"
    if op in _BINOPS:
        return f"({_BINOPS[op]} {args[0]} {args[1]})"
    if op == "concat":
        return f"(concat {args[0]} {args[1]})"
    if op == "extract":
        high, low = node.params
        return f"((_ extract {high} {low}) {args[0]})"
    if op == "ite":
        return f"(ite (= {args[0]} #b1) {args[1]} {args[2]})"
    raise ValueError(f"cannot export operator {op!r}")


def query_to_smtlib(assertions, logic="QF_BV", check_sat=True,
                    get_model=False):
    """A full SMT-LIB script asserting each width-1 term equals 1."""
    lines = [f"(set-logic {logic})"]
    declared = set()
    for assertion in assertions:
        for var in sorted(T.free_variables(assertion),
                          key=lambda v: v.name):
            if var.name not in declared:
                declared.add(var.name)
                lines.append(
                    f"(declare-const {_symbol(var.name)} "
                    f"(_ BitVec {var.width}))"
                )
    for assertion in assertions:
        if assertion.width != 1:
            raise ValueError("assertions must have width 1")
        lines.append(f"(assert (= {to_smtlib(assertion)} #b1))")
    if check_sat:
        lines.append("(check-sat)")
    if get_model:
        lines.append("(get-model)")
    return "\n".join(lines) + "\n"
