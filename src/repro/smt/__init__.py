"""A self-contained QF_BV SMT substrate.

The paper's toolchain leans on Rosette with Boolector/CVC4 underneath.  This
package replaces that stack with a from-scratch pipeline:

``terms``      hash-consed bitvector term DAG with rewriting constructors
``aig``        and-inverter graph with structural hashing
``bitblast``   terms -> AIG literals
``sat``        a CDCL SAT solver (watched literals, VSIDS, restarts)
``solver``     a solver facade: assert terms, check satisfiability, get models
``backends``   pluggable decision procedures behind the facade (the bundled
               CDCL core, sandboxed worker pools, external DIMACS solvers)

Everything is a bitvector; booleans are width-1 bitvectors.  This matches the
Oyster IR (Section 3.1 of the paper), which also models every value as a
bitvector.
"""

from repro.smt.terms import (
    Term,
    bv_const,
    bv_var,
    TRUE,
    FALSE,
    evaluate,
)
from repro.smt.backends import (
    BackendResult,
    CheckLimits,
    SolverBackend,
    SolverConfig,
    available_backends,
    backend_capabilities,
    register_backend,
    resolve_backend,
    resolve_solver_config,
)
from repro.smt.solver import (
    Solver,
    SolverResult,
    SAT,
    UNSAT,
    UNKNOWN,
    Unknown,
    Model,
    UnknownModelVariableError,
    UnknownModelVariableWarning,
)

__all__ = [
    "SolverBackend",
    "BackendResult",
    "CheckLimits",
    "SolverConfig",
    "available_backends",
    "backend_capabilities",
    "register_backend",
    "resolve_backend",
    "resolve_solver_config",
    "Term",
    "bv_const",
    "bv_var",
    "TRUE",
    "FALSE",
    "evaluate",
    "Solver",
    "SolverResult",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "Unknown",
    "Model",
    "UnknownModelVariableError",
    "UnknownModelVariableWarning",
]
