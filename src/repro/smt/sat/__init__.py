"""A from-scratch CDCL SAT solver used as the decision core for QF_BV."""

from repro.smt.sat.solver import SatSolver

__all__ = ["SatSolver"]
