"""A CDCL SAT solver.

Implements the standard modern recipe: two-literal watching, first-UIP clause
learning with local minimization, VSIDS decision ordering with phase saving,
Luby restarts, and glucose-style LBD-tiered learned-clause database
reduction.  Literal encoding: for variable ``v`` (1-based) the positive
literal is ``2*v`` and the negative literal is ``2*v + 1``; ``lit ^ 1``
negates.

The solver is incremental in the "add clauses, solve, add more, solve again"
sense, and supports solving under assumptions *MiniSat-style*: each
assumption occupies its own decision level (level ``i + 1`` holds
``assumptions[i]``), placed in one batched pass and propagated together.
Because levels align with assumption indices, consecutive
``solve(assumptions=...)`` calls that share an assumption prefix reuse the
trail: the solver backtracks only to the first divergent assumption level
instead of level 0, so the propagation work for the shared prefix — in the
encode-once CEGIS verifier, the selector literal plus most hole bits —
survives across queries.  ``trail_reuse_hits`` / ``trail_reuse_levels``
count the savings.

Learned clauses are tagged with their LBD (literal block distance — the
number of distinct decision levels among their literals, computed at
learning time).  Reduction keeps three tiers: *core* clauses (LBD <= 2)
are never deleted, *mid* clauses (LBD 3..6) go only when the *local* tier
(LBD >= 7) cannot fill the deletion quota, ranked by activity within each
tier.  The reduction threshold grows geometrically instead of sitting at a
fixed size, and deleted clauses are unhooked lazily — ``_propagate`` drops
stale watch entries as it traverses them — so a reduction costs time
proportional to the clauses it deletes, not to every watch list in the
database.  Between solves, the clause database is simplified against the
level-0 trail: satisfied clauses are dropped and falsified literals
stripped.

``solve`` can be bounded by a conflict budget, a wall-clock deadline, a
memory-capped ``repro.runtime.Budget``, and/or a ``threading.Event``
cancellation token — returning ``None`` (unknown) when exhausted, with
``stop_reason`` set to ``"conflicts"``, ``"deadline"``, ``"memory"`` or
``"cancelled"``.  This is how the reproduction implements the paper's
synthesis timeouts and how portfolio races stop losing in-process members.

Cancellation is cooperative and checked at three checkpoints — every
propagation batch, every few conflicts, and every few decisions — so a
budget expiry is observed promptly (target: well under 100ms of overshoot)
instead of only every 128 conflicts.
"""

from __future__ import annotations

import random
import time

__all__ = ["SatSolver"]

_UNASSIGNED = -1

# Cancellation checkpoint strides.  Smaller is more responsive, larger is
# cheaper; these keep deadline overshoot in the low milliseconds for
# pure-python solving speeds while adding <1% overhead.
_PROPAGATION_CHECK_MASK = 1023   # poll the clock every 1024 propagations
_CONFLICT_CHECK_MASK = 7         # ... every 8 conflicts
_DECISION_CHECK_MASK = 31        # ... every 32 decisions
_MEMORY_CHECK_MASK = 255         # poll the memory cap every 256 conflicts

# Learned-clause tiers by LBD (glucose-style): core clauses are never
# deleted, local clauses go first, mid clauses only fill a remaining quota.
_CORE_LBD = 2
_MID_LBD = 6
# Reduction trigger: starts at the historical fixed threshold and grows
# geometrically with every reduction, so the database is allowed to get
# larger as the instance proves it needs one.
_REDUCE_BASE = 2000
_REDUCE_GROWTH = 1.15

# Weak chronological backtracking (Nadel & Ryvchin, SAT'18): a backjump
# unwinding more than this many levels backtracks a single level instead.
# On the big mostly-satisfiable verify queries of the synthesis pipeline,
# a deep backjump throws away (and immediately re-derives) thousands of
# datapath propagations; chronological backtracking keeps them.  The
# learned clause is still asserting at any level at or above its computed
# backjump level, so enqueueing its asserting literal one level down is
# sound — and because literals are always stamped with the level they are
# *placed* at, the trail stays level-monotonic and conflict analysis
# needs no out-of-order machinery.
_CHRONO_LIMIT = 64


def _luby(x):
    """The Luby restart sequence, 0-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    def __init__(self):
        self.clauses = []           # clause lists; None marks a deleted slot
        self.learned = set()        # indices into self.clauses that are learned
        self.activity_cl = {}       # clause index -> activity
        self.lbd = {}               # clause index -> LBD at learning time
        self.watches = [[], []]     # lit -> clause indices (lit 0/1 unused)
        self.assign = [_UNASSIGNED]  # var -> 0/1/_UNASSIGNED
        self.phase = [0]
        self.level = [0]
        self.reason = [-1]
        self.activity = [0.0]
        self.trail = []
        self.trail_lim = []
        self.propagated = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_total = 0     # clauses ever learned (incl. units)
        self.deleted_total = 0     # learned clauses dropped by reduction
        self.simplified_total = 0  # clauses dropped by level-0 simplification
        self.trail_reuse_hits = 0    # solves that kept >=1 assumption level
        self.trail_reuse_levels = 0  # assumption levels kept across solves
        self.chrono_backtracks = 0   # deep backjumps converted to 1-level
        self.stop_reason = None   # why the last solve returned None
        self.profile = None       # optional phase-wall dict (enable_profiling)
        self._deadline = None     # active only inside solve()
        self._cancel = None       # cooperative cancellation event
        self._stop_flag = None    # set by _propagate on deadline expiry
        self._heap = []
        self._heap_pos = {}
        self._seen = bytearray(1)     # persistent _analyze scratch (per var)
        self._last_assumptions = []   # previous solve's assumption vector
        self._n_assume = 0            # assumption count of the active solve
        self._reduce_limit = _REDUCE_BASE
        self._simplified_at = 0       # level-0 trail size at last _simplify

    # -- variable / clause management -----------------------------------

    def new_var(self):
        self.assign.append(_UNASSIGNED)
        self.phase.append(0)
        self.level.append(0)
        self.reason.append(-1)
        self.activity.append(0.0)
        self.watches.append([])
        self.watches.append([])
        self._seen.append(0)
        var = len(self.assign) - 1
        self._heap_insert(var)
        return var

    @property
    def num_vars(self):
        return len(self.assign) - 1

    def add_clause(self, lits):
        """Add a clause of literals; returns False if the formula is UNSAT."""
        if not self.ok:
            return False
        if self.trail_lim:
            self._backtrack(0)
        seen = set()
        clause = []
        for lit in lits:
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._lit_value(lit)
            if value == 1:
                return True  # already satisfied at level 0
            if value == 0:
                continue  # falsified at level 0; drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self.ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self.ok = False
                return False
            self.ok = self._propagate() == -1
            return self.ok
        index = len(self.clauses)
        self.clauses.append(clause)
        self.watches[clause[0]].append(index)
        self.watches[clause[1]].append(index)
        return True

    # -- assignment helpers ----------------------------------------------

    def _lit_value(self, lit):
        value = self.assign[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit, reason):
        value = self._lit_value(lit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = lit >> 1
        self.assign[var] = 1 - (lit & 1)
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.phase[var] = self.assign[var]
        self.trail.append(lit)
        return True

    def _decision_level(self):
        return len(self.trail_lim)

    def _backtrack(self, target_level):
        if self._decision_level() <= target_level:
            return
        limit = self.trail_lim[target_level]
        for lit in self.trail[limit:]:
            var = lit >> 1
            self.assign[var] = _UNASSIGNED
            self.reason[var] = -1
            self._heap_insert(var)
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.propagated = min(self.propagated, len(self.trail))

    # -- propagation -------------------------------------------------------

    def _propagate(self):
        """Unit propagation; returns conflicting clause index or -1."""
        clauses = self.clauses
        watches = self.watches
        assign = self.assign
        while self.propagated < len(self.trail):
            lit = self.trail[self.propagated]
            self.propagated += 1
            false_lit = lit ^ 1
            watch_list = watches[false_lit]
            i = 0
            j = 0
            n = len(watch_list)
            while i < n:
                ci = watch_list[i]
                i += 1
                clause = clauses[ci]
                if clause is None:
                    # A clause deleted by reduction/simplification: drop the
                    # stale entry by not copying it (lazy watch cleanup).
                    continue
                # Normalize: watched literals are clause[0] and clause[1].
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if assign[first >> 1] == ((first & 1) ^ 1):  # satisfied
                    watch_list[j] = ci
                    j += 1
                    continue
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    if assign[other >> 1] != (other & 1):  # not false
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[other].append(ci)
                        found = True
                        break
                if found:
                    continue
                watch_list[j] = ci
                j += 1
                self.propagations += 1
                if ((self._deadline is not None or self._cancel is not None)
                        and (self.propagations & _PROPAGATION_CHECK_MASK) == 0
                        and (flag := self._interrupt_flag()) is not None):
                    # Deadline or cancellation observed mid-propagation:
                    # compact the watch list (keeping unscanned entries) and
                    # bail out; the solve loop converts the flag into an
                    # unknown verdict.  Rewind the queue index so this trail
                    # literal is fully reprocessed if solving resumes later
                    # (rescanning the already-moved entries is safe).
                    self._stop_flag = flag
                    self.propagated -= 1
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    return -1
                if not self._enqueue(first, ci):
                    # Conflict: keep the rest of the watch list intact.
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    return ci
            del watch_list[j:]
        return -1

    # -- clause learning ----------------------------------------------------

    def _analyze(self, conflict):
        """First-UIP learning; returns (learned clause, backtrack level, LBD)."""
        learned = [0]  # placeholder for the asserting literal
        seen = self._seen
        touched = []
        counter = 0
        lit = -1
        index = len(self.trail) - 1
        clause_index = conflict
        current_level = self._decision_level()
        level = self.level
        while True:
            clause = self.clauses[clause_index]
            self._bump_clause(clause_index)
            start = 0 if lit == -1 else 1
            for reason_lit in clause[start:]:
                var = reason_lit >> 1
                if seen[var] or level[var] == 0:
                    continue
                seen[var] = 1
                touched.append(var)
                self._bump_var(var)
                if level[var] == current_level:
                    counter += 1
                else:
                    learned.append(reason_lit)
            while True:
                lit = self.trail[index]
                index -= 1
                if seen[lit >> 1]:
                    break
            counter -= 1
            if counter == 0:
                break
            clause_index = self.reason[lit >> 1]
            seen[lit >> 1] = 0
        learned[0] = lit ^ 1
        self._minimize(learned, seen)
        # LBD at learning time: distinct decision levels among the literals
        # (glucose).  Computed before the backjump, while levels are fresh.
        lbd = len({level[l >> 1] for l in learned})
        for var in touched:
            seen[var] = 0
        if len(learned) == 1:
            back_level = 0
        else:
            # Second-highest decision level among learned literals.
            max_index = 1
            for k in range(2, len(learned)):
                if level[learned[k] >> 1] > level[learned[max_index] >> 1]:
                    max_index = k
            learned[1], learned[max_index] = learned[max_index], learned[1]
            back_level = level[learned[1] >> 1]
        return learned, back_level, lbd

    def _minimize(self, learned, seen):
        """Drop literals implied by the rest of the clause (local check)."""
        kept = [learned[0]]
        for lit in learned[1:]:
            reason = self.reason[lit >> 1]
            if reason == -1:
                kept.append(lit)
                continue
            clause = self.clauses[reason]
            for other in clause:
                var = other >> 1
                if other != (lit ^ 1) and not seen[var] and self.level[var] > 0:
                    kept.append(lit)
                    break
        learned[:] = kept

    def _record_learned(self, learned, lbd):
        self.learned_total += 1
        if len(learned) == 1:
            self._enqueue(learned[0], -1)
            return
        index = len(self.clauses)
        self.clauses.append(learned)
        self.learned.add(index)
        self.activity_cl[index] = self.cla_inc
        self.lbd[index] = lbd
        self.watches[learned[0]].append(index)
        self.watches[learned[1]].append(index)
        self._enqueue(learned[0], index)

    # -- activity ------------------------------------------------------------

    def _bump_var(self, var):
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        if var in self._heap_pos:
            self._heap_sift_up(self._heap_pos[var])

    def _bump_clause(self, index):
        if index in self.learned:
            self.activity_cl[index] = self.activity_cl.get(index, 0.0) + self.cla_inc

    def _decay(self):
        self.var_inc /= self.var_decay
        self.cla_inc /= 0.999

    # -- decision heap (max-heap on activity) --------------------------------

    def _heap_insert(self, var):
        if var in self._heap_pos:
            return
        self._heap.append(var)
        self._heap_pos[var] = len(self._heap) - 1
        self._heap_sift_up(len(self._heap) - 1)

    def _heap_pop(self):
        heap = self._heap
        top = heap[0]
        last = heap.pop()
        del self._heap_pos[top]
        if heap:
            heap[0] = last
            self._heap_pos[last] = 0
            self._heap_sift_down(0)
        return top

    def _heap_sift_up(self, i):
        heap = self._heap
        activity = self.activity
        pos = self._heap_pos
        item = heap[i]
        key = activity[item]
        while i > 0:
            parent = (i - 1) >> 1
            if activity[heap[parent]] >= key:
                break
            heap[i] = heap[parent]
            pos[heap[i]] = i
            i = parent
        heap[i] = item
        pos[item] = i

    def _heap_sift_down(self, i):
        heap = self._heap
        activity = self.activity
        pos = self._heap_pos
        size = len(heap)
        item = heap[i]
        key = activity[item]
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and activity[heap[right]] > activity[heap[left]]:
                best = right
            if activity[heap[best]] <= key:
                break
            heap[i] = heap[best]
            pos[heap[i]] = i
            i = best
        heap[i] = item
        pos[item] = i

    def _pick_branch_var(self):
        while self._heap:
            var = self._heap_pop()
            if self.assign[var] == _UNASSIGNED:
                return var
        return 0

    # -- learned clause DB reduction ------------------------------------------

    def _delete_clause(self, index):
        """Unhook one clause; watch entries are cleaned lazily by
        ``_propagate``, so deletion is O(1) per clause."""
        self.clauses[index] = None
        self.learned.discard(index)
        self.activity_cl.pop(index, None)
        self.lbd.pop(index, None)

    def _reduce_db(self):
        if len(self.learned) < self._reduce_limit:
            return
        # Clauses that are the reason for a current assignment must
        # survive (the -1 entries are decisions, not clause indices).
        reason = self.reason
        locked = set()
        for lit in self.trail:
            r = reason[lit >> 1]
            if r != -1:
                locked.add(r)
        lbd = self.lbd
        activity = self.activity_cl
        local = []
        mid = []
        for ci in self.learned:
            if ci in locked:
                continue
            tier = lbd.get(ci, _MID_LBD + 1)
            if tier <= _CORE_LBD:
                continue  # core tier: kept forever
            (local if tier > _MID_LBD else mid).append(ci)
        target = len(self.learned) // 2
        local.sort(key=lambda ci: activity.get(ci, 0.0))
        drop = local[:target]
        if len(drop) < target:
            mid.sort(key=lambda ci: activity.get(ci, 0.0))
            drop.extend(mid[: target - len(drop)])
        # Geometric growth: every reduction earns a larger database, so
        # reduction frequency amortizes as the instance scales.
        self._reduce_limit = int(self._reduce_limit * _REDUCE_GROWTH) + 1
        if not drop:
            return
        for ci in drop:
            self._delete_clause(ci)
        self.deleted_total += len(drop)

    # -- level-0 simplification ----------------------------------------------

    def _simplify(self):
        """Simplify the clause database against the level-0 trail.

        Runs between solves, only when new level-0 facts arrived since the
        last pass: satisfied clauses are dropped outright and falsified
        literals stripped from the rest (at positions >= 2 only, so the
        watch invariants survive untouched — after propagation reached its
        level-0 fixpoint, no surviving clause watches a false literal).
        """
        if self.trail_lim or not self.ok:
            return
        if len(self.trail) == self._simplified_at:
            return
        assign = self.assign
        reason = self.reason
        for lit in self.trail:
            reason[lit >> 1] = -1  # level-0 facts need no reason clause
        for ci, clause in enumerate(self.clauses):
            if clause is None:
                continue
            satisfied = False
            for l in clause:
                if assign[l >> 1] == ((l & 1) ^ 1):
                    satisfied = True
                    break
            if satisfied:
                self._delete_clause(ci)
                self.simplified_total += 1
                continue
            k = len(clause) - 1
            while k >= 2:
                l = clause[k]
                if assign[l >> 1] == (l & 1):  # falsified at level 0
                    clause[k] = clause[-1]
                    clause.pop()
                k -= 1
        self._simplified_at = len(self.trail)

    # -- main solve loop ---------------------------------------------------------

    def solve(self, assumptions=(), max_conflicts=None, deadline=None,
              budget=None, cancel=None):
        """Solve; returns True (SAT), False (UNSAT) or None (budget exhausted).

        ``deadline`` is an absolute ``time.monotonic()`` timestamp.
        ``budget`` is an optional ``repro.runtime.Budget`` polled for its
        memory cap at conflict checkpoints (time/conflict caps should be
        lowered into ``deadline``/``max_conflicts`` by the caller).
        ``cancel`` is an optional ``threading.Event`` polled at the same
        cooperative checkpoints as the deadline; setting it makes the
        solve return ``None`` with ``stop_reason == "cancelled"`` —
        how a portfolio race tells a losing in-process member to stop.
        When the verdict is ``None``, ``stop_reason`` names the cause.

        Under assumptions, an UNSAT result means "unsatisfiable under
        these assumptions"; the formula itself stays usable.  The trail is
        left at the deepest still-valid assumption level on exit, so a
        following call sharing an assumption prefix resumes from it.
        """
        if not self.ok:
            return False
        self.stop_reason = None
        self._stop_flag = None
        self._deadline = deadline
        self._cancel = cancel
        try:
            return self._solve(assumptions, max_conflicts, deadline, budget)
        finally:
            self._deadline = None
            self._cancel = None
            self._stop_flag = None

    def _stop(self, reason):
        self.stop_reason = reason
        # Keep the assumption levels (they are still valid decisions);
        # only the free search above them is abandoned.
        self._backtrack(min(self._n_assume, self._decision_level()))
        return None

    def _interrupt_flag(self):
        """Why solving should stop right now (``None`` to keep going)."""
        if self._cancel is not None and self._cancel.is_set():
            return "cancelled"
        if self._deadline is not None and time.monotonic() > self._deadline:
            return "deadline"
        return None

    def _solve(self, assumptions, max_conflicts, deadline, budget):
        assumptions = list(assumptions)
        n_assume = len(assumptions)
        self._n_assume = n_assume
        # Trail reuse: keep the longest prefix of assumption levels shared
        # with the previous solve.  ``add_clause``/``reseed`` backtrack to
        # level 0, so a nonzero decision level here implies the clause
        # database is unchanged since the trail was built — every kept
        # assignment (and its propagation) is still valid.
        prev = self._last_assumptions
        keep = 0
        limit = min(n_assume, len(prev), self._decision_level())
        while keep < limit and assumptions[keep] == prev[keep]:
            keep += 1
        self._backtrack(keep)
        if keep:
            self.trail_reuse_hits += 1
            self.trail_reuse_levels += keep
        self._last_assumptions = assumptions
        profile = self.profile
        if profile is not None:
            profile["solves"] += 1
        if not self.trail_lim:
            # Starting from the root: establish the level-0 fixpoint and
            # simplify the clause database against any new facts.
            conflict = self._timed_propagate(profile)
            if conflict != -1:
                self.ok = False
                return False
            if self._stop_flag is not None:
                return self._stop(self._stop_flag)
            if profile is None:
                self._simplify()
            else:
                t0 = time.perf_counter()
                self._simplify()
                profile["simplify"] += time.perf_counter() - t0
        restart_count = 0
        conflicts_at_entry = self.conflicts
        conflict_budget = _luby(restart_count) * 128
        conflicts_this_restart = 0
        while True:
            conflict = self._timed_propagate(profile)
            if conflict != -1:
                self.conflicts += 1
                conflicts_this_restart += 1
                # Batched assumption placement propagates several fresh
                # levels at once, so the conflict may lie entirely below
                # the current decision level: back up to the deepest
                # literal in the conflicting clause before analyzing.
                level = self.level
                conf_level = 0
                for l in self.clauses[conflict]:
                    lv = level[l >> 1]
                    if lv > conf_level:
                        conf_level = lv
                if conf_level == 0:
                    self.ok = False
                    return False
                if conf_level < self._decision_level():
                    self._backtrack(conf_level)
                if profile is None:
                    learned, back_level, lbd = self._analyze(conflict)
                else:
                    t0 = time.perf_counter()
                    learned, back_level, lbd = self._analyze(conflict)
                    profile["analyze"] += time.perf_counter() - t0
                # Chronological backtracking: when the backjump would
                # unwind a long stretch of still-valid assignments, step
                # back one level instead.  The learned clause stays unit
                # there (all its non-asserting literals live at or below
                # ``back_level``), so recording it still enqueues the
                # asserting literal.  Unit learned clauses keep the full
                # jump: they are global facts and belong at level 0.
                cur_level = self._decision_level()
                if (len(learned) > 1
                        and cur_level - back_level > _CHRONO_LIMIT):
                    back_level = cur_level - 1
                    self.chrono_backtracks += 1
                self._backtrack(back_level)
                self._record_learned(learned, lbd)
                self._decay()
                if max_conflicts is not None and (
                    self.conflicts - conflicts_at_entry
                ) >= max_conflicts:
                    return self._stop("conflicts")
                if (deadline is not None or self._cancel is not None) and (
                    self.conflicts & _CONFLICT_CHECK_MASK
                ) == 0 and (flag := self._interrupt_flag()) is not None:
                    return self._stop(flag)
                if budget is not None and (
                    self.conflicts & _MEMORY_CHECK_MASK
                ) == 0 and budget.memory_exceeded():
                    return self._stop("memory")
                continue
            if self._stop_flag is not None:
                return self._stop(self._stop_flag)
            if conflicts_this_restart >= conflict_budget:
                restart_count += 1
                self.restarts += 1
                conflict_budget = _luby(restart_count) * 128
                conflicts_this_restart = 0
                if profile is None:
                    self._reduce_db()
                else:
                    t0 = time.perf_counter()
                    self._reduce_db()
                    profile["reduce"] += time.perf_counter() - t0
                # Restart the search, not the assumptions: the assumption
                # levels are forced either way, so their propagation work
                # is kept.
                self._backtrack(min(n_assume, self._decision_level()))
                continue
            dl = self._decision_level()
            if dl < n_assume:
                # Batched assumption placement: one decision level per
                # assumption (level i+1 holds assumptions[i], which is what
                # lets trail reuse map a shared prefix onto shared levels),
                # all enqueued in one pass and propagated together.
                while dl < n_assume:
                    lit = assumptions[dl]
                    value = self._lit_value(lit)
                    if value == 0:
                        # The formula (plus learned clauses) forces the
                        # negation of an assumption: UNSAT under these
                        # assumptions.  The trail stays put — the next
                        # solve can still reuse the shared prefix.
                        return False
                    self.trail_lim.append(len(self.trail))
                    dl += 1
                    if value == _UNASSIGNED:
                        self._enqueue(lit, -1)
                    # value == 1: an already-satisfied assumption keeps an
                    # empty decision level, preserving the alignment.
                continue
            var = self._pick_branch_var()
            if var == 0:
                return True
            self.decisions += 1
            if (deadline is not None or self._cancel is not None) and (
                self.decisions & _DECISION_CHECK_MASK
            ) == 0 and (flag := self._interrupt_flag()) is not None:
                return self._stop(flag)
            self.trail_lim.append(len(self.trail))
            lit = 2 * var + (1 - self.phase[var])
            self._enqueue(lit, -1)

    def _timed_propagate(self, profile):
        if profile is None:
            return self._propagate()
        t0 = time.perf_counter()
        conflict = self._propagate()
        profile["propagate"] += time.perf_counter() - t0
        return conflict

    def enable_profiling(self):
        """Turn on phase-wall attribution; returns the live profile dict.

        Keys: ``propagate``/``analyze``/``reduce``/``simplify`` wall
        seconds plus a ``solves`` call count.  Costs two clock reads per
        phase call, so it is off by default — ``scripts/profile_solver.py``
        is the intended consumer.
        """
        if self.profile is None:
            self.profile = {"propagate": 0.0, "analyze": 0.0, "reduce": 0.0,
                            "simplify": 0.0, "solves": 0}
        return self.profile

    def internals(self):
        """Monotonic per-solver work counters as a plain dict."""
        return {
            "propagations": self.propagations,
            "decisions": self.decisions,
            "restarts": self.restarts,
            "learned": self.learned_total,
            "deleted": self.deleted_total,
            "simplified": self.simplified_total,
            "trail_reuse_hits": self.trail_reuse_hits,
            "trail_reuse_levels_saved": self.trail_reuse_levels,
            "chrono_backtracks": self.chrono_backtracks,
        }

    def reseed(self, seed):
        """Perturb the decision order deterministically (for retries).

        Replaces VSIDS activities and saved phases with seeded random
        values and rebuilds the decision heap, so a retried solve explores
        the search space in a genuinely different order.  Sound at any
        point between solves: assignments, clauses and learned facts are
        untouched.
        """
        rng = random.Random(seed)
        self._backtrack(0)
        for var in range(1, self.num_vars + 1):
            self.activity[var] = rng.random()
            self.phase[var] = rng.getrandbits(1)
        self.var_inc = 1.0
        self._heap = []
        self._heap_pos = {}
        for var in range(1, self.num_vars + 1):
            if self.assign[var] == _UNASSIGNED:
                self._heap_insert(var)

    def model(self):
        """The satisfying assignment as ``{var: 0/1}`` after a SAT solve."""
        return {
            var: self.assign[var]
            for var in range(1, self.num_vars + 1)
            if self.assign[var] != _UNASSIGNED
        }
