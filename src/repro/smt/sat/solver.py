"""A CDCL SAT solver.

Implements the standard modern recipe: two-literal watching, first-UIP clause
learning with local minimization, VSIDS decision ordering with phase saving,
Luby restarts, and learned-clause database reduction.  Literal encoding: for
variable ``v`` (1-based) the positive literal is ``2*v`` and the negative
literal is ``2*v + 1``; ``lit ^ 1`` negates.

The solver is incremental in the "add clauses, solve, add more, solve again"
sense, and supports solving under assumptions.  ``solve`` can be bounded by a
conflict budget, a wall-clock deadline, a memory-capped
``repro.runtime.Budget``, and/or a ``threading.Event`` cancellation token —
returning ``None`` (unknown) when exhausted, with ``stop_reason`` set to
``"conflicts"``, ``"deadline"``, ``"memory"`` or ``"cancelled"``.
This is how the reproduction implements the paper's synthesis timeouts and
how portfolio races stop losing in-process members.

Cancellation is cooperative and checked at three checkpoints — every
propagation batch, every few conflicts, and every few decisions — so a
budget expiry is observed promptly (target: well under 100ms of overshoot)
instead of only every 128 conflicts.
"""

from __future__ import annotations

import random
import time

__all__ = ["SatSolver"]

_UNASSIGNED = -1

# Cancellation checkpoint strides.  Smaller is more responsive, larger is
# cheaper; these keep deadline overshoot in the low milliseconds for
# pure-python solving speeds while adding <1% overhead.
_PROPAGATION_CHECK_MASK = 1023   # poll the clock every 1024 propagations
_CONFLICT_CHECK_MASK = 7         # ... every 8 conflicts
_DECISION_CHECK_MASK = 31        # ... every 32 decisions
_MEMORY_CHECK_MASK = 255         # poll the memory cap every 256 conflicts


def _luby(x):
    """The Luby restart sequence, 0-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    def __init__(self):
        self.clauses = []           # each clause: list of lits
        self.learned = set()        # indices into self.clauses that are learned
        self.activity_cl = {}       # clause index -> activity
        self.watches = [[], []]     # lit -> clause indices (lit 0/1 unused)
        self.assign = [_UNASSIGNED]  # var -> 0/1/_UNASSIGNED
        self.phase = [0]
        self.level = [0]
        self.reason = [-1]
        self.activity = [0.0]
        self.trail = []
        self.trail_lim = []
        self.propagated = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.stop_reason = None   # why the last solve returned None
        self._deadline = None     # active only inside solve()
        self._cancel = None       # cooperative cancellation event
        self._stop_flag = None    # set by _propagate on deadline expiry
        self._heap = []
        self._heap_pos = {}

    # -- variable / clause management -----------------------------------

    def new_var(self):
        self.assign.append(_UNASSIGNED)
        self.phase.append(0)
        self.level.append(0)
        self.reason.append(-1)
        self.activity.append(0.0)
        self.watches.append([])
        self.watches.append([])
        var = len(self.assign) - 1
        self._heap_insert(var)
        return var

    @property
    def num_vars(self):
        return len(self.assign) - 1

    def add_clause(self, lits):
        """Add a clause of literals; returns False if the formula is UNSAT."""
        if not self.ok:
            return False
        if self.trail_lim:
            self._backtrack(0)
        seen = set()
        clause = []
        for lit in lits:
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._lit_value(lit)
            if value == 1:
                return True  # already satisfied at level 0
            if value == 0:
                continue  # falsified at level 0; drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self.ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self.ok = False
                return False
            self.ok = self._propagate() == -1
            return self.ok
        index = len(self.clauses)
        self.clauses.append(clause)
        self.watches[clause[0]].append(index)
        self.watches[clause[1]].append(index)
        return True

    # -- assignment helpers ----------------------------------------------

    def _lit_value(self, lit):
        value = self.assign[lit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit, reason):
        value = self._lit_value(lit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = lit >> 1
        self.assign[var] = 1 - (lit & 1)
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.phase[var] = self.assign[var]
        self.trail.append(lit)
        return True

    def _decision_level(self):
        return len(self.trail_lim)

    def _backtrack(self, target_level):
        if self._decision_level() <= target_level:
            return
        limit = self.trail_lim[target_level]
        for lit in self.trail[limit:]:
            var = lit >> 1
            self.assign[var] = _UNASSIGNED
            self.reason[var] = -1
            self._heap_insert(var)
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.propagated = min(self.propagated, len(self.trail))

    # -- propagation -------------------------------------------------------

    def _propagate(self):
        """Unit propagation; returns conflicting clause index or -1."""
        clauses = self.clauses
        watches = self.watches
        while self.propagated < len(self.trail):
            lit = self.trail[self.propagated]
            self.propagated += 1
            false_lit = lit ^ 1
            watch_list = watches[false_lit]
            i = 0
            j = 0
            n = len(watch_list)
            while i < n:
                ci = watch_list[i]
                i += 1
                clause = clauses[ci]
                # Normalize: watched literals are clause[0] and clause[1].
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    watch_list[j] = ci
                    j += 1
                    continue
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    if self._lit_value(other) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[other].append(ci)
                        found = True
                        break
                if found:
                    continue
                watch_list[j] = ci
                j += 1
                self.propagations += 1
                if ((self._deadline is not None or self._cancel is not None)
                        and (self.propagations & _PROPAGATION_CHECK_MASK) == 0
                        and (flag := self._interrupt_flag()) is not None):
                    # Deadline or cancellation observed mid-propagation:
                    # compact the watch list (keeping unscanned entries) and
                    # bail out; the solve loop converts the flag into an
                    # unknown verdict.  Rewind the queue index so this trail
                    # literal is fully reprocessed if solving resumes later
                    # (rescanning the already-moved entries is safe).
                    self._stop_flag = flag
                    self.propagated -= 1
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    return -1
                if not self._enqueue(first, ci):
                    # Conflict: keep the rest of the watch list intact.
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    return ci
            del watch_list[j:]
        return -1

    # -- clause learning ----------------------------------------------------

    def _analyze(self, conflict):
        """First-UIP learning; returns (learned clause, backtrack level)."""
        learned = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = -1
        index = len(self.trail) - 1
        clause_index = conflict
        current_level = self._decision_level()
        while True:
            clause = self.clauses[clause_index]
            self._bump_clause(clause_index)
            start = 0 if lit == -1 else 1
            for reason_lit in clause[start:]:
                var = reason_lit >> 1
                if seen[var] or self.level[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self.level[var] == current_level:
                    counter += 1
                else:
                    learned.append(reason_lit)
            while True:
                lit = self.trail[index]
                index -= 1
                if seen[lit >> 1]:
                    break
            counter -= 1
            if counter == 0:
                break
            clause_index = self.reason[lit >> 1]
            seen[lit >> 1] = False
        learned[0] = lit ^ 1
        self._minimize(learned, seen)
        if len(learned) == 1:
            back_level = 0
        else:
            # Second-highest decision level among learned literals.
            max_index = 1
            for k in range(2, len(learned)):
                if self.level[learned[k] >> 1] > self.level[learned[max_index] >> 1]:
                    max_index = k
            learned[1], learned[max_index] = learned[max_index], learned[1]
            back_level = self.level[learned[1] >> 1]
        return learned, back_level

    def _minimize(self, learned, seen):
        """Drop literals implied by the rest of the clause (local check)."""
        kept = [learned[0]]
        for lit in learned[1:]:
            reason = self.reason[lit >> 1]
            if reason == -1:
                kept.append(lit)
                continue
            clause = self.clauses[reason]
            for other in clause:
                var = other >> 1
                if other != (lit ^ 1) and not seen[var] and self.level[var] > 0:
                    kept.append(lit)
                    break
        learned[:] = kept

    def _record_learned(self, learned):
        if len(learned) == 1:
            self._enqueue(learned[0], -1)
            return
        index = len(self.clauses)
        self.clauses.append(learned)
        self.learned.add(index)
        self.activity_cl[index] = self.cla_inc
        self.watches[learned[0]].append(index)
        self.watches[learned[1]].append(index)
        self._enqueue(learned[0], index)

    # -- activity ------------------------------------------------------------

    def _bump_var(self, var):
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        if var in self._heap_pos:
            self._heap_sift_up(self._heap_pos[var])

    def _bump_clause(self, index):
        if index in self.learned:
            self.activity_cl[index] = self.activity_cl.get(index, 0.0) + self.cla_inc

    def _decay(self):
        self.var_inc /= self.var_decay
        self.cla_inc /= 0.999

    # -- decision heap (max-heap on activity) --------------------------------

    def _heap_insert(self, var):
        if var in self._heap_pos:
            return
        self._heap.append(var)
        self._heap_pos[var] = len(self._heap) - 1
        self._heap_sift_up(len(self._heap) - 1)

    def _heap_pop(self):
        heap = self._heap
        top = heap[0]
        last = heap.pop()
        del self._heap_pos[top]
        if heap:
            heap[0] = last
            self._heap_pos[last] = 0
            self._heap_sift_down(0)
        return top

    def _heap_sift_up(self, i):
        heap = self._heap
        activity = self.activity
        pos = self._heap_pos
        item = heap[i]
        key = activity[item]
        while i > 0:
            parent = (i - 1) >> 1
            if activity[heap[parent]] >= key:
                break
            heap[i] = heap[parent]
            pos[heap[i]] = i
            i = parent
        heap[i] = item
        pos[item] = i

    def _heap_sift_down(self, i):
        heap = self._heap
        activity = self.activity
        pos = self._heap_pos
        size = len(heap)
        item = heap[i]
        key = activity[item]
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and activity[heap[right]] > activity[heap[left]]:
                best = right
            if activity[heap[best]] <= key:
                break
            heap[i] = heap[best]
            pos[heap[i]] = i
            i = best
        heap[i] = item
        pos[item] = i

    def _pick_branch_var(self):
        while self._heap:
            var = self._heap_pop()
            if self.assign[var] == _UNASSIGNED:
                return var
        return 0

    # -- learned clause DB reduction ------------------------------------------

    def _reduce_db(self):
        if len(self.learned) < 2000:
            return
        ranked = sorted(self.learned, key=lambda ci: self.activity_cl.get(ci, 0.0))
        drop = set(ranked[: len(ranked) // 2])
        # Keep clauses that are a reason for a current assignment.
        locked = {self.reason[lit >> 1] for lit in self.trail}
        drop -= locked
        if not drop:
            return
        for ci in drop:
            self.clauses[ci] = None
            self.learned.discard(ci)
            self.activity_cl.pop(ci, None)
        for lit in range(2, len(self.watches)):
            self.watches[lit] = [
                ci for ci in self.watches[lit] if self.clauses[ci] is not None
            ]

    # -- main solve loop ---------------------------------------------------------

    def solve(self, assumptions=(), max_conflicts=None, deadline=None,
              budget=None, cancel=None):
        """Solve; returns True (SAT), False (UNSAT) or None (budget exhausted).

        ``deadline`` is an absolute ``time.monotonic()`` timestamp.
        ``budget`` is an optional ``repro.runtime.Budget`` polled for its
        memory cap at conflict checkpoints (time/conflict caps should be
        lowered into ``deadline``/``max_conflicts`` by the caller).
        ``cancel`` is an optional ``threading.Event`` polled at the same
        cooperative checkpoints as the deadline; setting it makes the
        solve return ``None`` with ``stop_reason == "cancelled"`` —
        how a portfolio race tells a losing in-process member to stop.
        When the verdict is ``None``, ``stop_reason`` names the cause.
        """
        if not self.ok:
            return False
        self.stop_reason = None
        self._stop_flag = None
        self._deadline = deadline
        self._cancel = cancel
        try:
            return self._solve(assumptions, max_conflicts, deadline, budget)
        finally:
            self._deadline = None
            self._cancel = None
            self._stop_flag = None

    def _stop(self, reason):
        self.stop_reason = reason
        self._backtrack(0)
        return None

    def _interrupt_flag(self):
        """Why solving should stop right now (``None`` to keep going)."""
        if self._cancel is not None and self._cancel.is_set():
            return "cancelled"
        if self._deadline is not None and time.monotonic() > self._deadline:
            return "deadline"
        return None

    def _solve(self, assumptions, max_conflicts, deadline, budget):
        self._backtrack(0)
        if self._propagate() != -1:
            self.ok = False
            return False
        if self._stop_flag is not None:
            return self._stop(self._stop_flag)
        restart_count = 0
        conflicts_at_entry = self.conflicts
        conflict_budget = _luby(restart_count) * 128
        conflicts_this_restart = 0
        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.conflicts += 1
                conflicts_this_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return False
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                self._record_learned(learned)
                self._decay()
                if max_conflicts is not None and (
                    self.conflicts - conflicts_at_entry
                ) >= max_conflicts:
                    return self._stop("conflicts")
                if (deadline is not None or self._cancel is not None) and (
                    self.conflicts & _CONFLICT_CHECK_MASK
                ) == 0 and (flag := self._interrupt_flag()) is not None:
                    return self._stop(flag)
                if budget is not None and (
                    self.conflicts & _MEMORY_CHECK_MASK
                ) == 0 and budget.memory_exceeded():
                    return self._stop("memory")
                continue
            if self._stop_flag is not None:
                return self._stop(self._stop_flag)
            if conflicts_this_restart >= conflict_budget:
                restart_count += 1
                conflict_budget = _luby(restart_count) * 128
                conflicts_this_restart = 0
                self._reduce_db()
                self._backtrack(0)
                continue
            # Re-place any assumption that is not yet satisfied; assumptions
            # are replayed as the first decisions after every backtrack.
            placed_all = True
            for lit in assumptions:
                value = self._lit_value(lit)
                if value == 1:
                    continue
                if value == 0:
                    # The formula (plus learned clauses) forces the negation
                    # of an assumption: UNSAT under these assumptions.
                    self._backtrack(0)
                    return False
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, -1)
                placed_all = False
                break
            if not placed_all:
                continue
            var = self._pick_branch_var()
            if var == 0:
                return True
            self.decisions += 1
            if (deadline is not None or self._cancel is not None) and (
                self.decisions & _DECISION_CHECK_MASK
            ) == 0 and (flag := self._interrupt_flag()) is not None:
                return self._stop(flag)
            self.trail_lim.append(len(self.trail))
            lit = 2 * var + (1 - self.phase[var])
            self._enqueue(lit, -1)

    def reseed(self, seed):
        """Perturb the decision order deterministically (for retries).

        Replaces VSIDS activities and saved phases with seeded random
        values and rebuilds the decision heap, so a retried solve explores
        the search space in a genuinely different order.  Sound at any
        point between solves: assignments, clauses and learned facts are
        untouched.
        """
        rng = random.Random(seed)
        self._backtrack(0)
        for var in range(1, self.num_vars + 1):
            self.activity[var] = rng.random()
            self.phase[var] = rng.getrandbits(1)
        self.var_inc = 1.0
        self._heap = []
        self._heap_pos = {}
        for var in range(1, self.num_vars + 1):
            if self.assign[var] == _UNASSIGNED:
                self._heap_insert(var)

    def model(self):
        """The satisfying assignment as ``{var: 0/1}`` after a SAT solve."""
        return {
            var: self.assign[var]
            for var in range(1, self.num_vars + 1)
            if self.assign[var] != _UNASSIGNED
        }
