"""A compiled cycle-accurate simulator for Oyster designs.

Generates one Python step function (source code, then ``exec``) per design,
giving a 20-50x speedup over the tree-walking ``Simulator`` — enough to run
multi-thousand-cycle programs (the SHA-256 constant-time study) in seconds.
Semantics are identical to ``repro.oyster.interpreter.Simulator``; the test
suite checks this differentially.
"""

from __future__ import annotations

from repro.oyster import ast
from repro.oyster.interpreter import SimulationError
from repro.oyster.typecheck import check_design, infer_expr_width

__all__ = ["CompiledSimulator", "compile_step_function"]


def _mask_literal(width):
    return hex((1 << width) - 1)


def _py(name):
    """Mangle an Oyster signal name into a safe Python identifier."""
    return ("v_" + name.replace(".", "_d_").replace("!", "_x_")
            .replace("@", "_a_"))


def _py_mem(name):
    return ("m_" + name.replace(".", "_d_").replace("!", "_x_")
            .replace("@", "_a_"))


class _ExprCompiler:
    """Translates Oyster expressions into Python source fragments."""

    def __init__(self, widths, mem_shapes, register_names):
        self.widths = widths
        self.mem_shapes = mem_shapes
        self.register_names = register_names

    def width_of(self, expr):
        return infer_expr_width(
            expr, self.widths,
            {name: shape for name, shape in self.mem_shapes.items()},
        )

    def compile(self, expr):
        if isinstance(expr, ast.Const):
            return str(expr.value)
        if isinstance(expr, ast.Var):
            return _py(expr.name)
        if isinstance(expr, ast.Unop):
            arg = self.compile(expr.arg)
            width = self.width_of(expr.arg)
            if expr.op == "~":
                return f"(~({arg}) & {_mask_literal(width)})"
            return f"((-({arg})) & {_mask_literal(width)})"
        if isinstance(expr, ast.Binop):
            return self._binop(expr)
        if isinstance(expr, ast.Ite):
            cond = self.compile(expr.cond)
            then = self.compile(expr.then)
            els = self.compile(expr.els)
            return f"(({then}) if ({cond}) else ({els}))"
        if isinstance(expr, ast.Extract):
            arg = self.compile(expr.arg)
            width = expr.high - expr.low + 1
            if expr.low == 0:
                return f"(({arg}) & {_mask_literal(width)})"
            return f"((({arg}) >> {expr.low}) & {_mask_literal(width)})"
        if isinstance(expr, ast.Concat):
            high = self.compile(expr.high)
            low = self.compile(expr.low)
            low_width = self.width_of(expr.low)
            return f"((({high}) << {low_width}) | ({low}))"
        if isinstance(expr, ast.Read):
            addr = self.compile(expr.addr)
            return f"{_py_mem(expr.mem)}.get({addr}, 0)"
        raise SimulationError(f"cannot compile {type(expr).__name__}")

    def _binop(self, expr):
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        width = self.width_of(expr.left)
        mask = _mask_literal(width)
        op = expr.op
        simple = {
            "&": f"(({left}) & ({right}))",
            "|": f"(({left}) | ({right}))",
            "^": f"(({left}) ^ ({right}))",
            "+": f"((({left}) + ({right})) & {mask})",
            "-": f"((({left}) - ({right})) & {mask})",
            "*": f"((({left}) * ({right})) & {mask})",
            "==": f"(1 if ({left}) == ({right}) else 0)",
            "!=": f"(1 if ({left}) != ({right}) else 0)",
            "<u": f"(1 if ({left}) < ({right}) else 0)",
            "<=u": f"(1 if ({left}) <= ({right}) else 0)",
            ">u": f"(1 if ({left}) > ({right}) else 0)",
            ">=u": f"(1 if ({left}) >= ({right}) else 0)",
        }
        if op in simple:
            return simple[op]
        sign = 1 << (width - 1)
        to_signed_left = f"((({left}) ^ {sign}) - {sign})"
        to_signed_right = f"((({right}) ^ {sign}) - {sign})"
        if op == "<<":
            return (f"(((({left}) << ({right})) & {mask})"
                    f" if ({right}) < {width} else 0)")
        if op == ">>u":
            return f"((({left}) >> ({right})) if ({right}) < {width} else 0)"
        if op == ">>s":
            return (f"(({to_signed_left} >> min(({right}), {width - 1}))"
                    f" & {mask})")
        comparisons = {
            "<s": "<", "<=s": "<=", ">s": ">", ">=s": ">=",
        }
        if op in comparisons:
            return (f"(1 if {to_signed_left} {comparisons[op]} "
                    f"{to_signed_right} else 0)")
        raise SimulationError(f"cannot compile operator {op!r}")


def compile_step_function(design, hole_values=None):
    """Compile the design's one-cycle step to a Python function.

    The generated function has signature
    ``step(inputs, registers, memories) -> (new_registers, wires)`` where
    ``memories`` maps memory name to a dict it mutates in place.
    """
    widths = check_design(design)
    mem_shapes = {
        mem.name: (mem.addr_width, mem.data_width)
        for mem in design.memories
    }
    register_names = {reg.name for reg in design.registers}
    compiler = _ExprCompiler(widths, mem_shapes, register_names)

    hole_values = hole_values or {}
    lines = ["def step(inputs, registers, memories):"]
    for decl in design.inputs:
        lines.append(
            f"    {_py(decl.name)} = inputs[{decl.name!r}]"
            f" & {_mask_literal(decl.width)}"
        )
    for decl in design.registers:
        lines.append(f"    {_py(decl.name)} = registers[{decl.name!r}]")
    for decl in design.holes:
        if decl.name not in hole_values:
            raise SimulationError(
                f"hole {decl.name!r} has no concrete value"
            )
        value = hole_values[decl.name] & ((1 << decl.width) - 1)
        lines.append(f"    {_py(decl.name)} = {value}")
    for decl in design.memories:
        lines.append(f"    {_py_mem(decl.name)} = memories[{decl.name!r}]")

    next_assignments = []
    write_statements = []
    wire_names = []
    for index, stmt in enumerate(design.stmts):
        if isinstance(stmt, ast.Assign):
            source = compiler.compile(stmt.expr)
            if stmt.target in register_names:
                lines.append(f"    nxt{_py(stmt.target)} = {source}")
                next_assignments.append(stmt.target)
            else:
                lines.append(f"    {_py(stmt.target)} = {source}")
                wire_names.append(stmt.target)
        else:
            addr = compiler.compile(stmt.addr)
            data = compiler.compile(stmt.data)
            enable = compiler.compile(stmt.enable)
            lines.append(f"    wa_{index} = {addr}")
            lines.append(f"    wd_{index} = {data}")
            lines.append(f"    we_{index} = {enable}")
            write_statements.append((index, stmt.mem))

    # Commit memory writes (after all reads; reads above used .get on the
    # pre-cycle dict, and writes are deferred to here, in program order).
    for index, mem in write_statements:
        lines.append(f"    if we_{index}:")
        lines.append(f"        {_py_mem(mem)}[wa_{index}] = wd_{index}")
    register_updates = ", ".join(
        f"{reg.name!r}: "
        + (f"nxt{_py(reg.name)}" if reg.name in next_assignments
           else _py(reg.name))
        for reg in design.registers
    )
    wire_updates = ", ".join(
        f"{name!r}: {_py(name)}" for name in wire_names
    )
    lines.append(f"    new_registers = {{{register_updates}}}")
    lines.append(f"    wires = {{{wire_updates}}}")
    lines.append("    return new_registers, wires")
    source = "\n".join(lines)
    namespace = {"min": min}
    exec(compile(source, f"<oyster:{design.name}>", "exec"), namespace)
    return namespace["step"], source


class CompiledSimulator:
    """Drop-in fast replacement for ``Simulator`` (same peek/step API)."""

    def __init__(self, design, hole_values=None, memory_init=None,
                 register_init=None):
        self.design = design
        self.widths = check_design(design)
        self._step, self.source = compile_step_function(design, hole_values)
        self.registers = {}
        for reg in design.registers:
            value = (reg.init or 0)
            if register_init and reg.name in register_init:
                value = register_init[reg.name]
            self.registers[reg.name] = value & ((1 << reg.width) - 1)
        self.memories = {mem.name: {} for mem in design.memories}
        if memory_init:
            for name, contents in memory_init.items():
                if name not in self.memories:
                    raise SimulationError(f"no memory named {name!r}")
                data_mask = (1 << next(
                    m.data_width for m in design.memories if m.name == name
                )) - 1
                self.memories[name] = {
                    addr: value & data_mask
                    for addr, value in contents.items()
                }
        self.cycle = 0
        self.last_wires = {}
        self._output_names = [decl.name for decl in design.outputs]

    def step(self, inputs=None):
        for decl in self.design.inputs:
            if inputs is None or decl.name not in inputs:
                raise SimulationError(
                    f"missing input {decl.name!r} at cycle {self.cycle}"
                )
        self.registers, self.last_wires = self._step(
            inputs or {}, self.registers, self.memories
        )
        self.cycle += 1
        return {name: self.last_wires[name] for name in self._output_names}

    def run(self, input_sequence):
        return [self.step(inputs) for inputs in input_sequence]

    def peek(self, name):
        if name in self.registers:
            return self.registers[name]
        if name in self.last_wires:
            return self.last_wires[name]
        raise SimulationError(f"no signal named {name!r}")

    def peek_memory(self, mem, addr):
        if mem not in self.memories:
            raise SimulationError(f"no memory named {mem!r}")
        return self.memories[mem].get(addr, 0)
