"""A parser for the Oyster concrete syntax.

The textual format mirrors Figure 5 of the paper, one declaration or
statement per line::

    design accumulator:
      input reset 1
      input val 2
      register acc 8
      output out 8
      hole state_sel 2 deps(reset)

      sum := acc + {6'0, val}
      acc := if reset then 8'0 else sum
      out := acc

Expression syntax, loosest to tightest binding: ``if .. then .. else ..``;
comparisons (``== != <u <=u >u >=u <s <=s >s >=s``); ``|``; ``^``; ``&``;
shifts (``<< >>u >>s``); ``+ -``; ``*``; unary ``~ -``; bit slices
``x[high:low]``; atoms (names, sized constants ``width'value`` with decimal,
``0x`` or ``0b`` values, concatenation ``{high, low}``, memory reads
``read mem (addr)`` and parenthesised expressions).  ``#`` starts a comment.
"""

from __future__ import annotations

import re

from repro.oyster import ast

__all__ = ["parse_design", "parse_expr", "ParseError"]


class ParseError(Exception):
    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


_TOKEN_RE = re.compile(
    r"""
    (?P<sized>\d+'(?:0x[0-9a-fA-F]+|0b[01]+|\d+))
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9.!@]*)
  | (?P<op><=u|>=u|<=s|>=s|>>u|>>s|<<|==|!=|:=|<u|>u|<s|>s|[~^&|+\-*(){}\[\]:,'])
  | (?P<ws>\s+)
  | (?P<comment>\#.*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "design", "input", "output", "register", "memory", "hole", "deps",
    "if", "then", "else", "read", "write", "init",
}


def _tokenize(text, line_number):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"bad character {text[position]!r}", line_number)
        position = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        tokens.append((match.lastgroup, match.group()))
    return tokens


class _LineParser:
    def __init__(self, tokens, line_number):
        self.tokens = tokens
        self.position = 0
        self.line = line_number

    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return (None, None)

    def next(self):
        token = self.peek()
        if token[0] is None:
            raise ParseError("unexpected end of line", self.line)
        self.position += 1
        return token

    def expect(self, text):
        kind, value = self.next()
        if value != text:
            raise ParseError(f"expected {text!r}, found {value!r}", self.line)
        return value

    def expect_name(self):
        kind, value = self.next()
        if kind != "name" or value in _KEYWORDS:
            raise ParseError(f"expected a name, found {value!r}", self.line)
        return value

    def expect_int(self):
        kind, value = self.next()
        if kind != "num":
            raise ParseError(f"expected an integer, found {value!r}", self.line)
        return int(value)

    def at_end(self):
        return self.position >= len(self.tokens)

    def done(self):
        if not self.at_end():
            kind, value = self.peek()
            raise ParseError(f"trailing input starting at {value!r}", self.line)

    # --- expressions -----------------------------------------------------

    def parse_expr(self):
        if self.peek()[1] == "if":
            self.next()
            cond = self.parse_expr()
            self.expect("then")
            then = self.parse_expr()
            self.expect("else")
            els = self.parse_expr()
            return ast.Ite(cond, then, els)
        return self._comparison()

    _COMPARISONS = ("==", "!=", "<u", "<=u", ">u", ">=u",
                    "<s", "<=s", ">s", ">=s")

    def _comparison(self):
        left = self._bitor()
        if self.peek()[1] in self._COMPARISONS:
            op = self.next()[1]
            right = self._bitor()
            return ast.Binop(op, left, right)
        return left

    def _binop_chain(self, operators, parse_tighter):
        left = parse_tighter()
        while self.peek()[1] in operators:
            op = self.next()[1]
            right = parse_tighter()
            left = ast.Binop(op, left, right)
        return left

    def _bitor(self):
        return self._binop_chain(("|",), self._bitxor)

    def _bitxor(self):
        return self._binop_chain(("^",), self._bitand)

    def _bitand(self):
        return self._binop_chain(("&",), self._shift)

    def _shift(self):
        return self._binop_chain(("<<", ">>u", ">>s"), self._additive)

    def _additive(self):
        return self._binop_chain(("+", "-"), self._multiplicative)

    def _multiplicative(self):
        return self._binop_chain(("*",), self._unary)

    def _unary(self):
        token = self.peek()[1]
        if token in ("~", "-"):
            self.next()
            return ast.Unop(token, self._unary())
        return self._postfix()

    def _postfix(self):
        expr = self._atom()
        while self.peek()[1] == "[":
            self.next()
            high = self.expect_int()
            if self.peek()[1] == ":":
                self.next()
                low = self.expect_int()
            else:
                low = high  # x[i] selects a single bit
            self.expect("]")
            expr = ast.Extract(expr, high, low)
        return expr

    def _atom(self):
        kind, value = self.peek()
        if kind == "sized":
            self.next()
            width_text, _, value_text = value.partition("'")
            return ast.Const(int(value_text, 0), int(width_text))
        if value == "(":
            self.next()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if value == "{":
            self.next()
            high = self.parse_expr()
            self.expect(",")
            low = self.parse_expr()
            self.expect("}")
            return ast.Concat(high, low)
        if value == "read":
            self.next()
            mem = self.expect_name()
            addr = self._postfix()
            return ast.Read(mem, addr)
        if kind == "name" and value not in _KEYWORDS:
            self.next()
            return ast.Var(value)
        raise ParseError(f"unexpected token {value!r} in expression", self.line)


def parse_expr(text):
    """Parse a single expression (used in tests and tooling)."""
    parser = _LineParser(_tokenize(text, 1), 1)
    expr = parser.parse_expr()
    parser.done()
    return expr


def parse_design(text):
    """Parse a complete Oyster design from its textual form."""
    name = None
    decls = []
    stmts = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        tokens = _tokenize(raw_line, line_number)
        if not tokens:
            continue
        parser = _LineParser(tokens, line_number)
        head = parser.peek()[1]
        if head == "design":
            if name is not None:
                raise ParseError("duplicate design header", line_number)
            parser.next()
            name = parser.expect_name()
            parser.expect(":")
            parser.done()
        elif head in ("input", "output"):
            parser.next()
            decl_name = parser.expect_name()
            width = parser.expect_int()
            parser.done()
            decl_type = ast.InputDecl if head == "input" else ast.OutputDecl
            decls.append(decl_type(decl_name, width))
        elif head == "register":
            parser.next()
            decl_name = parser.expect_name()
            width = parser.expect_int()
            init = None
            if parser.peek()[1] == "init":
                parser.next()
                init = parser.expect_int()
            parser.done()
            decls.append(ast.RegisterDecl(decl_name, width, init))
        elif head == "memory":
            parser.next()
            decl_name = parser.expect_name()
            addr_width = parser.expect_int()
            data_width = parser.expect_int()
            parser.done()
            decls.append(ast.MemoryDecl(decl_name, addr_width, data_width))
        elif head == "hole":
            parser.next()
            decl_name = parser.expect_name()
            width = parser.expect_int()
            deps = []
            if parser.peek()[1] == "deps":
                parser.next()
                parser.expect("(")
                deps.append(parser.expect_name())
                while parser.peek()[1] == ",":
                    parser.next()
                    deps.append(parser.expect_name())
                parser.expect(")")
            parser.done()
            decls.append(ast.HoleDecl(decl_name, width, tuple(deps)))
        elif head == "write":
            parser.next()
            mem = parser.expect_name()
            addr = parser._postfix()
            data = parser._postfix()
            enable = parser._postfix()
            parser.done()
            stmts.append(ast.Write(mem, addr, data, enable))
        else:
            target = parser.expect_name()
            parser.expect(":=")
            expr = parser.parse_expr()
            parser.done()
            stmts.append(ast.Assign(target, expr))
    if name is None:
        raise ParseError("missing 'design <name>:' header")
    return ast.Design(name, tuple(decls), tuple(stmts))
