"""The symbolic memory model: uninterpreted reads plus an association list.

Following Section 3.1 of the paper, a memory is modelled as a pair of (1) an
uninterpreted read function over the initial contents and (2) an association
list tracking writes.  Reads of the initial contents are Ackermann-expanded:
each syntactically distinct address gets a fresh variable, with pairwise
consistency constraints ``addr_i == addr_j -> val_i == val_j`` collected as
side conditions.  Reads after writes fold the write list into an
if-then-else chain.

``MemConst`` read-only memories (used for the AES lookup tables, Section 5.1)
are instead backed by a concrete table, so reads at constant addresses fold
to constants and reads at symbolic addresses become selector trees.
"""

from __future__ import annotations

from repro.smt import terms as T

__all__ = ["SymbolicMemory", "ConstMemory"]


class _UninterpretedArray:
    """Ackermann-expanded uninterpreted function for initial memory contents."""

    def __init__(self, name, addr_width, data_width, side_conditions):
        self.name = name
        self.addr_width = addr_width
        self.data_width = data_width
        self._reads = []  # list of (addr_term, value_var)
        self._by_addr = {}
        self._side_conditions = side_conditions

    def read(self, addr):
        cached = self._by_addr.get(addr)
        if cached is not None:
            return cached
        value = T.bv_var(f"{self.name}!r{len(self._reads)}", self.data_width)
        for other_addr, other_value in self._reads:
            consistent = T.implies(
                T.bv_eq(addr, other_addr), T.bv_eq(value, other_value)
            )
            if consistent is not T.TRUE:
                self._side_conditions.append(consistent)
        self._reads.append((addr, value))
        self._by_addr[addr] = value
        return value


class SymbolicMemory:
    """A memory during symbolic evaluation.

    Immutable-by-convention: ``written`` returns a new memory sharing the
    base array, so per-timestep snapshots are just references.
    """

    def __init__(self, name, addr_width, data_width, side_conditions,
                 base=None, writes=()):
        self.name = name
        self.addr_width = addr_width
        self.data_width = data_width
        if base is None:
            base = _UninterpretedArray(
                name, addr_width, data_width, side_conditions
            )
        self._base = base
        self.writes = tuple(writes)  # (addr, data, enable) newest last

    def read(self, addr):
        """The value at ``addr``, accounting for all recorded writes."""
        value = self._base.read(addr)
        for write_addr, data, enable in self.writes:
            hit = T.bv_and(enable, T.bv_eq(write_addr, addr))
            value = T.bv_ite(hit, data, value)
        return value

    def written(self, addr, data, enable):
        """A new memory with one more (conditional) write recorded."""
        if enable is T.FALSE:
            return self
        return SymbolicMemory(
            self.name, self.addr_width, self.data_width, None,
            base=self._base, writes=self.writes + ((addr, data, enable),),
        )

    def same_base(self, other):
        """True when both memories view the same initial contents."""
        return isinstance(other, SymbolicMemory) and self._base is other._base


class ConstMemory:
    """A read-only memory with known contents (the paper's ``MemConst``).

    Reads at constant addresses fold immediately; reads at symbolic
    addresses build a balanced selector tree over the table.
    """

    def __init__(self, name, addr_width, data_width, table, default=0):
        self.name = name
        self.addr_width = addr_width
        self.data_width = data_width
        if isinstance(table, dict):
            contents = dict(table)
        else:
            contents = dict(enumerate(table))
        self._table = contents
        self._default = default

    def lookup(self, addr_value):
        return self._table.get(addr_value, self._default)

    def read(self, addr):
        if addr.is_const:
            return T.bv_const(self.lookup(addr.value), self.data_width)
        return self._tree(addr, 0, (1 << self.addr_width) - 1)

    def _tree(self, addr, low, high):
        if low == high:
            return T.bv_const(self.lookup(low), self.data_width)
        mid = (low + high) // 2
        below = T.bv_ule(addr, T.bv_const(mid, self.addr_width))
        return T.bv_ite(
            below, self._tree(addr, low, mid), self._tree(addr, mid + 1, high)
        )

    def written(self, addr, data, enable):
        raise ValueError(f"cannot write to constant memory {self.name!r}")
