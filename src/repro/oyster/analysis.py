"""Static analyses over Oyster designs: variable uses and dependencies."""

from __future__ import annotations

from repro.oyster import ast

__all__ = [
    "expr_vars",
    "stmt_uses",
    "direct_dependencies",
    "transitive_dependencies",
]


def expr_vars(expr):
    """The set of signal names read by an expression."""
    names = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Var):
            names.add(node.name)
        elif isinstance(node, ast.Unop):
            stack.append(node.arg)
        elif isinstance(node, ast.Binop):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, ast.Ite):
            stack.extend((node.cond, node.then, node.els))
        elif isinstance(node, ast.Extract):
            stack.append(node.arg)
        elif isinstance(node, ast.Concat):
            stack.append(node.high)
            stack.append(node.low)
        elif isinstance(node, ast.Read):
            stack.append(node.addr)
    return names


def stmt_uses(stmt):
    """Signal names read by a statement."""
    if isinstance(stmt, ast.Assign):
        return expr_vars(stmt.expr)
    return expr_vars(stmt.addr) | expr_vars(stmt.data) | expr_vars(stmt.enable)


def direct_dependencies(design, through_registers=False):
    """Combinational dependency map: defined signal -> names it reads.

    By default register next-value assignments are *excluded*: a register's
    current value is state, not a combinational function of this cycle's
    wires, so feedback through a register is cycle-delayed (an FSM's state
    register legitimately closes a control loop this way).  Pass
    ``through_registers=True`` to include them.
    """
    register_names = {reg.name for reg in design.registers}
    deps = {}
    for stmt in design.stmts:
        if isinstance(stmt, ast.Assign):
            if stmt.target in register_names and not through_registers:
                continue
            deps.setdefault(stmt.target, set()).update(expr_vars(stmt.expr))
    return deps


def transitive_dependencies(design, start_names, stop_names=()):
    """All signal names reachable from ``start_names`` through definitions.

    ``stop_names`` are treated as opaque (traversal does not look through
    their definitions) — used for the valid-signal exception of the
    instruction-independence check.
    """
    deps = direct_dependencies(design)
    stop = set(stop_names)
    seen = set()
    stack = list(start_names)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in stop:
            continue
        for dep in deps.get(name, ()):
            if dep not in seen:
                stack.append(dep)
    return seen
