"""Verilog export of Oyster designs.

The paper notes the sketch frontend "could support other languages such as
SystemVerilog"; this backend closes the loop on the output side, emitting a
single synthesizable module per design:

* wires become continuous assignments (one per Oyster statement);
* registers become an ``always @(posedge clk)`` block, with declared
  ``init`` values emitted as an ``initial`` block (FPGA-style reset);
* memories become unpacked arrays with synchronous write ports;
* holes are rejected — synthesize (or bind) them first.

Sub-expressions that Verilog cannot nest (bit-slices of computed values)
are hoisted into fresh wires automatically.
"""

from __future__ import annotations

from repro.oyster import ast
from repro.oyster.typecheck import check_design, infer_expr_width

__all__ = ["to_verilog", "VerilogError"]


class VerilogError(Exception):
    pass


def _identifier(name):
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text[0].isdigit():
        text = "s_" + text
    return text


class _Emitter:
    def __init__(self, design):
        self.design = design
        self.widths = check_design(design)
        self.mem_shapes = {
            m.name: (m.addr_width, m.data_width) for m in design.memories
        }
        self.hoisted = []
        self._hoist_counter = 0
        self.names = {}  # oyster name -> verilog identifier
        for name in sorted(set(self.widths) | set(self.mem_shapes)):
            self._claim(name)

    def _claim(self, name):
        base = _identifier(name)
        candidate = base
        suffix = 0
        taken = set(self.names.values())
        while candidate in taken or candidate in ("clk", "module"):
            suffix += 1
            candidate = f"{base}_{suffix}"
        self.names[name] = candidate
        return candidate

    def _fresh(self, width):
        self._hoist_counter += 1
        name = f"_hoist{self._hoist_counter}"
        while name in self.names.values():
            self._hoist_counter += 1
            name = f"_hoist{self._hoist_counter}"
        self.names[name] = name
        return name, width

    def width_of(self, expr):
        return infer_expr_width(expr, self.widths, self.mem_shapes)

    # -- expressions -------------------------------------------------------

    def expr(self, node):
        if isinstance(node, ast.Const):
            return f"{node.width}'d{node.value}"
        if isinstance(node, ast.Var):
            return self.names[node.name]
        if isinstance(node, ast.Unop):
            inner = self.expr(node.arg)
            if node.op == "~":
                return f"(~{inner})"
            return f"(-{inner})"
        if isinstance(node, ast.Binop):
            return self._binop(node)
        if isinstance(node, ast.Ite):
            return (f"(({self.expr(node.cond)}) ? ({self.expr(node.then)})"
                    f" : ({self.expr(node.els)}))")
        if isinstance(node, ast.Extract):
            base = self._sliceable(node.arg)
            if node.high == node.low:
                return f"{base}[{node.high}]"
            return f"{base}[{node.high}:{node.low}]"
        if isinstance(node, ast.Concat):
            return f"{{{self.expr(node.high)}, {self.expr(node.low)}}}"
        if isinstance(node, ast.Read):
            return f"{self.names[node.mem]}[{self.expr(node.addr)}]"
        raise VerilogError(f"cannot emit {type(node).__name__}")

    def _sliceable(self, node):
        """Verilog can only slice identifiers; hoist anything else."""
        if isinstance(node, ast.Var):
            return self.names[node.name]
        width = self.width_of(node)
        name, _ = self._fresh(width)
        self.hoisted.append(
            f"  wire [{width - 1}:0] {name} = {self.expr(node)};"
        )
        return name

    def _binop(self, node):
        left = self.expr(node.left)
        right = self.expr(node.right)
        signed = {
            "<s": "<", "<=s": "<=", ">s": ">", ">=s": ">=", ">>s": ">>>",
        }
        unsigned = {
            "&": "&", "|": "|", "^": "^", "+": "+", "-": "-", "*": "*",
            "<<": "<<", ">>u": ">>", "==": "==", "!=": "!=",
            "<u": "<", "<=u": "<=", ">u": ">", ">=u": ">=",
        }
        if node.op in unsigned:
            return f"({left} {unsigned[node.op]} {right})"
        if node.op in signed:
            return (f"($signed({left}) {signed[node.op]} "
                    f"$signed({right}))")
        raise VerilogError(f"cannot emit operator {node.op!r}")


def to_verilog(design, module_name=None):
    """Emit the design as a synthesizable Verilog module."""
    if design.holes:
        raise VerilogError(
            f"design {design.name!r} still has holes: "
            f"{[h.name for h in design.holes]}; synthesize control first"
        )
    emitter = _Emitter(design)
    names = emitter.names
    ports = ["input wire clk"]
    for decl in design.inputs:
        ports.append(f"input wire [{decl.width - 1}:0] {names[decl.name]}")
    for decl in design.outputs:
        ports.append(f"output wire [{decl.width - 1}:0] {names[decl.name]}")

    body = []
    for decl in design.registers:
        body.append(f"  reg [{decl.width - 1}:0] {names[decl.name]};")
    for decl in design.memories:
        depth = (1 << decl.addr_width) - 1
        body.append(
            f"  reg [{decl.data_width - 1}:0] {names[decl.name]} "
            f"[0:{depth}];"
        )

    initials = [
        f"    {names[r.name]} = {r.width}'d{r.init};"
        for r in design.registers if r.init is not None
    ]
    register_names = {r.name for r in design.registers}
    sequential = []  # lines inside always @(posedge clk)

    def drain_hoisted():
        body.extend(emitter.hoisted)
        emitter.hoisted.clear()

    for index, stmt in enumerate(design.stmts):
        if isinstance(stmt, ast.Assign):
            expression = emitter.expr(stmt.expr)
            drain_hoisted()
            if stmt.target in register_names:
                sequential.append(
                    f"    {names[stmt.target]} <= {expression};"
                )
            else:
                width = emitter.widths[stmt.target]
                keyword = ("assign " if any(
                    o.name == stmt.target for o in design.outputs
                ) else f"wire [{width - 1}:0] ")
                if keyword == "assign ":
                    body.append(
                        f"  assign {names[stmt.target]} = {expression};"
                    )
                else:
                    body.append(
                        f"  wire [{width - 1}:0] {names[stmt.target]} "
                        f"= {expression};"
                    )
        else:
            enable = emitter.expr(stmt.enable)
            address = emitter.expr(stmt.addr)
            data = emitter.expr(stmt.data)
            drain_hoisted()
            sequential.append(f"    if ({enable})")
            sequential.append(
                f"      {names[stmt.mem]}[{address}] <= {data};"
            )

    lines = [f"module {_identifier(module_name or design.name)} ("]
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    lines.extend(body)
    if initials:
        lines.append("  initial begin")
        lines.extend(initials)
        lines.append("  end")
    if sequential:
        lines.append("  always @(posedge clk) begin")
        lines.extend(sequential)
        lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
