"""The canonical pretty printer for Oyster designs.

``print_design`` emits text that ``repro.oyster.parser.parse_design`` reads
back to an equal design.  The paper's "Sketch Size (lines of Oyster)" metric
is the line count of this rendering (``design_loc``).
"""

from __future__ import annotations

from repro.oyster import ast

__all__ = ["print_design", "print_expr", "design_loc"]

# Binding strength, loosest (1) to tightest; mirrors the parser.
_LEVELS = [
    ("ite",),
    ("==", "!=", "<u", "<=u", ">u", ">=u", "<s", "<=s", ">s", ">=s"),
    ("|",),
    ("^",),
    ("&",),
    ("<<", ">>u", ">>s"),
    ("+", "-"),
    ("*",),
    ("unary",),
]

_PRECEDENCE = {
    op: level for level, ops in enumerate(_LEVELS, start=1) for op in ops
}
_ATOM = len(_LEVELS) + 1


def print_expr(expr):
    """Render one expression in concrete syntax."""
    text, _ = _render(expr)
    return text


def _parenthesize(text, level, minimum):
    if level < minimum:
        return f"({text})"
    return text


def _render(expr):
    """Returns (text, precedence level of the outermost operator)."""
    if isinstance(expr, ast.Const):
        if expr.width > 8 and expr.value > 9:
            return f"{expr.width}'{expr.value:#x}", _ATOM
        return f"{expr.width}'{expr.value}", _ATOM
    if isinstance(expr, ast.Var):
        return expr.name, _ATOM
    if isinstance(expr, ast.Unop):
        arg_text, arg_level = _render(expr.arg)
        level = _PRECEDENCE["unary"]
        return expr.op + _parenthesize(arg_text, arg_level, level), level
    if isinstance(expr, ast.Binop):
        level = _PRECEDENCE[expr.op]
        left_text, left_level = _render(expr.left)
        right_text, right_level = _render(expr.right)
        # Operators associate left; require strictly tighter on the right.
        # Comparisons are non-associative in the grammar (`a != b != c`
        # does not parse), so their left operand needs parens too.
        left_minimum = level + 1 if expr.op in ast.COMPARISONS else level
        left = _parenthesize(left_text, left_level, left_minimum)
        right = _parenthesize(right_text, right_level, level + 1)
        return f"{left} {expr.op} {right}", level
    if isinstance(expr, ast.Ite):
        cond_text, _ = _render(expr.cond)
        then_text, _ = _render(expr.then)
        else_text, _ = _render(expr.els)
        level = _PRECEDENCE["ite"]
        return (f"if {cond_text} then ({then_text}) else ({else_text})",
                level)
    if isinstance(expr, ast.Extract):
        arg_text, arg_level = _render(expr.arg)
        return (_parenthesize(arg_text, arg_level, _ATOM)
                + f"[{expr.high}:{expr.low}]"), _ATOM
    if isinstance(expr, ast.Concat):
        high_text, _ = _render(expr.high)
        low_text, _ = _render(expr.low)
        return "{" + high_text + ", " + low_text + "}", _ATOM
    if isinstance(expr, ast.Read):
        addr_text, addr_level = _render(expr.addr)
        addr = _parenthesize(addr_text, addr_level, _ATOM)
        return f"read {expr.mem} {addr}", _ATOM
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def print_design(design):
    """Render a full design in concrete syntax."""
    lines = [f"design {design.name}:"]
    for decl in design.decls:
        if isinstance(decl, ast.InputDecl):
            lines.append(f"  input {decl.name} {decl.width}")
        elif isinstance(decl, ast.OutputDecl):
            lines.append(f"  output {decl.name} {decl.width}")
        elif isinstance(decl, ast.RegisterDecl):
            suffix = "" if decl.init is None else f" init {decl.init}"
            lines.append(f"  register {decl.name} {decl.width}{suffix}")
        elif isinstance(decl, ast.MemoryDecl):
            lines.append(
                f"  memory {decl.name} {decl.addr_width} {decl.data_width}"
            )
        elif isinstance(decl, ast.HoleDecl):
            suffix = ""
            if decl.deps:
                suffix = f" deps({', '.join(decl.deps)})"
            lines.append(f"  hole {decl.name} {decl.width}{suffix}")
        else:
            raise TypeError(f"unknown declaration {type(decl).__name__}")
    lines.append("")
    for stmt in design.stmts:
        if isinstance(stmt, ast.Assign):
            lines.append(f"  {stmt.target} := {print_expr(stmt.expr)}")
        elif isinstance(stmt, ast.Write):
            addr = _atom_text(stmt.addr)
            data = _atom_text(stmt.data)
            enable = _atom_text(stmt.enable)
            lines.append(f"  write {stmt.mem} {addr} {data} {enable}")
        else:
            raise TypeError(f"unknown statement {type(stmt).__name__}")
    return "\n".join(lines) + "\n"


def _atom_text(expr):
    text, level = _render(expr)
    return _parenthesize(text, level, _ATOM)


def design_loc(design):
    """Lines of Oyster code: the paper's sketch-size metric (Table 1)."""
    return sum(
        1 for line in print_design(design).splitlines() if line.strip()
    )
