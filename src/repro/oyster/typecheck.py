"""Width inference and well-formedness checking for Oyster designs.

``check_design`` validates:

* every name is declared exactly once (wires are implicitly declared by
  their defining assignment);
* wires are assigned exactly once and only read after their definition
  (statements execute in program order within a cycle);
* registers and outputs are assigned at most / exactly once per cycle;
* inputs and holes are never assigned;
* all operator widths agree, ite conditions and write enables are width 1,
  extract ranges are in bounds, and memory address widths match.

It returns a ``{name: width}`` mapping covering declarations and wires.
"""

from __future__ import annotations

from repro.oyster import ast

__all__ = ["check_design", "infer_expr_width", "TypeError_"]


class TypeError_(Exception):
    """An Oyster design failed width or well-formedness checking."""


def infer_expr_width(expr, widths, mems=None, defined=None):
    """Width of ``expr`` under ``widths``; checks sub-expression consistency.

    ``mems`` maps memory name -> (addr_width, data_width).  ``defined``, when
    given, is the set of signal names legal to read at this program point.
    """
    if isinstance(expr, ast.Const):
        return expr.width
    if isinstance(expr, ast.Var):
        if expr.name not in widths:
            raise TypeError_(f"use of undeclared signal {expr.name!r}")
        if defined is not None and expr.name not in defined:
            raise TypeError_(
                f"signal {expr.name!r} read before it is defined"
            )
        return widths[expr.name]
    if isinstance(expr, ast.Unop):
        if expr.op not in ast.UNOPS:
            raise TypeError_(f"unknown unary operator {expr.op!r}")
        return infer_expr_width(expr.arg, widths, mems, defined)
    if isinstance(expr, ast.Binop):
        kind = ast.BINOPS.get(expr.op)
        if kind is None:
            raise TypeError_(f"unknown operator {expr.op!r}")
        left = infer_expr_width(expr.left, widths, mems, defined)
        right = infer_expr_width(expr.right, widths, mems, defined)
        if left != right:
            raise TypeError_(
                f"operator {expr.op!r} applied to widths {left} and {right}"
            )
        return 1 if kind == "bit" else left
    if isinstance(expr, ast.Ite):
        cond = infer_expr_width(expr.cond, widths, mems, defined)
        if cond != 1:
            raise TypeError_(f"ite condition must have width 1, got {cond}")
        then = infer_expr_width(expr.then, widths, mems, defined)
        els = infer_expr_width(expr.els, widths, mems, defined)
        if then != els:
            raise TypeError_(f"ite branches have widths {then} and {els}")
        return then
    if isinstance(expr, ast.Extract):
        base = infer_expr_width(expr.arg, widths, mems, defined)
        if not (0 <= expr.low <= expr.high < base):
            raise TypeError_(
                f"extract [{expr.high}:{expr.low}] out of range for width {base}"
            )
        return expr.high - expr.low + 1
    if isinstance(expr, ast.Concat):
        high = infer_expr_width(expr.high, widths, mems, defined)
        low = infer_expr_width(expr.low, widths, mems, defined)
        return high + low
    if isinstance(expr, ast.Read):
        if mems is None or expr.mem not in mems:
            raise TypeError_(f"read from undeclared memory {expr.mem!r}")
        addr_width, data_width = mems[expr.mem]
        addr = infer_expr_width(expr.addr, widths, mems, defined)
        if addr != addr_width:
            raise TypeError_(
                f"read of {expr.mem!r} with address width {addr}, "
                f"expected {addr_width}"
            )
        return data_width
    raise TypeError_(f"unknown expression node {type(expr).__name__}")


def check_design(design):
    """Validate ``design``; returns the complete ``{name: width}`` map."""
    widths = {}
    mems = {}
    inputs = set()
    registers = set()
    outputs = set()
    holes = set()
    for decl in design.decls:
        if decl.name in widths or decl.name in mems:
            raise TypeError_(f"duplicate declaration of {decl.name!r}")
        if isinstance(decl, ast.MemoryDecl):
            if decl.addr_width <= 0 or decl.data_width <= 0:
                raise TypeError_(
                    f"memory {decl.name!r} must have positive widths"
                )
            mems[decl.name] = (decl.addr_width, decl.data_width)
            continue
        if decl.width <= 0:
            raise TypeError_(f"declaration {decl.name!r} has width {decl.width}")
        widths[decl.name] = decl.width
        if isinstance(decl, ast.InputDecl):
            inputs.add(decl.name)
        elif isinstance(decl, ast.RegisterDecl):
            registers.add(decl.name)
        elif isinstance(decl, ast.OutputDecl):
            outputs.add(decl.name)
        elif isinstance(decl, ast.HoleDecl):
            holes.add(decl.name)
            for dep in decl.deps:
                if not isinstance(dep, str):
                    raise TypeError_(
                        f"hole {decl.name!r} dependency {dep!r} is not a name"
                    )

    # Readable-at-start: inputs, registers, holes.  Wires and outputs become
    # readable once assigned; register *current* values are always readable.
    defined = inputs | registers | holes
    assigned = set()
    for stmt in design.stmts:
        if isinstance(stmt, ast.Assign):
            expr_width = infer_expr_width(stmt.expr, widths, mems, defined)
            target = stmt.target
            if target in inputs:
                raise TypeError_(f"cannot assign to input {target!r}")
            if target in holes:
                raise TypeError_(f"cannot assign to hole {target!r}")
            if target in mems:
                raise TypeError_(
                    f"cannot assign to memory {target!r}; use write"
                )
            if target in assigned:
                raise TypeError_(f"signal {target!r} assigned more than once")
            if target in widths:
                if widths[target] != expr_width:
                    raise TypeError_(
                        f"assignment to {target!r}: declared width "
                        f"{widths[target]}, expression width {expr_width}"
                    )
            else:
                widths[target] = expr_width  # implicit wire declaration
            assigned.add(target)
            if target not in registers:
                defined.add(target)
        elif isinstance(stmt, ast.Write):
            if stmt.mem not in mems:
                raise TypeError_(f"write to undeclared memory {stmt.mem!r}")
            addr_width, data_width = mems[stmt.mem]
            got_addr = infer_expr_width(stmt.addr, widths, mems, defined)
            got_data = infer_expr_width(stmt.data, widths, mems, defined)
            got_enable = infer_expr_width(stmt.enable, widths, mems, defined)
            if got_addr != addr_width:
                raise TypeError_(
                    f"write to {stmt.mem!r}: address width {got_addr}, "
                    f"expected {addr_width}"
                )
            if got_data != data_width:
                raise TypeError_(
                    f"write to {stmt.mem!r}: data width {got_data}, "
                    f"expected {data_width}"
                )
            if got_enable != 1:
                raise TypeError_(
                    f"write enable for {stmt.mem!r} must have width 1, "
                    f"got {got_enable}"
                )
        else:
            raise TypeError_(f"unknown statement {type(stmt).__name__}")

    missing = outputs - assigned
    if missing:
        raise TypeError_(f"outputs never assigned: {sorted(missing)}")

    # Hole dependencies must name real signals.
    for decl in design.decls:
        if isinstance(decl, ast.HoleDecl):
            for dep in decl.deps:
                if dep not in widths:
                    raise TypeError_(
                        f"hole {decl.name!r} depends on unknown signal {dep!r}"
                    )
    return widths
