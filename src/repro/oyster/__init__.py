"""Oyster: the paper's HDL intermediate representation (Section 3.1).

An Oyster design is a set of declarations (inputs, outputs, registers,
memories, holes) plus an ordered list of statements (wire/register
assignments and conditional memory writes).  Designs are synchronous with a
single implicit clock: register and memory writes take effect at the next
cycle.

The package provides:

``ast``          the IR node types (Figure 5 grammar, extended operator set)
``typecheck``    width inference and well-formedness checking
``parser``       a concrete syntax parser (used for artifacts and tests)
``printer``      the canonical pretty printer ("lines of Oyster" metric)
``interpreter``  a concrete cycle-accurate simulator
``symbolic``     the symbolic evaluator producing SMT terms per cycle
``memory``       the uninterpreted-function + write-list memory model
"""

from repro.oyster.ast import (
    Design,
    InputDecl,
    OutputDecl,
    RegisterDecl,
    MemoryDecl,
    HoleDecl,
    Assign,
    Write,
    Var,
    Const,
    Unop,
    Binop,
    Ite,
    Extract,
    Concat,
    Read,
)
from repro.oyster.typecheck import check_design, TypeError_ as OysterTypeError
from repro.oyster.parser import parse_design
from repro.oyster.printer import print_design
from repro.oyster.interpreter import Simulator
from repro.oyster.symbolic import SymbolicEvaluator, Trace

__all__ = [
    "Design",
    "InputDecl",
    "OutputDecl",
    "RegisterDecl",
    "MemoryDecl",
    "HoleDecl",
    "Assign",
    "Write",
    "Var",
    "Const",
    "Unop",
    "Binop",
    "Ite",
    "Extract",
    "Concat",
    "Read",
    "check_design",
    "OysterTypeError",
    "parse_design",
    "print_design",
    "Simulator",
    "SymbolicEvaluator",
    "Trace",
]
