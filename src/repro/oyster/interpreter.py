"""A concrete cycle-accurate simulator for Oyster designs.

This is "the Oyster interpreter" of Section 3.1 run on concrete values: the
same synchronous semantics as ``repro.oyster.symbolic`` (writes take effect
next cycle, reads see start-of-cycle state), used for running programs on
completed designs (e.g. SHA-256 on the crypto core) and for differential
testing against the symbolic evaluator.
"""

from __future__ import annotations

from repro.oyster import ast
from repro.oyster.typecheck import check_design

__all__ = ["Simulator", "SimulationError"]


class SimulationError(Exception):
    """Raised for malformed stimulus (missing inputs, unbound holes, ...)."""


def _mask(width):
    return (1 << width) - 1


def _to_signed(value, width):
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


class Simulator:
    """Simulates a hole-free Oyster design (or a sketch with bound holes).

    Parameters
    ----------
    design:
        The Oyster design.  Any holes must be given concrete values via
        ``hole_values``.
    hole_values:
        Maps hole name -> int.
    memory_init:
        Maps memory name -> {address: value} initial contents (unset
        addresses read as 0).
    register_init:
        Maps register name -> initial value (default 0).
    """

    def __init__(self, design, hole_values=None, memory_init=None,
                 register_init=None):
        self.design = design
        self.widths = check_design(design)
        self._mem_shapes = {
            mem.name: (mem.addr_width, mem.data_width)
            for mem in design.memories
        }
        self.hole_values = {}
        for hole in design.holes:
            if hole_values is None or hole.name not in hole_values:
                raise SimulationError(
                    f"hole {hole.name!r} has no concrete value; synthesize "
                    "or bind it before simulating"
                )
            self.hole_values[hole.name] = (
                hole_values[hole.name] & _mask(hole.width)
            )
        self.registers = {
            reg.name: (reg.init or 0) & _mask(reg.width)
            for reg in design.registers
        }
        if register_init:
            for name, value in register_init.items():
                if name not in self.registers:
                    raise SimulationError(f"no register named {name!r}")
                self.registers[name] = value & _mask(self.widths[name])
        self.memories = {mem.name: {} for mem in design.memories}
        if memory_init:
            for name, contents in memory_init.items():
                if name not in self.memories:
                    raise SimulationError(f"no memory named {name!r}")
                data_mask = _mask(self._mem_shapes[name][1])
                self.memories[name] = {
                    addr: value & data_mask
                    for addr, value in contents.items()
                }
        self.cycle = 0
        self.last_wires = {}

    def step(self, inputs=None):
        """Advance one cycle; returns the output values of this cycle."""
        design = self.design
        env = {}
        for decl in design.inputs:
            if inputs is None or decl.name not in inputs:
                raise SimulationError(
                    f"missing input {decl.name!r} at cycle {self.cycle}"
                )
            env[decl.name] = inputs[decl.name] & _mask(decl.width)
        env.update(self.registers)
        env.update(self.hole_values)
        register_names = set(self.registers)
        next_registers = dict(self.registers)
        pending_writes = []
        for stmt in design.stmts:
            if isinstance(stmt, ast.Assign):
                value = _eval(stmt.expr, env, self.memories, self.widths, self._mem_shapes)
                if stmt.target in register_names:
                    next_registers[stmt.target] = value
                else:
                    env[stmt.target] = value
            else:
                addr = _eval(stmt.addr, env, self.memories, self.widths, self._mem_shapes)
                data = _eval(stmt.data, env, self.memories, self.widths, self._mem_shapes)
                enable = _eval(stmt.enable, env, self.memories, self.widths, self._mem_shapes)
                if enable:
                    pending_writes.append((stmt.mem, addr, data))
        for mem, addr, data in pending_writes:
            self.memories[mem][addr] = data
        self.registers = next_registers
        self.cycle += 1
        self.last_wires = env
        return {decl.name: env[decl.name] for decl in design.outputs}

    def run(self, input_sequence):
        """Step once per element of ``input_sequence``; returns all outputs."""
        return [self.step(inputs) for inputs in input_sequence]

    def peek(self, name):
        """Current value of a register, or a wire from the last cycle."""
        if name in self.registers:
            return self.registers[name]
        if name in self.last_wires:
            return self.last_wires[name]
        raise SimulationError(f"no signal named {name!r}")

    def peek_memory(self, mem, addr):
        if mem not in self.memories:
            raise SimulationError(f"no memory named {mem!r}")
        return self.memories[mem].get(addr, 0)


def _eval(expr, env, memories, widths, shapes):
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.Var):
        return env[expr.name]
    if isinstance(expr, ast.Unop):
        arg = _eval(expr.arg, env, memories, widths, shapes)
        width = _expr_width(expr.arg, env, widths, shapes)
        if expr.op == "~":
            return ~arg & _mask(width)
        return -arg & _mask(width)
    if isinstance(expr, ast.Binop):
        left = _eval(expr.left, env, memories, widths, shapes)
        right = _eval(expr.right, env, memories, widths, shapes)
        width = _expr_width(expr.left, env, widths, shapes)
        return _apply_binop(expr.op, left, right, width)
    if isinstance(expr, ast.Ite):
        cond = _eval(expr.cond, env, memories, widths, shapes)
        branch = expr.then if cond else expr.els
        return _eval(branch, env, memories, widths, shapes)
    if isinstance(expr, ast.Extract):
        arg = _eval(expr.arg, env, memories, widths, shapes)
        return (arg >> expr.low) & _mask(expr.high - expr.low + 1)
    if isinstance(expr, ast.Concat):
        high = _eval(expr.high, env, memories, widths, shapes)
        low = _eval(expr.low, env, memories, widths, shapes)
        low_width = _expr_width(expr.low, env, widths, shapes)
        return (high << low_width) | low
    if isinstance(expr, ast.Read):
        addr = _eval(expr.addr, env, memories, widths, shapes)
        return memories[expr.mem].get(addr, 0)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _expr_width(expr, env, widths, shapes):
    """Width of a sub-expression during simulation (cheap structural walk)."""
    if isinstance(expr, ast.Const):
        return expr.width
    if isinstance(expr, ast.Var):
        return widths[expr.name]
    if isinstance(expr, ast.Unop):
        return _expr_width(expr.arg, env, widths, shapes)
    if isinstance(expr, ast.Binop):
        if expr.op in ast.COMPARISONS:
            return 1
        return _expr_width(expr.left, env, widths, shapes)
    if isinstance(expr, ast.Ite):
        return _expr_width(expr.then, env, widths, shapes)
    if isinstance(expr, ast.Extract):
        return expr.high - expr.low + 1
    if isinstance(expr, ast.Concat):
        return (_expr_width(expr.high, env, widths, shapes)
                + _expr_width(expr.low, env, widths, shapes))
    if isinstance(expr, ast.Read):
        return shapes[expr.mem][1]
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _apply_binop(op, left, right, width):
    mask = _mask(width)
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "+":
        return (left + right) & mask
    if op == "-":
        return (left - right) & mask
    if op == "*":
        return (left * right) & mask
    if op == "<<":
        return (left << right) & mask if right < width else 0
    if op == ">>u":
        return left >> right if right < width else 0
    if op == ">>s":
        return (_to_signed(left, width) >> min(right, width - 1)) & mask
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<u":
        return 1 if left < right else 0
    if op == "<=u":
        return 1 if left <= right else 0
    if op == ">u":
        return 1 if left > right else 0
    if op == ">=u":
        return 1 if left >= right else 0
    signed_left = _to_signed(left, width)
    signed_right = _to_signed(right, width)
    if op == "<s":
        return 1 if signed_left < signed_right else 0
    if op == "<=s":
        return 1 if signed_left <= signed_right else 0
    if op == ">s":
        return 1 if signed_left > signed_right else 0
    if op == ">=s":
        return 1 if signed_left >= signed_right else 0
    raise ValueError(f"unknown operator {op!r}")