"""AST node types for the Oyster IR (Figure 5 of the paper).

Expressions are plain immutable trees (widths are inferred by the type
checker, not stored, except on constants).  The operator set extends the
figure's ``∧ ∨ ⊕ + =`` with the "many common bitvector operations" the paper
mentions supporting; the full list is in ``BINOPS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Design",
    "InputDecl",
    "OutputDecl",
    "RegisterDecl",
    "MemoryDecl",
    "HoleDecl",
    "Assign",
    "Write",
    "Expr",
    "Var",
    "Const",
    "Unop",
    "Binop",
    "Ite",
    "Extract",
    "Concat",
    "Read",
    "BINOPS",
    "COMPARISONS",
    "UNOPS",
]

#: binop symbol -> result kind ("same" keeps operand width, "bit" yields 1)
BINOPS = {
    "&": "same",
    "|": "same",
    "^": "same",
    "+": "same",
    "-": "same",
    "*": "same",
    "<<": "same",
    ">>u": "same",
    ">>s": "same",
    "==": "bit",
    "!=": "bit",
    "<u": "bit",
    "<=u": "bit",
    ">u": "bit",
    ">=u": "bit",
    "<s": "bit",
    "<=s": "bit",
    ">s": "bit",
    ">=s": "bit",
}

COMPARISONS = frozenset(op for op, kind in BINOPS.items() if kind == "bit")

UNOPS = ("~", "-")


class Expr:
    """Base class for Oyster expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Var(Expr):
    """A reference to an input, register, wire, output, or hole."""

    name: str


@dataclass(frozen=True)
class Const(Expr):
    """A sized constant, written ``width'value`` in concrete syntax."""

    value: int
    width: int

    def __post_init__(self):
        if self.width <= 0:
            raise ValueError(f"constant width must be positive: {self.width}")
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))


@dataclass(frozen=True)
class Unop(Expr):
    """Unary operator: ``~`` (bitwise not) or ``-`` (two's-complement negate)."""

    op: str
    arg: Expr


@dataclass(frozen=True)
class Binop(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ite(Expr):
    """``if cond then a else b``; ``cond`` must have width 1."""

    cond: Expr
    then: Expr
    els: Expr


@dataclass(frozen=True)
class Extract(Expr):
    """Bits ``high`` down to ``low`` of ``arg`` (inclusive, LSB is 0)."""

    arg: Expr
    high: int
    low: int


@dataclass(frozen=True)
class Concat(Expr):
    """``{high, low}`` concatenation; ``high`` supplies the upper bits."""

    high: Expr
    low: Expr


@dataclass(frozen=True)
class Read(Expr):
    """``read mem addr``: asynchronous read of the start-of-cycle memory."""

    mem: str
    addr: Expr


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InputDecl:
    name: str
    width: int


@dataclass(frozen=True)
class OutputDecl:
    name: str
    width: int


@dataclass(frozen=True)
class RegisterDecl:
    """A clocked register; ``init`` (optional) is its reset value.

    Registers with an ``init`` start every evaluation from that concrete
    value instead of a universally quantified symbol — this models reset
    state and is how pipelined sketches keep startup garbage (symbolic
    write enables in not-yet-filled stages) from falsifying Equation (1).
    """

    name: str
    width: int
    init: int = None


@dataclass(frozen=True)
class MemoryDecl:
    name: str
    addr_width: int
    data_width: int


@dataclass(frozen=True)
class HoleDecl:
    """A control-logic hole.

    ``deps`` names the signals the synthesized logic may observe; it guides
    code generation (the union operator's preconditions are expressed over
    these) and documents designer intent, mirroring ``??(opcode, funct3,
    funct7)`` in the paper's sketches.
    """

    name: str
    width: int
    deps: tuple = ()


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``var := expr``.

    Assigning to a register name sets its *next* value; assigning to a fresh
    name defines a wire; assigning to an output drives it this cycle.
    """

    target: str
    expr: Expr


@dataclass(frozen=True)
class Write:
    """``write mem addr data enable``: conditional synchronous memory write."""

    mem: str
    addr: Expr
    data: Expr
    enable: Expr


@dataclass(frozen=True)
class Design:
    """A complete Oyster design: declarations plus ordered statements."""

    name: str
    decls: tuple = ()
    stmts: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "decls", tuple(self.decls))
        object.__setattr__(self, "stmts", tuple(self.stmts))

    def decl_of(self, name):
        for decl in self.decls:
            if decl.name == name:
                return decl
        return None

    @property
    def inputs(self):
        return [d for d in self.decls if isinstance(d, InputDecl)]

    @property
    def outputs(self):
        return [d for d in self.decls if isinstance(d, OutputDecl)]

    @property
    def registers(self):
        return [d for d in self.decls if isinstance(d, RegisterDecl)]

    @property
    def memories(self):
        return [d for d in self.decls if isinstance(d, MemoryDecl)]

    @property
    def holes(self):
        return [d for d in self.decls if isinstance(d, HoleDecl)]

    def with_stmts(self, stmts):
        return Design(self.name, self.decls, tuple(stmts))

    def replace_holes(self, decls=None, extra_stmts=()):
        """A copy with hole declarations replaced and statements appended.

        Used when splicing synthesized control logic into the sketch: the
        hole declarations are dropped and the generated assignments (which
        define the former hole names as wires) are *prepended* so every use
        site sees them.
        """
        kept = tuple(d for d in self.decls if not isinstance(d, HoleDecl))
        if decls:
            kept = kept + tuple(decls)
        return Design(self.name, kept, tuple(extra_stmts) + self.stmts)
