"""VCD (Value Change Dump) waveform capture for Oyster simulations.

Wraps any simulator with the ``step``/``peek`` interface and records inputs,
wires, and registers each cycle; ``write`` emits a standard VCD file viewable
in GTKWave & co.  Useful when debugging a completed design against the ISS.
"""

from __future__ import annotations

__all__ = ["VcdRecorder", "write_counterexample_vcd"]

_ID_CHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _short_id(index):
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


def write_counterexample_vcd(path, values, widths, scope="counterexample"):
    """Dump one assignment (a CEGIS counterexample) as a single-step VCD.

    A counterexample is a point in state space, not a simulation run, so
    the waveform has exactly one timestep: every signal takes its
    falsifying value at ``#0``.  Viewable in GTKWave like any other dump,
    which is the reason to bother — "the verify query failed" becomes a
    waveform with the offending register and input values side by side.

    ``values`` maps signal name to int; ``widths`` maps signal name to bit
    width (signals missing from ``widths`` default to width 1).  Returns
    ``path``.
    """
    names = sorted(values)
    ids = {name: _short_id(index) for index, name in enumerate(names)}
    lines = [
        "$date counterexample $end",
        "$timescale 1ns $end",
        f"$scope module {scope} $end",
    ]
    for name in names:
        width = widths.get(name, 1)
        safe = name.replace(" ", "_")
        lines.append(f"$var wire {width} {ids[name]} {safe} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("#0")
    for name in names:
        value = values[name]
        if widths.get(name, 1) == 1:
            lines.append(f"{value}{ids[name]}")
        else:
            lines.append(f"b{value:b} {ids[name]}")
    lines.append("#1")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


class VcdRecorder:
    """Records a simulation run and serializes it as VCD.

    Parameters
    ----------
    simulator:
        A ``Simulator``/``CompiledSimulator`` (any object with ``design``,
        ``step``, ``registers`` and ``last_wires``).
    signals:
        Optional list of signal names to record (default: all inputs,
        registers, and outputs).
    """

    def __init__(self, simulator, signals=None):
        self.simulator = simulator
        design = simulator.design
        if signals is None:
            signals = ([d.name for d in design.inputs]
                       + [d.name for d in design.registers]
                       + [d.name for d in design.outputs])
        widths = simulator.widths
        self.signals = [(name, widths[name]) for name in signals]
        self.changes = []  # (cycle, name, value)
        self._previous = {}
        self.cycles = 0

    def step(self, inputs=None):
        """Step the wrapped simulator, recording signal changes."""
        outputs = self.simulator.step(inputs)
        observed = dict(inputs or {})
        observed.update(self.simulator.registers)
        observed.update(self.simulator.last_wires)
        for name, _ in self.signals:
            value = observed.get(name, 0)
            if self._previous.get(name) != value:
                self.changes.append((self.cycles, name, value))
                self._previous[name] = value
        self.cycles += 1
        return outputs

    def write(self, path, timescale="1ns", date="reproduction run"):
        """Serialize the recording to ``path``."""
        ids = {
            name: _short_id(index)
            for index, (name, _) in enumerate(self.signals)
        }
        lines = [
            f"$date {date} $end",
            f"$timescale {timescale} $end",
            f"$scope module {self.simulator.design.name} $end",
        ]
        for name, width in self.signals:
            safe = name.replace(" ", "_")
            lines.append(f"$var wire {width} {ids[name]} {safe} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        widths = dict(self.signals)
        current = None
        for cycle, name, value in self.changes:
            if cycle != current:
                lines.append(f"#{cycle}")
                current = cycle
            width = widths[name]
            if width == 1:
                lines.append(f"{value}{ids[name]}")
            else:
                lines.append(f"b{value:b} {ids[name]}")
        lines.append(f"#{self.cycles}")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return path
