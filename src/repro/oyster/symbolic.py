"""Symbolic evaluation of Oyster designs.

This is the role Rosette plays in the paper: a cycle-accurate interpreter
lifted to symbolic values.  Running a design for ``k`` cycles produces a
``Trace`` — the sequence of environments ``s_1 .. s_k`` of Equation (1) —
whose entries are SMT terms, plus the Ackermann side conditions produced by
the memory model.

Conventions (matching Section 3.2's TimeStep semantics):

* steps are numbered 1..k;
* an input read at time ``t`` is the fresh input symbol of step ``t``;
* a register/memory read at time ``t`` sees the state at the *start* of
  step ``t`` (i.e. after the updates of step ``t-1``);
* a write at time ``t`` is visible in the state at the *end* of step ``t``.
"""

from __future__ import annotations

from repro.oyster import ast
from repro.oyster.memory import SymbolicMemory, ConstMemory
from repro.oyster.typecheck import check_design
from repro.smt import terms as T

__all__ = ["SymbolicEvaluator", "Trace", "StepState", "eval_expr"]


class StepState:
    """Symbolic state for one evaluation step."""

    __slots__ = ("inputs", "wires", "regs_in", "regs_out", "mems_in",
                 "mems_out")

    def __init__(self, inputs, wires, regs_in, regs_out, mems_in, mems_out):
        self.inputs = inputs
        self.wires = wires
        self.regs_in = regs_in
        self.regs_out = regs_out
        self.mems_in = mems_in
        self.mems_out = mems_out


class Trace:
    """The result of symbolically evaluating a design for k cycles."""

    def __init__(self, design, steps, side_conditions, initial_regs,
                 initial_mems, hole_values):
        self.design = design
        self.steps = steps
        self.side_conditions = side_conditions
        self.initial_regs = initial_regs
        self.initial_mems = initial_mems
        self.hole_values = hole_values

    @property
    def cycles(self):
        return len(self.steps)

    def _step(self, t):
        if not 1 <= t <= len(self.steps):
            raise IndexError(
                f"timestep {t} out of range 1..{len(self.steps)}"
            )
        return self.steps[t - 1]

    def input_at(self, name, t):
        return self._step(t).inputs[name]

    def wire_at(self, name, t):
        step = self._step(t)
        if name in step.wires:
            return step.wires[name]
        if name in step.inputs:
            return step.inputs[name]
        if name in step.regs_in:
            return step.regs_in[name]
        raise KeyError(f"no signal {name!r} at step {t}")

    def reg_before(self, name, t):
        """Register value at the start of step t (s_{t-1})."""
        return self._step(t).regs_in[name]

    def reg_after(self, name, t):
        """Register value at the end of step t (s_t)."""
        return self._step(t).regs_out[name]

    def mem_before(self, name, t):
        return self._step(t).mems_in[name]

    def mem_after(self, name, t):
        return self._step(t).mems_out[name]

    def forall_variables(self):
        """The variables Equation (1) quantifies universally.

        These are the initial-state symbols: initial registers, memory read
        witnesses, and all per-step inputs.  (Hole variables are the
        existential side and are excluded.)
        """
        hole_names = {
            term.name for term in self.hole_values.values() if term.is_var
        }
        roots = list(self.initial_regs.values())
        for step in self.steps:
            roots.extend(step.inputs.values())
            roots.extend(step.wires.values())
        for condition in self.side_conditions:
            roots.append(condition)
        return {
            var for var in T.free_variables(roots)
            if var.name not in hole_names
        }


class SymbolicEvaluator:
    """Lifts the Oyster interpreter to symbolic values.

    Parameters
    ----------
    design:
        The (type-correct) Oyster design, typically a sketch with holes.
    hole_values:
        Maps hole name -> term.  Synthesis passes one fresh variable per
        hole (the existentially quantified constants of Equation (2));
        verification passes concrete constants.  Missing holes get fresh
        variables automatically.
    const_mems:
        Maps memory name -> ``ConstMemory`` to back a declared memory with
        read-only known contents (the paper's ``MemConst``).
    input_values:
        Optional ``{(name, step): term}`` overrides for input symbols.
    prefix:
        Prepended to every fresh symbol name so that several evaluations can
        share one solver without collisions.
    """

    def __init__(self, design, hole_values=None, const_mems=None,
                 input_values=None, prefix=""):
        self.design = design
        self.widths = check_design(design)
        self.prefix = prefix
        self.const_mems = dict(const_mems or {})
        self.input_values = dict(input_values or {})
        self.side_conditions = []
        self.hole_values = {}
        for hole in design.holes:
            provided = (hole_values or {}).get(hole.name)
            if provided is None:
                provided = T.bv_var(f"{prefix}hole!{hole.name}", hole.width)
            if provided.width != hole.width:
                raise ValueError(
                    f"hole {hole.name!r} has width {hole.width}, value has "
                    f"width {provided.width}"
                )
            self.hole_values[hole.name] = provided

    def run(self, cycles):
        """Evaluate for ``cycles`` steps; returns a ``Trace``."""
        if cycles < 1:
            raise ValueError("must evaluate at least one cycle")
        design = self.design
        regs = {}
        for reg in design.registers:
            if reg.init is not None:
                regs[reg.name] = T.bv_const(reg.init, reg.width)
            else:
                regs[reg.name] = T.bv_var(
                    f"{self.prefix}{reg.name}@0", reg.width
                )
        initial_regs = dict(regs)
        mems = {}
        for mem in design.memories:
            const = self.const_mems.get(mem.name)
            if const is not None:
                if (const.addr_width, const.data_width) != (
                    mem.addr_width, mem.data_width
                ):
                    raise ValueError(
                        f"constant memory {mem.name!r} shape mismatch"
                    )
                mems[mem.name] = const
            else:
                mems[mem.name] = SymbolicMemory(
                    f"{self.prefix}{mem.name}", mem.addr_width,
                    mem.data_width, self.side_conditions,
                )
        initial_mems = dict(mems)
        steps = []
        for step_index in range(1, cycles + 1):
            inputs = {}
            for decl in design.inputs:
                key = (decl.name, step_index)
                term = self.input_values.get(key)
                if term is None:
                    term = T.bv_var(
                        f"{self.prefix}{decl.name}@{step_index}", decl.width
                    )
                inputs[decl.name] = term
            state = self._step(regs, mems, inputs)
            steps.append(state)
            regs = state.regs_out
            mems = state.mems_out
        return Trace(design, steps, self.side_conditions, initial_regs,
                     initial_mems, self.hole_values)

    def _step(self, regs_in, mems_in, inputs):
        env = {}
        env.update(inputs)
        env.update(regs_in)
        env.update(self.hole_values)
        regs_out = dict(regs_in)
        mems_out = dict(mems_in)
        register_names = {reg.name for reg in self.design.registers}
        wires = {}
        for stmt in self.design.stmts:
            if isinstance(stmt, ast.Assign):
                value = eval_expr(stmt.expr, env, mems_in)
                if stmt.target in register_names:
                    regs_out[stmt.target] = value
                    wires[f"{stmt.target}.next"] = value
                else:
                    env[stmt.target] = value
                    wires[stmt.target] = value
            else:  # ast.Write
                addr = eval_expr(stmt.addr, env, mems_in)
                data = eval_expr(stmt.data, env, mems_in)
                enable = eval_expr(stmt.enable, env, mems_in)
                mems_out[stmt.mem] = mems_out[stmt.mem].written(
                    addr, data, enable
                )
        return StepState(inputs, wires, regs_in, regs_out, mems_in, mems_out)


def eval_expr(expr, env, mems):
    """Evaluate one Oyster expression to an SMT term.

    ``env`` maps signal names to terms; ``mems`` maps memory names to
    memory objects whose ``read`` returns a term.  Reads always see the
    start-of-cycle memory state.
    """
    if isinstance(expr, ast.Const):
        return T.bv_const(expr.value, expr.width)
    if isinstance(expr, ast.Var):
        return env[expr.name]
    if isinstance(expr, ast.Unop):
        arg = eval_expr(expr.arg, env, mems)
        if expr.op == "~":
            return T.bv_not(arg)
        return T.bv_neg(arg)
    if isinstance(expr, ast.Binop):
        left = eval_expr(expr.left, env, mems)
        right = eval_expr(expr.right, env, mems)
        return _BINOP_BUILDERS[expr.op](left, right)
    if isinstance(expr, ast.Ite):
        cond = eval_expr(expr.cond, env, mems)
        then = eval_expr(expr.then, env, mems)
        els = eval_expr(expr.els, env, mems)
        return T.bv_ite(cond, then, els)
    if isinstance(expr, ast.Extract):
        arg = eval_expr(expr.arg, env, mems)
        return T.bv_extract(arg, expr.high, expr.low)
    if isinstance(expr, ast.Concat):
        high = eval_expr(expr.high, env, mems)
        low = eval_expr(expr.low, env, mems)
        return T.bv_concat(high, low)
    if isinstance(expr, ast.Read):
        addr = eval_expr(expr.addr, env, mems)
        return mems[expr.mem].read(addr)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


_BINOP_BUILDERS = {
    "&": T.bv_and,
    "|": T.bv_or,
    "^": T.bv_xor,
    "+": T.bv_add,
    "-": T.bv_sub,
    "*": T.bv_mul,
    "<<": T.bv_shl,
    ">>u": T.bv_lshr,
    ">>s": T.bv_ashr,
    "==": T.bv_eq,
    "!=": T.bv_ne,
    "<u": T.bv_ult,
    "<=u": T.bv_ule,
    ">u": T.bv_ugt,
    ">=u": T.bv_uge,
    "<s": T.bv_slt,
    "<=s": T.bv_sle,
    ">s": T.bv_sgt,
    ">=s": T.bv_sge,
}
